// Port numberings (Section 1.2 of the paper).
//
// A port of G is a pair (v, i) with i in [deg(v)]. A port numbering is a
// bijection p on ports with A(p) = A(G): node v sends a message to its
// port (v, i); if p((v, i)) = (u, j) the message is received by u from
// port (u, j).
//
// Because A(p) = A(G) and |ports of v| = deg(v), a port numbering is
// equivalently two families of per-node bijections over neighbours:
//
//   out_v : N(v) -> [deg(v)]   (which outgoing port leads towards u)
//   in_v  : N(v) -> [deg(v)]   (which incoming port receives from u)
//
// with p((v, out_v(u))) = (u, in_u(v)). The numbering is *consistent*
// (p an involution) iff in_v = out_v for every v. This matches Figure 6:
// a VV algorithm sees both families, MV/SV algorithms lose `in`,
// VB loses `out`, MB/SB lose both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace wm {

/// A port (v, i); i is 1-based as in the paper.
struct PortRef {
  NodeId node = -1;
  int index = 0;
  friend bool operator==(const PortRef&, const PortRef&) = default;
  friend auto operator<=>(const PortRef&, const PortRef&) = default;
};

class PortNumbering {
 public:
  PortNumbering() = default;

  /// The "identity" consistent numbering: ports follow the sorted
  /// adjacency order (out = in = neighbour rank + 1).
  static PortNumbering identity(const Graph& g);

  /// Builds a numbering from explicit per-node out/in permutations:
  /// out[v][r] / in[v][r] give the port number (1-based) assigned to the
  /// r-th neighbour in sorted adjacency order. Both must be permutations
  /// of [deg(v)]. A consistent numbering has out == in.
  static PortNumbering from_permutations(const Graph& g,
                                         std::vector<std::vector<int>> out,
                                         std::vector<std::vector<int>> in);

  /// Random general (possibly inconsistent) port numbering.
  static PortNumbering random(const Graph& g, Rng& rng);
  /// Random consistent port numbering.
  static PortNumbering random_consistent(const Graph& g, Rng& rng);

  /// Lemma 15: for a k-regular graph, the symmetric port numbering built
  /// from a 1-factorisation of the bipartite double cover — out port i of
  /// v leads to f_i(v) and arrives there on in port i. Under it all nodes
  /// are bisimilar in K_{+,+}(G, p).
  static PortNumbering symmetric_regular(const Graph& g);

  const Graph& graph() const { return *g_; }

  int degree(NodeId v) const { return graph().degree(v); }

  /// p((v,i)): where does v's out-port i deliver? Returns the receiving
  /// port (u, j).
  PortRef forward(PortRef port) const;
  /// p^{-1}((u,j)): which port (v,i) delivers into u's in-port j?
  PortRef backward(PortRef port) const;

  /// out_v(u): 1-based out port of v towards neighbour u.
  int out_port(NodeId v, NodeId u) const;
  /// in_v(u): 1-based in port of v receiving from neighbour u.
  int in_port(NodeId v, NodeId u) const;
  /// Neighbour reached through v's out-port i.
  NodeId out_neighbour(NodeId v, int i) const;
  /// Neighbour whose messages arrive at v's in-port i.
  NodeId in_neighbour(NodeId v, int i) const;

  /// p(p(x)) == x for all ports (Section 1.2).
  bool is_consistent() const;

  /// Checks the port-numbering axioms (bijectivity, A(p) = A(G)) —
  /// trivially true for objects built by the factories; used by tests.
  bool is_valid() const;

  /// Local type of v (Theorem 17): tuple (j_1..j_Delta) where j_i is the
  /// in-port at the neighbour reached via out-port i (0-padded).
  std::vector<int> local_type(NodeId v, int delta) const;

  std::string to_string() const;

  friend bool operator==(const PortNumbering&, const PortNumbering&);

 private:
  // out_of_[v][i-1] = neighbour rank (index into sorted adjacency) reached
  // via out-port i; in_from_[v][i-1] = neighbour rank feeding in-port i.
  std::shared_ptr<const Graph> g_;
  std::vector<std::vector<int>> out_of_;
  std::vector<std::vector<int>> in_from_;
};

/// Enumerates all consistent port numberings of g (product of per-node
/// permutations). fn returns false to stop early. Returns count visited.
/// Feasible when sum over v of log(deg(v)!) is small.
std::size_t for_each_consistent_port_numbering(
    const Graph& g, const std::function<bool(const PortNumbering&)>& fn);

/// Enumerates all (general) port numberings: independent out- and
/// in-permutations per node. Exponentially many; use on tiny graphs only.
std::size_t for_each_port_numbering(
    const Graph& g, const std::function<bool(const PortNumbering&)>& fn);

}  // namespace wm
