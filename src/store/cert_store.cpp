#include "store/cert_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "obs/counters.hpp"
#include "obs/manifest.hpp"

namespace wm::store {

namespace fs = std::filesystem;

namespace {

// Segment layout (little-endian, fixed 48-byte header):
//   [0..8)   magic "WMCERTSG"
//   [8..12)  u32 version (kSegmentVersion)
//   [12..16) u32 kind_len
//   [16..20) u32 git_len
//   [20..24) u32 payload_crc          (crc32 over meta + payload)
//   [24..32) u64 count
//   [32..40) u64 payload_bytes        (offset table + records)
//   [40..48) u64 reserved (0)
//   [48..)   meta: kind bytes, git bytes
//   then     payload: count * u64 offsets (into the records area),
//            records: u32 key_len, key bytes, u64 value
// File size must equal 48 + kind_len + git_len + payload_bytes exactly.
constexpr char kSegmentMagic[8] = {'W', 'M', 'C', 'E', 'R', 'T', 'S', 'G'};
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kHeaderBytes = 48;

constexpr const char* kManifestName = "store.manifest";
constexpr const char* kManifestMagic = "wm-cert-store";
constexpr std::uint32_t kManifestVersion = 1;

template <typename T>
T read_le(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void append_le(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

[[noreturn]] void fail(StoreErrorCode code, const std::string& message) {
  throw StoreError(code, message);
}

/// Writes `data` to `path` via <path>.tmp + fsync + rename + dir fsync —
/// the one way any store file ever becomes visible.
void atomic_write(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(StoreErrorCode::kIo, "cannot create " + tmp);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(StoreErrorCode::kIo, "short write to " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(StoreErrorCode::kIo, "fsync failed for " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail(StoreErrorCode::kIo, "rename failed for " + path);
  }
  const std::string dir = fs::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::string read_file(const std::string& path, const char* what) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(StoreErrorCode::kIo,
         std::string("cannot open ") + what + " " + path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      ::close(fd);
      fail(StoreErrorCode::kIo, std::string("read failed for ") + path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

}  // namespace

const char* to_string(StoreErrorCode code) {
  switch (code) {
    case StoreErrorCode::kIo: return "io";
    case StoreErrorCode::kTruncated: return "truncated";
    case StoreErrorCode::kBadMagic: return "bad_magic";
    case StoreErrorCode::kVersionSkew: return "version_skew";
    case StoreErrorCode::kCrcMismatch: return "crc_mismatch";
    case StoreErrorCode::kBadManifest: return "bad_manifest";
    case StoreErrorCode::kKindMismatch: return "kind_mismatch";
    case StoreErrorCode::kCheckpointSkew: return "checkpoint_skew";
  }
  return "unknown";
}

StoreError::StoreError(StoreErrorCode code, const std::string& message)
    : std::runtime_error(std::string("store error [") + to_string(code) +
                         "]: " + message),
      code_(code) {}

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  // Reflected CRC-32 (poly 0xEDB88320), table built on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

// --- Segment ----------------------------------------------------------------

Segment::~Segment() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_bytes_);
  }
}

Segment::Segment(Segment&& other) noexcept
    : map_(other.map_),
      map_bytes_(other.map_bytes_),
      payload_(other.payload_),
      count_(other.count_),
      payload_crc_(other.payload_crc_),
      kind_(std::move(other.kind_)),
      git_(std::move(other.git_)) {
  other.map_ = nullptr;
  other.map_bytes_ = 0;
}

Segment Segment::open(const std::string& path, std::string_view expect_kind) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(StoreErrorCode::kIo, "cannot open segment " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(StoreErrorCode::kIo, "cannot stat segment " + path);
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  if (bytes < kHeaderBytes) {
    ::close(fd);
    fail(StoreErrorCode::kTruncated,
         path + ": " + std::to_string(bytes) + " bytes, header needs " +
             std::to_string(kHeaderBytes));
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    fail(StoreErrorCode::kIo, "mmap failed for " + path);
  }
  Segment seg;
  seg.map_ = static_cast<const char*>(map);
  seg.map_bytes_ = bytes;
  const char* p = seg.map_;
  if (std::memcmp(p, kSegmentMagic, sizeof kSegmentMagic) != 0) {
    fail(StoreErrorCode::kBadMagic, path + ": not a wm cert segment");
  }
  const std::uint32_t version = read_le<std::uint32_t>(p + 8);
  if (version != kSegmentVersion) {
    fail(StoreErrorCode::kVersionSkew,
         path + ": segment version " + std::to_string(version) +
             ", this build reads " + std::to_string(kSegmentVersion));
  }
  const std::uint32_t kind_len = read_le<std::uint32_t>(p + 12);
  const std::uint32_t git_len = read_le<std::uint32_t>(p + 16);
  seg.payload_crc_ = read_le<std::uint32_t>(p + 20);
  seg.count_ = read_le<std::uint64_t>(p + 24);
  const std::uint64_t payload_bytes = read_le<std::uint64_t>(p + 32);
  const std::uint64_t expect_size =
      kHeaderBytes + kind_len + git_len + payload_bytes;
  if (expect_size != bytes) {
    fail(StoreErrorCode::kTruncated,
         path + ": header declares " + std::to_string(expect_size) +
             " bytes, file has " + std::to_string(bytes));
  }
  if (payload_bytes < seg.count_ * sizeof(std::uint64_t)) {
    fail(StoreErrorCode::kTruncated,
         path + ": payload smaller than its offset table");
  }
  const std::uint32_t actual_crc =
      crc32(std::string_view(p + kHeaderBytes, kind_len + git_len +
                                                   payload_bytes));
  if (actual_crc != seg.payload_crc_) {
    fail(StoreErrorCode::kCrcMismatch,
         path + ": payload crc " + hex32(actual_crc) + ", header says " +
             hex32(seg.payload_crc_));
  }
  seg.kind_.assign(p + kHeaderBytes, kind_len);
  seg.git_.assign(p + kHeaderBytes + kind_len, git_len);
  seg.payload_ = p + kHeaderBytes + kind_len + git_len;
  if (!expect_kind.empty() && seg.kind_ != expect_kind) {
    fail(StoreErrorCode::kKindMismatch,
         path + ": holds kind '" + seg.kind_ + "', store is '" +
             std::string(expect_kind) + "'");
  }
  // Validate every record stays in bounds once, so lookups can trust the
  // offset table unconditionally afterwards.
  const char* records = seg.payload_ + seg.count_ * sizeof(std::uint64_t);
  const char* end = seg.map_ + bytes;
  for (std::uint64_t i = 0; i < seg.count_; ++i) {
    const std::uint64_t off =
        read_le<std::uint64_t>(seg.payload_ + i * sizeof(std::uint64_t));
    const char* rec = records + off;
    if (rec + sizeof(std::uint32_t) > end ||
        rec + sizeof(std::uint32_t) + read_le<std::uint32_t>(rec) +
                sizeof(std::uint64_t) >
            end) {
      fail(StoreErrorCode::kTruncated,
           path + ": record " + std::to_string(i) + " out of bounds");
    }
  }
  return seg;
}

std::string_view Segment::key_at(std::uint64_t i) const {
  const char* records = payload_ + count_ * sizeof(std::uint64_t);
  const std::uint64_t off =
      read_le<std::uint64_t>(payload_ + i * sizeof(std::uint64_t));
  const char* rec = records + off;
  const std::uint32_t len = read_le<std::uint32_t>(rec);
  return std::string_view(rec + sizeof(std::uint32_t), len);
}

std::uint64_t Segment::value_at(std::uint64_t i) const {
  const std::string_view key = key_at(i);
  return read_le<std::uint64_t>(key.data() + key.size());
}

bool Segment::contains(std::string_view key) const {
  return find(key).has_value();
}

std::optional<std::uint64_t> Segment::find(std::string_view key) const {
  std::uint64_t lo = 0, hi = count_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const int cmp = key_at(mid).compare(key);
    if (cmp == 0) return value_at(mid);
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

void Segment::for_each(
    const std::function<void(std::string_view, std::uint64_t)>& fn) const {
  for (std::uint64_t i = 0; i < count_; ++i) fn(key_at(i), value_at(i));
}

std::uint32_t Segment::write(
    const std::string& path, std::string_view kind,
    std::vector<std::pair<std::string, std::uint64_t>> records) {
  std::sort(records.begin(), records.end());
  const std::string_view git = obs::build_git_describe();
  std::string payload;
  std::string body;
  payload.reserve(records.size() * 16);
  for (const auto& [key, value] : records) {
    append_le<std::uint64_t>(payload, body.size());
    append_le<std::uint32_t>(body, static_cast<std::uint32_t>(key.size()));
    body += key;
    append_le<std::uint64_t>(body, value);
  }
  payload += body;

  std::string meta;
  meta += kind;
  meta += git;
  std::uint32_t crc = crc32(meta);
  crc = crc32(payload, crc);

  std::string file;
  file.reserve(kHeaderBytes + meta.size() + payload.size());
  file.append(kSegmentMagic, sizeof kSegmentMagic);
  append_le<std::uint32_t>(file, kSegmentVersion);
  append_le<std::uint32_t>(file, static_cast<std::uint32_t>(kind.size()));
  append_le<std::uint32_t>(file, static_cast<std::uint32_t>(git.size()));
  append_le<std::uint32_t>(file, crc);
  append_le<std::uint64_t>(file, records.size());
  append_le<std::uint64_t>(file, payload.size());
  append_le<std::uint64_t>(file, 0);  // reserved
  file += meta;
  file += payload;
  atomic_write(path, file);
  WM_COUNT_INFO_ADD(store.bytes_written, file.size());
  return crc;
}

// --- manifest / checkpoint text files ---------------------------------------

void write_crc_file(const std::string& path, const std::string& body) {
  std::string out = body;
  out += "end ";
  out += hex32(crc32(body));
  out += "\n";
  atomic_write(path, out);
}

std::string load_crc_file(const std::string& path, const char* what) {
  const std::string raw = read_file(path, what);
  // The last line must be `end <crc32hex>` over everything before it.
  const std::size_t nl = raw.rfind('\n', raw.size() >= 2 ? raw.size() - 2
                                                         : std::string::npos);
  const std::size_t line_start = (nl == std::string::npos) ? 0 : nl + 1;
  std::istringstream tail(raw.substr(line_start));
  std::string word, crc_hex;
  if (!(tail >> word >> crc_hex) || word != "end") {
    fail(StoreErrorCode::kTruncated,
         path + ": missing `end <crc>` trailer (torn write?)");
  }
  const std::string body = raw.substr(0, line_start);
  if (hex32(crc32(body)) != crc_hex) {
    fail(StoreErrorCode::kCrcMismatch, path + ": trailer crc mismatch");
  }
  return body;
}

// --- CertStore --------------------------------------------------------------

CertStore::CertStore(std::string dir, std::string kind, StoreOptions options)
    : dir_(std::move(dir)),
      kind_(std::move(kind)),
      options_(options),
      front_(std::make_unique<LockfreeMinMap<std::string, std::uint64_t>>()) {}

CertStore CertStore::open(const std::string& dir, const std::string& kind,
                          const StoreOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) fail(StoreErrorCode::kIo, "cannot create store dir " + dir);
  CertStore s(dir, kind, options);
  if (fs::exists(s.segment_path(kManifestName))) {
    s.load_manifest();
    s.open_segments();
  } else {
    s.commit_manifest();
  }
  return s;
}

CertStore CertStore::open_at(const std::string& dir, const std::string& kind,
                             const std::vector<SegmentRef>& expected,
                             const StoreOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) fail(StoreErrorCode::kIo, "cannot create store dir " + dir);
  CertStore s(dir, kind, options);
  // Adopt the checkpoint's generation lineage if a manifest survives;
  // its segment *list* is overridden by the checkpoint's.
  if (fs::exists(s.segment_path(kManifestName))) {
    try {
      s.load_manifest();
    } catch (const StoreError&) {
      // A torn manifest is a legal crash artefact here: the checkpoint
      // names the authoritative set, and we rewrite the manifest below.
    }
  }
  s.refs_ = expected;
  s.segments_.clear();
  for (const SegmentRef& ref : expected) {
    const std::string path = s.segment_path(ref.file);
    if (!fs::exists(path)) {
      fail(StoreErrorCode::kCheckpointSkew,
           "checkpoint names segment " + ref.file +
               " which the store does not have (checkpoint newer than "
               "store)");
    }
    Segment seg = Segment::open(path, kind);
    if (seg.count() != ref.count || seg.payload_crc() != ref.crc) {
      fail(StoreErrorCode::kCheckpointSkew,
           "checkpoint names segment " + ref.file +
               " with different content than the store holds");
    }
    s.segments_.push_back(std::move(seg));
  }
  s.generation_ += 1;
  s.commit_manifest();
  s.purge_unreferenced();  // stale files from the crashed future
  return s;
}

void CertStore::wipe(const std::string& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
}

std::string CertStore::segment_path(const std::string& file) const {
  return (fs::path(dir_) / file).string();
}

std::string CertStore::next_segment_name() {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06llu.wmseg",
                static_cast<unsigned long long>(next_segment_id_++));
  return buf;
}

void CertStore::load_manifest() {
  const std::string path = segment_path(kManifestName);
  const std::string body = load_crc_file(path, "store manifest");
  std::istringstream in(body);
  std::string magic;
  std::uint32_t version = 0;
  if (!(in >> magic >> version) || magic != kManifestMagic) {
    fail(StoreErrorCode::kBadMagic, path + ": not a store manifest");
  }
  if (version != kManifestVersion) {
    fail(StoreErrorCode::kVersionSkew,
         path + ": manifest version " + std::to_string(version));
  }
  refs_.clear();
  std::string word;
  std::string kind;
  while (in >> word) {
    if (word == "kind") {
      in >> kind;
    } else if (word == "generation") {
      in >> generation_;
    } else if (word == "next_segment") {
      in >> next_segment_id_;
    } else if (word == "segment") {
      SegmentRef ref;
      std::string crc_hex;
      if (!(in >> ref.file >> ref.count >> crc_hex)) {
        fail(StoreErrorCode::kBadManifest, path + ": bad segment line");
      }
      ref.crc = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
      refs_.push_back(std::move(ref));
    } else if (word == "git") {
      in >> word;  // provenance only
    } else {
      fail(StoreErrorCode::kBadManifest, path + ": unknown field " + word);
    }
  }
  if (kind != kind_) {
    fail(StoreErrorCode::kKindMismatch,
         path + ": manifest kind '" + kind + "', store opened as '" + kind_ +
             "'");
  }
}

void CertStore::commit_manifest() {
  std::string body;
  body += kManifestMagic;
  body += " ";
  body += std::to_string(kManifestVersion);
  body += "\nkind ";
  body += kind_;
  body += "\ngit ";
  body += obs::build_git_describe();
  body += "\ngeneration ";
  body += std::to_string(generation_);
  body += "\nnext_segment ";
  body += std::to_string(next_segment_id_);
  body += "\n";
  for (const SegmentRef& ref : refs_) {
    body += "segment ";
    body += ref.file;
    body += " ";
    body += std::to_string(ref.count);
    body += " ";
    body += hex32(ref.crc);
    body += "\n";
  }
  write_crc_file(segment_path(kManifestName), body);
}

void CertStore::open_segments() {
  segments_.clear();
  for (const SegmentRef& ref : refs_) {
    Segment seg = Segment::open(segment_path(ref.file), kind_);
    if (seg.count() != ref.count || seg.payload_crc() != ref.crc) {
      fail(StoreErrorCode::kCrcMismatch,
           ref.file + ": segment disagrees with the manifest that names it");
    }
    segments_.push_back(std::move(seg));
  }
}

bool CertStore::contains(const std::string& key) const {
  if (front_->find(key).has_value()) return true;
  // Newest segment first: recently sealed keys are the likeliest repeats.
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    WM_COUNT_INFO(store.segment_probes);
    if (it->contains(key)) return true;
  }
  return false;
}

bool CertStore::insert_fresh(const std::string& key, std::uint64_t value) {
  bool fresh = !front_->find(key).has_value();
  if (fresh) {
    for (auto it = segments_.rbegin(); fresh && it != segments_.rend(); ++it) {
      WM_COUNT_INFO(store.segment_probes);
      fresh = !it->contains(key);
    }
  }
  if (!fresh) {
    WM_COUNT(store.dup_hits);
    return false;
  }
  WM_COUNT(store.fresh_keys);
  front_->insert_min(key, value);
  ++front_count_;
  WM_COUNT_MAX(store.front_peak_keys, front_count_);
  if (front_count_ >= options_.spill_threshold) seal();
  return true;
}

std::uint64_t CertStore::distinct_keys() const {
  std::uint64_t sealed = 0;
  for (const SegmentRef& ref : refs_) sealed += ref.count;
  return sealed + front_count_;
}

void CertStore::seal() {
  if (front_count_ == 0) return;
  auto records = front_->harvest(/*emit_counters=*/false);
  const std::string file = next_segment_name();
  const std::uint32_t crc = Segment::write(segment_path(file), kind_,
                                           std::move(records));
  SegmentRef ref{file, front_count_, crc};
  generation_ += 1;
  refs_.push_back(ref);
  commit_manifest();
  segments_.push_back(Segment::open(segment_path(file), kind_));
  front_ = std::make_unique<LockfreeMinMap<std::string, std::uint64_t>>();
  front_count_ = 0;
  ++spills_;
  WM_COUNT_INFO(store.spills);
}

bool CertStore::compact_if_needed() {
  if (refs_.size() < options_.compact_min_segments || refs_.size() < 2) {
    return false;
  }
  std::vector<std::pair<std::string, std::uint64_t>> merged;
  merged.reserve(static_cast<std::size_t>(distinct_keys() - front_count_));
  for (const Segment& seg : segments_) {
    seg.for_each([&](std::string_view key, std::uint64_t value) {
      merged.emplace_back(std::string(key), value);
    });
  }
  // insert_fresh never files one key twice across segments, but merge by
  // min anyway so compaction is safe on any store.
  std::sort(merged.begin(), merged.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (out > 0 && merged[out - 1].first == merged[i].first) {
      merged[out - 1].second = std::min(merged[out - 1].second,
                                        merged[i].second);
    } else {
      if (out != i) merged[out] = std::move(merged[i]);  // no self-move
      ++out;
    }
  }
  merged.resize(out);
  const std::string file = next_segment_name();
  const std::uint64_t count = merged.size();
  const std::uint32_t crc = Segment::write(segment_path(file), kind_,
                                           std::move(merged));
  generation_ += 1;
  refs_.clear();
  refs_.push_back(SegmentRef{file, count, crc});
  commit_manifest();  // replaced files stay until purge_unreferenced()
  segments_.clear();
  segments_.push_back(Segment::open(segment_path(file), kind_));
  ++compactions_;
  WM_COUNT_INFO(store.compactions);
  return true;
}

void CertStore::purge_unreferenced() {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name == kManifestName) continue;
    const bool is_segment = name.rfind("seg-", 0) == 0;
    const bool is_tmp = name.size() > 4 &&
                        name.compare(name.size() - 4, 4, ".tmp") == 0;
    if (!is_segment && !is_tmp) continue;
    const bool referenced =
        std::any_of(refs_.begin(), refs_.end(),
                    [&](const SegmentRef& r) { return r.file == name; });
    if (!referenced) {
      fs::remove(entry.path(), ec);
      WM_COUNT_INFO(store.purged_files);
    }
  }
}

StoreStats CertStore::stats() const {
  StoreStats s;
  s.front_keys = front_count_;
  s.segments = refs_.size();
  s.generation = generation_;
  s.spills = spills_;
  s.compactions = compactions_;
  for (const SegmentRef& ref : refs_) s.sealed_keys += ref.count;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file(ec)) {
      s.bytes_on_disk += static_cast<std::uint64_t>(entry.file_size(ec));
    }
  }
  return s;
}

}  // namespace wm::store
