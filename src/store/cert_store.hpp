// Disk-backed canonical-certificate store — the census's long-term
// memory.
//
// enumerate_graphs_modulo_iso used to hold every canonical certificate
// in RAM and restart from scratch, which caps the census at whatever one
// interactive run can hold and finish. Following DiVinE's explicit
// on-disk state-space design (divine/explicit/header.h: a fixed,
// versioned header in front of an mmap'd payload), this store keeps the
// census's key set on disk so memory stays flat and a killed run can
// resume:
//
//  - An in-memory *front* (util/lockfree_set.hpp LockfreeMinMap) absorbs
//    fresh keys. When it passes `spill_threshold` keys it is sealed:
//    drained, sorted, and written as an immutable on-disk *segment*.
//  - A segment file is a fixed header (magic, version, kind tag, element
//    count, the configure-time `git describe` from the obs manifest),
//    a sorted offset table + records payload, and a trailing CRC-32.
//    Sealed segments are mmap'd read-only and probed by binary search.
//  - `store.manifest` names the committed segment set (+ per-segment
//    CRCs) and carries a generation number and its own CRC line. It is
//    the single commit point: a segment exists once the manifest names
//    it, not when its file appears.
//  - Compaction merges all sealed segments into one (CRC-checked on
//    read, re-CRC'd on write) and commits a manifest naming only the
//    merged segment. Replaced files are NOT deleted here — see the
//    crash-safety contract below.
//
// Crash-safety contract (DESIGN.md "Disk-backed canonical store"):
// every file becomes visible via write-to-temp + fsync + atomic rename
// (+ directory fsync), so readers never observe a half-written segment
// or manifest. The enumeration checkpoint (checkpoint.hpp) records the
// exact segment set it depends on; resume re-opens the store *at* that
// set (open_at), deleting stale files from a crashed future, and files
// unreferenced by the current manifest are purged only after the *next*
// checkpoint commits (purge_unreferenced). Net effect: whatever the
// crash point — mid-seal, mid-compaction, between manifest and
// checkpoint — resume rewinds to the last committed checkpoint and
// replays deterministically. Corrupt on-disk state (truncation, bad
// magic, version skew, CRC mismatch, a checkpoint naming segments the
// store does not have) raises a structured StoreError, never a silent
// partial census.
//
// Concurrency: insert_fresh/contains/seal/compact are sequential-only —
// the census driver calls them from its ordered merge step; the
// parallelism lives a layer up, in the per-batch dedup tables
// (ParallelVisitor::dedup_stream).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/lockfree_set.hpp"

namespace wm::store {

/// Structured failure taxonomy: every on-disk defect maps to one code so
/// callers (and tests) can tell corruption kinds apart.
enum class StoreErrorCode {
  kIo,             // open/read/write/rename/mmap failed
  kTruncated,      // file shorter than its header claims
  kBadMagic,       // not a store file at all
  kVersionSkew,    // written by an incompatible layout version
  kCrcMismatch,    // payload or manifest bytes corrupted
  kBadManifest,    // manifest/checkpoint grammar violated
  kKindMismatch,   // segment/checkpoint belongs to a different census
  kCheckpointSkew, // checkpoint references store state that is gone
};

const char* to_string(StoreErrorCode code);

class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrorCode code, const std::string& message);
  StoreErrorCode code() const { return code_; }

 private:
  StoreErrorCode code_;
};

/// CRC-32 (IEEE, reflected) over `data` — the checksum every store file
/// carries. Exposed for the corruption tests.
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// One committed segment as the manifest (and a checkpoint) names it.
struct SegmentRef {
  std::string file;     // basename within the store directory
  std::uint64_t count;  // records
  std::uint32_t crc;    // payload CRC from the segment header
  friend bool operator==(const SegmentRef&, const SegmentRef&) = default;
};

struct StoreOptions {
  /// Front keys before an automatic seal. The census driver also seals
  /// explicitly at every checkpoint, so this only bounds memory between
  /// checkpoints.
  std::size_t spill_threshold = 1u << 20;
  /// compact_if_needed() merges when the committed segment count
  /// reaches this (2 = always compact two or more segments).
  std::size_t compact_min_segments = 8;
};

struct StoreStats {
  std::uint64_t sealed_keys = 0;  // records across committed segments
  std::uint64_t front_keys = 0;   // keys currently in the memory front
  std::uint64_t segments = 0;     // committed segments
  std::uint64_t generation = 0;   // manifest commits so far
  std::uint64_t spills = 0;       // seals this process performed
  std::uint64_t compactions = 0;  // compactions this process performed
  std::uint64_t bytes_on_disk = 0;
};

/// A sealed, immutable, mmap'd segment. Public only for the tests; use
/// CertStore for everything else.
class Segment {
 public:
  /// Validates header, size and CRC; throws StoreError on any defect.
  /// `expect_kind` empty skips the kind check.
  static Segment open(const std::string& path, std::string_view expect_kind);
  ~Segment();
  Segment(Segment&& other) noexcept;
  Segment& operator=(Segment&&) = delete;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  bool contains(std::string_view key) const;
  std::optional<std::uint64_t> find(std::string_view key) const;
  std::uint64_t count() const { return count_; }
  std::uint32_t payload_crc() const { return payload_crc_; }
  const std::string& kind() const { return kind_; }
  const std::string& git() const { return git_; }

  /// Sorted (key, value) records, for compaction and tests.
  void for_each(const std::function<void(std::string_view, std::uint64_t)>&
                    fn) const;

  /// Writes a segment file at `path` via temp + fsync + atomic rename.
  /// `records` need not be sorted; they are sorted here. Returns the
  /// payload CRC committed into the header.
  static std::uint32_t write(
      const std::string& path, std::string_view kind,
      std::vector<std::pair<std::string, std::uint64_t>> records);

 private:
  Segment() = default;
  std::string_view key_at(std::uint64_t i) const;
  std::uint64_t value_at(std::uint64_t i) const;

  const char* map_ = nullptr;  // whole file, read-only
  std::size_t map_bytes_ = 0;
  const char* payload_ = nullptr;  // offset table start
  std::uint64_t count_ = 0;
  std::uint32_t payload_crc_ = 0;
  std::string kind_;
  std::string git_;
};

/// The disk-backed certificate store: memory front + committed segments
/// + manifest, under one directory. One store holds one `kind` of
/// certificate (e.g. "graph-all-n8"); the kind tag is baked into every
/// segment header and the manifest, so mixing censuses is a structured
/// error, not silent cross-talk.
class CertStore {
 public:
  /// Opens (or initialises) the store at `dir`. An existing manifest is
  /// loaded and every named segment validated; an absent one is
  /// committed empty. Throws StoreError on corruption or kind mismatch.
  static CertStore open(const std::string& dir, const std::string& kind,
                        const StoreOptions& options = {});

  /// Opens the store *at* a checkpointed segment set: exactly `expected`
  /// must be present and valid (else kCheckpointSkew — the checkpoint is
  /// newer than the store), segment files a crashed future left behind
  /// are deleted, and the manifest is rewritten to match. This is the
  /// resume path's idempotent rewind.
  static CertStore open_at(const std::string& dir, const std::string& kind,
                           const std::vector<SegmentRef>& expected,
                           const StoreOptions& options = {});

  /// Wipes every store file under `dir` (fresh cold start).
  static void wipe(const std::string& dir);

  CertStore(CertStore&&) = default;

  /// True iff `key` was absent from front and every committed segment;
  /// records it (with `value`, the candidate index that minted it) in
  /// the front. Seals the front automatically past spill_threshold.
  /// Emits the store.fresh_keys / store.dup_hits work counters.
  bool insert_fresh(const std::string& key, std::uint64_t value);

  bool contains(const std::string& key) const;

  /// Distinct keys (front + sealed).
  std::uint64_t distinct_keys() const;

  /// Drains the front into a new committed segment (no-op when empty).
  void seal();

  /// Merges all committed segments into one when their count reaches
  /// options.compact_min_segments; returns true if a compaction ran.
  /// Replaced segment files stay on disk until purge_unreferenced().
  bool compact_if_needed();

  /// Deletes segment files in the directory that the current manifest
  /// does not name. Call only after the state that references them (the
  /// previous checkpoint) has been superseded.
  void purge_unreferenced();

  /// The committed segment set — what a checkpoint records.
  const std::vector<SegmentRef>& segment_refs() const { return refs_; }

  std::uint64_t generation() const { return generation_; }
  const std::string& kind() const { return kind_; }
  const std::string& dir() const { return dir_; }
  StoreStats stats() const;

 private:
  CertStore(std::string dir, std::string kind, StoreOptions options);
  void load_manifest();
  void commit_manifest();
  void open_segments();
  std::string segment_path(const std::string& file) const;
  std::string next_segment_name();

  std::string dir_;
  std::string kind_;
  StoreOptions options_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_segment_id_ = 1;
  std::vector<SegmentRef> refs_;
  std::vector<Segment> segments_;  // parallel to refs_
  std::unique_ptr<LockfreeMinMap<std::string, std::uint64_t>> front_;
  std::size_t front_count_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t compactions_ = 0;
};

/// Manifest grammar helpers, shared with checkpoint.cpp: a line-oriented
/// text file whose final line is `end <crc32-hex-of-preceding-bytes>`.
/// Writing appends the CRC line and commits via temp + rename; loading
/// verifies it and returns the preceding lines.
void write_crc_file(const std::string& path, const std::string& body);
std::string load_crc_file(const std::string& path, const char* what);

}  // namespace wm::store
