// The problem catalogue: every graph problem the paper uses.
#pragma once

#include "logic/formula.hpp"
#include "problems/problem.hpp"

namespace wm {

/// Theorem 11 (separates VB from SV): in a k-star with k > 1, the centre
/// outputs 0 and exactly one leaf outputs 1; on non-stars anything goes.
ProblemPtr leaf_in_star_problem();

/// Theorem 13 (separates SB from MB): S(v) = 1 iff v has an odd number of
/// neighbours of odd degree. Unique valid solution per graph.
ProblemPtr odd_odd_problem();

/// Theorem 17 (separates VV from VVc): on graphs in the class G
/// (connected, k-regular for odd k, no 1-factor) the output must be
/// non-constant; on all other graphs anything goes.
ProblemPtr symmetry_break_problem();

/// Is g a member of the paper's class G (Section 5.3)?
bool in_class_g(const Graph& g);

/// Section 1.4 examples.
ProblemPtr maximal_independent_set_problem();
ProblemPtr three_colouring_problem();       // Y = {1, 2, 3}
ProblemPtr eulerian_decision_problem();     // all-accept / some-reject

/// Vertex cover within factor `ratio_num/ratio_den` of optimum (exact
/// optimum computed by branch and bound — small graphs only).
ProblemPtr approx_vertex_cover_problem(int ratio_num = 2, int ratio_den = 1);

/// Remark 2 (SBo): S(v) = 1 iff v is isolated.
ProblemPtr isolated_node_problem();

/// S(v) = deg(v) mod 2 — a problem solvable at time 0 in every class.
ProblemPtr degree_parity_problem();

/// The canonical graph problem Pi_Psi of a modal formula (Section 4.3):
/// the unique valid solution on G is ||psi||_{K--(G)}. Restricted to the
/// K_{-,-} signature because that view — and hence the solution — does
/// not depend on the port numbering. `delta` bounds the graphs the
/// problem is meaningful for; valid() throws on larger degrees.
/// By Theorem 2, Pi_Psi is in MB(1) (SB(1) if psi is ungraded) with
/// locality md(psi) — property-tested in tests/test_formula_problems.cpp.
ProblemPtr formula_problem(const Formula& psi, int delta);

}  // namespace wm
