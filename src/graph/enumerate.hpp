// Exhaustive enumeration of small graphs.
//
// The paper's theorems quantify over *all* graphs (and all port
// numberings). The executable analogue checks small scopes exhaustively:
// this module streams every simple graph on n nodes (optionally connected,
// degree-bounded), and the separation benches search these for witnesses.
#pragma once

#include <functional>

#include "graph/graph.hpp"

namespace wm {

struct EnumerateOptions {
  bool connected_only = true;
  int max_degree = -1;      // -1 = unbounded
  int min_degree = 0;
};

/// Calls `fn` for every simple graph on n labelled nodes matching the
/// options. Stops early if fn returns false. Returns the number of graphs
/// visited. Intended for n <= 7 (2^21 candidate edge sets).
std::size_t enumerate_graphs(int n, const EnumerateOptions& opts,
                             const std::function<bool(const Graph&)>& fn);

/// Deduplicated-by-degree-refinement variant: skips graphs whose colour
/// refinement signature was already seen (a cheap, sound-for-our-purposes
/// symmetry reduction: bisimulation-based witnesses only depend on the
/// refinement classes). Visits strictly fewer graphs.
std::size_t enumerate_graphs_modulo_refinement(
    int n, const EnumerateOptions& opts,
    const std::function<bool(const Graph&)>& fn);

}  // namespace wm
