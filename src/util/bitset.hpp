// Dynamic packed bitset over uint64_t words — the SIMD-within-a-register
// representation behind the logic core's hot paths.
//
// The model checker stores ||phi||_K (and the Kripke valuation rows) as
// one Bitset over the state set, so every Boolean connective is a
// word-wise loop touching 64 states per operation instead of one; the
// bisimulation refinement uses Bitsets for its dirty-state worklist.
// std::vector<bool> stays the *reference* representation: the scalar
// model-checker path and the differential tests unpack through to_bools
// and pin the two representations bit-for-bit against each other.
//
// Invariant: bits past size() in the last word are always zero. Every
// mutating operation restores it (see trim()), which is what makes
// operator==, operator<, count() and the find loops plain word scans
// with no masking at the read side.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wm {

class Bitset {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kWordBits = 64;

  Bitset() = default;
  explicit Bitset(std::size_t n, bool value = false)
      : size_(n), words_((n + kWordBits - 1) / kWordBits,
                         value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const { return size_; }
  std::size_t num_words() const { return words_.size(); }
  bool empty() const { return size_ == 0; }

  /// Raw word access for word-wise iteration (callers own the masking of
  /// any bits they might *write* past size(); reads need none).
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign((n + kWordBits - 1) / kWordBits,
                  value ? ~std::uint64_t{0} : 0);
    trim();
  }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  void set(std::size_t i, bool value = true) {
    const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }
  void reset(std::size_t i) { set(i, false); }

  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }
  void reset_all() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits (one hardware popcount per word).
  std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) {
      c += static_cast<std::size_t>(std::popcount(w));
    }
    return c;
  }
  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool none() const { return !any(); }

  Bitset& operator&=(const Bitset& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
    return *this;
  }
  Bitset& operator|=(const Bitset& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
    return *this;
  }
  Bitset& operator^=(const Bitset& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
    return *this;
  }
  /// this &= ~o — set difference without materialising the complement.
  Bitset& andnot_assign(const Bitset& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~o.words_[w];
    return *this;
  }
  /// In-place complement (restores the trailing-zero invariant).
  Bitset& flip() {
    for (auto& w : words_) w = ~w;
    trim();
    return *this;
  }

  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator^(Bitset a, const Bitset& b) { return a ^= b; }
  friend Bitset operator~(Bitset a) { return a.flip(); }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  /// Lexicographic on (size, words): a strict weak order so Bitsets can
  /// key std::set/std::map (the definability family uses this).
  friend bool operator<(const Bitset& a, const Bitset& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  /// Index of the lowest set bit, or npos when none.
  std::size_t find_first() const { return find_from_word(0); }
  /// Index of the lowest set bit strictly after i, or npos.
  std::size_t find_next(std::size_t i) const {
    ++i;
    if (i >= size_) return npos;
    const std::size_t w = i / kWordBits;
    const std::uint64_t rest = words_[w] >> (i % kWordBits);
    if (rest != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(rest));
    }
    return find_from_word(w + 1);
  }

  /// Calls fn(index) for every set bit in increasing order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        fn(w * kWordBits + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Unpacks to the reference representation (differential tests and the
  /// vector<bool>-facing public APIs).
  std::vector<bool> to_bools() const {
    std::vector<bool> out(size_);
    for_each_set([&](std::size_t i) { out[i] = true; });
    return out;
  }
  static Bitset from_bools(const std::vector<bool>& bits) {
    Bitset out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) out.set(i);
    }
    return out;
  }

 private:
  /// Zeroes the bits past size() in the last word.
  void trim() {
    const std::size_t used = size_ % kWordBits;
    if (used != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << used) - 1;
    }
  }
  std::size_t find_from_word(std::size_t w) const {
    for (; w < words_.size(); ++w) {
      if (words_[w] != 0) {
        return w * kWordBits +
               static_cast<std::size_t>(std::countr_zero(words_[w]));
      }
    }
    return npos;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wm
