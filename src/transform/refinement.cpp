#include "transform/refinement.hpp"

#include <set>
#include <unordered_map>

namespace wm {

namespace {

Value key_of(const PortNumbering& p, const std::vector<Value>& beta_t,
             NodeId u, NodeId v) {
  // The message u sends towards v: (beta_t(u), deg(u), pi(u, v)).
  return Value::triple(beta_t[u], Value::integer(p.graph().degree(u)),
                       Value::integer(p.out_port(u, v)));
}

/// One synchronous round: (beta_{t-1}, B_{t-1}) -> (beta_t, B_t).
std::pair<std::vector<Value>, std::vector<Value>> refinement_step(
    const PortNumbering& p, const std::vector<Value>& beta_prev,
    const std::vector<Value>& bset_prev) {
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  std::vector<Value> beta(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    beta[v] = Value::pair(beta_prev[v], bset_prev[v]);
  }
  std::vector<Value> bset(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    ValueVec received;
    received.reserve(g.neighbours(v).size());
    for (NodeId u : g.neighbours(v)) {
      received.push_back(key_of(p, beta, u, v));
    }
    bset[v] = Value::set(std::move(received));
  }
  // Intern per round: equal betas / B-sets share one node so deeper
  // comparisons short-circuit on pointer identity (cf. cover/views).
  std::unordered_map<Value, Value> canon;
  for (auto* layer : {&beta, &bset}) {
    for (Value& x : *layer) {
      auto [it, _] = canon.try_emplace(x, x);
      x = it->second;
    }
  }
  return {std::move(beta), std::move(bset)};
}

}  // namespace

RefinementTrace run_refinement(const PortNumbering& p, int rounds) {
  const int n = p.graph().num_nodes();
  RefinementTrace trace;
  trace.beta.assign(1, std::vector<Value>(static_cast<std::size_t>(n),
                                          Value::unit()));
  trace.bset.assign(1, std::vector<Value>(static_cast<std::size_t>(n),
                                          Value::set({})));
  for (int t = 1; t <= rounds; ++t) {
    auto [beta, bset] = refinement_step(p, trace.beta[t - 1], trace.bset[t - 1]);
    trace.beta.push_back(std::move(beta));
    trace.bset.push_back(std::move(bset));
  }
  return trace;
}

bool neighbour_keys_distinct(const PortNumbering& p,
                             const std::vector<Value>& beta_t) {
  const Graph& g = p.graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::set<Value> keys;
    for (NodeId u : g.neighbours(v)) {
      if (!keys.insert(key_of(p, beta_t, u, v)).second) return false;
    }
  }
  return true;
}

int rounds_until_keys_distinct(const PortNumbering& p, int limit) {
  // Incremental: advance one round at a time and stop at the first layer
  // whose keys are locally distinct — no full trace when t* << limit.
  const int n = p.graph().num_nodes();
  std::vector<Value> beta(static_cast<std::size_t>(n), Value::unit());
  std::vector<Value> bset(static_cast<std::size_t>(n), Value::set({}));
  for (int t = 0; t <= limit; ++t) {
    if (neighbour_keys_distinct(p, beta)) return t;
    if (t == limit) break;
    auto [nb, ns] = refinement_step(p, beta, bset);
    beta = std::move(nb);
    bset = std::move(ns);
  }
  return -1;
}

}  // namespace wm
