// Maximum matching substrate.
//
// Needed by the paper's symmetry arguments: Lemma 15 1-factorises the
// bipartite double cover of a regular graph (Hall/König — computed here by
// repeated Hopcroft–Karp), and Lemma 16 / Theorem 17 hinge on regular
// graphs *without* a 1-factor, certified by a general-graph maximum
// matching (Edmonds' blossom algorithm).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace wm {

/// A matching as a partner map: match[v] = u if {u,v} matched, else -1.
using Matching = std::vector<NodeId>;

/// Maximum matching in a bipartite graph. `side` assigns each node 0 or 1;
/// all edges must cross sides. Hopcroft–Karp, O(E sqrt(V)).
Matching hopcroft_karp(const Graph& g, const std::vector<int>& side);

/// Maximum matching in an arbitrary graph (Edmonds' blossom algorithm,
/// O(V^3); our graphs are small).
Matching blossom_maximum_matching(const Graph& g);

int matching_size(const Matching& m);

/// True if m is a valid matching of g (symmetric partner map over edges).
bool is_valid_matching(const Graph& g, const Matching& m);

/// True if g has a perfect matching (1-factor). Uses blossom.
bool has_one_factor(const Graph& g);

/// The edges of a matching (u < v).
std::vector<Edge> matching_edges(const Matching& m);

}  // namespace wm
