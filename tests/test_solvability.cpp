#include "core/solvability.hpp"

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"

namespace wm {
namespace {

std::vector<ScopedInstance> scope_of_small_graphs(const Problem& problem,
                                                  int max_n, int max_degree) {
  std::vector<ScopedInstance> scope;
  EnumerateOptions opts;
  opts.connected_only = false;
  opts.max_degree = max_degree;
  for (int n = 1; n <= max_n; ++n) {
    enumerate_graphs(n, opts, [&](const Graph& g) {
      scope.push_back(instance_for(problem, PortNumbering::identity(g)));
      return true;
    });
  }
  return scope;
}

TEST(Solvability, InstanceForComputesUniqueSolution) {
  const auto inst =
      instance_for(*odd_odd_problem(), PortNumbering::identity(path_graph(2)));
  EXPECT_EQ(inst.target, (std::vector<int>{1, 1}));
  // Problems with many solutions are rejected.
  EXPECT_THROW(instance_for(*leaf_in_star_problem(),
                            PortNumbering::identity(cycle_graph(4))),
               std::invalid_argument);
}

TEST(Solvability, DegreeParityIsZeroRoundsEverywhere) {
  const auto scope = scope_of_small_graphs(*degree_parity_problem(), 4, 3);
  for (const ProblemClass c : all_problem_classes()) {
    const SolvabilityReport r = analyse_solvability(scope, c, 3);
    ASSERT_TRUE(r.min_rounds.has_value()) << problem_class_name(c);
    EXPECT_EQ(*r.min_rounds, 0) << problem_class_name(c);
  }
}

TEST(Solvability, OddOddNeedsOneRoundInMbButIsUnsolvableInSb) {
  // The quantitative heart of Theorem 13: exhaustive small scope PLUS
  // the witness graph (its components have 6 and 4 nodes; the pair only
  // appears together once the witness is in scope — on n <= 5 alone the
  // problem happens to be SB-solvable, which the automated witness
  // search in bench_separations confirms by finding nothing below a
  // 5-/6-node pair).
  auto scope = scope_of_small_graphs(*odd_odd_problem(), 5, 3);
  scope.push_back(instance_for(*odd_odd_problem(), thm13_witness().numbering));
  {
    const SolvabilityReport r = analyse_solvability(scope, ProblemClass::MB, 3);
    ASSERT_TRUE(r.min_rounds.has_value());
    EXPECT_EQ(*r.min_rounds, 1);
  }
  {
    const SolvabilityReport r = analyse_solvability(scope, ProblemClass::SB, 3);
    EXPECT_FALSE(r.min_rounds.has_value());  // witnesses live in the scope
  }
  // Stronger classes inherit solvability with the same locality.
  for (const ProblemClass c :
       {ProblemClass::MV, ProblemClass::VV, ProblemClass::VVc}) {
    const SolvabilityReport r = analyse_solvability(scope, c, 3);
    ASSERT_TRUE(r.min_rounds.has_value()) << problem_class_name(c);
    EXPECT_EQ(*r.min_rounds, 1);
  }
}

TEST(Solvability, OddOddUnsolvableInVbOnScopesWithItsWitness) {
  // VB forgets multiplicities of incoming ports?? No: VB sees the vector
  // by in-port — it forgets the *out*-port tags. The Theorem 13 witness
  // separates SB from MB; under K_{+,-} its degree-3 nodes ARE
  // distinguishable (different in-port structure)... unless the
  // numbering aligns. With identity numberings the scope is solvable in
  // VB; the classification only claims MB = VB, and indeed the measured
  // min_rounds agree.
  const auto scope = scope_of_small_graphs(*odd_odd_problem(), 5, 3);
  const SolvabilityReport mb = analyse_solvability(scope, ProblemClass::MB, 3);
  const SolvabilityReport vb = analyse_solvability(scope, ProblemClass::VB, 3);
  ASSERT_TRUE(mb.min_rounds.has_value());
  ASSERT_TRUE(vb.min_rounds.has_value());
  EXPECT_EQ(*mb.min_rounds, *vb.min_rounds);
}

TEST(Solvability, IsolatedDetectionIsOneRoundInSb) {
  const auto scope = scope_of_small_graphs(*isolated_node_problem(), 4, 3);
  const SolvabilityReport r = analyse_solvability(scope, ProblemClass::SB, 3);
  ASSERT_TRUE(r.min_rounds.has_value());
  // Degree information makes it 0 rounds (isolated iff degree 0) — the
  // refinement's initial partition already sees the degree propositions.
  EXPECT_EQ(*r.min_rounds, 0);
}

TEST(Solvability, FixpointReportedSanely) {
  const auto scope = scope_of_small_graphs(*degree_parity_problem(), 3, 2);
  const SolvabilityReport r = analyse_solvability(scope, ProblemClass::SB, 2);
  EXPECT_GT(r.blocks, 0);
  EXPECT_GE(r.fixpoint_rounds, 0);
}

}  // namespace
}  // namespace wm
