#include "runtime/combinators.hpp"

#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "compile/formula_compiler.hpp"
#include "core/synthesis.hpp"
#include "graph/generators.hpp"
#include "logic/parser.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

/// SB countdown machine stopping after k rounds with output k.
LambdaMachine countdown(int k) {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [k](int) {
    return k == 0 ? Value::integer(0)
                  : Value::pair(Value::str("c"), Value::integer(k));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int) { return Value::integer(9); };
  m.transition_fn = [k](const Value& s, const Value&, int) {
    const auto left = s.at(1).as_int();
    if (left == 1) return Value::integer(k);
    return Value::pair(Value::str("c"), Value::integer(left - 1));
  };
  return m;
}

TEST(Product, RequiresMatchingClasses) {
  EXPECT_THROW(product_machine({}), std::invalid_argument);
  EXPECT_THROW(product_machine({odd_odd_machine(), leaf_picker_machine()}),
               std::invalid_argument);
}

TEST(Product, ComponentOutputsCombineAsTuple) {
  auto a = std::make_shared<LambdaMachine>(countdown(1));
  auto b = std::make_shared<LambdaMachine>(countdown(3));
  const auto prod = product_machine({a, b});
  const auto r = execute(*prod, PortNumbering::identity(cycle_graph(4)));
  ASSERT_TRUE(r.stopped);
  EXPECT_EQ(r.rounds, 3);  // staggered stopping: max of the components
  for (const Value& s : r.final_states) {
    EXPECT_EQ(s, Value::pair(Value::integer(1), Value::integer(3)));
  }
}

TEST(Product, MatchesStandaloneRunsComponentwise) {
  // Compiled formula machines (the synthesis use case): the product's
  // component results equal each machine run on its own.
  const Formula f1 = parse_formula("<*,*>>=2 q1");
  const Formula f2 = parse_formula("~<*,*> q3 & q2");
  const auto m1 = compile_formula(f1, Variant::MinusMinus, 3,
                                  AlgebraicClass::multiset_broadcast());
  const auto m2 = compile_formula(f2, Variant::MinusMinus, 3,
                                  AlgebraicClass::multiset_broadcast());
  const auto prod = product_machine({m1, m2});
  EXPECT_EQ(prod->algebraic_class(), AlgebraicClass::multiset_broadcast());
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto rp = execute(*prod, p);
    const auto r1 = execute(*m1, p);
    const auto r2 = execute(*m2, p);
    ASSERT_TRUE(rp.stopped);
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(rp.final_states[v],
                Value::pair(r1.final_states[v], r2.final_states[v]));
    }
  }
}

TEST(Product, BinaryCombinerEncodesBits) {
  const auto c = binary_combiner();
  EXPECT_EQ(c({Value::integer(1), Value::integer(0), Value::integer(1)}),
            Value::integer(5));
  EXPECT_EQ(first_one_combiner()({Value::integer(0), Value::integer(1)}),
            Value::integer(2));
  EXPECT_EQ(first_one_combiner()({Value::integer(0), Value::integer(0)}),
            Value::integer(0));
}

TEST(MultiSynthesis, ThreeColouringOfAnAsymmetricPath) {
  const auto problem = three_colouring_problem();
  const std::vector<PortNumbering> scope{PortNumbering::identity(path_graph(5))};
  const auto result = synthesise_multivalued(*problem, scope, ProblemClass::VV);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->value_formulas.size(), 3u);
  const auto r = execute(*result->machine, scope[0]);
  ASSERT_TRUE(r.stopped);
  EXPECT_TRUE(problem->valid(path_graph(5), r.outputs_as_ints()));
}

TEST(MultiSynthesis, ThreeColouringImpossibleOnSymmetricOddCycle) {
  const auto problem = three_colouring_problem();
  const std::vector<PortNumbering> scope{
      PortNumbering::symmetric_regular(cycle_graph(5))};
  EXPECT_FALSE(
      synthesise_multivalued(*problem, scope, ProblemClass::VVc).has_value());
}

TEST(MultiSynthesis, BinaryProblemsAgreeWithBinarySynthesis) {
  const auto problem = leaf_in_star_problem();
  std::vector<PortNumbering> scope;
  for (int k = 2; k <= 3; ++k) {
    scope.push_back(PortNumbering::identity(star_graph(k)));
  }
  const auto multi = synthesise_multivalued(*problem, scope, ProblemClass::SV);
  ASSERT_TRUE(multi.has_value());
  for (const PortNumbering& p : scope) {
    const auto r = execute(*multi->machine, p);
    EXPECT_TRUE(problem->valid(p.graph(), r.outputs_as_ints()));
  }
}

TEST(MultiSynthesis, ColouringSweepOnSeveralInstances) {
  // One shared colouring program must handle several instances at once.
  const auto problem = three_colouring_problem();
  std::vector<PortNumbering> scope{PortNumbering::identity(path_graph(4)),
                                   PortNumbering::identity(star_graph(3))};
  DecisionOptions opts;
  opts.max_assignments = 1u << 24;
  const auto result =
      synthesise_multivalued(*problem, scope, ProblemClass::VV, opts);
  ASSERT_TRUE(result.has_value());
  for (const PortNumbering& p : scope) {
    const auto r = execute(*result->machine, p);
    ASSERT_TRUE(r.stopped);
    EXPECT_TRUE(problem->valid(p.graph(), r.outputs_as_ints()));
  }
}

}  // namespace
}  // namespace wm
