file(REMOVE_RECURSE
  "libwm_compile.a"
)
