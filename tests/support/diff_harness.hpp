// Differential harness: pins the serial ≡ parallel determinism contract.
//
// Every parallel entry point in this library promises the EXACT result
// of its sequential counterpart — not merely an equivalent one: scans
// use parallel_find_first (lowest witness), dedup goes through per-key
// minimum tables, reductions are chunk-ordered. The harness makes that
// promise executable: run the computation with pool = nullptr (the
// sequential reference) and again on pools of 2 and 8 workers, and
// require identical results.
//
// Seeds: seeded-random inputs iterate over seeds_under_test(). Setting
// the WM_SEED environment variable narrows the run to that single seed —
// failure messages print the seed, so `WM_SEED=<n> ctest -R differential`
// reproduces any reported divergence directly.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "util/parallel.hpp"

namespace wm::difftest {

/// Worker counts compared against the sequential reference.
inline const std::vector<int>& thread_counts() {
  static const std::vector<int> counts = {2, 8};
  return counts;
}

/// Seeds for randomised differential inputs; WM_SEED=<n> narrows to one.
inline std::vector<std::uint64_t> seeds_under_test() {
  if (const char* env = std::getenv("WM_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 7, 13, 42, 2012};
}

/// Runs `run(pool)` with pool = nullptr and with 2- and 8-worker pools,
/// asserting the returned values compare equal (the result type needs
/// operator== and gtest printability — strings and summary structs).
/// `what` labels the computation, `seed` the input, in failure output.
template <typename Run>
void expect_serial_equals_parallel(const char* what, std::uint64_t seed,
                                   Run&& run) {
  const auto reference = run(static_cast<ThreadPool*>(nullptr));
  for (const int threads : thread_counts()) {
    ThreadPool pool(threads);
    const auto parallel = run(&pool);
    EXPECT_EQ(parallel, reference)
        << what << " diverged from the serial reference at threads="
        << threads << " — reproduce with WM_SEED=" << seed;
  }
}

/// Variant for exhaustive (non-seeded) inputs.
template <typename Run>
void expect_serial_equals_parallel(const char* what, Run&& run) {
  expect_serial_equals_parallel(what, 0, std::forward<Run>(run));
}

}  // namespace wm::difftest
