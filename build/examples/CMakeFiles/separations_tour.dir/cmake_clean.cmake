file(REMOVE_RECURSE
  "CMakeFiles/separations_tour.dir/separations_tour.cpp.o"
  "CMakeFiles/separations_tour.dir/separations_tour.cpp.o.d"
  "separations_tour"
  "separations_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separations_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
