// Progress heartbeats for the long exhaustive searches.
//
// The paper's quantifications ("all graphs on n nodes, all port
// numberings") turn into scans of 2^21+ candidates that run for minutes
// with no output. A ProgressTask publishes a done/total pair for such a
// scan: workers tick a relaxed atomic, and an opt-in background thread
// (WM_PROGRESS=<seconds>, off by default) prints rate/ETA lines plus a
// work-counter snapshot to stderr:
//
//   [progress] enumerate.scan 131072/2097152 (6.2%) 412339/s eta 4.8s
//   [progress] counters: decision.assignments=1824 quotient.classes=7
//   [progress] enumerate.scan done 2097152/2097152 in 5.1s (411206/s)
//
// Concurrency: ticks are relaxed fetch_adds (safe from any worker,
// including speculative parallel_find_first predicates — progress is
// liveness telemetry, not a work counter); the task list is
// mutex-protected; the heartbeat thread only reads atomics and the
// list, so the whole subsystem is TSan-clean. Heartbeats go to stderr
// so the byte-identical-stdout contract of the benches is untouched.
//
// With -DWM_OBS=OFF every ProgressTask member and progress_* function
// compiles to an empty inline stub — zero code, zero state.
#pragma once

#include <cstdint>
#include <string_view>

#if !defined(WM_OBS_DISABLED)

#include <atomic>
#include <chrono>
#include <string>

namespace wm::obs {

/// True while a heartbeat thread is running.
bool progress_enabled() noexcept;

/// Starts the heartbeat thread printing every `interval_secs` (clamped
/// to >= 0.01). No-op if already running.
void progress_start(double interval_secs);

/// Stops and joins the heartbeat thread. Safe without an active thread.
void progress_stop();

/// Starts the heartbeat when WM_PROGRESS is set to a positive number of
/// seconds (fractions allowed), registering an atexit stop. Off — and
/// entirely silent — when the variable is unset. Idempotent.
void progress_init_from_env();

/// How many heartbeat threads this process has ever launched.
/// Introspection for the init-idempotence regression tests: repeated
/// init_from_env()/progress_start() calls must not grow this past 1.
std::uint64_t progress_heartbeat_launches() noexcept;

/// One live search: registers under `name` with an expected candidate
/// count (`total` 0 = unknown; the heartbeat then omits ETA). Workers
/// call tick(); destruction unregisters and, when a heartbeat thread is
/// active, prints a final "done" line.
class ProgressTask {
 public:
  ProgressTask(std::string_view name, std::uint64_t total) noexcept;
  ~ProgressTask();
  ProgressTask(const ProgressTask&) = delete;
  ProgressTask& operator=(const ProgressTask&) = delete;

  void tick(std::uint64_t delta = 1) noexcept {
    done_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept { return total_; }

 private:
  friend struct ProgressTaskAccess;
  std::string name_;
  std::uint64_t total_;
  std::atomic<std::uint64_t> done_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wm::obs

#else  // WM_OBS_DISABLED

namespace wm::obs {

inline bool progress_enabled() noexcept { return false; }
inline void progress_start(double) {}
inline void progress_stop() {}
inline void progress_init_from_env() {}
inline std::uint64_t progress_heartbeat_launches() noexcept { return 0; }

class ProgressTask {
 public:
  ProgressTask(std::string_view, std::uint64_t) noexcept {}
  void tick(std::uint64_t = 1) noexcept {}
  std::uint64_t done() const noexcept { return 0; }
  std::uint64_t total() const noexcept { return 0; }
};

}  // namespace wm::obs

#endif  // WM_OBS_DISABLED
