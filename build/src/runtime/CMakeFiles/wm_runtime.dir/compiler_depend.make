# Empty compiler generated dependencies file for wm_runtime.
# This may be replaced when dependencies are built.
