file(REMOVE_RECURSE
  "libwm_transform.a"
)
