// Symmetry and port numberings (Lemmas 15 and 16, Figures 8 and 9):
//  - build the bipartite double cover of a regular graph,
//  - 1-factorise it and derive the symmetric port numbering,
//  - show that ALL nodes become bisimilar in K_{+,+} (so no anonymous
//    algorithm can break symmetry, Theorem 17's negative side),
//  - contrast with consistent numberings, where local types split the
//    graph (the VVc(1) algorithm's foothold).
//
//   ./symmetry [k]   (k odd >= 3; default 3 gives the Figure 9a graph)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bisim/bisimulation.hpp"
#include "graph/double_cover.hpp"
#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "logic/kripke.hpp"
#include "obs/env.hpp"
#include "port/port_numbering.hpp"

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  using namespace wm;
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const Graph g = class_g_graph(k);
  std::printf("class-G graph: k=%d, n=%d, m=%d\n", k, g.num_nodes(),
              g.num_edges());
  std::printf("has 1-factor: %s (class G requires none)\n",
              has_one_factor(g) ? "yes" : "no");

  const DoubleCover dc = bipartite_double_cover(g);
  std::printf("double cover: n=%d, m=%d, bipartite %d-regular\n",
              dc.graph.num_nodes(), dc.graph.num_edges(), k);
  const auto factors = one_factorise_bipartite(dc.graph, dc.side);
  std::printf("1-factorisation: %zu disjoint perfect matchings of %zu edges "
              "each (König)\n",
              factors.size(), factors[0].size());

  const PortNumbering sym = PortNumbering::symmetric_regular(g);
  std::printf("\nLemma 15 symmetric numbering: consistent = %s "
              "(Lemma 16 predicts inconsistent)\n",
              sym.is_consistent() ? "yes" : "no");
  {
    const KripkeModel kr = kripke_from_graph(sym, Variant::PlusPlus);
    const Partition p = coarsest_bisimulation(kr);
    std::printf("bisimulation blocks in K_{+,+} under it: %d "
                "(1 = perfectly symmetric)\n",
                p.num_blocks);
  }

  Rng rng(1);
  const PortNumbering cons = PortNumbering::random_consistent(g, rng);
  {
    const KripkeModel kr = kripke_from_graph(cons, Variant::PlusPlus);
    const Partition p = coarsest_bisimulation(kr);
    std::printf("\nrandom consistent numbering: %d bisimulation blocks\n",
                p.num_blocks);
    std::map<std::vector<int>, int> type_counts;
    for (int v = 0; v < g.num_nodes(); ++v) {
      ++type_counts[cons.local_type(v, k)];
    }
    std::printf("distinct local types t(v): %zu\n", type_counts.size());
    std::printf("type histogram:");
    for (const auto& [t, c] : type_counts) {
      std::printf(" (");
      for (std::size_t i = 0; i < t.size(); ++i) {
        std::printf("%s%d", i ? "," : "", t[i]);
      }
      std::printf(")x%d", c);
    }
    std::printf("\n");
  }
  std::printf("\nConclusion (Theorem 17): with consistency the type maximum\n"
              "breaks symmetry; without it the graph is perfectly symmetric\n"
              "and non-constant output is impossible — VV != VVc.\n");
  return 0;
}
