file(REMOVE_RECURSE
  "CMakeFiles/test_formula_problems.dir/test_formula_problems.cpp.o"
  "CMakeFiles/test_formula_problems.dir/test_formula_problems.cpp.o.d"
  "test_formula_problems"
  "test_formula_problems.pdb"
  "test_formula_problems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formula_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
