// Load bench for the serve layer: an in-process Service hammered by
// `--threads N` client threads with a fixed request mix — 420 requests
// round-robined over 18 distinct keys spanning run/modelcheck/canon/
// classify. No sockets: the bench measures the dispatch + memo-cache
// path itself, not the kernel's TCP stack.
//
// Determinism across thread counts is the single-flight contract, not
// an accident: one miss per distinct key (waiters on an in-flight
// compute count as hits), so the cache hit/miss tallies — and every
// library work counter behind them, since each distinct key computes
// exactly once — come out identical whether one client walks the mix
// or sixteen fight over it. stdout prints a digest per distinct reply
// plus the closed-form cache stats; perf goes to stderr.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/window.hpp"
#include "serve/json.hpp"
#include "serve/memo_cache.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace wm;

void append_edge(std::string& edges, int u, int v) {
  if (edges.size() > 1) edges += ", ";
  edges += '[';
  edges += std::to_string(u);
  edges += ", ";
  edges += std::to_string(v);
  edges += ']';
}

std::string path_edges(int n) {
  std::string edges = "[";
  for (int v = 0; v + 1 < n; ++v) append_edge(edges, v, v + 1);
  edges += ']';
  return edges;
}

std::string cycle_edges(int n) {
  std::string edges = "[";
  for (int v = 0; v < n; ++v) append_edge(edges, v, (v + 1) % n);
  edges += ']';
  return edges;
}

std::string graph_json(int n, const std::string& edges) {
  return R"({"n": )" + std::to_string(n) + R"(, "edges": )" + edges + "}";
}

/// The 18 distinct requests. Everything here is deterministic — the
/// stats endpoint (whose reply embeds live counters) is deliberately
/// absent from the mix.
std::vector<std::string> distinct_requests() {
  std::vector<std::string> reqs;
  // 6 run/degree-parity on paths, 2 run/odd-odd.
  for (int n = 2; n <= 7; ++n) {
    reqs.push_back(R"({"op": "run", "machine": "degree-parity", "graph": )" +
                   graph_json(n, path_edges(n)) + "}");
  }
  for (int n = 3; n <= 4; ++n) {
    reqs.push_back(R"({"op": "run", "machine": "odd-odd", "graph": )" +
                   graph_json(n, path_edges(n)) + "}");
  }
  // 4 modelcheck on cycles under the weakest variant.
  for (int n = 3; n <= 6; ++n) {
    reqs.push_back(
        R"({"op": "modelcheck", "formula": "<*,*> q2", "model": )"
        R"({"variant": "--", "graph": )" +
        graph_json(n, cycle_edges(n)) + "}}");
  }
  // 4 canon on cycles.
  for (int n = 4; n <= 7; ++n) {
    reqs.push_back(R"({"op": "canon", "kind": "graph", "graph": )" +
                   graph_json(n, cycle_edges(n)) + "}");
  }
  // 2 classify (the heavy endpoint) on small paths.
  for (int n = 2; n <= 3; ++n) {
    reqs.push_back(R"({"op": "classify", "problem": "degree-parity", )"
                   R"("graph": )" +
                   graph_json(n, path_edges(n)) + "}");
  }
  return reqs;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = std::max(1, benchutil::parse_threads(argc, argv));
  const std::vector<std::string> distinct = distinct_requests();
  constexpr int kTotal = 420;
  const int kDistinct = static_cast<int>(distinct.size());

  serve::Service service;
  std::vector<std::string> replies(kTotal);

  // Window captures bracketing the mix: the delta's work counters are
  // exactly the mix's counters (work counters are thread-invariant), so
  // the per-window section below is byte-identical at any --threads —
  // part of the CI determinism smoke.
  wm::obs::window().capture();
  benchutil::Timer total;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = c; i < kTotal; i += threads) {
        replies[static_cast<std::size_t>(i)] =
            service.handle_line(distinct[static_cast<std::size_t>(i) %
                                         static_cast<std::size_t>(kDistinct)]);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall = total.ms();
  wm::obs::window().capture();

  // Every repeat of a key must be byte-identical to its first serving —
  // whether it came from the cache, a single-flight wait, or (for the
  // first requester) the compute itself.
  int mismatches = 0;
  for (int i = kDistinct; i < kTotal; ++i) {
    if (replies[static_cast<std::size_t>(i)] !=
        replies[static_cast<std::size_t>(i % kDistinct)]) {
      ++mismatches;
    }
  }

  std::printf("serve mix: %d requests over %d distinct keys\n", kTotal,
              kDistinct);
  for (int k = 0; k < kDistinct; ++k) {
    const auto& reply = replies[static_cast<std::size_t>(k)];
    const serve::Json j = serve::parse_json(reply);
    std::printf("reply %2d  op=%-10s  len=%4zu  fnv=%016llx\n", k,
                j.find("op")->as_string().c_str(), reply.size(),
                static_cast<unsigned long long>(fnv1a(reply)));
  }
  std::printf("repeat mismatches: %d\n", mismatches);

  const serve::MemoCache::Stats st = service.cache().stats();
  std::printf("cache: hits=%llu misses=%llu evictions=%llu bypasses=%llu\n",
              static_cast<unsigned long long>(st.hits),
              static_cast<unsigned long long>(st.misses),
              static_cast<unsigned long long>(st.evictions),
              static_cast<unsigned long long>(st.bypasses));
  const double hit_rate =
      100.0 * static_cast<double>(st.hits) /
      static_cast<double>(st.hits + st.misses);
  std::printf("hit rate: %.1f%%\n", hit_rate);
  if (mismatches != 0 || st.misses != static_cast<std::uint64_t>(kDistinct) ||
      st.hits != static_cast<std::uint64_t>(kTotal - kDistinct)) {
    std::printf("FAIL: single-flight closed form violated\n");
    return 1;
  }

  // The windowed view of the mix (deterministic: work-counter deltas
  // between the two captures above). Rates go to stderr — wall-clock
  // dependent values must stay off the thread-diffed stdout.
  {
    const obs::WindowDelta wd = obs::window().delta(3600.0);
    std::printf("window serve deltas:");
    for (const auto& [key, value] : wd.work) {
      if (key.rfind("serve.requests.", 0) != 0 &&
          key.rfind("serve.cache_", 0) != 0) {
        continue;
      }
      std::printf(" %s=%llu", key.c_str(),
                  static_cast<unsigned long long>(value));
    }
    std::printf("\n");
    std::fprintf(stderr, "[bench_serve] window: %.3fs, %.0f req/s\n",
                 wd.seconds, wd.rate("serve.requests.run") +
                                 wd.rate("serve.requests.modelcheck") +
                                 wd.rate("serve.requests.canon") +
                                 wd.rate("serve.requests.classify"));
  }

  const double rps = wall > 0 ? 1000.0 * kTotal / wall : 0;
  benchutil::report_phase("serve load", wall, kTotal);
  benchutil::write_bench_json("serve", kTotal, threads, wall, rps);
  return 0;
}
