# Empty dependencies file for test_solvability.
# This may be replaced when dependencies are built.
