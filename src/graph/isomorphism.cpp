#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>

#include "graph/canonical.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace wm {

namespace {

/// Above this node count the backtracking matcher hands over to the
/// canonical-form path: compare individualisation–refinement
/// certificates and, on a hit, compose the two canonical labellings into
/// an explicit isomorphism. Below it the direct exhaustive search is
/// cheaper than two canonicalisations.
constexpr int kExhaustiveCutoff = 8;

/// Stable colour refinement; returns per-node colours canonical across
/// the two graphs (computed jointly so colours are comparable).
std::pair<std::vector<int>, std::vector<int>> joint_refinement(const Graph& g,
                                                               const Graph& h) {
  const int n = g.num_nodes();
  std::vector<int> cg(static_cast<std::size_t>(n));
  std::vector<int> ch(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    cg[v] = g.degree(v);
    ch[v] = h.degree(v);
  }
  for (int round = 0; round < n; ++round) {
    std::map<std::pair<int, std::vector<int>>, int> dict;
    auto signature = [&dict](const Graph& graph, const std::vector<int>& col,
                             int v) {
      std::vector<int> nb;
      for (NodeId u : graph.neighbours(v)) nb.push_back(col[u]);
      std::sort(nb.begin(), nb.end());
      auto [it, _] = dict.try_emplace({col[v], std::move(nb)},
                                      static_cast<int>(dict.size()));
      return it->second;
    };
    std::vector<int> ng(static_cast<std::size_t>(n)), nh(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) ng[v] = signature(g, cg, v);
    for (int v = 0; v < n; ++v) nh[v] = signature(h, ch, v);
    if (ng == cg && nh == ch) break;
    cg = std::move(ng);
    ch = std::move(nh);
  }
  return {cg, ch};
}

struct Matcher {
  const Graph& g;
  const Graph& h;
  const std::vector<int>& cg;
  const std::vector<int>& ch;
  std::vector<NodeId> map;       // g -> h, -1 unset
  std::vector<bool> used;        // h nodes taken

  bool extend(NodeId v) {
    const int n = g.num_nodes();
    if (v == n) return true;
    for (NodeId w = 0; w < n; ++w) {
      if (used[w] || cg[v] != ch[w]) continue;
      // Consistency with already-mapped neighbours (both directions).
      bool ok = true;
      for (NodeId u = 0; u < v && ok; ++u) {
        if (g.has_edge(v, u) != h.has_edge(w, map[u])) ok = false;
      }
      if (!ok) continue;
      map[v] = w;
      used[w] = true;
      if (extend(v + 1)) return true;
      map[v] = -1;
      used[w] = false;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<NodeId>> find_isomorphism(const Graph& g,
                                                    const Graph& h) {
  WM_TIME_SCOPE("iso.find");
  WM_COUNT(iso.queries);
  if (g.num_nodes() != h.num_nodes() || g.num_edges() != h.num_edges()) {
    return std::nullopt;
  }
  if (g.degree_sequence() != h.degree_sequence()) return std::nullopt;
  if (g.num_nodes() > kExhaustiveCutoff) {
    WM_COUNT(iso.canonical_route);
    // Canonical path (exact, no backtracking): certificates are a
    // complete isomorphism key, and map = lab_h^{-1} ∘ lab_g is an
    // isomorphism whenever they agree.
    const CanonicalForm cf_g = canonical_form(g);
    const CanonicalForm cf_h = canonical_form(h);
    if (cf_g.certificate != cf_h.certificate) return std::nullopt;
    std::vector<NodeId> inv_h(static_cast<std::size_t>(h.num_nodes()));
    for (NodeId v = 0; v < h.num_nodes(); ++v) inv_h[cf_h.labelling[v]] = v;
    std::vector<NodeId> map(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) map[v] = inv_h[cf_g.labelling[v]];
    return map;
  }
  WM_COUNT(iso.backtrack_route);
  const auto [cg, ch] = joint_refinement(g, h);
  // Colour histograms must agree.
  {
    auto sorted_g = cg;
    auto sorted_h = ch;
    std::sort(sorted_g.begin(), sorted_g.end());
    std::sort(sorted_h.begin(), sorted_h.end());
    if (sorted_g != sorted_h) return std::nullopt;
  }
  Matcher m{g, h, cg, ch,
            std::vector<NodeId>(static_cast<std::size_t>(g.num_nodes()), -1),
            std::vector<bool>(static_cast<std::size_t>(g.num_nodes()), false)};
  if (m.extend(0)) return m.map;
  return std::nullopt;
}

bool are_isomorphic(const Graph& g, const Graph& h) {
  return find_isomorphism(g, h).has_value();
}

bool is_isomorphism(const Graph& g, const Graph& h,
                    const std::vector<NodeId>& perm) {
  if (g.num_nodes() != h.num_nodes() ||
      perm.size() != static_cast<std::size_t>(g.num_nodes())) {
    return false;
  }
  std::vector<bool> hit(perm.size(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (perm[v] < 0 || perm[v] >= h.num_nodes() || hit[perm[v]]) return false;
    hit[perm[v]] = true;
  }
  if (g.num_edges() != h.num_edges()) return false;
  for (const Edge& e : g.edges()) {
    if (!h.has_edge(perm[e.u], perm[e.v])) return false;
  }
  return true;
}

}  // namespace wm
