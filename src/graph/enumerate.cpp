#include "graph/enumerate.hpp"

#include <algorithm>
#include <atomic>
#include <map>

#include "graph/canonical.hpp"
#include "graph/properties.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/visitor.hpp"

namespace wm {

namespace {

bool admissible(const Graph& g, const EnumerateOptions& opts) {
  if (opts.max_degree >= 0 && g.max_degree() > opts.max_degree) return false;
  if (g.min_degree() < opts.min_degree) return false;
  if (opts.connected_only && !is_connected(g)) return false;
  return true;
}

std::vector<Edge> all_possible_edges(int n) {
  std::vector<Edge> all_edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) all_edges.push_back({u, v});
  }
  return all_edges;
}

Graph graph_from_mask(int n, const std::vector<Edge>& all_edges,
                      std::uint64_t mask) {
  Graph g(n);
  for (std::size_t i = 0; i < all_edges.size(); ++i) {
    if (mask & (1ULL << i)) g.add_edge(all_edges[i].u, all_edges[i].v);
  }
  return g;
}

struct SigHash {
  std::size_t operator()(const std::vector<int>& sig) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (int x : sig) {
      h ^= static_cast<std::size_t>(x);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// The one modulo-key enumeration body behind all four public modulo
/// variants (iso / refinement × sequential / pooled): a dedup_scan over
/// the edge-mask space keyed by `key_of`, streaming the lowest-mask
/// representative of each class in mask order. The per-key minimum is a
/// pure function of the scanned family, so the pooled variants match the
/// sequential first-seen representatives exactly (DESIGN.md).
template <typename Key, typename Hash, typename KeyOf>
std::size_t enumerate_modulo(int n, const EnumerateOptions& opts,
                             ThreadPool* pool, KeyOf&& key_of,
                             const std::function<bool(const Graph&)>& fn) {
  WM_TIME_SCOPE("enumerate.scan");
  const std::vector<Edge> all_edges = all_possible_edges(n);
  const std::size_t m = all_edges.size();
  obs::ProgressTask progress("enumerate.scan", 1ULL << m);
  ParallelVisitor visitor(pool);
  return visitor.template dedup_scan<Key, Hash>(
      1ULL << m,
      [&](std::uint64_t mask, auto&& emit) {
        progress.tick();
        const Graph g = graph_from_mask(n, all_edges, mask);
        if (!admissible(g, opts)) return;
        WM_COUNT(enumerate.graphs);
        emit(key_of(g));
      },
      [&](std::uint64_t rep) {
        WM_COUNT(enumerate.emitted);
        return fn(graph_from_mask(n, all_edges, rep));
      });
}

}  // namespace

std::vector<int> refinement_signature(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<int> colour(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) colour[v] = g.degree(v);
  for (int round = 0; round < n; ++round) {
    std::map<std::pair<int, std::vector<int>>, int> dict;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<int> nb;
      nb.reserve(g.neighbours(v).size());
      for (NodeId u : g.neighbours(v)) nb.push_back(colour[u]);
      std::sort(nb.begin(), nb.end());
      auto key = std::make_pair(colour[v], std::move(nb));
      auto [it, inserted] = dict.try_emplace(std::move(key), static_cast<int>(dict.size()));
      next[v] = it->second;
    }
    if (next == colour) break;
    colour = std::move(next);
  }
  // Signature = multiset of (colour, count of colour class) — plus the
  // multiset of coloured edges so different graphs rarely collide.
  std::vector<int> sig = colour;
  std::sort(sig.begin(), sig.end());
  for (const Edge& e : g.edges()) {
    const int a = std::min(colour[e.u], colour[e.v]);
    const int b = std::max(colour[e.u], colour[e.v]);
    sig.push_back(1000 + a * 100 + b);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

std::size_t enumerate_graphs(int n, const EnumerateOptions& opts,
                             const std::function<bool(const Graph&)>& fn) {
  const std::vector<Edge> all_edges = all_possible_edges(n);
  const std::size_t m = all_edges.size();
  WM_TIME_SCOPE("enumerate.scan");
  obs::ProgressTask progress("enumerate.scan", 1ULL << m);
  std::size_t visited = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    progress.tick();
    const Graph g = graph_from_mask(n, all_edges, mask);
    if (!admissible(g, opts)) continue;
    WM_COUNT(enumerate.graphs);
    ++visited;
    if (!fn(g)) break;
  }
  return visited;
}

std::size_t enumerate_graphs_modulo_refinement(
    int n, const EnumerateOptions& opts,
    const std::function<bool(const Graph&)>& fn) {
  return enumerate_modulo<std::vector<int>, SigHash>(
      n, opts, /*pool=*/nullptr, refinement_signature, fn);
}

std::size_t enumerate_graphs_modulo_iso(
    int n, const EnumerateOptions& opts,
    const std::function<bool(const Graph&)>& fn) {
  return enumerate_modulo<std::string, std::hash<std::string>>(
      n, opts, /*pool=*/nullptr,
      [](const Graph& g) { return canonical_certificate(g); }, fn);
}

std::size_t enumerate_graphs_modulo_iso_parallel(
    int n, const EnumerateOptions& opts, ThreadPool& pool,
    const std::function<bool(const Graph&)>& fn) {
  WM_TRACE_SCOPE("enumerate.modulo_iso");
  // Canonical certificates are a complete isomorphism key, so the
  // surviving set is exactly one graph per isomorphism class.
  return enumerate_modulo<std::string, std::hash<std::string>>(
      n, opts, &pool,
      [](const Graph& g) { return canonical_certificate(g); }, fn);
}

std::string graph_census_kind(int n, const EnumerateOptions& opts) {
  std::string kind = opts.connected_only ? "graph-conn-n" : "graph-all-n";
  kind += std::to_string(n);
  if (opts.min_degree > 0) kind += "-dmin" + std::to_string(opts.min_degree);
  if (opts.max_degree >= 0) kind += "-dmax" + std::to_string(opts.max_degree);
  return kind;
}

store::CensusSpace graph_census_space(int n, const EnumerateOptions& opts) {
  store::CensusSpace space;
  space.kind = graph_census_kind(n, opts);
  const std::vector<Edge> all_edges = all_possible_edges(n);
  space.count = 1ULL << all_edges.size();
  space.classify = [n, opts, all_edges](std::uint64_t mask)
      -> std::optional<std::string> {
    const Graph g = graph_from_mask(n, all_edges, mask);
    if (!admissible(g, opts)) return std::nullopt;
    return canonical_certificate(g);
  };
  return space;
}

Graph graph_from_census_index(int n, std::uint64_t mask) {
  return graph_from_mask(n, all_possible_edges(n), mask);
}

std::size_t enumerate_graphs_modulo_iso_stream(
    int n, const EnumerateOptions& opts, ThreadPool* pool,
    std::uint64_t batch,
    const std::function<bool(const std::string&, std::uint64_t)>& sink,
    const std::function<bool(const Graph&)>& fn) {
  WM_TIME_SCOPE("enumerate.scan");
  const std::vector<Edge> all_edges = all_possible_edges(n);
  const std::size_t m = all_edges.size();
  const std::uint64_t space = 1ULL << m;
  if (batch == 0) batch = space;
  obs::ProgressTask progress("enumerate.scan", space);
  ParallelVisitor visitor(pool);
  std::size_t streamed = 0;
  bool stop = false;
  for (std::uint64_t lo = 0; lo < space && !stop; lo += batch) {
    const std::uint64_t hi = std::min(space, lo + batch);
    visitor.dedup_stream<std::string>(
        lo, hi,
        [&](std::uint64_t mask, auto&& emit) {
          progress.tick();
          const Graph g = graph_from_mask(n, all_edges, mask);
          if (!admissible(g, opts)) return;
          WM_COUNT(enumerate.graphs);
          emit(canonical_certificate(g));
        },
        [&](const std::string& key, std::uint64_t rep) {
          if (!sink(key, rep)) return true;  // cross-batch duplicate
          WM_COUNT(enumerate.emitted);
          ++streamed;
          if (!fn(graph_from_mask(n, all_edges, rep))) stop = true;
          return !stop;
        });
  }
  return streamed;
}

std::size_t enumerate_graphs_parallel(
    int n, const EnumerateOptions& opts, ThreadPool& pool,
    const std::function<bool(const Graph&, int worker)>& fn) {
  const std::vector<Edge> all_edges = all_possible_edges(n);
  const std::size_t m = all_edges.size();
  WM_TIME_SCOPE("enumerate.scan");
  obs::ProgressTask progress("enumerate.scan", 1ULL << m);
  std::atomic<std::size_t> visited{0};
  // No work counters here: fn can cancel mid-scan, so the set of masks
  // actually visited is timing-dependent (unlike the modulo variants,
  // whose pass 1 always scans the full range).
  // Prefix chunks: each chunk is a contiguous mask range, i.e. all
  // completions of one high-bit prefix of the edge set.
  pool.parallel_chunks_until(
      0, 1ULL << m,
      [&](std::uint64_t lo, std::uint64_t hi, int worker) {
        for (std::uint64_t mask = lo; mask < hi; ++mask) {
          const Graph g = graph_from_mask(n, all_edges, mask);
          if (!admissible(g, opts)) continue;
          visited.fetch_add(1, std::memory_order_relaxed);
          if (!fn(g, worker)) return false;
        }
        progress.tick(hi - lo);
        return true;
      });
  return visited.load();
}

std::size_t enumerate_graphs_modulo_refinement_parallel(
    int n, const EnumerateOptions& opts, ThreadPool& pool,
    const std::function<bool(const Graph&)>& fn) {
  WM_TRACE_SCOPE("enumerate.modulo_refinement");
  return enumerate_modulo<std::vector<int>, SigHash>(
      n, opts, &pool, refinement_signature, fn);
}

}  // namespace wm
