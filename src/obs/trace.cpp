#include "obs/trace.hpp"

#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace wm::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::int64_t begin_us;
  std::int64_t dur_us;
  std::uint32_t tid;
  std::uint64_t rid;  // request id at emit time, 0 = none
};

struct TraceState {
  std::mutex mu;
  bool active = false;
  std::string path;
  std::vector<TraceEvent> events;
  std::unordered_map<std::thread::id, std::uint32_t> tids;
};

std::atomic<bool> g_active{false};

TraceState& state() {
  // Leaked: trace_stop may run from an atexit handler after static
  // destruction of other translation units has begun.
  static TraceState* s = new TraceState();
  return *s;
}

std::uint32_t tid_for_current_thread(TraceState& s) {
  auto id = std::this_thread::get_id();
  auto it = s.tids.find(id);
  if (it == s.tids.end()) {
    it = s.tids.emplace(id, static_cast<std::uint32_t>(s.tids.size())).first;
  }
  return it->second;
}

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool trace_enabled() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

std::int64_t trace_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void trace_start(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.active = true;
  s.path = path;
  s.events.clear();
  s.tids.clear();
  g_active.store(true, std::memory_order_relaxed);
}

bool trace_stop() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return false;
  s.active = false;
  g_active.store(false, std::memory_order_relaxed);

  std::ofstream out(s.path);
  if (!out) return false;
  out << "{\"traceEvents\":[";
  std::string line;
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const TraceEvent& e = s.events[i];
    line.clear();
    if (i) line += ',';
    line += "\n{\"name\":\"";
    append_escaped(line, e.name);
    line += "\",\"ph\":\"X\",\"ts\":";
    line += std::to_string(e.begin_us);
    line += ",\"dur\":";
    line += std::to_string(e.dur_us);
    line += ",\"pid\":1,\"tid\":";
    line += std::to_string(e.tid);
    if (e.rid != 0) {
      line += ",\"args\":{\"rid\":";
      line += std::to_string(e.rid);
      line += '}';
    }
    line += '}';
    out << line;
  }
  out << "\n]}\n";
  s.events.clear();
  s.tids.clear();
  return out.good();
}

void trace_init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("WM_TRACE");
    if (path == nullptr || *path == '\0') return;
    trace_start(path);
    std::atexit([] { trace_stop(); });
  });
}

void trace_emit(std::string_view name, std::int64_t begin_us,
                std::int64_t dur_us) {
  // The request-id context is read at emit time (scope exit), which is
  // still inside the handler's RequestIdScope — so every span of a
  // served request carries the same rid as its access-log line.
  const std::uint64_t rid = current_request_id();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return;  // trace stopped between scope entry and exit
  s.events.push_back(TraceEvent{std::string(name), begin_us, dur_us,
                                tid_for_current_thread(s), rid});
}

}  // namespace wm::obs
