#include "graph/matching.hpp"

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

/// Brute-force maximum matching size for cross-validation.
int brute_force_matching_size(const Graph& g) {
  const auto edges = g.edges();
  const std::size_t m = edges.size();
  int best = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    std::vector<int> used(static_cast<std::size_t>(g.num_nodes()), 0);
    bool ok = true;
    int size = 0;
    for (std::size_t i = 0; ok && i < m; ++i) {
      if (!(mask & (1ULL << i))) continue;
      if (used[edges[i].u] || used[edges[i].v]) {
        ok = false;
      } else {
        used[edges[i].u] = used[edges[i].v] = 1;
        ++size;
      }
    }
    if (ok) best = std::max(best, size);
  }
  return best;
}

TEST(HopcroftKarp, PerfectMatchingInCompleteBipartite) {
  const Graph g = complete_bipartite(4, 4);
  std::vector<int> side(8, 0);
  for (int v = 4; v < 8; ++v) side[v] = 1;
  const Matching m = hopcroft_karp(g, side);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(matching_size(m), 4);
}

TEST(HopcroftKarp, UnbalancedSides) {
  const Graph g = complete_bipartite(2, 5);
  std::vector<int> side(7, 0);
  for (int v = 2; v < 7; ++v) side[v] = 1;
  EXPECT_EQ(matching_size(hopcroft_karp(g, side)), 2);
}

TEST(HopcroftKarp, RejectsNonBipartiteInput) {
  const Graph g = complete_graph(3);
  EXPECT_THROW(hopcroft_karp(g, {0, 0, 1}), std::invalid_argument);
}

TEST(Blossom, OddCycleMatching) {
  EXPECT_EQ(matching_size(blossom_maximum_matching(cycle_graph(5))), 2);
  EXPECT_EQ(matching_size(blossom_maximum_matching(cycle_graph(7))), 3);
}

TEST(Blossom, PetersenHasPerfectMatching) {
  EXPECT_TRUE(has_one_factor(petersen_graph()));
}

TEST(Blossom, Fig9aHasNoPerfectMatching) {
  const Graph g = fig9a_graph();
  const Matching m = blossom_maximum_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_LT(matching_size(m) * 2, g.num_nodes());
  // Tutte certificate: removing the hub leaves 3 odd components, so the
  // deficiency is at least 2 — maximum matching misses >= 2 nodes.
  EXPECT_EQ(matching_size(m), 7);
}

TEST(Blossom, AgreesWithBruteForceOnAllSmallGraphs) {
  EnumerateOptions opts;
  opts.connected_only = false;
  int checked = 0;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    EXPECT_EQ(matching_size(blossom_maximum_matching(g)),
              brute_force_matching_size(g))
        << g.to_string();
    ++checked;
    return true;
  });
  EXPECT_EQ(checked, 1024);  // 2^C(5,2)
}

TEST(Blossom, AgreesWithHopcroftKarpOnBipartite) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_bounded_degree_graph(12, 4, 0.3, rng);
    const auto col = bipartition(g);
    if (!col) continue;
    EXPECT_EQ(matching_size(blossom_maximum_matching(g)),
              matching_size(hopcroft_karp(g, *col)));
  }
}

TEST(Matching, EdgesHelper) {
  Matching m(4, -1);
  m[0] = 2;
  m[2] = 0;
  const auto edges = matching_edges(m);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
}

TEST(Matching, OddOrderGraphNeverHasOneFactor) {
  EXPECT_FALSE(has_one_factor(cycle_graph(5)));
  EXPECT_FALSE(has_one_factor(complete_graph(7)));
  EXPECT_TRUE(has_one_factor(complete_graph(6)));
}

}  // namespace
}  // namespace wm
