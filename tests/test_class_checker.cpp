#include "runtime/class_checker.hpp"

#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "graph/generators.hpp"

namespace wm {
namespace {

/// A genuinely order-sensitive Vector machine: outputs the first inbox
/// entry. Violates multiset-invariance.
LambdaMachine first_entry_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::vector();
  m.init_fn = [](int d) { return Value::pair(Value::str("w"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int port) { return Value::integer(port); };
  m.transition_fn = [](const Value&, const Value& inbox, int d) {
    return d > 0 ? inbox.at(0) : Value::integer(0);
  };
  return m;
}

/// A multiplicity-sensitive but order-insensitive machine: broadcasts the
/// own degree and counts how many degree-1 neighbours it has.
LambdaMachine count_ones_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::vector();
  m.init_fn = [](int d) { return Value::pair(Value::str("w"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    int ones = 0;
    for (const Value& v : inbox.items()) {
      if (v.is_int() && v.as_int() == 1) ++ones;
    }
    return Value::integer(ones);
  };
  return m;
}

/// Fully symmetric: output = whether any message equals 1; also
/// broadcast-invariant (sends a constant).
LambdaMachine any_one_broadcast_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::vector_broadcast();
  m.init_fn = [](int d) { return Value::pair(Value::str("w"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int) { return Value::integer(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    for (const Value& v : inbox.items()) {
      if (v == Value::integer(1)) return Value::integer(1);
    }
    return Value::integer(0);
  };
  return m;
}

TEST(ClassChecker, FlagsOrderSensitivity) {
  Rng rng(1);
  const Graph g = star_graph(4);
  const auto report = check_class_invariance(first_entry_machine(),
                                             PortNumbering::identity(g), rng);
  // The star centre receives 4 identical messages, so permutations can't
  // expose it there; use a graph with distinct in-messages.
  const Graph h = path_graph(4);
  Rng rng2(2);
  const auto report2 = check_class_invariance(first_entry_machine(),
                                              PortNumbering::identity(h), rng2);
  EXPECT_FALSE(report.multiset_invariant && report2.multiset_invariant);
}

TEST(ClassChecker, CountingMachineIsMultisetButNotSetInvariant) {
  Rng rng(3);
  // Node 0 is adjacent to a degree-2 node and two degree-1 nodes: its
  // inbox {2, 1, 1} has a set-preserving multiset mutation {2, 2, 1}.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 4);
  const auto report = check_class_invariance(count_ones_machine(),
                                             PortNumbering::identity(g), rng, 32);
  EXPECT_TRUE(report.multiset_invariant);
  EXPECT_FALSE(report.set_invariant);
  EXPECT_GT(report.transitions_checked, 0);
}

TEST(ClassChecker, SymmetricBroadcastMachinePasses) {
  Rng rng(4);
  const Graph g = cycle_graph(6);
  const auto report = check_class_invariance(any_one_broadcast_machine(),
                                             PortNumbering::identity(g), rng, 32);
  EXPECT_TRUE(report.multiset_invariant);
  EXPECT_TRUE(report.set_invariant);
  EXPECT_TRUE(report.broadcast_invariant);
}

TEST(ClassChecker, PortedSenderFlaggedAsNonBroadcast) {
  Rng rng(5);
  const Graph g = star_graph(3);
  const auto report = check_class_invariance(first_entry_machine(),
                                             PortNumbering::identity(g), rng);
  EXPECT_FALSE(report.broadcast_invariant);  // sends the port number
}

TEST(ClassChecker, VertexCoverVbMachineIsFullyOrderInsensitive) {
  // The VB vertex-cover machine must behave identically under inbox
  // permutations — that is what makes Theorem 9's wrapper applicable.
  Rng rng(6);
  for (const Graph& g : {cycle_graph(5), star_graph(4), petersen_graph()}) {
    Rng prng(7);
    const PortNumbering p = PortNumbering::random(g, prng);
    const auto report =
        check_class_invariance(*vertex_cover_packing_vb_machine(), p, rng, 16);
    EXPECT_TRUE(report.multiset_invariant);
    EXPECT_TRUE(report.broadcast_invariant);
  }
}

TEST(ClassChecker, RequiresVectorMode) {
  Rng rng(8);
  LambdaMachine m = count_ones_machine();
  m.cls = AlgebraicClass::multiset();
  EXPECT_THROW(
      check_class_invariance(m, PortNumbering::identity(path_graph(3)), rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace wm
