#include "algorithms/machines.hpp"

#include <stdexcept>

#include "util/rational.hpp"

namespace wm {

namespace {

Value tag(const char* t) { return Value::str(t); }

[[noreturn]] void never_called() {
  throw std::logic_error("machine hook called on a stopping state");
}

// --- Theorem 11: leaf picker (class Set) -----------------------------------
class LeafPicker final : public StateMachine {
 public:
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::set();
  }
  Value init(int degree) const override {
    return Value::pair(tag("L"), Value::integer(degree));
  }
  bool is_stopping(const Value& s) const override { return s.is_int(); }
  Value message(const Value&, int port) const override {
    return Value::integer(port);
  }
  Value transition(const Value& s, const Value& inbox, int) const override {
    const bool leaf = s.at(1).as_int() == 1;
    const bool from_port_one = inbox == Value::set({Value::integer(1)});
    return Value::integer(leaf && from_port_one ? 1 : 0);
  }
};

// --- Theorem 13: odd-odd neighbours (class Multiset ∩ Broadcast) -----------
class OddOdd final : public StateMachine {
 public:
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::multiset_broadcast();
  }
  Value init(int degree) const override {
    return Value::pair(tag("O"), Value::integer(degree % 2));
  }
  bool is_stopping(const Value& s) const override { return s.is_int(); }
  Value message(const Value& s, int) const override { return s.at(1); }
  Value transition(const Value&, const Value& inbox, int) const override {
    int odd = 0;
    for (const Value& m : inbox.items()) {
      if (m.is_int() && m.as_int() == 1) ++odd;
    }
    return Value::integer(odd % 2);
  }
};

// --- Theorem 17: local-type maximum (class Vector, needs consistency) ------
class LocalTypeMaximum final : public StateMachine {
 public:
  explicit LocalTypeMaximum(int delta) : delta_(delta) {}
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::vector();
  }
  Value init(int degree) const override {
    return Value::pair(tag("T1"), Value::integer(degree));
  }
  bool is_stopping(const Value& s) const override { return s.is_int(); }
  Value message(const Value& s, int port) const override {
    if (s.at(0).as_str() == "T1") return Value::integer(port);
    return s.at(1);  // phase 2: send own local type
  }
  Value transition(const Value& s, const Value& inbox, int) const override {
    if (s.at(0).as_str() == "T1") {
      // With a consistent port numbering, the value received at in-port i
      // is exactly j_i, the partner port of (v, i). Pad to Delta with 0.
      ValueVec type;
      type.reserve(static_cast<std::size_t>(delta_));
      for (const Value& m : inbox.items()) type.push_back(m);
      while (static_cast<int>(type.size()) < delta_) {
        type.push_back(Value::integer(0));
      }
      return Value::pair(tag("T2"), Value::tuple(std::move(type)));
    }
    const Value& own = s.at(1);
    for (const Value& t : inbox.items()) {
      if (t > own) return Value::integer(0);
    }
    return Value::integer(1);
  }

 private:
  int delta_;
};

// --- Remark 2: degree-oblivious isolated-node detector (SBo) ---------------
class IsolatedDetector final : public StateMachine {
 public:
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::set_broadcast();
  }
  Value init(int) const override { return tag("I"); }  // ignores the degree
  bool is_stopping(const Value& s) const override { return s.is_int(); }
  Value message(const Value&, int) const override { return Value::integer(0); }
  Value transition(const Value&, const Value& inbox, int) const override {
    return Value::integer(inbox.size() == 0 ? 1 : 0);
  }
};

// --- Time-0 machines --------------------------------------------------------
class DegreeFunction final : public StateMachine {
 public:
  explicit DegreeFunction(bool even_indicator) : even_(even_indicator) {}
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::set_broadcast();
  }
  Value init(int degree) const override {
    const int parity = degree % 2;
    return Value::integer(even_ ? 1 - parity : parity);
  }
  bool is_stopping(const Value&) const override { return true; }
  Value message(const Value&, int) const override { never_called(); }
  Value transition(const Value&, const Value&, int) const override {
    never_called();
  }

 private:
  bool even_;
};

// --- Section 3.3: 2-approx vertex cover by fractional edge packing ---------
//
// Phase = two broadcast rounds.
//   Round A: unsaturated nodes broadcast ("a", r); everyone counts its
//            unsaturated neighbours k.
//   Round B: unsaturated nodes broadcast ("b", r, k); each edge {u, v}
//            between unsaturated nodes gains y += min(r_u/k_u, r_v/k_v),
//            which both endpoints compute identically from the inbox.
// A node whose packing constraint becomes tight (r = 0) stops with output
// 1; a node with no unsaturated neighbours left stops with output 0.
// The node with the globally minimal offer r/k saturates every phase, so
// the algorithm stops within 2(n+1) rounds; the saturated nodes are a
// vertex cover of size <= 2 * sum(y) <= 2 * OPT.
class VertexCoverPacking final : public StateMachine {
 public:
  explicit VertexCoverPacking(ReceiveMode receive) : receive_(receive) {}

  AlgebraicClass algebraic_class() const override {
    return {receive_, SendMode::Broadcast};
  }
  Value init(int) const override {
    return Value::pair(tag("VA"), encode(Rational(1)));
  }
  bool is_stopping(const Value& s) const override { return s.is_int(); }

  Value message(const Value& s, int) const override {
    if (s.at(0).as_str() == "VA") {
      return Value::pair(tag("a"), s.at(1));
    }
    return Value::triple(tag("b"), s.at(1), s.at(2));
  }

  Value transition(const Value& s, const Value& inbox, int) const override {
    if (s.at(0).as_str() == "VA") {
      int k = 0;
      for (const Value& m : inbox.items()) {
        if (!m.is_unit()) ++k;
      }
      if (k == 0) return Value::integer(0);  // all neighbours saturated
      return Value::triple(tag("VB"), s.at(1), Value::integer(k));
    }
    const Rational r = decode(s.at(1));
    const int k = static_cast<int>(s.at(2).as_int());
    const Rational own_offer = r / Rational(k);
    Rational total(0);
    for (const Value& m : inbox.items()) {
      if (m.is_unit()) continue;
      const Rational rv = decode(m.at(1));
      const Rational kv(m.at(2).as_int());
      total += Rational::min(own_offer, rv / kv);
    }
    const Rational next = r - total;
    if (next.is_zero()) return Value::integer(1);  // saturated: join cover
    if (next.is_negative()) {
      throw std::logic_error("vertex_cover_packing: packing safety violated");
    }
    return Value::pair(tag("VA"), encode(next));
  }

 private:
  static Value encode(const Rational& r) {
    return Value::pair(Value::integer(r.num()), Value::integer(r.den()));
  }
  static Rational decode(const Value& v) {
    return Rational(v.at(0).as_int(), v.at(1).as_int());
  }

  ReceiveMode receive_;
};

// --- A genuinely-VB machine (in-port sensitive, broadcast send) ------------
class PortOneParity final : public StateMachine {
 public:
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::vector_broadcast();
  }
  Value init(int degree) const override {
    return Value::pair(tag("P"), Value::integer(degree % 2));
  }
  bool is_stopping(const Value& s) const override { return s.is_int(); }
  Value message(const Value& s, int) const override { return s.at(1); }
  Value transition(const Value&, const Value& inbox, int degree) const override {
    if (degree == 0) return Value::integer(0);
    const Value& first = inbox.at(0);
    return Value::integer(first.is_int() && first.as_int() == 1 ? 1 : 0);
  }
};

}  // namespace

std::shared_ptr<const StateMachine> port_one_parity_machine() {
  return std::make_shared<PortOneParity>();
}

std::shared_ptr<const StateMachine> leaf_picker_machine() {
  return std::make_shared<LeafPicker>();
}

std::shared_ptr<const StateMachine> odd_odd_machine() {
  return std::make_shared<OddOdd>();
}

std::shared_ptr<const StateMachine> local_type_maximum_machine(int delta) {
  return std::make_shared<LocalTypeMaximum>(delta);
}

std::shared_ptr<const StateMachine> isolated_detector_machine() {
  return std::make_shared<IsolatedDetector>();
}

std::shared_ptr<const StateMachine> degree_parity_machine() {
  return std::make_shared<DegreeFunction>(false);
}

std::shared_ptr<const StateMachine> even_degree_machine() {
  return std::make_shared<DegreeFunction>(true);
}

std::shared_ptr<const StateMachine> vertex_cover_packing_machine() {
  return std::make_shared<VertexCoverPacking>(ReceiveMode::Multiset);
}

std::shared_ptr<const StateMachine> vertex_cover_packing_vb_machine() {
  return std::make_shared<VertexCoverPacking>(ReceiveMode::Vector);
}

}  // namespace wm
