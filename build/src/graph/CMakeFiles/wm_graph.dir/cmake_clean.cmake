file(REMOVE_RECURSE
  "CMakeFiles/wm_graph.dir/double_cover.cpp.o"
  "CMakeFiles/wm_graph.dir/double_cover.cpp.o.d"
  "CMakeFiles/wm_graph.dir/enumerate.cpp.o"
  "CMakeFiles/wm_graph.dir/enumerate.cpp.o.d"
  "CMakeFiles/wm_graph.dir/exact.cpp.o"
  "CMakeFiles/wm_graph.dir/exact.cpp.o.d"
  "CMakeFiles/wm_graph.dir/factorisation.cpp.o"
  "CMakeFiles/wm_graph.dir/factorisation.cpp.o.d"
  "CMakeFiles/wm_graph.dir/generators.cpp.o"
  "CMakeFiles/wm_graph.dir/generators.cpp.o.d"
  "CMakeFiles/wm_graph.dir/graph.cpp.o"
  "CMakeFiles/wm_graph.dir/graph.cpp.o.d"
  "CMakeFiles/wm_graph.dir/isomorphism.cpp.o"
  "CMakeFiles/wm_graph.dir/isomorphism.cpp.o.d"
  "CMakeFiles/wm_graph.dir/matching.cpp.o"
  "CMakeFiles/wm_graph.dir/matching.cpp.o.d"
  "CMakeFiles/wm_graph.dir/properties.cpp.o"
  "CMakeFiles/wm_graph.dir/properties.cpp.o.d"
  "libwm_graph.a"
  "libwm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
