// classify — analyse any graph through the lens of the paper.
//
// Reads an edge list ("u v" per line, 0-based node ids; node count =
// max id + 1, or from a leading "n <count>" line) from a file or stdin
// and reports everything the library can say about it:
//
//   - basic structure (degrees, connectivity, bipartiteness, Eulerian),
//   - class-G membership (Theorem 17's family),
//   - indistinguishability classes in all four Kripke views under a
//     chosen port numbering (identity / random / symmetric),
//   - Yamashita-Kameda view classes and leader-election outcome,
//   - solutions computed by the algorithm catalogue (odd-odd outputs,
//     vertex-cover 2-approximation vs exact optimum).
//
//   ./classify graph.txt [identity|random|symmetric]
//   echo "0 1
//   1 2" | ./classify -
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/machines.hpp"
#include "bisim/bisimulation.hpp"
#include "cover/views.hpp"
#include "graph/exact.hpp"
#include "graph/matching.hpp"
#include "graph/properties.hpp"
#include "labelled/leader_election.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"

namespace {

wm::Graph read_graph(std::istream& in) {
  std::vector<wm::Edge> edges;
  int n = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;
    if (first == "n") {
      ls >> n;
      continue;
    }
    if (first[0] == '#') continue;
    int u = std::stoi(first), v = -1;
    if (!(ls >> v)) {
      std::fprintf(stderr, "bad line: %s\n", line.c_str());
      std::exit(1);
    }
    edges.push_back({std::min(u, v), std::max(u, v)});
    n = std::max(n, std::max(u, v) + 1);
  }
  return wm::Graph::from_edges(n, edges);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wm;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <edge-list-file|-> [identity|random|symmetric]\n",
                 argv[0]);
    return 1;
  }
  Graph g;
  if (std::strcmp(argv[1], "-") == 0) {
    g = read_graph(std::cin);
  } else {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    g = read_graph(f);
  }
  const std::string mode = argc > 2 ? argv[2] : "identity";
  Rng rng(1);
  PortNumbering p;
  if (mode == "identity") {
    p = PortNumbering::identity(g);
  } else if (mode == "random") {
    p = PortNumbering::random(g, rng);
  } else if (mode == "symmetric") {
    if (!g.is_regular(g.max_degree())) {
      std::fprintf(stderr, "symmetric numbering requires a regular graph\n");
      return 1;
    }
    p = PortNumbering::symmetric_regular(g);
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 1;
  }

  std::printf("graph: n=%d m=%d Delta=%d\n", g.num_nodes(), g.num_edges(),
              g.max_degree());
  std::printf("connected: %s   bipartite: %s   eulerian: %s\n",
              is_connected(g) ? "yes" : "no",
              bipartition(g) ? "yes" : "no", is_eulerian(g) ? "yes" : "no");
  std::printf("regular: %s   1-factor: %s   class G (Thm 17): %s\n",
              g.is_regular(g.max_degree()) ? "yes" : "no",
              has_one_factor(g) ? "yes" : "no", in_class_g(g) ? "yes" : "no");
  std::printf("port numbering: %s (%s)\n\n", mode.c_str(),
              p.is_consistent() ? "consistent" : "inconsistent");

  std::printf("indistinguishability classes per Kripke view:\n");
  for (const Variant variant : {Variant::PlusPlus, Variant::MinusPlus,
                                Variant::PlusMinus, Variant::MinusMinus}) {
    const KripkeModel k = kripke_from_graph(p, variant);
    std::printf("  %-4s ungraded %-4d graded %d\n",
                variant_name(variant).c_str(),
                coarsest_bisimulation(k).num_blocks,
                coarsest_graded_bisimulation(k).num_blocks);
  }

  const auto classes = view_classes(p);
  const int distinct = g.num_nodes() == 0
                           ? 0
                           : *std::max_element(classes.begin(), classes.end()) + 1;
  std::printf("\nstable view classes: %d of %d nodes\n", distinct,
              g.num_nodes());
  if (is_connected(g) && g.num_nodes() >= 1) {
    const auto leaders = elect_leaders(p);
    const int count = std::accumulate(leaders.begin(), leaders.end(), 0);
    std::printf("leader election (with n as local input): %d leader(s)%s\n",
                count, count == 1 ? " — solvable here" : "");
  }

  std::printf("\nodd-odd-neighbours (MB algorithm): ");
  const auto odd = execute(*odd_odd_machine(), p);
  for (int v : odd.outputs_as_ints()) std::printf("%d", v);
  std::printf("\n");

  if (g.num_nodes() <= 40 && g.num_edges() > 0) {
    const auto mb = to_multiset_machine(vertex_cover_packing_vb_machine());
    const auto r = execute(*mb, p);
    if (r.stopped) {
      int size = 0;
      for (int v : r.outputs_as_ints()) size += v;
      std::printf("vertex cover: distributed |C|=%d, exact OPT=%d\n", size,
                  minimum_vertex_cover_size(g));
    }
  }
  return 0;
}
