// Quotients of Kripke models by bisimulation equivalences — canonical
// minimal models.
//
// For an (ungraded) bisimulation partition P of K, the quotient K/P has
// the blocks as states, a block satisfying q iff its members do (B1
// guarantees uniformity) and an alpha-edge B -> C iff some member of B
// has an alpha-successor in C (by B2/B3 then every member does, up to
// the block). Every ML/MML formula has the same truth value at v in K
// and at [v] in K/P — property-tested against the model checker.
//
// (The graded analogue needs multiplicity-annotated edges and is not
// provided; graded queries should be evaluated on the original model.)
#pragma once

#include "bisim/bisimulation.hpp"
#include "logic/kripke.hpp"

namespace wm {

/// The quotient K / p. Precondition: p is a bisimulation partition of k
/// (e.g. from coarsest_bisimulation) — verified with
/// verify_bisimulation_partition in debug contexts by the caller.
KripkeModel quotient_model(const KripkeModel& k, const Partition& p);

/// Convenience: quotient by the coarsest bisimulation.
KripkeModel minimise(const KripkeModel& k);

/// Graded quotient: like quotient_model, but the alpha-edge B -> C is
/// added with multiplicity = |alpha-successors in C| of any member of B
/// (uniform when p is a GRADED bisimulation partition). Parallel edges
/// make the graded model checker count correctly, so GML/GMML formulas
/// survive the quotient — property-tested.
KripkeModel graded_quotient_model(const KripkeModel& k, const Partition& p);

/// Convenience: graded quotient by the coarsest graded bisimulation.
KripkeModel minimise_graded(const KripkeModel& k);

}  // namespace wm
