#include "compile/extract.hpp"

#include <map>
#include <stdexcept>
#include <vector>

namespace wm {

Variant variant_for_class(const AlgebraicClass& cls) {
  if (cls.send == SendMode::Broadcast) {
    return cls.receive == ReceiveMode::Vector ? Variant::PlusMinus
                                              : Variant::MinusMinus;
  }
  return cls.receive == ReceiveMode::Vector ? Variant::PlusPlus
                                            : Variant::MinusPlus;
}

namespace {

using Config = std::pair<Value, int>;         // (abstract state, degree)
using PhiMap = std::map<Config, FormulaVec>;  // disjuncts of phi_{(z,d),t}

/// "deg(v) = d" as a formula: q_d for d >= 1, and "no q_i" for d = 0.
Formula degree_formula(int d, int delta) {
  if (d >= 1) return Formula::prop(d);
  FormulaVec none;
  for (int i = 1; i <= delta; ++i) {
    none.push_back(Formula::negate(Formula::prop(i)));
  }
  return Formula::conj_all(std::move(none));
}

struct Budget {
  std::size_t remaining;
  void spend(std::size_t n = 1) {
    if (n > remaining) {
      throw ExtractionLimitError(
          "extract_formula: abstract inbox enumeration exceeded the cap");
    }
    remaining -= n;
  }
};

/// "exactly c successors via alpha satisfy theta":
/// <alpha>_{>=c} theta & ~<alpha>_{>=c+1} theta  (just the negation if c=0).
Formula exactly(const Modality& alpha, int c, const Formula& theta) {
  const Formula no_more =
      Formula::negate(Formula::diamond(alpha, theta, c + 1));
  if (c == 0) return no_more;
  return Formula::conj(Formula::diamond(alpha, theta, c), no_more);
}

/// Enumerates all ways to write d as an ordered sum over `cells` slots;
/// calls fn(counts).
void compositions(int d, std::size_t cells, std::vector<int>& counts,
                  std::size_t i, Budget& budget,
                  const std::function<void(const std::vector<int>&)>& fn) {
  if (i + 1 == cells) {
    counts[i] = d;
    budget.spend();
    fn(counts);
    return;
  }
  for (int c = 0; c <= d; ++c) {
    counts[i] = c;
    compositions(d - c, cells, counts, i + 1, budget, fn);
  }
}

class Extractor {
 public:
  Extractor(const StateMachine& m, const ExtractionOptions& opts)
      : m_(m), opts_(opts), cls_(m.algebraic_class()),
        variant_(variant_for_class(cls_)),
        budget_{opts.max_inbox_combos} {}

  Formula run() {
    PhiMap phi;
    // R_0: phi_{(z0(d), d), 0} = degree_formula(d).
    for (int d = 0; d <= opts_.delta; ++d) {
      phi[{m_.init(d), d}].push_back(degree_formula(d, opts_.delta));
    }
    for (int t = 1; t <= opts_.rounds; ++t) {
      phi = step(collapse(phi));
      if (phi.size() > opts_.max_abstract_states) {
        throw ExtractionLimitError(
            "extract_formula: abstract state space exceeded the cap");
      }
    }
    // psi = disjunction of phi_{(z,d),T} over stopping states with output 1.
    FormulaVec out;
    for (auto& [config, disjuncts] : phi) {
      const auto& [z, d] = config;
      if (m_.is_stopping(z) && z.is_int() && z.as_int() == 1) {
        out.push_back(Formula::disj_all(disjuncts));
      }
    }
    return Formula::disj_all(std::move(out));
  }

 private:
  std::map<Config, Formula> collapse(const PhiMap& phi) {
    std::map<Config, Formula> out;
    for (const auto& [config, disjuncts] : phi) {
      out.emplace(config, Formula::disj_all(disjuncts));
    }
    return out;
  }

  /// One round of Table 5: from phi_{.,t-1} to phi_{.,t}.
  PhiMap step(const std::map<Config, Formula>& prev) {
    // Message alphabet with sender formulas theta.
    // Ported: theta_by_port[j-1][m] = theta_{m,j,t}.
    // Broadcast: theta_bcast[m] = theta_{m,t}.
    std::vector<std::map<Value, FormulaVec>> theta_by_port(
        static_cast<std::size_t>(opts_.delta));
    std::map<Value, FormulaVec> theta_bcast;
    const Value m0 = Value::unit();
    for (const auto& [config, f] : prev) {
      const auto& [z, d] = config;
      if (d == 0) continue;  // isolated nodes never send
      if (cls_.send == SendMode::Broadcast) {
        const Value msg = m_.is_stopping(z) ? m0 : m_.message(z, 1);
        theta_bcast[msg].push_back(f);
      } else {
        for (int j = 1; j <= d; ++j) {
          const Value msg = m_.is_stopping(z) ? m0 : m_.message(z, j);
          theta_by_port[j - 1][msg].push_back(f);
        }
      }
    }
    std::vector<std::map<Value, Formula>> theta_j(
        static_cast<std::size_t>(opts_.delta));
    std::map<Value, Formula> theta_b;
    std::vector<Value> alphabet;  // all distinct messages this round
    {
      std::map<Value, bool> seen;
      for (int j = 0; j < opts_.delta; ++j) {
        for (auto& [msg, fs] : theta_by_port[j]) {
          theta_j[j].emplace(msg, Formula::disj_all(fs));
          seen[msg] = true;
        }
      }
      for (auto& [msg, fs] : theta_bcast) {
        theta_b.emplace(msg, Formula::disj_all(fs));
        seen[msg] = true;
      }
      for (auto& [msg, _] : seen) alphabet.push_back(msg);
    }

    PhiMap next;
    for (const auto& [config, fx] : prev) {
      const auto& [x, d] = config;
      if (m_.is_stopping(x)) {
        next[config].push_back(fx);  // absorbing
        continue;
      }
      switch (cls_.receive) {
        case ReceiveMode::Vector:
          enumerate_vectors(x, d, fx, alphabet, theta_j, theta_b, next);
          break;
        case ReceiveMode::Multiset:
          enumerate_multisets(x, d, fx, alphabet, theta_j, theta_b, next);
          break;
        case ReceiveMode::Set:
          enumerate_sets(x, d, fx, alphabet, theta_j, theta_b, next);
          break;
      }
    }
    return next;
  }

  void emit(PhiMap& next, const Value& x, int d, const Value& inbox,
            Formula fla) {
    const Value z = m_.transition(x, inbox, d);
    next[{z, d}].push_back(std::move(fla));
  }

  // --- Vector receive: Parts 3 and 4(e). Inbox = ordered vector. -----------
  void enumerate_vectors(const Value& x, int d, const Formula& fx,
                         const std::vector<Value>& alphabet,
                         const std::vector<std::map<Value, Formula>>& theta_j,
                         const std::map<Value, Formula>& theta_b, PhiMap& next) {
    ValueVec vec(static_cast<std::size_t>(d));
    FormulaVec entries(static_cast<std::size_t>(d));
    std::function<void(int)> rec = [&](int i) {
      if (i == d) {
        budget_.spend();
        FormulaVec conj{fx};
        conj.insert(conj.end(), entries.begin(), entries.begin() + d);
        emit(next, x, d, Value::tuple(vec), Formula::conj_all(conj));
        return;
      }
      for (const Value& msg : alphabet) {
        Formula entry;
        bool possible = false;
        if (variant_ == Variant::PlusPlus) {
          // entry i = m  <=>  some j with <(i+1, j)> theta_{m,j,t}.
          FormulaVec options;
          for (int j = 1; j <= opts_.delta; ++j) {
            auto it = theta_j[j - 1].find(msg);
            if (it != theta_j[j - 1].end()) {
              options.push_back(
                  Formula::diamond({i + 1, j}, it->second, 1));
            }
          }
          if (!options.empty()) {
            possible = true;
            entry = Formula::disj_all(std::move(options));
          }
        } else {  // PlusMinus: broadcast senders
          auto it = theta_b.find(msg);
          if (it != theta_b.end()) {
            possible = true;
            entry = Formula::diamond({i + 1, 0}, it->second, 1);
          }
        }
        if (!possible) continue;
        vec[i] = msg;
        entries[i] = entry;
        rec(i + 1);
      }
    };
    rec(0);
  }

  // --- Multiset receive: Parts 4(c) MV and 4(f) MB. ------------------------
  void enumerate_multisets(const Value& x, int d, const Formula& fx,
                           const std::vector<Value>& alphabet,
                           const std::vector<std::map<Value, Formula>>& theta_j,
                           const std::map<Value, Formula>& theta_b,
                           PhiMap& next) {
    if (variant_ == Variant::MinusMinus) {
      // Count vector over the broadcast alphabet.
      std::vector<Value> msgs;
      std::vector<Formula> thetas;
      for (const auto& [msg, th] : theta_b) {
        msgs.push_back(msg);
        thetas.push_back(th);
      }
      if (msgs.empty()) {
        if (d == 0) emit(next, x, d, Value::mset({}), fx);
        return;
      }
      std::vector<int> counts(msgs.size());
      compositions(d, msgs.size(), counts, 0, budget_,
                   [&](const std::vector<int>& c) {
                     ValueVec inbox;
                     FormulaVec conj{fx};
                     for (std::size_t i = 0; i < msgs.size(); ++i) {
                       for (int r = 0; r < c[i]; ++r) inbox.push_back(msgs[i]);
                       conj.push_back(exactly({0, 0}, c[i], thetas[i]));
                     }
                     emit(next, x, d, Value::mset(std::move(inbox)),
                          Formula::conj_all(std::move(conj)));
                   });
      return;
    }
    // MinusPlus (MV): counts per (j, m) cell, column sums give the inbox.
    std::vector<std::pair<int, Value>> cells;  // (j, m)
    std::vector<Formula> cell_theta;
    for (int j = 1; j <= opts_.delta; ++j) {
      for (const auto& [msg, th] : theta_j[j - 1]) {
        cells.emplace_back(j, msg);
        cell_theta.push_back(th);
      }
    }
    if (cells.empty()) {
      if (d == 0) emit(next, x, d, Value::mset({}), fx);
      return;
    }
    std::vector<int> counts(cells.size());
    compositions(d, cells.size(), counts, 0, budget_,
                 [&](const std::vector<int>& c) {
                   ValueVec inbox;
                   FormulaVec conj{fx};
                   for (std::size_t i = 0; i < cells.size(); ++i) {
                     for (int r = 0; r < c[i]; ++r) inbox.push_back(cells[i].second);
                     conj.push_back(
                         exactly({0, cells[i].first}, c[i], cell_theta[i]));
                   }
                   emit(next, x, d, Value::mset(std::move(inbox)),
                        Formula::conj_all(std::move(conj)));
                 });
    (void)alphabet;
  }

  // --- Set receive: Parts 4(d) SV and 4(g) SB. -----------------------------
  void enumerate_sets(const Value& x, int d, const Formula& fx,
                      const std::vector<Value>& alphabet,
                      const std::vector<std::map<Value, Formula>>& theta_j,
                      const std::map<Value, Formula>& theta_b, PhiMap& next) {
    // "m received at least once" / "m not received", per class.
    auto received = [&](const Value& msg) -> std::pair<bool, Formula> {
      if (variant_ == Variant::MinusMinus) {
        auto it = theta_b.find(msg);
        if (it == theta_b.end()) return {false, Formula::fls()};
        return {true, Formula::diamond({0, 0}, it->second, 1)};
      }
      FormulaVec options;
      for (int j = 1; j <= opts_.delta; ++j) {
        auto it = theta_j[j - 1].find(msg);
        if (it != theta_j[j - 1].end()) {
          options.push_back(Formula::diamond({0, j}, it->second, 1));
        }
      }
      if (options.empty()) return {false, Formula::fls()};
      return {true, Formula::disj_all(std::move(options))};
    };

    if (d == 0) {
      emit(next, x, d, Value::set({}), fx);
      return;
    }
    const std::size_t a = alphabet.size();
    if (a == 0) return;
    if (a > 20) {
      throw ExtractionLimitError("extract_formula: set alphabet too large");
    }
    for (std::uint64_t mask = 1; mask < (1ULL << a); ++mask) {
      if (static_cast<int>(__builtin_popcountll(mask)) > d) continue;
      budget_.spend();
      ValueVec inbox;
      FormulaVec conj{fx};
      bool feasible = true;
      for (std::size_t i = 0; i < a; ++i) {
        auto [possible, fml] = received(alphabet[i]);
        if (mask & (1ULL << i)) {
          if (!possible) {
            feasible = false;
            break;
          }
          inbox.push_back(alphabet[i]);
          conj.push_back(fml);
        } else if (possible) {
          conj.push_back(Formula::negate(fml));
        }
      }
      if (!feasible) continue;
      emit(next, x, d, Value::set(std::move(inbox)), Formula::conj_all(conj));
    }
  }

  const StateMachine& m_;
  ExtractionOptions opts_;
  AlgebraicClass cls_;
  Variant variant_;
  Budget budget_;
};

}  // namespace

Formula extract_formula(const StateMachine& m, const ExtractionOptions& opts) {
  return Extractor(m, opts).run();
}

}  // namespace wm
