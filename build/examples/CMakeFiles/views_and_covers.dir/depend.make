# Empty dependencies file for views_and_covers.
# This may be replaced when dependencies are built.
