// Hash finalisation for the concurrent dedup tables.
//
// std::hash on integer keys is the identity on every mainstream standard
// library, so any table that derives a shard or slot index from the raw
// hash with a modulo sees sequential keys hammer adjacent buckets. Both
// concurrent tables (util/sharded.hpp, util/lockfree_set.hpp) therefore
// finalise the raw hash with an avalanche mixer before using any of its
// bits for placement.
#pragma once

#include <cstdint>

namespace wm {

/// splitmix64 finaliser: every input bit flips every output bit with
/// probability ~1/2, so low-order slot indices are uniform even for
/// identity hashes of sequential integers.
inline std::uint64_t hash_mix(std::uint64_t h) noexcept {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace wm
