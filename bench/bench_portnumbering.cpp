// Regenerates Figures 1, 2, 3, 4 and 6: the example graph of the paper
// with a general and a consistent port numbering, the three inbox views
// (vector / multiset / set), the two send modes, and the per-class
// information table.
#include <cstdio>
#include <iostream>

#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "util/value.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  using namespace wm;

  // The 4-node example graph of Figure 1: degrees 3, 2, 2, 1.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);

  std::printf("=== Figure 1: a (general) port numbering ===\n");
  Rng rng(42);
  const PortNumbering general = PortNumbering::random(g, rng);
  std::cout << general.to_string() << "\n";
  std::printf("consistent: %s\n\n", general.is_consistent() ? "yes" : "no");

  std::printf("=== Figure 2: a consistent port numbering ===\n");
  const PortNumbering consistent = PortNumbering::random_consistent(g, rng);
  std::cout << consistent.to_string() << "\n";
  std::printf("p(p(x)) = x for every port: %s\n\n",
              consistent.is_consistent() ? "yes" : "no");

  std::printf("=== Figure 3: vector vs multiset vs set inbox ===\n");
  const Value a = Value::str("a"), b = Value::str("b");
  const ValueVec inbox{a, b, a};
  std::cout << "received (a, b, a):\n";
  std::cout << "  Vector   sees " << Value::tuple(inbox) << "\n";
  std::cout << "  Multiset sees " << multiset_of(inbox) << "\n";
  std::cout << "  Set      sees " << set_of(inbox) << "\n\n";

  std::printf("=== Figure 4: vector vs broadcast send ===\n");
  std::printf("  Vector:    node may send m1, m2, m3 to ports 1, 2, 3\n");
  std::printf("  Broadcast: the engine calls mu once and replicates m to "
              "all ports\n\n");

  std::printf("=== Figure 6: information available per class ===\n");
  std::printf("  %-5s %-28s %-28s\n", "class", "outgoing", "incoming");
  std::printf("  %-5s %-28s %-28s\n", "VVc", "numbered ports (involution)",
              "numbered ports (involution)");
  std::printf("  %-5s %-28s %-28s\n", "VV", "numbered ports",
              "numbered ports");
  std::printf("  %-5s %-28s %-28s\n", "MV", "numbered ports",
              "multiset of messages");
  std::printf("  %-5s %-28s %-28s\n", "SV", "numbered ports",
              "set of messages");
  std::printf("  %-5s %-28s %-28s\n", "VB", "single broadcast",
              "numbered ports");
  std::printf("  %-5s %-28s %-28s\n", "MB", "single broadcast",
              "multiset of messages");
  std::printf("  %-5s %-28s %-28s\n", "SB", "single broadcast",
              "set of messages");

  std::printf("\nlocal types t(v) under the consistent numbering "
              "(Theorem 17):\n");
  for (int v = 0; v < g.num_nodes(); ++v) {
    WM_TIME_SCOPE("bench.portnumbering.local_type");
    const auto t = consistent.local_type(v, g.max_degree());
    std::printf("  t(%d) = (", v);
    for (std::size_t i = 0; i < t.size(); ++i) {
      std::printf("%s%d", i ? "," : "", t[i]);
    }
    std::printf(")\n");
  }
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("portnumbering", 4, threads, wm_total.ms(), 0);
  return 0;
}
