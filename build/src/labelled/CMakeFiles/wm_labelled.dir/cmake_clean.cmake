file(REMOVE_RECURSE
  "CMakeFiles/wm_labelled.dir/labelled.cpp.o"
  "CMakeFiles/wm_labelled.dir/labelled.cpp.o.d"
  "CMakeFiles/wm_labelled.dir/leader_election.cpp.o"
  "CMakeFiles/wm_labelled.dir/leader_election.cpp.o.d"
  "libwm_labelled.a"
  "libwm_labelled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_labelled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
