# Empty dependencies file for test_properties_deep.
# This may be replaced when dependencies are built.
