#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"
#include "util/rng.hpp"
#include "util/sharded.hpp"

namespace wm {
namespace {

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), [&](std::uint64_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReduceIsDeterministicAndOrdered) {
  // Non-commutative combine (string concatenation): the chunk-ordered
  // reduction must give the sequential answer at any thread count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce<std::string>(
        0, 40, "",
        [](std::uint64_t i) { return std::string(1, static_cast<char>('a' + i % 26)); },
        [](std::string a, std::string b) { return a + b; },
        /*chunk=*/3);
  };
  const std::string expected = run(1);
  EXPECT_EQ(expected.size(), 40u);
  EXPECT_EQ(run(2), expected);
  EXPECT_EQ(run(8), expected);
}

TEST(ThreadPool, FindFirstReturnsLowestWitnessAtAnyThreadCount) {
  // Hits at 113, 500, 501, ...: every thread count must report 113, even
  // though higher chunks may be scanned first by other workers.
  auto pred = [](std::uint64_t i) { return i == 113 || i >= 500; };
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int rep = 0; rep < 20; ++rep) {
      const auto hit = pool.parallel_find_first(0, 4096, pred, /*chunk=*/7);
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(*hit, 113u) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, FindFirstMissesReturnNullopt) {
  ThreadPool pool(4);
  const auto hit =
      pool.parallel_find_first(0, 1000, [](std::uint64_t) { return false; });
  EXPECT_FALSE(hit.has_value());
}

TEST(ThreadPool, FindFirstEmptyRange) {
  ThreadPool pool(2);
  EXPECT_FALSE(
      pool.parallel_find_first(5, 5, [](std::uint64_t) { return true; })
          .has_value());
}

TEST(ThreadPool, FindFirstEmptyAndReversedRangesNeverCallThePredicate) {
  // Regression: an empty span must short-circuit to nullopt before any
  // chunk-size arithmetic — including begin > end and every pool size /
  // explicit chunk combination.
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (const std::uint64_t chunk : {std::uint64_t{0}, std::uint64_t{1},
                                      std::uint64_t{64}}) {
      for (const auto& [begin, end] :
           {std::pair<std::uint64_t, std::uint64_t>{0, 0},
            {7, 7},
            {10, 3}}) {
        bool called = false;
        const auto hit = pool.parallel_find_first(
            begin, end,
            [&](std::uint64_t) {
              called = true;
              return true;
            },
            chunk);
        EXPECT_FALSE(hit.has_value())
            << "threads=" << threads << " chunk=" << chunk << " ["
            << begin << "," << end << ")";
        EXPECT_FALSE(called);
      }
    }
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [](std::uint64_t i) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool stays usable after a failed job.
    std::atomic<int> count{0};
    pool.parallel_for(0, 50, [&](std::uint64_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, SubmittedTasksRunEventually) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 20);
}

TEST(ShardedMinMap, KeepsMinimumPerKeyUnderContention) {
  ShardedMinMap<int, std::uint64_t> table(8);
  ThreadPool pool(8);
  pool.parallel_for(0, 10000, [&](std::uint64_t i) {
    table.insert_min(static_cast<int>(i % 17), i);
  });
  EXPECT_EQ(table.size(), 17u);
  std::vector<std::uint64_t> mins = table.values();
  std::sort(mins.begin(), mins.end());
  // Key k's minimum inserted value is k itself (first occurrence).
  for (std::size_t k = 0; k < mins.size(); ++k) EXPECT_EQ(mins[k], k);
}

// --- Parallel enumeration -------------------------------------------------

std::vector<std::vector<int>> sequential_signatures(int n,
                                                    const EnumerateOptions& o) {
  std::vector<std::vector<int>> sigs;
  enumerate_graphs(n, o, [&](const Graph& g) {
    sigs.push_back(refinement_signature(g));
    return true;
  });
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(EnumerateParallel, VisitsIdenticalSignatureMultiset) {
  EnumerateOptions opts;  // connected only
  const auto expected = sequential_signatures(5, opts);
  ASSERT_EQ(expected.size(), 728u);  // labelled connected graphs on 5 nodes
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::vector<std::vector<int>>> per_worker(
        static_cast<std::size_t>(pool.num_threads()));
    const std::size_t visited = enumerate_graphs_parallel(
        5, opts, pool, [&](const Graph& g, int worker) {
          per_worker[static_cast<std::size_t>(worker)].push_back(
              refinement_signature(g));
          return true;
        });
    EXPECT_EQ(visited, expected.size());
    std::vector<std::vector<int>> sigs;
    for (auto& w : per_worker) {
      for (auto& s : w) sigs.push_back(std::move(s));
    }
    EXPECT_EQ(sigs.size(), visited);
    std::sort(sigs.begin(), sigs.end());
    EXPECT_EQ(sigs, expected) << "threads=" << threads;
  }
}

TEST(EnumerateParallel, ModuloRefinementMatchesSequentialExactly) {
  EnumerateOptions opts;
  opts.max_degree = 3;
  std::vector<std::vector<Edge>> expected;
  const std::size_t seq = enumerate_graphs_modulo_refinement(
      5, opts, [&](const Graph& g) {
        expected.push_back(g.edges());
        return true;
      });
  ASSERT_GT(seq, 0u);
  for (const int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::vector<Edge>> got;
    const std::size_t visited = enumerate_graphs_modulo_refinement_parallel(
        5, opts, pool, [&](const Graph& g) {
          got.push_back(g.edges());
          return true;
        });
    EXPECT_EQ(visited, seq);
    // Same representatives in the same order — not merely the same set.
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(EnumerateParallel, EarlyStopStillCountsStreamedGraphs) {
  EnumerateOptions opts;
  opts.connected_only = false;
  ThreadPool pool(4);
  std::atomic<int> seen{0};
  const std::size_t visited = enumerate_graphs_parallel(
      4, opts, pool, [&](const Graph&, int) {
        return seen.fetch_add(1, std::memory_order_relaxed) + 1 < 5;
      });
  // Cooperative cancellation: at least the 5 sequentially-required graphs
  // were streamed, and the return value counts exactly the streamed ones.
  EXPECT_GE(visited, 5u);
  EXPECT_EQ(visited, static_cast<std::size_t>(seen.load()));
}

// --- Re-entrancy of the execution engine ----------------------------------

TEST(ParallelExecution, OneMachineManyGraphsMatchesSequential) {
  // A Vector-probe machine wrapped by the Theorem 8 transformer — the
  // layered simulation state is the stress case for const-safety.
  auto probe = std::make_shared<LambdaMachine>();
  probe->cls = AlgebraicClass::vector();
  probe->init_fn = [](int d) {
    return Value::triple(Value::str("x"), Value::integer(2), Value::integer(d));
  };
  probe->stopping_fn = [](const Value& s) { return s.is_int(); };
  probe->message_fn = [](const Value& s, int) { return s.at(2); };
  probe->transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t acc = 0;
    for (const Value& v : inbox.items()) {
      if (!v.is_unit()) acc += v.as_int();
    }
    if (s.at(1).as_int() == 1) return Value::integer(acc);
    return Value::triple(Value::str("x"), Value::integer(1),
                         Value::integer(acc));
  };
  const auto machine = to_multiset_machine(probe);

  Rng rng(42);
  std::vector<PortNumbering> instances;
  for (int t = 0; t < 24; ++t) {
    const Graph g = random_connected_graph(8, 4, 4, rng);
    instances.push_back(PortNumbering::random(g, rng));
  }
  std::vector<std::vector<Value>> sequential;
  for (const PortNumbering& p : instances) {
    sequential.push_back(execute(*machine, p).final_states);
  }

  ThreadPool pool(8);
  std::vector<ExecutionContext> ctxs(
      static_cast<std::size_t>(pool.num_threads()));
  std::vector<std::vector<Value>> parallel(instances.size());
  pool.parallel_chunks(
      0, instances.size(),
      [&](std::uint64_t lo, std::uint64_t hi, int worker) {
        ExecutionContext& ctx = ctxs[static_cast<std::size_t>(worker)];
        for (std::uint64_t i = lo; i < hi; ++i) {
          parallel[i] = execute(*machine, instances[i], ctx).final_states;
        }
      },
      1);
  EXPECT_EQ(parallel, sequential);
}

}  // namespace
}  // namespace wm
