#include "bisim/bisimulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "obs/counters.hpp"
#include "port/port_numbering.hpp"
#include "support/canon_harness.hpp"
#include "support/diff_harness.hpp"
#include "util/parallel.hpp"

namespace wm {
namespace {

KripkeModel mm_model(const Graph& g) {
  return kripke_from_graph(PortNumbering::identity(g), Variant::MinusMinus);
}

TEST(Bisim, CycleNodesAllBisimilar) {
  const KripkeModel k = mm_model(cycle_graph(6));
  const Partition p = coarsest_bisimulation(k);
  EXPECT_EQ(p.num_blocks, 1);
  EXPECT_TRUE(verify_bisimulation_partition(k, p));
}

TEST(Bisim, CyclesOfDifferentLengthsBisimilarInSetView) {
  // Anonymity at its starkest: a 3-cycle node and a 1000-cycle node are
  // bisimilar in K_{-,-}.
  const KripkeModel a = mm_model(cycle_graph(3));
  const KripkeModel b = mm_model(cycle_graph(12));
  EXPECT_TRUE(bisimilar_across(a, 0, b, 0));
  EXPECT_TRUE(bisimilar_across(a, 0, b, 0, /*graded=*/true));
}

TEST(Bisim, StarCentreVsLeaf) {
  const KripkeModel k = mm_model(star_graph(3));
  const Partition p = coarsest_bisimulation(k);
  EXPECT_EQ(p.num_blocks, 2);
  EXPECT_FALSE(p.same_block(0, 1));
  EXPECT_TRUE(p.same_block(1, 2));
  EXPECT_TRUE(p.same_block(2, 3));
}

TEST(Bisim, GradedRefinesUngraded) {
  // Two stars joined at the leaves level: build a graph where ungraded
  // and graded partitions differ. Take K_{1,2} ∪ K_{1,3} as one graph:
  // the two centres have degrees 2 and 3 — distinguishable by props.
  // Instead use: path P3 vs star S3 centre — the centre of S3 has three
  // q1-successors, the middle of P3 has two; as *sets* both are {leafish}
  // ... but props differ (q2 vs q3). Use a genuinely multiplicity-only
  // distinction: C4 vs C6 joined? Simplest known: a node with two
  // distinct-looking... We verify on the Theorem 13 witness instead:
  // degree-3 nodes of the two components are bisimilar but NOT g-bisimilar.
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 4);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  g.add_edge(3, 5);
  g.add_edge(6, 7);
  g.add_edge(6, 8);
  g.add_edge(6, 9);
  g.add_edge(7, 8);
  g.add_edge(7, 9);
  const KripkeModel k = mm_model(g);
  const Partition ungraded = coarsest_bisimulation(k);
  const Partition graded = coarsest_graded_bisimulation(k);
  EXPECT_TRUE(ungraded.same_block(0, 6));
  EXPECT_FALSE(graded.same_block(0, 6));
  EXPECT_GT(graded.num_blocks, ungraded.num_blocks);
  EXPECT_TRUE(verify_bisimulation_partition(k, ungraded));
  EXPECT_TRUE(verify_graded_bisimulation_partition(k, graded));
}

TEST(Bisim, BoundedRefinementMonotone) {
  const KripkeModel k = mm_model(path_graph(7));
  int prev = 1;
  for (int t = 0; t <= 5; ++t) {
    const Partition p = coarsest_bisimulation(k, t);
    EXPECT_GE(p.num_blocks, prev);
    prev = p.num_blocks;
  }
  // Depth-0: only degree props distinguish (2 blocks: endpoints vs rest).
  EXPECT_EQ(coarsest_bisimulation(k, 0).num_blocks, 2);
  // Full refinement on P7: positions fold by symmetry: {0,6},{1,5},{2,4},{3}.
  EXPECT_EQ(coarsest_bisimulation(k).num_blocks, 4);
}

TEST(Bisim, Lemma15SymmetricNumberingMakesAllNodesBisimilar) {
  for (const Graph& g : {cycle_graph(5), petersen_graph(), fig9a_graph(),
                         complete_graph(6)}) {
    const PortNumbering p = PortNumbering::symmetric_regular(g);
    const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
    const Partition part = coarsest_bisimulation(k);
    EXPECT_EQ(part.num_blocks, 1) << "graph with n=" << g.num_nodes();
    EXPECT_TRUE(verify_bisimulation_partition(k, part));
    // The full relation V x V is literally a bisimulation (Lemma 15).
    std::vector<std::pair<int, int>> full;
    for (int u = 0; u < g.num_nodes(); ++u) {
      for (int v = 0; v < g.num_nodes(); ++v) full.emplace_back(u, v);
    }
    EXPECT_TRUE(is_bisimulation_relation(k, full));
  }
}

TEST(Bisim, Lemma16ConsistentNumberingsBreakSymmetryOnFig9a) {
  // fig9a has no 1-factor, so by Lemma 16 no consistent port numbering
  // can make all nodes bisimilar in K_{+,+}.
  const Graph g = fig9a_graph();
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const PortNumbering p = PortNumbering::random_consistent(g, rng);
    const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
    EXPECT_GT(coarsest_bisimulation(k).num_blocks, 1);
  }
}

TEST(Bisim, Lemma16ConverseOnGraphWithOneFactor) {
  // K4 is 3-regular WITH a 1-factor: a consistent symmetric numbering
  // exists (pair nodes by three disjoint perfect matchings).
  const Graph g = complete_graph(4);
  ASSERT_TRUE(has_one_factor(g));
  // Consistent numbering from the proper 3-edge-colouring of K4:
  // matchings {01,23}, {02,13}, {03,12} -> port = colour index.
  std::vector<std::vector<int>> perm(4);
  auto colour_of = [](int u, int v) {
    const int s = u ^ v;  // 1, 2, 3 for the three matchings
    return s;
  };
  for (int v = 0; v < 4; ++v) {
    for (int u = 0; u < 4; ++u) {
      if (u == v) continue;
      perm[v].push_back(colour_of(u, v));
    }
  }
  auto copy = perm;
  const PortNumbering p = PortNumbering::from_permutations(g, perm, copy);
  ASSERT_TRUE(p.is_consistent());
  const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
  EXPECT_EQ(coarsest_bisimulation(k).num_blocks, 1);
}

TEST(Bisim, IsBisimulationRelationRejectsBadRelations) {
  const KripkeModel k = mm_model(star_graph(2));
  // Pairing the centre with a leaf violates B1 (different degree props).
  EXPECT_FALSE(is_bisimulation_relation(k, {{0, 1}}));
  // Empty relation is not a bisimulation by definition.
  EXPECT_FALSE(is_bisimulation_relation(k, {}));
  // Identity is always one.
  EXPECT_TRUE(is_bisimulation_relation(k, {{0, 0}, {1, 1}, {2, 2}}));
  // The two leaves are bisimilar.
  EXPECT_TRUE(is_bisimulation_relation(k, {{1, 2}, {2, 1}, {0, 0}, {1, 1}, {2, 2}}));
}

TEST(Bisim, PartitionBlocksHelper) {
  const KripkeModel k = mm_model(star_graph(3));
  const Partition p = coarsest_bisimulation(k);
  const auto blocks = p.blocks();
  ASSERT_EQ(blocks.size(), 2u);
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  EXPECT_EQ(total, 4u);
}

// --- Differential: worklist refinement ≡ scalar reference -----------------
//
// The smaller-half worklist path promises the EXACT output of the full
// signature-pass reference — same block ids, same block count and, most
// delicately, the same round count (which carries modal-depth semantics
// via bounded refinement). WM_SEED=<n> narrows a failure to one seed.

class RefinementDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(RefinementDifferential, WorklistMatchesReferenceExactly) {
  const bool graded = GetParam();
  auto fast = [&](const KripkeModel& k, int t) {
    return graded ? coarsest_graded_bisimulation(k, t)
                  : coarsest_bisimulation(k, t);
  };
  auto reference = [&](const KripkeModel& k, int t) {
    return graded ? coarsest_graded_bisimulation_reference(k, t)
                  : coarsest_bisimulation_reference(k, t);
  };
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng mrng(seed + 21);
    for (int trial = 0; trial < 100; ++trial) {
      const KripkeModel k = canontest::random_kripke_model(mrng);
      for (const int t : {-1, 0, 1, 2, 3}) {
        const Partition got = fast(k, t);
        const Partition want = reference(k, t);
        EXPECT_EQ(got.block, want.block)
            << "t=" << t << " — reproduce with WM_SEED=" << seed;
        EXPECT_EQ(got.num_blocks, want.num_blocks) << "t=" << t;
        EXPECT_EQ(got.rounds, want.rounds)
            << "t=" << t << " — reproduce with WM_SEED=" << seed;
      }
    }
  }
}

// Metamorphic: relabelling the states permutes the partition — the block
// *contents* (as a set of state sets, after unpermuting) and the round
// count are invariants of the model's shape.
TEST_P(RefinementDifferential, PartitionCommutesWithRelabelling) {
  const bool graded = GetParam();
  auto fast = [&](const KripkeModel& k) {
    return graded ? coarsest_graded_bisimulation(k)
                  : coarsest_bisimulation(k);
  };
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng mrng(seed + 63);
    for (int trial = 0; trial < 40; ++trial) {
      const KripkeModel k = canontest::random_kripke_model(mrng);
      const std::vector<int> perm =
          canontest::random_permutation(k.num_states(), mrng);
      const KripkeModel m = canontest::relabelled_model(k, perm);
      const Partition on_k = fast(k);
      const Partition on_m = fast(m);
      EXPECT_EQ(on_k.num_blocks, on_m.num_blocks);
      EXPECT_EQ(on_k.rounds, on_m.rounds)
          << "round count changed under relabelling — WM_SEED=" << seed;
      auto as_sets = [](const Partition& p) {
        std::set<std::set<int>> out;
        for (const auto& b : p.blocks()) out.emplace(b.begin(), b.end());
        return out;
      };
      // Unpermute m's blocks back into k's state names.
      Partition unpermuted = on_m;
      for (int v = 0; v < k.num_states(); ++v) {
        unpermuted.block[v] = on_m.block[perm[v]];
      }
      EXPECT_EQ(as_sets(on_k), as_sets(unpermuted))
          << "block contents changed under relabelling — WM_SEED=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Logics, RefinementDifferential, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Graded" : "Ungraded";
                         });

TEST(Bisim, ValuationPartitionMatchesDepthZeroRefinement) {
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng mrng(seed + 99);
    for (int trial = 0; trial < 50; ++trial) {
      const KripkeModel k = canontest::random_kripke_model(mrng);
      const Partition b1 = valuation_partition(k);
      const Partition depth0 = coarsest_bisimulation(k, 0);
      EXPECT_EQ(b1.block, depth0.block) << "WM_SEED=" << seed;
      EXPECT_EQ(b1.num_blocks, depth0.num_blocks);
    }
  }
}

// The gated refinement work counters (`bisim.refine_rounds` above all —
// it carries the paper's round/modal-depth correspondence) must not
// depend on pool size when refinements run from worker threads.
TEST(BisimObs, RefinementWorkInvariantAcrossThreadCounts) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  std::vector<KripkeModel> models;
  Rng mrng(42);
  for (int i = 0; i < 8; ++i) {
    models.push_back(canontest::random_kripke_model(mrng));
  }
  auto run_batch = [&](int threads) {
    const auto before = obs::registry().snapshot(obs::CounterKind::kWork);
    ThreadPool pool(threads);
    pool.parallel_for(0, models.size(), [&](std::uint64_t i) {
      (void)coarsest_bisimulation(models[i]);
      (void)coarsest_graded_bisimulation(models[i]);
    });
    const auto after = obs::registry().snapshot(obs::CounterKind::kWork);
    std::map<std::string, std::uint64_t> delta;
    for (const auto& [name, value] : after) {
      const auto it = before.find(name);
      const std::uint64_t base = it == before.end() ? 0 : it->second;
      if (value != base) delta[name] = value - base;
    }
    return delta;
  };
  const auto serial = run_batch(1);
  ASSERT_TRUE(serial.contains("bisim.refine_rounds"));
  ASSERT_TRUE(serial.contains("bisim.refinements"));
  const auto parallel = run_batch(8);
  EXPECT_EQ(serial, parallel);
#endif
}

TEST(Bisim, VariantsSeeDifferentAmountsOfInformation) {
  // On a star with identity numbering, K_{+,-} keeps the leaves
  // bisimilar, while K_{-,+} (out-ports visible to the *receiver* via
  // R(*,j)) also keeps them bisimilar; but K_{+,+} with distinct centre
  // in-ports still cannot split leaves... Verify the documented Theorem
  // 11 situation: leaves bisimilar in K_{+,-} for every port numbering.
  const Graph g = star_graph(3);
  std::size_t checked = for_each_port_numbering(g, [&](const PortNumbering& p) {
    const KripkeModel k = kripke_from_graph(p, Variant::PlusMinus);
    const Partition part = coarsest_bisimulation(k);
    EXPECT_TRUE(part.same_block(1, 2));
    EXPECT_TRUE(part.same_block(2, 3));
    return true;
  });
  EXPECT_EQ(checked, 36u);
}

}  // namespace
}  // namespace wm
