#include "bisim/bisimulation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "port/port_numbering.hpp"

namespace wm {
namespace {

KripkeModel mm_model(const Graph& g) {
  return kripke_from_graph(PortNumbering::identity(g), Variant::MinusMinus);
}

TEST(Bisim, CycleNodesAllBisimilar) {
  const KripkeModel k = mm_model(cycle_graph(6));
  const Partition p = coarsest_bisimulation(k);
  EXPECT_EQ(p.num_blocks, 1);
  EXPECT_TRUE(verify_bisimulation_partition(k, p));
}

TEST(Bisim, CyclesOfDifferentLengthsBisimilarInSetView) {
  // Anonymity at its starkest: a 3-cycle node and a 1000-cycle node are
  // bisimilar in K_{-,-}.
  const KripkeModel a = mm_model(cycle_graph(3));
  const KripkeModel b = mm_model(cycle_graph(12));
  EXPECT_TRUE(bisimilar_across(a, 0, b, 0));
  EXPECT_TRUE(bisimilar_across(a, 0, b, 0, /*graded=*/true));
}

TEST(Bisim, StarCentreVsLeaf) {
  const KripkeModel k = mm_model(star_graph(3));
  const Partition p = coarsest_bisimulation(k);
  EXPECT_EQ(p.num_blocks, 2);
  EXPECT_FALSE(p.same_block(0, 1));
  EXPECT_TRUE(p.same_block(1, 2));
  EXPECT_TRUE(p.same_block(2, 3));
}

TEST(Bisim, GradedRefinesUngraded) {
  // Two stars joined at the leaves level: build a graph where ungraded
  // and graded partitions differ. Take K_{1,2} ∪ K_{1,3} as one graph:
  // the two centres have degrees 2 and 3 — distinguishable by props.
  // Instead use: path P3 vs star S3 centre — the centre of S3 has three
  // q1-successors, the middle of P3 has two; as *sets* both are {leafish}
  // ... but props differ (q2 vs q3). Use a genuinely multiplicity-only
  // distinction: C4 vs C6 joined? Simplest known: a node with two
  // distinct-looking... We verify on the Theorem 13 witness instead:
  // degree-3 nodes of the two components are bisimilar but NOT g-bisimilar.
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 4);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  g.add_edge(3, 5);
  g.add_edge(6, 7);
  g.add_edge(6, 8);
  g.add_edge(6, 9);
  g.add_edge(7, 8);
  g.add_edge(7, 9);
  const KripkeModel k = mm_model(g);
  const Partition ungraded = coarsest_bisimulation(k);
  const Partition graded = coarsest_graded_bisimulation(k);
  EXPECT_TRUE(ungraded.same_block(0, 6));
  EXPECT_FALSE(graded.same_block(0, 6));
  EXPECT_GT(graded.num_blocks, ungraded.num_blocks);
  EXPECT_TRUE(verify_bisimulation_partition(k, ungraded));
  EXPECT_TRUE(verify_graded_bisimulation_partition(k, graded));
}

TEST(Bisim, BoundedRefinementMonotone) {
  const KripkeModel k = mm_model(path_graph(7));
  int prev = 1;
  for (int t = 0; t <= 5; ++t) {
    const Partition p = coarsest_bisimulation(k, t);
    EXPECT_GE(p.num_blocks, prev);
    prev = p.num_blocks;
  }
  // Depth-0: only degree props distinguish (2 blocks: endpoints vs rest).
  EXPECT_EQ(coarsest_bisimulation(k, 0).num_blocks, 2);
  // Full refinement on P7: positions fold by symmetry: {0,6},{1,5},{2,4},{3}.
  EXPECT_EQ(coarsest_bisimulation(k).num_blocks, 4);
}

TEST(Bisim, Lemma15SymmetricNumberingMakesAllNodesBisimilar) {
  for (const Graph& g : {cycle_graph(5), petersen_graph(), fig9a_graph(),
                         complete_graph(6)}) {
    const PortNumbering p = PortNumbering::symmetric_regular(g);
    const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
    const Partition part = coarsest_bisimulation(k);
    EXPECT_EQ(part.num_blocks, 1) << "graph with n=" << g.num_nodes();
    EXPECT_TRUE(verify_bisimulation_partition(k, part));
    // The full relation V x V is literally a bisimulation (Lemma 15).
    std::vector<std::pair<int, int>> full;
    for (int u = 0; u < g.num_nodes(); ++u) {
      for (int v = 0; v < g.num_nodes(); ++v) full.emplace_back(u, v);
    }
    EXPECT_TRUE(is_bisimulation_relation(k, full));
  }
}

TEST(Bisim, Lemma16ConsistentNumberingsBreakSymmetryOnFig9a) {
  // fig9a has no 1-factor, so by Lemma 16 no consistent port numbering
  // can make all nodes bisimilar in K_{+,+}.
  const Graph g = fig9a_graph();
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const PortNumbering p = PortNumbering::random_consistent(g, rng);
    const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
    EXPECT_GT(coarsest_bisimulation(k).num_blocks, 1);
  }
}

TEST(Bisim, Lemma16ConverseOnGraphWithOneFactor) {
  // K4 is 3-regular WITH a 1-factor: a consistent symmetric numbering
  // exists (pair nodes by three disjoint perfect matchings).
  const Graph g = complete_graph(4);
  ASSERT_TRUE(has_one_factor(g));
  // Consistent numbering from the proper 3-edge-colouring of K4:
  // matchings {01,23}, {02,13}, {03,12} -> port = colour index.
  std::vector<std::vector<int>> perm(4);
  auto colour_of = [](int u, int v) {
    const int s = u ^ v;  // 1, 2, 3 for the three matchings
    return s;
  };
  for (int v = 0; v < 4; ++v) {
    for (int u = 0; u < 4; ++u) {
      if (u == v) continue;
      perm[v].push_back(colour_of(u, v));
    }
  }
  auto copy = perm;
  const PortNumbering p = PortNumbering::from_permutations(g, perm, copy);
  ASSERT_TRUE(p.is_consistent());
  const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
  EXPECT_EQ(coarsest_bisimulation(k).num_blocks, 1);
}

TEST(Bisim, IsBisimulationRelationRejectsBadRelations) {
  const KripkeModel k = mm_model(star_graph(2));
  // Pairing the centre with a leaf violates B1 (different degree props).
  EXPECT_FALSE(is_bisimulation_relation(k, {{0, 1}}));
  // Empty relation is not a bisimulation by definition.
  EXPECT_FALSE(is_bisimulation_relation(k, {}));
  // Identity is always one.
  EXPECT_TRUE(is_bisimulation_relation(k, {{0, 0}, {1, 1}, {2, 2}}));
  // The two leaves are bisimilar.
  EXPECT_TRUE(is_bisimulation_relation(k, {{1, 2}, {2, 1}, {0, 0}, {1, 1}, {2, 2}}));
}

TEST(Bisim, PartitionBlocksHelper) {
  const KripkeModel k = mm_model(star_graph(3));
  const Partition p = coarsest_bisimulation(k);
  const auto blocks = p.blocks();
  ASSERT_EQ(blocks.size(), 2u);
  std::size_t total = 0;
  for (const auto& b : blocks) total += b.size();
  EXPECT_EQ(total, 4u);
}

TEST(Bisim, VariantsSeeDifferentAmountsOfInformation) {
  // On a star with identity numbering, K_{+,-} keeps the leaves
  // bisimilar, while K_{-,+} (out-ports visible to the *receiver* via
  // R(*,j)) also keeps them bisimilar; but K_{+,+} with distinct centre
  // in-ports still cannot split leaves... Verify the documented Theorem
  // 11 situation: leaves bisimilar in K_{+,-} for every port numbering.
  const Graph g = star_graph(3);
  std::size_t checked = for_each_port_numbering(g, [&](const PortNumbering& p) {
    const KripkeModel k = kripke_from_graph(p, Variant::PlusMinus);
    const Partition part = coarsest_bisimulation(k);
    EXPECT_TRUE(part.same_block(1, 2));
    EXPECT_TRUE(part.same_block(2, 3));
    return true;
  });
  EXPECT_EQ(checked, 36u);
}

}  // namespace
}  // namespace wm
