// Rolling time-windowed views over the counter and histogram
// registries.
//
// The cumulative registries (counters.hpp, histogram.hpp) only ever
// grow, which is exactly right for bench JSONs and regression gates but
// useless for watching a live daemon: "4 billion rounds since boot"
// says nothing about the last minute. The window layer fixes that
// without touching the hot path. A WindowRing holds a ring of
// *snapshots* — immutable copies of every counter value and every
// histogram's bucket counts, stamped with a steady-clock time. Because
// both registries are monotone (counters only add, bucket tallies only
// add), the component-wise difference of any two snapshots is itself a
// valid measurement: the work done and the duration multiset recorded
// between the two capture instants. delta(seconds) picks the newest
// snapshot and the best snapshot at least `seconds` older and returns
// that difference, from which req/s rates and windowed p50/p90/p99
// (via summary_from_buckets) fall out.
//
// Concurrency contract: capture() may be called from any thread (the
// server's 1 Hz sampler, a stats handler, a bench) and readers never
// block writers. Each ring slot is a std::atomic<std::shared_ptr<const
// Snapshot>>; capture claims a slot index with one fetch_add and
// publishes with an atomic store, delta() loads slots with acquire
// semantics and works on the immutable Snapshots it got. The recording
// hot path is untouched — still one relaxed fetch_add per event.
//
// Window statistics are *info-kind telemetry* in the sense of
// counters.hpp: they depend on wall-clock timing and capture cadence,
// so they are reported (the stats "window" section, the metrics
// endpoint, wm_top) but must never enter a CI gate.
//
// This header intentionally compiles the same under -DWM_OBS=OFF: the
// registries it reads are empty there, so snapshots and deltas
// degenerate to zero-cost empties without a second code path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/histogram.hpp"

namespace wm::obs {

/// One immutable capture of both registries. Shared (never mutated)
/// between the ring and any reader that loaded it.
struct Snapshot {
  std::chrono::steady_clock::time_point when;
  std::uint64_t seq = 0;  // capture order, monotone from 1
  std::map<std::string, std::uint64_t> work;
  std::map<std::string, std::uint64_t> info;
  std::map<std::string, HistogramBuckets> timings;
};

/// The difference of two snapshots: everything that happened in between.
/// `seconds` is the actual elapsed span (may differ from the requested
/// window when captures are sparse). Counters absent from the older
/// snapshot are treated as 0 there (they were registered inside the
/// window). `valid` is false when fewer than two captures exist; all
/// maps are then empty and `seconds` is 0.
struct WindowDelta {
  double seconds = 0;
  bool valid = false;
  std::map<std::string, std::uint64_t> work;
  std::map<std::string, std::uint64_t> info;
  std::map<std::string, HistogramBuckets> timings;

  /// delta-count / seconds for one counter, 0 when absent or span is 0.
  double rate(const std::string& counter) const noexcept;
};

/// Lock-free ring of snapshots. Capacity bounds history: at the default
/// 1 Hz sampling cadence, 128 slots cover a two-minute lookback.
class WindowRing {
 public:
  static constexpr int kSlots = 128;

  WindowRing() = default;
  WindowRing(const WindowRing&) = delete;
  WindowRing& operator=(const WindowRing&) = delete;

  /// Snapshots both registries into the next ring slot. Any thread.
  void capture();

  /// Difference between the newest snapshot and the oldest snapshot
  /// that is still within `seconds` of it — i.e. the youngest snapshot
  /// at least `seconds` old, or the oldest available when none is that
  /// old. Any thread.
  WindowDelta delta(double seconds) const;

  /// Total captures since construction.
  std::uint64_t captures() const noexcept;

 private:
  std::array<std::atomic<std::shared_ptr<const Snapshot>>, kSlots> slots_{};
  std::atomic<std::uint64_t> next_{0};
};

/// The process-wide ring used by the serve layer and benches.
WindowRing& window();

/// Background thread calling window().capture() at a fixed period.
/// start/stop are idempotent; stop joins. The serve layer owns one.
class WindowSampler {
 public:
  explicit WindowSampler(
      std::chrono::milliseconds period = std::chrono::milliseconds(1000));
  ~WindowSampler();
  WindowSampler(const WindowSampler&) = delete;
  WindowSampler& operator=(const WindowSampler&) = delete;

  void start();
  void stop();

 private:
  std::chrono::milliseconds period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace wm::obs
