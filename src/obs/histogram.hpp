// Duration histograms for the observability layer.
//
// A histogram is a set of log2 buckets over nanosecond durations:
// bucket i holds every duration d with bit_width(d) == i, i.e. the
// range [2^(i-1), 2^i - 1] (bucket 0 holds exactly 0 ns). Recording is
// one relaxed fetch_add into a per-thread shard — no locks, no
// allocation — so WM_TIME_SCOPE is safe in hot paths and under TSan.
// Reading merges the shards into a Summary (count / p50 / p90 / p99 /
// max): percentiles are bucket upper bounds, deterministic given the
// recorded multiset; the max is tracked exactly.
//
// Durations are *timing telemetry*, the same epistemic status as the
// kInfo counters of counters.hpp: they vary with hardware, load and
// thread count, so they are reported (the "timings" section of every
// BENCH_*.json) but must never enter the work-counter regression gate.
//
// Configure with -DWM_OBS=OFF to compile WM_TIME_SCOPE out entirely.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace wm::obs {

/// Merged view of one histogram. Percentile semantics: p(q) is the
/// upper bound, in microseconds, of the bucket holding the sample of
/// rank ceil(q/100 * count) in the sorted multiset (0 when count == 0).
struct HistogramSummary {
  std::uint64_t count = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;  // exact, not bucketed
};

/// Raw merged view of one histogram: per-bucket counts plus the exact
/// nanosecond sum and max. This is the window layer's snapshot unit —
/// bucket counts are monotone cumulative tallies, so the difference of
/// two snapshots is itself a valid histogram (the window's multiset).
struct HistogramBuckets {
  std::array<std::uint64_t, 64> counts{};
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts) t += c;
    return t;
  }
};

/// Upper bound of log2 bucket `i` in microseconds (2^i - 1 ns; bucket 0
/// holds exactly 0 ns). The deterministic percentile representative.
double bucket_upper_us(int i) noexcept;

/// Summary of an arbitrary bucket-count multiset (e.g. a window delta).
/// max_us is b.max_ns when set, else the upper bound of the highest
/// non-empty bucket — a window cannot difference exact maxima.
HistogramSummary summary_from_buckets(const HistogramBuckets& b) noexcept;

class Histogram {
 public:
  static constexpr int kBuckets = 64;  // bit_width of a uint64 duration
  // Shards cut same-bucket contention when many workers record the same
  // phase; any thread -> shard mapping preserves the merged multiset.
  static constexpr int kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one duration. Relaxed atomics only; thread-safe.
  void record(std::uint64_t nanos) noexcept;

  /// Merges every shard into one summary (see HistogramSummary).
  HistogramSummary summary() const noexcept;

  /// Merges every shard into raw bucket counts + sum + max. This is the
  /// form window snapshots difference.
  HistogramBuckets buckets() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Process-wide histogram registry, mirroring the counter Registry:
/// references are stable for the process lifetime, lookup is
/// mutex-protected and cached per call site by the WM_TIME_SCOPE macro.
class HistogramRegistry {
 public:
  static HistogramRegistry& instance();

  /// Returns the histogram registered under `name`, creating it on
  /// first use (dotted lowercase hierarchy: "decision.decide").
  Histogram& histogram(std::string_view name);

  /// Name -> merged summary for every registered histogram, sorted by
  /// name. Histograms that never recorded are included (count 0).
  std::map<std::string, HistogramSummary> snapshot() const;

  /// Name -> raw merged buckets, sorted by name — the window layer's
  /// capture unit and the metrics endpoint's bucket source.
  std::map<std::string, HistogramBuckets> bucket_snapshot() const;

  void reset();

 private:
  HistogramRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
};

inline HistogramRegistry& histograms() { return HistogramRegistry::instance(); }

/// The registry snapshot as a JSON object body — the "timings" section
/// of every BENCH_*.json:
///   {"decision.decide": {"count": 3, "p50_us": 12.3, ...}, ...}
/// "{}" when nothing was recorded (e.g. under -DWM_OBS=OFF).
std::string timings_json();

/// RAII duration sample: records the scope's lifetime into `h` on exit.
/// Usually spelled WM_TIME_SCOPE("name").
class TimeScope {
 public:
  explicit TimeScope(Histogram& h) noexcept
      : h_(h), begin_(std::chrono::steady_clock::now()) {}
  ~TimeScope() {
    h_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin_)
            .count()));
  }
  TimeScope(const TimeScope&) = delete;
  TimeScope& operator=(const TimeScope&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace wm::obs

#if !defined(WM_OBS_DISABLED)

#define WM_TIME_CONCAT_IMPL(a, b) a##b
#define WM_TIME_CONCAT(a, b) WM_TIME_CONCAT_IMPL(a, b)

/// Samples the enclosing block's duration into the named histogram:
/// WM_TIME_SCOPE("decision.decide"). Name is a quoted dotted string.
#define WM_TIME_SCOPE(name)                                              \
  static ::wm::obs::Histogram& WM_TIME_CONCAT(wm_obs_hist_site_,         \
                                              __LINE__) =                \
      ::wm::obs::histograms().histogram(name);                           \
  ::wm::obs::TimeScope WM_TIME_CONCAT(wm_obs_time_scope_, __LINE__)(     \
      WM_TIME_CONCAT(wm_obs_hist_site_, __LINE__))

#else  // WM_OBS_DISABLED

#define WM_TIME_SCOPE(name) \
  do {                      \
  } while (0)

#endif  // WM_OBS_DISABLED
