#include "graph/factorisation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

void check_circuit(const Graph& g, const std::vector<NodeId>& circuit,
                   NodeId start) {
  ASSERT_FALSE(circuit.empty());
  EXPECT_EQ(circuit.front(), start);
  EXPECT_EQ(circuit.back(), start);
  // Every consecutive pair is an edge, and each edge is used exactly once.
  std::map<std::pair<NodeId, NodeId>, int> used;
  for (std::size_t i = 0; i + 1 < circuit.size(); ++i) {
    const NodeId a = circuit[i], b = circuit[i + 1];
    ASSERT_TRUE(g.has_edge(a, b)) << a << "-" << b;
    ++used[{std::min(a, b), std::max(a, b)}];
  }
  int reachable_edges = 0;
  const auto dist = bfs_distances(g, start);
  for (const Edge& e : g.edges()) {
    if (dist[e.u] >= 0) ++reachable_edges;
  }
  EXPECT_EQ(static_cast<int>(used.size()), reachable_edges);
  for (const auto& [e, count] : used) EXPECT_EQ(count, 1);
}

TEST(Eulerian, CircuitOnCycle) {
  const Graph g = cycle_graph(6);
  const auto c = eulerian_circuit(g);
  ASSERT_TRUE(c.has_value());
  check_circuit(g, *c, 0);
  EXPECT_EQ(c->size(), 7u);
}

TEST(Eulerian, CircuitOnK5) {
  const Graph g = complete_graph(5);
  const auto c = eulerian_circuit(g, 2);
  ASSERT_TRUE(c.has_value());
  check_circuit(g, *c, 2);
}

TEST(Eulerian, NoCircuitWithOddDegrees) {
  EXPECT_FALSE(eulerian_circuit(path_graph(3)).has_value());
  EXPECT_FALSE(eulerian_circuit(complete_graph(4)).has_value());
}

TEST(Eulerian, IsolatedStartIsTrivial) {
  Graph g(3);
  g.add_edge(1, 2);
  const auto c = eulerian_circuit(g, 0);  // node 0 is isolated
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (std::vector<NodeId>{0}));
}

TEST(Eulerian, OtherComponentIgnored) {
  // Component of 0 is a triangle; a distant path with odd degrees must
  // not block the circuit.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const auto c = eulerian_circuit(g, 0);
  ASSERT_TRUE(c.has_value());
  check_circuit(g, *c, 0);
  EXPECT_FALSE(eulerian_circuit(g, 3).has_value());
}

void check_two_factorisation(const Graph& g) {
  const int k = g.max_degree() / 2;
  const auto factors = two_factorisation(g);
  ASSERT_EQ(static_cast<int>(factors.size()), k);
  std::map<std::pair<NodeId, NodeId>, int> covered;
  for (const auto& f : factors) {
    EXPECT_TRUE(is_two_factor(g, f));
    for (const Edge& e : f) ++covered[{e.u, e.v}];
  }
  // Factors partition the edge set.
  EXPECT_EQ(static_cast<int>(covered.size()), g.num_edges());
  for (const auto& [e, count] : covered) EXPECT_EQ(count, 1);
}

TEST(Petersen1891, CycleIsItsOwnTwoFactor) { check_two_factorisation(cycle_graph(7)); }
TEST(Petersen1891, K5) { check_two_factorisation(complete_graph(5)); }
TEST(Petersen1891, K7) { check_two_factorisation(complete_graph(7)); }
TEST(Petersen1891, FourRegularFamilies) {
  Rng rng(5);
  check_two_factorisation(random_regular_graph(12, 4, rng));
  check_two_factorisation(hypercube(4));           // 4-regular
  check_two_factorisation(complete_bipartite(4, 4));  // 4-regular
}
TEST(Petersen1891, DisconnectedUnionOfTriangles) {
  Graph g(6);
  for (int i = 0; i < 3; ++i) {
    g.add_edge(i, (i + 1) % 3);
    g.add_edge(3 + i, 3 + (i + 1) % 3);
  }
  check_two_factorisation(g);
}

TEST(Petersen1891, RejectsOddRegular) {
  EXPECT_THROW(two_factorisation(petersen_graph()), std::invalid_argument);
  EXPECT_THROW(two_factorisation(path_graph(3)), std::invalid_argument);
}

TEST(Petersen1891, IsTwoFactorPredicate) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(is_two_factor(g, g.edges()));
  EXPECT_FALSE(is_two_factor(g, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(is_two_factor(g, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 1}}));
}

}  // namespace
}  // namespace wm
