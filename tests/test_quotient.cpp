#include "bisim/quotient.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/random_formula.hpp"
#include "port/port_numbering.hpp"

namespace wm {
namespace {

TEST(Quotient, SymmetricCycleCollapsesToOneState) {
  const KripkeModel k = kripke_from_graph(
      PortNumbering::symmetric_regular(cycle_graph(8)), Variant::PlusPlus);
  const KripkeModel q = minimise(k);
  EXPECT_EQ(q.num_states(), 1);
  // The single state has a self-loop per diagonal relation.
  int loops = 0;
  for (const Modality& alpha : q.modalities()) {
    if (!q.successors(alpha, 0).empty()) ++loops;
  }
  EXPECT_EQ(loops, 2);  // R(1,1) and R(2,2)
}

TEST(Quotient, StarQuotientHasTwoStates) {
  const KripkeModel k = kripke_from_graph(PortNumbering::identity(star_graph(5)),
                                          Variant::MinusMinus);
  const KripkeModel q = minimise(k);
  EXPECT_EQ(q.num_states(), 2);
}

TEST(Quotient, PreservesPropositions) {
  const KripkeModel k = kripke_from_graph(PortNumbering::identity(path_graph(5)),
                                          Variant::MinusMinus);
  const Partition p = coarsest_bisimulation(k);
  const KripkeModel q = quotient_model(k, p);
  for (int v = 0; v < k.num_states(); ++v) {
    for (int prop = 1; prop <= k.num_props(); ++prop) {
      EXPECT_EQ(k.prop_holds(prop, v), q.prop_holds(prop, p.block[v]));
    }
  }
}

class QuotientSemantics : public ::testing::TestWithParam<Variant> {};

TEST_P(QuotientSemantics, UngradedFormulasSurviveQuotienting) {
  Rng frng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  Rng grng(2);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = random_connected_graph(8, 3, 4, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    const Partition part = coarsest_bisimulation(k);
    const KripkeModel q = quotient_model(k, part);
    RandomFormulaOptions opts;
    opts.variant = GetParam();
    opts.delta = g.max_degree();
    opts.num_props = g.max_degree();
    opts.graded = false;  // quotient is sound for ungraded logic only
    opts.max_depth = 4;
    for (int i = 0; i < 8; ++i) {
      const Formula f = random_formula(frng, opts);
      const auto big = model_check(k, f);
      const auto small = model_check(q, f);
      for (int v = 0; v < k.num_states(); ++v) {
        EXPECT_EQ(big[v], small[part.block[v]]) << f.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, QuotientSemantics,
                         ::testing::Values(Variant::PlusPlus, Variant::MinusPlus,
                                           Variant::PlusMinus,
                                           Variant::MinusMinus));

TEST(Quotient, MinimisedModelIsAlreadyMinimal) {
  Rng rng(3);
  const Graph g = random_connected_graph(9, 3, 4, rng);
  const KripkeModel k =
      kripke_from_graph(PortNumbering::random(g, rng), Variant::MinusMinus);
  const KripkeModel q = minimise(k);
  EXPECT_EQ(coarsest_bisimulation(q).num_blocks, q.num_states());
}

class GradedQuotientSemantics : public ::testing::TestWithParam<Variant> {};

TEST_P(GradedQuotientSemantics, GradedFormulasSurviveGradedQuotient) {
  Rng frng(static_cast<std::uint64_t>(GetParam()) * 11 + 2);
  Rng grng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(8, 3, 4, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    const Partition part = coarsest_graded_bisimulation(k);
    const KripkeModel q = graded_quotient_model(k, part);
    RandomFormulaOptions opts;
    opts.variant = GetParam();
    opts.delta = g.max_degree();
    opts.num_props = g.max_degree();
    opts.graded = true;  // multiplicities preserved via parallel edges
    opts.max_depth = 4;
    for (int i = 0; i < 6; ++i) {
      const Formula f = random_formula(frng, opts);
      const auto big = model_check(k, f);
      const auto small = model_check(q, f);
      for (int v = 0; v < k.num_states(); ++v) {
        EXPECT_EQ(big[v], small[part.block[v]]) << f.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GradedQuotientSemantics,
                         ::testing::Values(Variant::MinusPlus,
                                           Variant::MinusMinus));

TEST(Quotient, GradedQuotientOfStarKeepsMultiplicity) {
  const KripkeModel k = kripke_from_graph(PortNumbering::identity(star_graph(5)),
                                          Variant::MinusMinus);
  const KripkeModel q = minimise_graded(k);
  EXPECT_EQ(q.num_states(), 2);
  const Formula f = Formula::diamond({0, 0}, Formula::prop(1), 3);
  // The centre block keeps 5 parallel edges to the leaf block.
  const Partition p = coarsest_graded_bisimulation(k);
  EXPECT_TRUE(model_check(q, f)[p.block[0]]);
}

TEST(Quotient, GradedSemanticsMayDifferAfterQuotient) {
  // Documented limitation: grading counts multiplicities, which the
  // quotient collapses. The star centre sees 5 leaves; in the quotient
  // it sees one leaf-state.
  const KripkeModel k = kripke_from_graph(PortNumbering::identity(star_graph(5)),
                                          Variant::MinusMinus);
  const Partition p = coarsest_bisimulation(k);
  const KripkeModel q = quotient_model(k, p);
  const Formula f = Formula::diamond({0, 0}, Formula::prop(1), 3);
  EXPECT_TRUE(model_check(k, f)[0]);
  EXPECT_FALSE(model_check(q, f)[p.block[0]]);
}

}  // namespace
}  // namespace wm
