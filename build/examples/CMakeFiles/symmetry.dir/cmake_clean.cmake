file(REMOVE_RECURSE
  "CMakeFiles/symmetry.dir/symmetry.cpp.o"
  "CMakeFiles/symmetry.dir/symmetry.cpp.o.d"
  "symmetry"
  "symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
