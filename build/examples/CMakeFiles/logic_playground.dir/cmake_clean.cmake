file(REMOVE_RECURSE
  "CMakeFiles/logic_playground.dir/logic_playground.cpp.o"
  "CMakeFiles/logic_playground.dir/logic_playground.cpp.o.d"
  "logic_playground"
  "logic_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
