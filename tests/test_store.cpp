// The disk-backed certificate store's own suite: segment round-trips,
// every corruption code in the StoreError taxonomy, crash-window
// resume via open_at, and the streaming census's pause/resume ≡
// uninterrupted contract (the in-process half of the CI kill/resume
// gate; the SIGKILL half lives in ci.yml).
#include "store/cert_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/enumerate.hpp"
#include "store/census.hpp"
#include "store/checkpoint.hpp"
#include "util/parallel.hpp"

namespace wm::store {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("wm_store_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::string slurp(const std::string& p) {
  std::ifstream f(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void spit(const std::string& p, const std::string& data) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f << data;
}

StoreErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StoreError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a StoreError";
  return StoreErrorCode::kIo;
}

TEST_F(StoreTest, Crc32KnownAnswer) {
  // The canonical IEEE check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Seed chaining == one-shot over the concatenation.
  EXPECT_EQ(crc32("6789", crc32("12345")), crc32("123456789"));
}

TEST_F(StoreTest, SegmentRoundTrip) {
  std::vector<std::pair<std::string, std::uint64_t>> records = {
      {"charlie", 3}, {"alpha", 1}, {"bravo", 2}};
  const std::uint32_t crc = Segment::write(path("seg"), "kind-x", records);
  const Segment seg = Segment::open(path("seg"), "kind-x");
  EXPECT_EQ(seg.count(), 3u);
  EXPECT_EQ(seg.payload_crc(), crc);
  EXPECT_EQ(seg.kind(), "kind-x");
  EXPECT_FALSE(seg.git().empty());
  EXPECT_EQ(seg.find("alpha"), std::optional<std::uint64_t>(1));
  EXPECT_EQ(seg.find("bravo"), std::optional<std::uint64_t>(2));
  EXPECT_EQ(seg.find("charlie"), std::optional<std::uint64_t>(3));
  EXPECT_FALSE(seg.find("delta").has_value());
  EXPECT_FALSE(seg.contains(""));
  // for_each replays in sorted key order.
  std::vector<std::string> keys;
  seg.for_each([&](std::string_view k, std::uint64_t) {
    keys.emplace_back(k);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "bravo", "charlie"}));
}

TEST_F(StoreTest, SegmentEmptyAndBinaryKeys) {
  std::string binary("\x00\xff\x01", 3);
  const std::uint32_t crc =
      Segment::write(path("seg"), "k", {{binary, 7}});
  const Segment seg = Segment::open(path("seg"), "k");
  EXPECT_EQ(seg.payload_crc(), crc);
  EXPECT_EQ(seg.find(binary), std::optional<std::uint64_t>(7));

  Segment::write(path("empty"), "k", {});
  EXPECT_EQ(Segment::open(path("empty"), "k").count(), 0u);
}

TEST_F(StoreTest, SegmentTruncationDetected) {
  Segment::write(path("seg"), "k", {{"alpha", 1}, {"bravo", 2}});
  const std::string whole = slurp(path("seg"));
  // Sliced anywhere — below the header or mid-payload — it must raise
  // kTruncated, never read garbage.
  spit(path("short"), whole.substr(0, 10));
  EXPECT_EQ(code_of([&] { Segment::open(path("short"), "k"); }),
            StoreErrorCode::kTruncated);
  spit(path("cut"), whole.substr(0, whole.size() - 5));
  EXPECT_EQ(code_of([&] { Segment::open(path("cut"), "k"); }),
            StoreErrorCode::kTruncated);
}

TEST_F(StoreTest, SegmentBadMagicDetected) {
  Segment::write(path("seg"), "k", {{"alpha", 1}});
  std::string bytes = slurp(path("seg"));
  bytes[0] = 'X';
  spit(path("seg"), bytes);
  EXPECT_EQ(code_of([&] { Segment::open(path("seg"), "k"); }),
            StoreErrorCode::kBadMagic);
}

TEST_F(StoreTest, SegmentVersionSkewDetected) {
  Segment::write(path("seg"), "k", {{"alpha", 1}});
  std::string bytes = slurp(path("seg"));
  bytes[8] = 99;  // version field, little-endian u32 at offset 8
  spit(path("seg"), bytes);
  EXPECT_EQ(code_of([&] { Segment::open(path("seg"), "k"); }),
            StoreErrorCode::kVersionSkew);
}

TEST_F(StoreTest, SegmentCrcMismatchDetected) {
  Segment::write(path("seg"), "k", {{"alpha", 1}});
  std::string bytes = slurp(path("seg"));
  bytes.back() ^= 0x40;  // flip one payload bit
  spit(path("seg"), bytes);
  EXPECT_EQ(code_of([&] { Segment::open(path("seg"), "k"); }),
            StoreErrorCode::kCrcMismatch);
}

TEST_F(StoreTest, SegmentKindMismatchDetected) {
  Segment::write(path("seg"), "graph-n5", {{"alpha", 1}});
  EXPECT_EQ(code_of([&] { Segment::open(path("seg"), "kripke-n5"); }),
            StoreErrorCode::kKindMismatch);
  // Empty expect_kind skips the check (corruption tooling).
  EXPECT_EQ(Segment::open(path("seg"), "").kind(), "graph-n5");
}

TEST_F(StoreTest, CrcFileTornTrailerDetected) {
  write_crc_file(path("f"), "hello 1\nworld 2\n");
  EXPECT_EQ(load_crc_file(path("f"), "test"), "hello 1\nworld 2\n");
  // Drop the trailer line: torn write.
  spit(path("f"), "hello 1\nworld 2\n");
  EXPECT_EQ(code_of([&] { load_crc_file(path("f"), "test"); }),
            StoreErrorCode::kTruncated);
  // Corrupt the body under an intact trailer.
  write_crc_file(path("g"), "hello 1\n");
  std::string bytes = slurp(path("g"));
  bytes[0] = 'j';
  spit(path("g"), bytes);
  EXPECT_EQ(code_of([&] { load_crc_file(path("g"), "test"); }),
            StoreErrorCode::kCrcMismatch);
}

TEST_F(StoreTest, CertStoreDedupsAcrossSeals) {
  auto store = CertStore::open(path("s"), "k");
  EXPECT_TRUE(store.insert_fresh("a", 10));
  EXPECT_TRUE(store.insert_fresh("b", 11));
  EXPECT_FALSE(store.insert_fresh("a", 12));  // front duplicate
  store.seal();
  EXPECT_FALSE(store.insert_fresh("a", 13));  // sealed duplicate
  EXPECT_TRUE(store.insert_fresh("c", 14));
  EXPECT_EQ(store.distinct_keys(), 3u);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_TRUE(store.contains("c"));
  EXPECT_FALSE(store.contains("z"));
  // Re-open from disk: the unsealed "c" is gone (fronts are volatile by
  // contract), the sealed keys survive.
  auto reopened = CertStore::open(path("s"), "k");
  EXPECT_EQ(reopened.distinct_keys(), 2u);
  EXPECT_TRUE(reopened.contains("a"));
  EXPECT_FALSE(reopened.contains("c"));
}

TEST_F(StoreTest, CertStoreSpillsAndCompacts) {
  StoreOptions options;
  options.spill_threshold = 4;
  options.compact_min_segments = 3;
  auto store = CertStore::open(path("s"), "k", options);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store.insert_fresh("key" + std::to_string(i),
                                   static_cast<std::uint64_t>(i)));
  }
  EXPECT_GE(store.stats().spills, 4u);
  EXPECT_EQ(store.distinct_keys(), 20u);
  store.seal();
  EXPECT_TRUE(store.compact_if_needed());
  EXPECT_EQ(store.segment_refs().size(), 1u);
  EXPECT_EQ(store.distinct_keys(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store.contains("key" + std::to_string(i))) << i;
  }
  // Replaced segment files linger until purge (crash-safety contract)...
  std::size_t files_before = 0;
  for (auto& e : fs::directory_iterator(path("s"))) {
    files_before += e.is_regular_file();
  }
  store.purge_unreferenced();
  std::size_t files_after = 0;
  for (auto& e : fs::directory_iterator(path("s"))) {
    files_after += e.is_regular_file();
  }
  EXPECT_LT(files_after, files_before);
  // ...and the purged store still reopens clean with full content.
  auto reopened = CertStore::open(path("s"), "k", options);
  EXPECT_EQ(reopened.distinct_keys(), 20u);
}

TEST_F(StoreTest, CertStoreKindMismatchOnOpen) {
  {
    auto store = CertStore::open(path("s"), "graph-n5");
    store.insert_fresh("a", 1);
    store.seal();
  }
  EXPECT_EQ(code_of([&] { CertStore::open(path("s"), "kripke-n5"); }),
            StoreErrorCode::kKindMismatch);
}

TEST_F(StoreTest, OpenAtRewindsToCheckpointedSet) {
  StoreOptions options;
  std::vector<SegmentRef> snapshot;
  {
    auto store = CertStore::open(path("s"), "k", options);
    store.insert_fresh("a", 1);
    store.seal();
    snapshot = store.segment_refs();  // what a checkpoint would record
    // The "crashed future": more segments the checkpoint never saw.
    store.insert_fresh("b", 2);
    store.seal();
    EXPECT_EQ(store.segment_refs().size(), 2u);
  }
  auto rewound = CertStore::open_at(path("s"), "k", snapshot, options);
  EXPECT_EQ(rewound.segment_refs(), snapshot);
  EXPECT_TRUE(rewound.contains("a"));
  EXPECT_FALSE(rewound.contains("b"));  // future segment deleted
  // Idempotent: rewinding again is a no-op.
  auto again = CertStore::open_at(path("s"), "k", snapshot, options);
  EXPECT_EQ(again.segment_refs(), snapshot);
}

TEST_F(StoreTest, CheckpointNewerThanStoreDetected) {
  std::vector<SegmentRef> snapshot;
  {
    auto store = CertStore::open(path("s"), "k");
    store.insert_fresh("a", 1);
    store.seal();
    snapshot = store.segment_refs();
  }
  ASSERT_EQ(snapshot.size(), 1u);
  // Store wiped under an intact checkpoint — e.g. the CI cache restored
  // a checkpoint but not the store dir.
  fs::remove(path("s") + "/" + snapshot[0].file);
  EXPECT_EQ(
      code_of([&] { CertStore::open_at(path("s"), "k", snapshot); }),
      StoreErrorCode::kCheckpointSkew);
  // Same file name, different content: also skew, caught by the CRC.
  Segment::write(path("s") + "/" + snapshot[0].file, "k", {{"other", 9}});
  EXPECT_EQ(
      code_of([&] { CertStore::open_at(path("s"), "k", snapshot); }),
      StoreErrorCode::kCheckpointSkew);
}

TEST_F(StoreTest, CheckpointRoundTrip) {
  Checkpoint cp;
  cp.kind = "graph-all-n6";
  cp.space = 32768;
  cp.batch = 1024;
  cp.next = 4096;
  cp.classes = 34;
  cp.admissible = 4096;
  cp.scanned = 4096;
  cp.batches = 4;
  cp.checkpoints = 2;
  cp.store_segments = {{"seg-000001.wmseg", 34, 0xdeadbeef}};
  cp.manifest_json = "{\"git\": \"test\"}";
  write_checkpoint(path("cp"), cp);
  EXPECT_EQ(load_checkpoint(path("cp")), cp);
}

TEST_F(StoreTest, CheckpointCorruptionDetected) {
  Checkpoint cp;
  cp.kind = "k";
  cp.space = 100;
  cp.batch = 10;
  cp.next = 10;
  write_checkpoint(path("cp"), cp);

  std::string bytes = slurp(path("cp"));
  spit(path("torn"), bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(code_of([&] { load_checkpoint(path("torn")); }),
            StoreErrorCode::kTruncated);

  std::string flipped = bytes;
  flipped[3] ^= 0x20;
  spit(path("flip"), flipped);
  EXPECT_EQ(code_of([&] { load_checkpoint(path("flip")); }),
            StoreErrorCode::kCrcMismatch);

  write_crc_file(path("alien"), "some-other-format 1\n");
  EXPECT_EQ(code_of([&] { load_checkpoint(path("alien")); }),
            StoreErrorCode::kBadMagic);

  write_crc_file(path("future"), "wm-census-checkpoint 999\nkind k\n");
  EXPECT_EQ(code_of([&] { load_checkpoint(path("future")); }),
            StoreErrorCode::kVersionSkew);

  // Frontier past the end of the space: grammar-valid but impossible.
  write_crc_file(path("past"),
                 "wm-census-checkpoint 1\nkind k\nspace 10\nnext 20\n");
  EXPECT_EQ(code_of([&] { load_checkpoint(path("past")); }),
            StoreErrorCode::kBadManifest);
}

/// A tiny deterministic census space: keys are i mod 37 over a domain
/// with gaps, so it has duplicates, inadmissibles, and 37 classes.
CensusSpace tiny_space() {
  CensusSpace space;
  space.kind = "tiny";
  space.count = 1000;
  space.classify = [](std::uint64_t i) -> std::optional<std::string> {
    if (i % 3 == 0) return std::nullopt;
    return "key" + std::to_string(i % 37);
  };
  return space;
}

TEST_F(StoreTest, CensusPauseResumeEqualsUninterrupted) {
  ThreadPool pool(4);
  CensusOptions base;
  base.batch = 64;
  base.checkpoint_every = 2;
  base.store.spill_threshold = 8;

  CensusOptions uninterrupted = base;
  uninterrupted.checkpoint_path = path("cp_full");
  const CensusResult full = run_census(tiny_space(), path("s_full"), &pool,
                                       uninterrupted);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.classes, 37u);
  EXPECT_EQ(full.scanned, 1000u);
  EXPECT_EQ(full.admissible, 666u);

  // Same census, paused after every 3 batches until done — including
  // pause points that don't land on a checkpoint boundary.
  CensusOptions chunked = base;
  chunked.checkpoint_path = path("cp_chunk");
  chunked.max_batches = 3;
  CensusResult last;
  int runs = 0;
  do {
    last = run_census(tiny_space(), path("s_chunk"), &pool, chunked);
    chunked.resume = true;
    ASSERT_LT(++runs, 20) << "census does not converge";
  } while (!last.complete);
  EXPECT_GT(runs, 2);  // the pause actually split the work
  EXPECT_EQ(last.classes, full.classes);
  EXPECT_EQ(last.scanned, full.scanned);
  EXPECT_EQ(last.admissible, full.admissible);
  EXPECT_EQ(last.batches, full.batches);
  EXPECT_EQ(last.store.sealed_keys + last.store.front_keys,
            full.store.sealed_keys + full.store.front_keys);
}

TEST_F(StoreTest, CensusResumeRejectsChangedParameters) {
  ThreadPool pool(2);
  CensusOptions opts;
  opts.batch = 64;
  opts.checkpoint_path = path("cp");
  opts.max_batches = 1;
  run_census(tiny_space(), path("s"), &pool, opts);

  opts.resume = true;
  opts.batch = 32;  // different batching → different totals → refuse
  EXPECT_EQ(code_of([&] { run_census(tiny_space(), path("s"), &pool, opts); }),
            StoreErrorCode::kCheckpointSkew);

  opts.batch = 64;
  CensusSpace other = tiny_space();
  other.kind = "other";
  EXPECT_EQ(code_of([&] { run_census(other, path("s"), &pool, opts); }),
            StoreErrorCode::kKindMismatch);
}

TEST_F(StoreTest, StreamEnumerationMatchesClassic) {
  // The streaming generator with a set-backed sink must visit exactly
  // the representatives enumerate_graphs_modulo_iso visits, in order —
  // at any batch size and thread count.
  EnumerateOptions opts;
  opts.connected_only = false;
  std::vector<std::string> classic;
  enumerate_graphs_modulo_iso(5, opts, [&](const Graph& g) {
    classic.push_back(g.to_string());
    return true;
  });
  ASSERT_EQ(classic.size(), 34u);  // A000088(5)

  ThreadPool pool(4);
  for (const std::uint64_t batch : {64u, 1024u, 0u}) {
    std::set<std::string> seen;
    std::vector<std::string> streamed;
    const std::size_t n = enumerate_graphs_modulo_iso_stream(
        5, opts, &pool, batch,
        [&](const std::string& cert, std::uint64_t) {
          return seen.insert(cert).second;
        },
        [&](const Graph& g) {
          streamed.push_back(g.to_string());
          return true;
        });
    EXPECT_EQ(n, classic.size()) << "batch=" << batch;
    EXPECT_EQ(streamed, classic) << "batch=" << batch;
  }
}

TEST_F(StoreTest, StreamEnumerationEarlyStop) {
  EnumerateOptions opts;
  opts.connected_only = false;
  std::set<std::string> seen;
  std::size_t visited = 0;
  enumerate_graphs_modulo_iso_stream(
      5, opts, nullptr, 128,
      [&](const std::string& cert, std::uint64_t) {
        return seen.insert(cert).second;
      },
      [&](const Graph&) { return ++visited < 5; });
  EXPECT_EQ(visited, 5u);
}

}  // namespace
}  // namespace wm::store
