# Empty compiler generated dependencies file for beeping_demo.
# This may be replaced when dependencies are built.
