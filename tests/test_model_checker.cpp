#include "logic/model_checker.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "graph/generators.hpp"
#include "logic/random_formula.hpp"
#include "obs/counters.hpp"
#include "support/canon_harness.hpp"
#include "support/diff_harness.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

KripkeModel path_model() {
  return kripke_from_graph(PortNumbering::identity(path_graph(3)),
                           Variant::MinusMinus);
}

TEST(ModelChecker, Atoms) {
  const KripkeModel k = path_model();
  EXPECT_EQ(model_check(k, Formula::tru()),
            (std::vector<bool>{true, true, true}));
  EXPECT_EQ(model_check(k, Formula::fls()),
            (std::vector<bool>{false, false, false}));
  // q1 = "degree 1": endpoints.
  EXPECT_EQ(model_check(k, Formula::prop(1)),
            (std::vector<bool>{true, false, true}));
}

TEST(ModelChecker, Connectives) {
  const KripkeModel k = path_model();
  const Formula q1 = Formula::prop(1), q2 = Formula::prop(2);
  EXPECT_EQ(model_check(k, Formula::negate(q1)),
            (std::vector<bool>{false, true, false}));
  EXPECT_EQ(model_check(k, Formula::conj(q1, q2)),
            (std::vector<bool>{false, false, false}));
  EXPECT_EQ(model_check(k, Formula::disj(q1, q2)),
            (std::vector<bool>{true, true, true}));
}

TEST(ModelChecker, DiamondAndBox) {
  const KripkeModel k = path_model();
  // <*,*> q2 — "some neighbour has degree 2": true at the endpoints.
  const Formula dq2 = Formula::diamond({0, 0}, Formula::prop(2));
  EXPECT_EQ(model_check(k, dq2), (std::vector<bool>{true, false, true}));
  // [*,*] q1 — "all neighbours have degree 1": true at the middle node.
  const Formula bq1 = Formula::box({0, 0}, Formula::prop(1));
  EXPECT_EQ(model_check(k, bq1), (std::vector<bool>{false, true, false}));
}

TEST(ModelChecker, GradedDiamonds) {
  const KripkeModel k = kripke_from_graph(
      PortNumbering::identity(star_graph(3)), Variant::MinusMinus);
  // Centre has 3 degree-1 neighbours.
  const Formula g2 = Formula::diamond({0, 0}, Formula::prop(1), 2);
  const Formula g3 = Formula::diamond({0, 0}, Formula::prop(1), 3);
  const Formula g4 = Formula::diamond({0, 0}, Formula::prop(1), 4);
  EXPECT_TRUE(model_check_at(k, g2, 0));
  EXPECT_TRUE(model_check_at(k, g3, 0));
  EXPECT_FALSE(model_check_at(k, g4, 0));
  EXPECT_FALSE(model_check_at(k, g2, 1));  // a leaf has one neighbour
}

TEST(ModelChecker, ModalDepthTwo) {
  const KripkeModel k = path_model();
  // <>(<> q2): "a neighbour has a neighbour of degree 2" — middle node's
  // neighbours (endpoints) each see the middle (degree 2): true at 1;
  // endpoints' neighbour is the middle, which sees no degree-2 node...
  const Formula f =
      Formula::diamond({0, 0}, Formula::diamond({0, 0}, Formula::prop(2)));
  EXPECT_EQ(model_check(k, f), (std::vector<bool>{false, true, false}));
}

TEST(ModelChecker, EmptyRelationDiamondIsFalseBoxIsTrue) {
  KripkeModel k(2, 1);
  k.ensure_relation({0, 0});
  EXPECT_FALSE(model_check_at(k, Formula::diamond({0, 0}, Formula::tru()), 0));
  EXPECT_TRUE(model_check_at(k, Formula::box({0, 0}, Formula::fls()), 0));
}

class CheckerAgreement : public ::testing::TestWithParam<Variant> {};

TEST_P(CheckerAgreement, MemoisedMatchesNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
  Rng grng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = random_connected_graph(8, 3, 3, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    RandomFormulaOptions opts;
    opts.variant = GetParam();
    opts.delta = g.max_degree();
    opts.num_props = g.max_degree();
    opts.graded = true;
    opts.max_depth = 3;
    const Formula f = random_formula(rng, opts);
    EXPECT_EQ(model_check(k, f), model_check_naive(k, f)) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CheckerAgreement,
                         ::testing::Values(Variant::PlusPlus, Variant::MinusPlus,
                                           Variant::PlusMinus,
                                           Variant::MinusMinus));

class Fact1Property : public ::testing::TestWithParam<Variant> {};

// Fact 1: bisimilar states satisfy the same (ungraded) formulas;
// g-bisimilar states satisfy the same graded formulas.
TEST_P(Fact1Property, BisimilarStatesAgreeOnFormulas) {
  Rng rng(91);
  Rng grng(92);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(9, 3, 4, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    for (const bool graded : {false, true}) {
      const Partition part = graded ? coarsest_graded_bisimulation(k)
                                    : coarsest_bisimulation(k);
      RandomFormulaOptions opts;
      opts.variant = GetParam();
      opts.delta = g.max_degree();
      opts.num_props = g.max_degree();
      opts.graded = graded;
      opts.max_depth = 4;
      for (int i = 0; i < 10; ++i) {
        const Formula f = random_formula(rng, opts);
        const auto truth = model_check(k, f);
        for (int u = 0; u < k.num_states(); ++u) {
          for (int v = u + 1; v < k.num_states(); ++v) {
            if (part.same_block(u, v)) {
              EXPECT_EQ(truth[u], truth[v])
                  << "Fact 1 violated by " << f.to_string();
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, Fact1Property,
                         ::testing::Values(Variant::PlusPlus, Variant::MinusPlus,
                                           Variant::PlusMinus,
                                           Variant::MinusMinus));

// --- Differential: packed path ≡ scalar reference -------------------------
//
// The bitset evaluator promises the EXACT denotation of the naive scalar
// recursion, bit for bit, on arbitrary seeded models and formulas — the
// same contract the canonical and parallel subsystems pin with their
// harnesses. WM_SEED=<n> narrows a reported failure to one seed.

RandomFormulaOptions formula_options_for(const KripkeModel& k, bool graded) {
  RandomFormulaOptions opts;
  opts.num_props = k.num_props();
  opts.delta = k.num_props();
  opts.graded = graded;
  opts.max_depth = 3;
  return opts;
}

class BitsetDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(BitsetDifferential, PackedMatchesScalarReference) {
  const bool graded = GetParam();
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng mrng(seed);
    Rng frng(seed + 1000);
    for (int trial = 0; trial < 100; ++trial) {
      const KripkeModel k = canontest::random_kripke_model(mrng);
      Rng rng(frng.below(~0ull));
      const Formula f = random_formula(rng, formula_options_for(k, graded));
      const std::vector<bool> oracle = model_check_naive(k, f);
      const Bitset bits = model_check_bits(k, f);
      EXPECT_EQ(bits.to_bools(), oracle)
          << f.to_string() << " — reproduce with WM_SEED=" << seed;
      EXPECT_EQ(model_check(k, f), oracle)
          << f.to_string() << " — reproduce with WM_SEED=" << seed;
      for (int v = 0; v < k.num_states(); ++v) {
        EXPECT_EQ(model_check_at(k, f, v), oracle[v]);
      }
    }
  }
}

// Metamorphic: relabelling the states permutes the denotation and
// nothing else — ||phi||_{perm(K)}[perm[v]] == ||phi||_K[v].
TEST_P(BitsetDifferential, DenotationCommutesWithRelabelling) {
  const bool graded = GetParam();
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng mrng(seed + 7);
    Rng frng(seed + 1007);
    for (int trial = 0; trial < 40; ++trial) {
      const KripkeModel k = canontest::random_kripke_model(mrng);
      const std::vector<int> perm =
          canontest::random_permutation(k.num_states(), mrng);
      const KripkeModel m = canontest::relabelled_model(k, perm);
      Rng rng(frng.below(~0ull));
      const Formula f = random_formula(rng, formula_options_for(k, graded));
      const Bitset on_k = model_check_bits(k, f);
      const Bitset on_m = model_check_bits(m, f);
      for (int v = 0; v < k.num_states(); ++v) {
        EXPECT_EQ(on_m.test(static_cast<std::size_t>(perm[v])),
                  on_k.test(static_cast<std::size_t>(v)))
            << f.to_string() << " at state " << v
            << " — reproduce with WM_SEED=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Logics, BitsetDifferential, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Graded" : "Ungraded";
                         });

// Regression for the memo copy-on-eval fix: the memoised call structure
// (and with it `modelcheck.evals` / `modelcheck.memo_hits`) is a pure
// function of the batch, identical whether the checks run on a 1- or
// 8-worker pool. The formula reuses a subterm (f ∧ f) so memo hits are
// actually exercised.
TEST(ModelCheckerObs, MemoCountersInvariantAcrossThreadCounts) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  std::vector<KripkeModel> models;
  Rng mrng(2012);
  for (int i = 0; i < 8; ++i) {
    models.push_back(canontest::random_kripke_model(mrng));
  }
  Rng frng(13);
  RandomFormulaOptions opts = formula_options_for(models[0], /*graded=*/true);
  const Formula sub = random_formula(frng, opts);
  const Formula f = Formula::conj(sub, sub);  // shared subterm => memo hits

  auto run_batch = [&](int threads) {
    const auto before = obs::registry().snapshot(obs::CounterKind::kWork);
    ThreadPool pool(threads);
    pool.parallel_for(0, models.size(), [&](std::uint64_t i) {
      (void)model_check_bits(models[i], f);
    });
    const auto after = obs::registry().snapshot(obs::CounterKind::kWork);
    std::map<std::string, std::uint64_t> delta;
    for (const auto& [name, value] : after) {
      const auto it = before.find(name);
      const std::uint64_t base = it == before.end() ? 0 : it->second;
      if (value != base) delta[name] = value - base;
    }
    return delta;
  };

  const auto serial = run_batch(1);
  ASSERT_TRUE(serial.contains("modelcheck.evals"));
  ASSERT_TRUE(serial.contains("modelcheck.memo_hits"));
  EXPECT_GT(serial.at("modelcheck.memo_hits"), 0u);
  const auto parallel = run_batch(8);
  EXPECT_EQ(serial, parallel);
#endif
}

}  // namespace
}  // namespace wm
