// Sound local simplification of modal formulas.
//
// The Theorem 2 extractor and the distinguishing-formula generator
// produce correct but verbose formulas; this pass shrinks them with
// semantics-preserving rewrites (property-tested against the model
// checker on random models):
//
//   ~T -> F, ~F -> T, ~~f -> f
//   T & f -> f, F & f -> F, f & f -> f      (and symmetric, and for |)
//   <a>_{>=k} F -> F, [a] T -> T
//
// Applied bottom-up to a fixpoint of each node (single pass suffices for
// these local rules).
#pragma once

#include "logic/formula.hpp"

namespace wm {

Formula simplify(const Formula& f);

}  // namespace wm
