// Timing bench: partition-refinement bisimulation — the engine behind
// every separation result — as a function of graph size, Kripke variant
// and gradedness.
#include <benchmark/benchmark.h>

#include "bisim/bisimulation.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"

namespace {

using namespace wm;

void BM_CoarsestBisimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto variant = static_cast<Variant>(state.range(1));
  Rng rng(1);
  const Graph g = random_connected_graph(n, 4, n / 2, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const KripkeModel k = kripke_from_graph(p, variant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsest_bisimulation(k));
  }
  state.SetComplexityN(n);
}

void BM_CoarsestGradedBisimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Graph g = random_connected_graph(n, 4, n / 2, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsest_graded_bisimulation(k));
  }
  state.SetComplexityN(n);
}

void BM_SymmetricNumberingLemma15(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = random_regular_graph(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PortNumbering::symmetric_regular(g));
  }
  state.SetComplexityN(n);
}

}  // namespace

BENCHMARK(BM_CoarsestBisimulation)
    ->ArgsProduct({{16, 64, 256},
                   {static_cast<int>(Variant::PlusPlus),
                    static_cast<int>(Variant::MinusMinus)}});
BENCHMARK(BM_CoarsestGradedBisimulation)->Arg(16)->Arg(64)->Arg(256)->Arg(512)
    ->Complexity();
BENCHMARK(BM_SymmetricNumberingLemma15)->Arg(16)->Arg(64)->Arg(256);
