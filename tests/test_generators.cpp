#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/matching.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

TEST(Generators, Path) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(Generators, Cycle) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Generators, Star) {
  const Graph g = star_graph(4);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.degree(0), 4);
  for (int leaf = 1; leaf <= 4; ++leaf) EXPECT_EQ(g.degree(leaf), 1);
}

TEST(Generators, Complete) {
  const Graph g = complete_graph(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_TRUE(g.is_regular(4));
}

TEST(Generators, CompleteBipartite) {
  const Graph g = complete_bipartite(2, 3);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube(3);
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Generators, Grid) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Petersen) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(has_one_factor(g));  // Petersen does have a perfect matching
  EXPECT_FALSE(bipartition(g).has_value());
}

TEST(Generators, Fig9aGraphMatchesPaper) {
  // Figure 9a: 16 nodes, 3-regular, connected, no 1-factor.
  const Graph g = fig9a_graph();
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(has_one_factor(g));
}

TEST(Generators, ClassGFamily) {
  for (int k : {3, 5, 7}) {
    const Graph g = class_g_graph(k);
    EXPECT_EQ(g.num_nodes(), 1 + k * (k + 2)) << "k=" << k;
    EXPECT_TRUE(g.is_regular(k)) << "k=" << k;
    EXPECT_TRUE(is_connected(g)) << "k=" << k;
    EXPECT_FALSE(has_one_factor(g)) << "k=" << k;
  }
  EXPECT_THROW(class_g_graph(4), std::invalid_argument);
  EXPECT_THROW(class_g_graph(1), std::invalid_argument);
}

TEST(Generators, RandomBoundedDegreeRespectsBound) {
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_bounded_degree_graph(20, 4, 0.3, rng);
    EXPECT_LE(g.max_degree(), 4);
  }
}

TEST(Generators, RandomRegularIsRegularAndConnected) {
  Rng rng(43);
  for (int k : {2, 3, 4}) {
    const Graph g = random_regular_graph(12, k, rng);
    EXPECT_TRUE(g.is_regular(k));
    EXPECT_TRUE(is_connected(g));
  }
  EXPECT_THROW(random_regular_graph(5, 3, rng), std::invalid_argument);
}

TEST(Generators, RandomConnectedIsConnectedWithinDegreeBound) {
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(15, 4, 5, rng);
    EXPECT_TRUE(is_connected(g));
    EXPECT_LE(g.max_degree(), 4);
    EXPECT_GE(g.num_edges(), 14);
  }
}

TEST(Generators, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const Graph g1 = random_connected_graph(10, 3, 3, a);
  const Graph g2 = random_connected_graph(10, 3, 3, b);
  EXPECT_EQ(g1, g2);
}

}  // namespace
}  // namespace wm
