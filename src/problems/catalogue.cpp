#include "problems/catalogue.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "graph/exact.hpp"
#include "graph/matching.hpp"
#include "graph/properties.hpp"
#include "logic/model_checker.hpp"
#include "port/port_numbering.hpp"
#include "util/visitor.hpp"

namespace wm {

std::size_t for_each_output(const Problem& p, const Graph& g,
                            const std::function<bool(const std::vector<int>&)>& fn) {
  const std::vector<int> alphabet = p.output_alphabet();
  const int n = g.num_nodes();
  std::vector<int> out(static_cast<std::size_t>(n), alphabet[0]);
  std::vector<std::size_t> idx(static_cast<std::size_t>(n), 0);
  std::size_t count = 0;
  for (;;) {
    ++count;
    if (!fn(out)) return count;
    // Odometer increment.
    int pos = 0;
    while (pos < n) {
      if (++idx[pos] < alphabet.size()) {
        out[pos] = alphabet[idx[pos]];
        break;
      }
      idx[pos] = 0;
      out[pos] = alphabet[0];
      ++pos;
    }
    if (pos == n) return count;
  }
}

std::optional<std::uint64_t> output_space_size(const Problem& p,
                                               const Graph& g) {
  const std::uint64_t y = p.output_alphabet().size();
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t acc = 1;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (y != 0 && acc > kMax / y) return std::nullopt;
    acc *= y;
  }
  return acc;
}

std::vector<int> output_for_index(const Problem& p, const Graph& g,
                                  std::uint64_t idx) {
  const std::vector<int> alphabet = p.output_alphabet();
  const std::uint64_t y = alphabet.size();
  std::vector<int> out(static_cast<std::size_t>(g.num_nodes()));
  for (int v = 0; v < g.num_nodes(); ++v) {
    out[v] = alphabet[static_cast<std::size_t>(idx % y)];
    idx /= y;
  }
  return out;
}

bool every_solution_splits(const Problem& p, const Graph& g,
                           const std::vector<NodeId>& x, ThreadPool* pool) {
  auto unsplit = [&](const std::vector<int>& out) {
    if (!p.valid(g, out)) return false;
    for (std::size_t i = 1; i < x.size(); ++i) {
      if (out[x[i]] != out[x[0]]) return false;
    }
    return true;  // valid yet constant on X: a counterexample
  };
  if (const auto space = output_space_size(p, g)) {
    return !ParallelVisitor(pool)
                .find_first(0, *space,
                            [&](std::uint64_t i) {
                              return unsplit(output_for_index(p, g, i));
                            })
                .has_value();
  }
  // Space too large for indexed scanning — fall through; the odometer
  // below would never finish either, but keeps the semantics defined.
  bool ok = true;
  for_each_output(p, g, [&](const std::vector<int>& out) {
    if (!unsplit(out)) return true;
    ok = false;
    return false;
  });
  return ok;
}

namespace {

/// Is g a k-star with k > 1? Returns k, or 0.
int star_order(const Graph& g) {
  const int n = g.num_nodes();
  if (n < 3 || g.num_edges() != n - 1) return 0;
  int centre = -1;
  for (int v = 0; v < n; ++v) {
    if (g.degree(v) == n - 1) centre = v;
    else if (g.degree(v) != 1) return 0;
  }
  return centre >= 0 ? n - 1 : 0;
}

class LeafInStar final : public Problem {
 public:
  std::string name() const override { return "leaf-in-star"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    const int k = star_order(g);
    if (k == 0) return true;  // unconstrained off the star family
    int ones = 0;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (out[v] != 0 && out[v] != 1) return false;
      if (out[v] == 1) {
        if (g.degree(v) != 1) return false;  // centre must output 0
        ++ones;
      }
    }
    return ones == 1;
  }
};

class OddOdd final : public Problem {
 public:
  std::string name() const override { return "odd-odd-neighbours"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    for (int v = 0; v < g.num_nodes(); ++v) {
      int odd_nbrs = 0;
      for (NodeId u : g.neighbours(v)) {
        if (g.degree(u) % 2 == 1) ++odd_nbrs;
      }
      const int expected = odd_nbrs % 2;
      if (out[v] != expected) return false;
    }
    return true;
  }
};

class SymmetryBreak final : public Problem {
 public:
  std::string name() const override { return "symmetry-break-in-G"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (out[v] != 0 && out[v] != 1) return false;
    }
    // Class-G membership costs a blossom run; cache it, since solution
    // enumeration calls valid() with the same graph 2^n times. valid()
    // must stay callable from concurrent witness searches, hence the lock.
    bool in_g;
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      if (!cached_ || !(cached_graph_ == g)) {
        cached_graph_ = g;
        cached_in_g_ = in_class_g(g);
        cached_ = true;
      }
      in_g = cached_in_g_;
    }
    if (!in_g) return true;
    return std::adjacent_find(out.begin(), out.end(),
                              std::not_equal_to<>()) != out.end();
  }

 private:
  mutable std::mutex cache_mu_;
  mutable bool cached_ = false;
  mutable Graph cached_graph_;
  mutable bool cached_in_g_ = false;
};

class Mis final : public Problem {
 public:
  std::string name() const override { return "maximal-independent-set"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    return is_maximal_independent_set(g, out);
  }
};

class ThreeColouring final : public Problem {
 public:
  std::string name() const override { return "vertex-3-colouring"; }
  std::vector<int> output_alphabet() const override { return {1, 2, 3}; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    return is_proper_colouring(g, out, 3);
  }
};

class EulerianDecision final : public Problem {
 public:
  std::string name() const override { return "eulerian-decision"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    if (is_eulerian(g)) {
      // Yes-instance: every node must accept.
      return std::all_of(out.begin(), out.end(), [](int b) { return b == 1; });
    }
    // No-instance: at least one node must reject.
    return std::any_of(out.begin(), out.end(), [](int b) { return b == 0; });
  }
};

class ApproxVertexCover final : public Problem {
 public:
  ApproxVertexCover(int num, int den) : num_(num), den_(den) {}
  std::string name() const override { return "approx-vertex-cover"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    if (!is_vertex_cover(g, out)) return false;
    const int size = static_cast<int>(std::count(out.begin(), out.end(), 1));
    const int opt = minimum_vertex_cover_size(g);
    return static_cast<long long>(size) * den_ <=
           static_cast<long long>(opt) * num_;
  }

 private:
  int num_, den_;
};

class IsolatedNode final : public Problem {
 public:
  std::string name() const override { return "isolated-node-detection"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (out[v] != (g.degree(v) == 0 ? 1 : 0)) return false;
    }
    return true;
  }
};

class FormulaProblem final : public Problem {
 public:
  FormulaProblem(Formula psi, int delta) : psi_(std::move(psi)), delta_(delta) {
    if (!psi_.in_signature(Variant::MinusMinus, delta_)) {
      throw std::invalid_argument(
          "formula_problem: formula must be in the K_{-,-} signature");
    }
  }
  std::string name() const override {
    return "formula-problem[" + psi_.to_string() + "]";
  }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    if (g.max_degree() > delta_) {
      throw std::invalid_argument("formula_problem: graph exceeds Delta");
    }
    // K_{-,-} does not depend on the numbering: any one will do.
    const KripkeModel k =
        kripke_from_graph(PortNumbering::identity(g), Variant::MinusMinus,
                          delta_);
    const auto truth = model_check(k, psi_);
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (out[v] != (truth[v] ? 1 : 0)) return false;
    }
    return true;
  }

 private:
  Formula psi_;
  int delta_;
};

class DegreeParity final : public Problem {
 public:
  std::string name() const override { return "degree-parity"; }
  bool valid(const Graph& g, const std::vector<int>& out) const override {
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (out[v] != g.degree(v) % 2) return false;
    }
    return true;
  }
};

}  // namespace

bool in_class_g(const Graph& g) {
  const int k = g.max_degree();
  if (k < 3 || k % 2 == 0 || !g.is_regular(k)) return false;
  if (!is_connected(g)) return false;
  return !has_one_factor(g);
}

ProblemPtr leaf_in_star_problem() { return std::make_shared<LeafInStar>(); }
ProblemPtr odd_odd_problem() { return std::make_shared<OddOdd>(); }
ProblemPtr symmetry_break_problem() { return std::make_shared<SymmetryBreak>(); }
ProblemPtr maximal_independent_set_problem() { return std::make_shared<Mis>(); }
ProblemPtr three_colouring_problem() { return std::make_shared<ThreeColouring>(); }
ProblemPtr eulerian_decision_problem() {
  return std::make_shared<EulerianDecision>();
}
ProblemPtr approx_vertex_cover_problem(int num, int den) {
  return std::make_shared<ApproxVertexCover>(num, den);
}
ProblemPtr isolated_node_problem() { return std::make_shared<IsolatedNode>(); }
ProblemPtr degree_parity_problem() { return std::make_shared<DegreeParity>(); }
ProblemPtr formula_problem(const Formula& psi, int delta) {
  return std::make_shared<FormulaProblem>(psi, delta);
}

}  // namespace wm
