// Concrete distributed state machines for the problem catalogue —
// executable versions of every algorithm the paper sketches.
#pragma once

#include <memory>

#include "runtime/state_machine.hpp"

namespace wm {

/// Theorem 11's SV(1) algorithm for leaf-in-star: every node sends i to
/// port i; a node outputs 1 iff deg = 1 and the received *set* is {1}.
/// Class Set (receive Set, send Ported). Runs in 1 round.
std::shared_ptr<const StateMachine> leaf_picker_machine();

/// Theorem 13's MB(1) algorithm for odd-odd-neighbours: broadcast the
/// degree parity; output 1 iff an odd number of received messages say
/// "odd". Class Multiset∩Broadcast. Runs in 1 round.
std::shared_ptr<const StateMachine> odd_odd_machine();

/// Theorem 17's VVc(1) algorithm for symmetry breaking in class G:
/// round 1 learns the local type t(v) (requires a *consistent* port
/// numbering), round 2 compares with the neighbours' types; output 1 iff
/// t(v) is maximal in the closed neighbourhood. Class Vector. 2 rounds.
/// `delta` pads the type tuples as in the paper.
std::shared_ptr<const StateMachine> local_type_maximum_machine(int delta);

/// Remark 2's degree-oblivious SBo algorithm: broadcast a token; output 1
/// iff the received set is empty (isolated node). Class Set∩Broadcast,
/// init ignores the degree. 1 round.
std::shared_ptr<const StateMachine> isolated_detector_machine();

/// Degree parity, output at time 0 (no communication). Class
/// Set∩Broadcast. Demonstrates stopping at initialisation.
std::shared_ptr<const StateMachine> degree_parity_machine();

/// Section 3.3's non-trivial Multiset∩Broadcast problem: 2-approximate
/// vertex cover by maximal fractional edge packing with exact rational
/// arithmetic. Each phase is two broadcast rounds (residuals, then
/// residual/degree offers); a node saturating its packing constraint
/// joins the cover; a node all of whose neighbours are saturated retires.
/// Terminates in at most 2(n+1) rounds (at least one node saturates per
/// phase). Output: Int 1 = in cover.
std::shared_ptr<const StateMachine> vertex_cover_packing_machine();

/// The same algorithm expressed as a Broadcast (VB) machine — Vector
/// receive, Broadcast send; used with Theorem 9 (to_multiset_machine) to
/// reproduce the paper's "MB(1) = VB(1) ingredient" story.
std::shared_ptr<const StateMachine> vertex_cover_packing_vb_machine();

/// An Eulerian-related local decision: output 1 iff own degree is even
/// (the local test whose conjunction over nodes decides "all degrees
/// even"; full Eulerian decision also needs connectivity, which no
/// anonymous constant-time algorithm can decide — see tests). Class
/// Set∩Broadcast, time 0.
std::shared_ptr<const StateMachine> even_degree_machine();

/// A genuinely-VB machine (Broadcast send but Vector receive): broadcast
/// the degree parity; output 1 iff the message arriving at *in-port 1*
/// says odd. Uses the incoming port numbering, so it is in VB but not in
/// MB as written — the class whose collapse MB = VB Theorem 9 proves.
/// 1 round; isolated nodes output 0.
std::shared_ptr<const StateMachine> port_one_parity_machine();

}  // namespace wm
