#include "logic/formula.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wm {
namespace {

TEST(Formula, Atoms) {
  EXPECT_EQ(Formula::tru().kind(), Formula::Kind::True);
  EXPECT_EQ(Formula::fls().kind(), Formula::Kind::False);
  EXPECT_EQ(Formula::prop(3).prop_id(), 3);
  EXPECT_EQ(Formula().kind(), Formula::Kind::True);
}

TEST(Formula, ModalDepth) {
  const Formula q = Formula::prop(1);
  EXPECT_EQ(q.modal_depth(), 0);
  const Formula d1 = Formula::diamond({1, 1}, q);
  EXPECT_EQ(d1.modal_depth(), 1);
  const Formula nested = Formula::conj(Formula::diamond({0, 0}, d1), q);
  EXPECT_EQ(nested.modal_depth(), 2);
  EXPECT_EQ(Formula::negate(nested).modal_depth(), 2);
  EXPECT_EQ(Formula::box({1, 0}, nested).modal_depth(), 3);
}

TEST(Formula, Size) {
  const Formula f = Formula::conj(Formula::prop(1), Formula::prop(2));
  EXPECT_EQ(f.size(), 3u);
}

TEST(Formula, ConjAllDisjAll) {
  EXPECT_EQ(Formula::conj_all({}), Formula::tru());
  EXPECT_EQ(Formula::disj_all({}), Formula::fls());
  const Formula q1 = Formula::prop(1), q2 = Formula::prop(2);
  EXPECT_EQ(Formula::conj_all({q1}), q1);
  EXPECT_EQ(Formula::conj_all({q1, q2}), Formula::conj(q1, q2));
}

TEST(Formula, StructuralEqualityAndHash) {
  const Formula a = Formula::diamond({1, 2}, Formula::prop(1), 3);
  const Formula b = Formula::diamond({1, 2}, Formula::prop(1), 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, Formula::diamond({1, 2}, Formula::prop(1), 2));
  EXPECT_NE(a, Formula::diamond({2, 1}, Formula::prop(1), 3));
}

TEST(Formula, IsGraded) {
  EXPECT_FALSE(Formula::diamond({0, 0}, Formula::prop(1), 1).is_graded());
  EXPECT_TRUE(Formula::diamond({0, 0}, Formula::prop(1), 2).is_graded());
  EXPECT_TRUE(
      Formula::negate(Formula::diamond({0, 0}, Formula::prop(1), 5)).is_graded());
}

TEST(Formula, SignatureChecks) {
  const Formula pp = Formula::diamond({1, 2}, Formula::prop(1));
  EXPECT_TRUE(pp.in_signature(Variant::PlusPlus, 2));
  EXPECT_FALSE(pp.in_signature(Variant::PlusPlus, 1));  // port 2 > delta
  EXPECT_FALSE(pp.in_signature(Variant::MinusPlus, 3));
  const Formula mp = Formula::diamond({0, 2}, Formula::prop(1));
  EXPECT_TRUE(mp.in_signature(Variant::MinusPlus, 2));
  EXPECT_FALSE(mp.in_signature(Variant::MinusMinus, 2));
  const Formula mm = Formula::diamond({0, 0}, Formula::prop(1));
  EXPECT_TRUE(mm.in_signature(Variant::MinusMinus, 1));
  const Formula pm = Formula::diamond({2, 0}, Formula::prop(1));
  EXPECT_TRUE(pm.in_signature(Variant::PlusMinus, 2));
  // Propositions above delta are out of signature.
  EXPECT_FALSE(Formula::prop(4).in_signature(Variant::MinusMinus, 3));
}

TEST(Formula, MaxPropAndPort) {
  const Formula f =
      Formula::conj(Formula::diamond({2, 3}, Formula::prop(5)), Formula::prop(1));
  EXPECT_EQ(f.max_prop(), 5);
  EXPECT_EQ(f.max_port(), 3);
}

TEST(Formula, Printing) {
  EXPECT_EQ(Formula::tru().to_string(), "T");
  EXPECT_EQ(Formula::prop(2).to_string(), "q2");
  EXPECT_EQ(Formula::negate(Formula::prop(1)).to_string(), "~q1");
  EXPECT_EQ(Formula::conj(Formula::prop(1), Formula::prop(2)).to_string(),
            "(q1 & q2)");
  EXPECT_EQ(Formula::diamond({0, 2}, Formula::prop(1), 3).to_string(),
            "<*,2>>=3 q1");
  EXPECT_EQ(Formula::box({1, 0}, Formula::prop(1)).to_string(), "[1,*] q1");
}

TEST(Formula, SubformulaClosureChildrenFirst) {
  const Formula q1 = Formula::prop(1);
  const Formula d = Formula::diamond({0, 0}, q1);
  const Formula f = Formula::conj(d, Formula::negate(d));  // shared subterm
  const FormulaVec closure = subformula_closure(f);
  // q1, <>q1, ~<>q1, f — shared <>q1 appears once.
  EXPECT_EQ(closure.size(), 4u);
  std::set<std::size_t> positions;
  auto pos = [&](const Formula& g) {
    for (std::size_t i = 0; i < closure.size(); ++i) {
      if (closure[i] == g) return i;
    }
    return closure.size();
  };
  EXPECT_LT(pos(q1), pos(d));
  EXPECT_LT(pos(d), pos(f));
  EXPECT_EQ(pos(f), closure.size() - 1);
}

TEST(Formula, GradeValidation) {
  EXPECT_EQ(Formula::diamond({0, 0}, Formula::tru(), 4).grade(), 4);
}

TEST(FormulaDeathTest, MisusedAccessors) {
  EXPECT_DEATH((void)Formula::tru().prop_id(), "prop_id");
  EXPECT_DEATH((void)Formula::prop(1).modality(), "modality");
  EXPECT_DEATH((void)Formula::box({1, 1}, Formula::tru()).grade(), "grade");
}

}  // namespace
}  // namespace wm
