// Timing bench for the Figure 8 / Lemma 15 machinery: bipartite double
// cover, 1-factorisation (repeated Hopcroft-Karp), blossom matching (the
// class-G membership test of Lemma 16 / Theorem 17), exact minimum
// vertex cover (ground truth for the Section 3.3 bench) — and the
// covering-map *search*, which rediscovers the projection of a voltage
// lift from scratch.
//
// Ported off google-benchmark onto the task-parallel substrate: the
// independent rows of each phase run across --threads N workers into
// order-preserving slots, and the covering search scans its candidate
// space with parallel_find_first (lowest-witness contract). stdout —
// graph sizes, factor counts, matching/cover sizes, covering verdicts —
// is byte-identical at any thread count; wall-clocks go to stderr and
// BENCH_lemma15.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cover/covering.hpp"
#include "graph/double_cover.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "graph/properties.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

void phase_double_cover(ThreadPool& pool) {
  std::printf("=== Double cover + 1-factorisation (Figure 8) ===\n");
  std::printf("%-6s %-4s %-12s %-12s %-10s\n", "n", "k", "cover nodes",
              "cover edges", "factors");
  struct Cfg { int n; int k; };
  const std::vector<Cfg> cfgs = {{32, 3}, {32, 5}, {128, 3},
                                 {128, 5}, {512, 4}};
  const benchutil::Timer timer;
  std::vector<std::string> rows(cfgs.size());
  pool.parallel_for(0, cfgs.size(), [&](std::uint64_t i) {
    WM_TIME_SCOPE("bench.lemma15.factorise");
    Rng rng(1 + i);
    const Graph g = random_regular_graph(cfgs[i].n, cfgs[i].k, rng);
    const DoubleCover dc = bipartite_double_cover(g);
    const auto factors = one_factorise_bipartite(dc.graph, dc.side);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-6d %-4d %-12d %-12d %-10zu\n",
                  cfgs[i].n, cfgs[i].k, dc.graph.num_nodes(),
                  dc.graph.num_edges(), factors.size());
    rows[i] = buf;
  }, 1);
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
  std::printf("\n");
  benchutil::report_phase("double cover + factorise", timer.ms(), cfgs.size());
}

void phase_matching(ThreadPool& pool) {
  std::printf("=== Blossom matching + class-G membership (Lemma 16) ===\n");
  std::printf("%-22s %-8s %-12s\n", "graph", "n", "result");
  struct Row { std::string label; std::string result; };
  const std::vector<int> sizes = {16, 64, 256};
  const std::vector<int> gks = {3, 5, 7, 9};
  const std::size_t total = sizes.size() + gks.size();
  const benchutil::Timer timer;
  std::vector<std::string> rows(total);
  pool.parallel_for(0, total, [&](std::uint64_t i) {
    WM_TIME_SCOPE("bench.lemma15.matching");
    char buf[128];
    if (i < sizes.size()) {
      const int n = sizes[i];
      Rng rng(3);
      const Graph g = random_regular_graph(n, 3, rng);
      const Matching m = blossom_maximum_matching(g);
      std::snprintf(buf, sizeof buf, "%-22s %-8d matching %d\n",
                    "random 3-regular", n, matching_size(m));
    } else {
      const int k = gks[i - sizes.size()];
      const Graph g = class_g_graph(k);
      std::snprintf(buf, sizeof buf, "%-22s %-8d 1-factor: %s\n",
                    "class-G", g.num_nodes(),
                    has_one_factor(g) ? "exists(!)" : "none");
    }
    rows[i] = buf;
  }, 1);
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
  std::printf("\n");
  benchutil::report_phase("matchings + class-G", timer.ms(), total);
}

void phase_vertex_cover(ThreadPool& pool) {
  std::printf("=== Exact minimum vertex cover (Section 3.3 ground truth) "
              "===\n");
  std::printf("%-6s %-10s\n", "n", "min VC");
  const std::vector<int> sizes = {12, 18, 24};
  const benchutil::Timer timer;
  std::vector<std::string> rows(sizes.size());
  pool.parallel_for(0, sizes.size(), [&](std::uint64_t i) {
    WM_TIME_SCOPE("bench.lemma15.vertex_cover");
    const int n = sizes[i];
    Rng rng(4);
    const Graph g = random_connected_graph(n, 4, n / 2, rng);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%-6d %-10d\n", n,
                  minimum_vertex_cover_size(g));
    rows[i] = buf;
  }, 1);
  for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
  std::printf("\n");
  benchutil::report_phase("exact vertex cover", timer.ms(), sizes.size());
}

std::size_t g_cover_candidates = 0;
double g_cover_ms = 0;

/// Rediscovers covering maps by search: lifts of a base graph must cover
/// it (Angluin), disconnected multi-copy lifts exercise the
/// multi-component anchor space, and a base that is NOT covered by a
/// smaller graph yields the negative verdict. Runs at top level so the
/// search itself can use the pool (never nested inside a pool task).
void phase_covering_search(ThreadPool& pool) {
  std::printf("=== Covering-map search (Angluin; Section 3.3) ===\n");
  std::printf("%-40s %-10s %-10s\n", "H -> G", "anchors", "covering");
  struct Case {
    std::string label;
    PortNumbering h;
    PortNumbering g;
  };
  std::vector<Case> cases;
  {
    const PortNumbering base =
        PortNumbering::symmetric_regular(cycle_graph(6));
    cases.push_back({"double cover of C6 -> C6",
                     double_cover_lift(base).numbering, base});
    cases.push_back({"3 disjoint copies of C6 -> C6",
                     disjoint_copies(base, 3).numbering, base});
  }
  {
    Rng rng(5);
    const Graph g = random_regular_graph(8, 3, rng);
    const PortNumbering base = PortNumbering::random(g, rng);
    cases.push_back({"random voltage 2-lift -> base",
                     random_voltage_lift(base, 2, rng).numbering, base});
    // Negative case: the base graph does not cover its own double cover
    // (too few nodes to be surjective).
    cases.push_back({"base -> its double cover (negative)", base,
                     double_cover_lift(base).numbering});
  }
  for (const Case& c : cases) {
    WM_TIME_SCOPE("bench.lemma15.covering");
    const benchutil::Timer timer;
    const auto phi = find_covering_map(c.h, c.g, &pool);
    g_cover_ms += timer.ms();
    const std::size_t anchors = connected_components(c.h.graph()).size();
    std::uint64_t space = 1;
    for (std::size_t a = 0; a < anchors; ++a) {
      space *= static_cast<std::uint64_t>(c.g.graph().num_nodes());
    }
    g_cover_candidates += space;
    std::printf("%-40s %-10zu %-10s\n", c.label.c_str(), anchors,
                phi ? "found" : "none");
  }
  std::printf("\n");
  benchutil::report_phase("covering search", g_cover_ms, cases.size());
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  phase_double_cover(pool);
  phase_matching(pool);
  phase_vertex_cover(pool);
  phase_covering_search(pool);

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "lemma15", static_cast<long long>(g_cover_candidates),
      pool.num_threads(), wall,
      g_cover_ms > 0
          ? 1000.0 * static_cast<double>(g_cover_candidates) / g_cover_ms
          : 0);
  return 0;
}
