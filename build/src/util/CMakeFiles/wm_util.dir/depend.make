# Empty dependencies file for wm_util.
# This may be replaced when dependencies are built.
