file(REMOVE_RECURSE
  "libwm_cover.a"
)
