// Observability layer: registry semantics, speculative suppression,
// trace JSON well-formedness, and the determinism contract the CI
// regression gate relies on — work-counter totals identical at any
// thread count.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bisim/quotient.hpp"
#include "core/decision.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/kripke.hpp"
#include "obs/trace.hpp"
#include "port/port_numbering.hpp"
#include "problems/catalogue.hpp"
#include "util/parallel.hpp"

namespace wm {
namespace {

using obs::CounterKind;

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, CountersRegisterOnFirstUseAndSnapshotByKind) {
  obs::Counter& c = obs::registry().counter("obstest.alpha", CounterKind::kWork);
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.kind(), CounterKind::kWork);

  const auto work = obs::registry().snapshot(CounterKind::kWork);
  ASSERT_TRUE(work.count("obstest.alpha"));
  EXPECT_EQ(work.at("obstest.alpha"), 42u);
  // A work counter must not leak into the info snapshot (the regression
  // gate reads only "work"; pool telemetry only "info").
  EXPECT_FALSE(obs::registry().snapshot(CounterKind::kInfo)
                   .count("obstest.alpha"));
}

TEST(ObsRegistry, SameNameReturnsSameCounterAndFirstKindWins) {
  obs::Counter& a = obs::registry().counter("obstest.pin", CounterKind::kInfo);
  obs::Counter& b = obs::registry().counter("obstest.pin", CounterKind::kWork);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.kind(), CounterKind::kInfo);
}

TEST(ObsRegistry, RecordMaxIsAHighWaterMark) {
  obs::Counter& c = obs::registry().counter("obstest.hwm", CounterKind::kInfo);
  c.reset();
  c.record_max(7);
  c.record_max(3);  // lower: ignored
  EXPECT_EQ(c.value(), 7u);
  c.record_max(19);
  EXPECT_EQ(c.value(), 19u);
}

TEST(ObsRegistry, MacrosCacheTheSiteAndCount) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  obs::registry().counter("obstest.macro").reset();
  for (int i = 0; i < 100; ++i) WM_COUNT(obstest.macro);
  WM_COUNT_ADD(obstest.macro, 900);
  EXPECT_EQ(obs::registry().counter("obstest.macro").value(), 1000u);
#endif
}

// --- Speculative suppression ---------------------------------------------

TEST(ObsSpeculation, ScopesNestAndSuppressOnlyWorkCounters) {
  obs::Counter& work = obs::registry().counter("obstest.spec.work",
                                               CounterKind::kWork);
  obs::Counter& info = obs::registry().counter("obstest.spec.info",
                                               CounterKind::kInfo);
  work.reset();
  info.reset();
  EXPECT_FALSE(obs::speculation_suppressed());
  {
    obs::SpeculativeScope outer;
    EXPECT_TRUE(obs::speculation_suppressed());
    work.add();  // dropped
    info.add();  // info ignores suppression
    {
      obs::SpeculativeScope inner;
      EXPECT_TRUE(obs::speculation_suppressed());
      work.add();  // dropped
    }
    // Leaving the inner scope must NOT clear the outer suppression.
    EXPECT_TRUE(obs::speculation_suppressed());
    work.add();  // dropped
  }
  EXPECT_FALSE(obs::speculation_suppressed());
  work.add();  // counted
  EXPECT_EQ(work.value(), 1u);
  EXPECT_EQ(info.value(), 1u);
}

TEST(ObsSpeculation, SuppressionIsPerThread) {
  obs::Counter& c = obs::registry().counter("obstest.spec.thread",
                                            CounterKind::kWork);
  c.reset();
  obs::SpeculativeScope scope;  // suppresses THIS thread only
  ThreadPool pool(2);
  // With a 2-executor pool the calling thread participates in the scan
  // (suppressed) while the worker thread counts normally; every index is
  // executed exactly once, so the total is whatever the unsuppressed
  // thread picked up — at least zero, at most all. What must hold:
  // a fresh thread starts unsuppressed.
  bool worker_saw_suppressed = true;
  pool.submit([&] { worker_saw_suppressed = obs::speculation_suppressed(); });
  pool.parallel_for(0, 1, [](std::uint64_t) {});  // drains the submit
  EXPECT_FALSE(worker_saw_suppressed);
}

// --- Trace JSON -----------------------------------------------------------

/// Minimal JSON well-formedness scan: balanced {}/[] outside strings,
/// strings closed with legal escapes, no raw control characters.
/// (Unused when -DWM_OBS=OFF skips the trace round-trip test.)
[[maybe_unused]] bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char ch : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

[[maybe_unused]] std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObsTrace, DisabledByDefaultAndScopesAreInert) {
  EXPECT_FALSE(obs::trace_enabled());
  { WM_TRACE_SCOPE("obstest.inert"); }  // must not crash or emit
  EXPECT_FALSE(obs::trace_stop());      // nothing active to flush
}

TEST(ObsTrace, NestedScopesProduceWellFormedChromeTraceJson) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::string path = ::testing::TempDir() + "wm_obs_trace.json";
  obs::trace_start(path);
  ASSERT_TRUE(obs::trace_enabled());
  {
    WM_TRACE_SCOPE("outer");
    {
      WM_TRACE_SCOPE("inner");
      WM_TRACE_SCOPE("needs escaping \"quotes\" and \\slashes\\ and\nnewline");
    }
  }
  // A scope on a pool worker lands on its own tid track.
  {
    ThreadPool pool(2);
    pool.parallel_for(0, 4, [](std::uint64_t) { WM_TRACE_SCOPE("pooled"); });
  }
  ASSERT_TRUE(obs::trace_stop());
  EXPECT_FALSE(obs::trace_enabled());

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  for (const char* needle :
       {"\"outer\"", "\"inner\"", "\"pooled\"", "\"ph\":\"X\"",
        "needs escaping \\\"quotes\\\" and \\\\slashes\\\\ and\\nnewline"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
  std::remove(path.c_str());
#endif
}

// --- Parallel counter hammer (the TSan target) ----------------------------

TEST(ObsHammer, EightWorkersCountExactly) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  obs::Counter& work = obs::registry().counter("obstest.hammer",
                                               CounterKind::kWork);
  obs::Counter& info = obs::registry().counter("obstest.hammer.info",
                                               CounterKind::kInfo);
  work.reset();
  info.reset();
  ThreadPool pool(8);
  constexpr std::uint64_t kIters = 100000;
  pool.parallel_for(0, kIters, [](std::uint64_t) {
    WM_COUNT(obstest.hammer);
    WM_COUNT_INFO(obstest.hammer.info);
    WM_COUNT_MAX(obstest.hammer.hwm, 5);
  });
  EXPECT_EQ(work.value(), kIters);
  EXPECT_EQ(info.value(), kIters);
  EXPECT_EQ(obs::registry().counter("obstest.hammer.hwm").value(), 5u);
  // The pool's own telemetry is alive and self-consistent.
  const PoolTelemetry t = pool.telemetry();
  ASSERT_EQ(t.tasks_per_worker.size(), 8u);
  EXPECT_GE(t.steal_attempts, t.steal_successes);
#endif
}

// --- The determinism contract the regression gate relies on ---------------

/// Runs `body` against a fresh pool of `threads` executors and returns
/// how much every work counter grew — the exact quantity bench_diff.py
/// gates on.
std::map<std::string, std::uint64_t> work_delta(
    int threads, const std::function<void(ThreadPool&)>& body) {
  const auto before = obs::registry().snapshot(CounterKind::kWork);
  ThreadPool pool(threads);
  body(pool);
  const auto after = obs::registry().snapshot(CounterKind::kWork);
  std::map<std::string, std::uint64_t> delta;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    if (value != base) delta[name] = value - base;
  }
  return delta;
}

void expect_thread_invariant(const std::function<void(ThreadPool&)>& body) {
#ifdef WM_OBS_DISABLED
  work_delta(1, body);  // still exercises the workload; nothing to compare
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const auto seq = work_delta(1, body);
  EXPECT_FALSE(seq.empty());  // the workload must actually be instrumented
  const auto par = work_delta(8, body);
  EXPECT_EQ(seq, par);
#endif
}

TEST(ObsDeterminism, QuotientSearchWorkInvariantAcrossThreadCounts) {
  std::vector<PortNumbering> numberings;
  for_each_consistent_port_numbering(cycle_graph(4), [&](const PortNumbering& p) {
    numberings.push_back(p);
    return true;
  });
  ASSERT_FALSE(numberings.empty());
  expect_thread_invariant([&](ThreadPool& pool) {
    search_distinct_quotients(
        numberings.size(),
        [&](std::uint64_t i) {
          return kripke_from_graph(numberings[i], Variant::PlusPlus);
        },
        /*graded=*/false, &pool);
  });
}

TEST(ObsDeterminism, DecisionWorkInvariantAcrossThreadCounts) {
  const auto problem = leaf_in_star_problem();
  std::vector<PortNumbering> scope;
  for (int k = 2; k <= 3; ++k) {
    scope.push_back(PortNumbering::identity(star_graph(k)));
  }
  for (const ProblemClass c : {ProblemClass::SV, ProblemClass::VB}) {
    expect_thread_invariant([&](ThreadPool& pool) {
      DecisionOptions opts;
      opts.rounds = 1;
      opts.pool = &pool;
      decide_solvable(*problem, scope, c, opts);
    });
  }
}

TEST(ObsDeterminism, IsoFreeEnumerationWorkInvariantAcrossThreadCounts) {
  EnumerateOptions opts;
  expect_thread_invariant([&](ThreadPool& pool) {
    std::size_t reps = 0;
    enumerate_graphs_modulo_iso_parallel(5, opts, pool, [&](const Graph&) {
      ++reps;
      return true;
    });
    EXPECT_GT(reps, 0u);
  });
}

}  // namespace
}  // namespace wm
