#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace wm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit in 500 draws
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.chance(5, 5));
    EXPECT_FALSE(rng.chance(0, 5));
  }
}

}  // namespace
}  // namespace wm
