#include "core/classification.hpp"

#include <stdexcept>

#include "graph/generators.hpp"
#include "problems/catalogue.hpp"

namespace wm {

std::string problem_class_name(ProblemClass c) {
  switch (c) {
    case ProblemClass::SB: return "SB";
    case ProblemClass::MB: return "MB";
    case ProblemClass::VB: return "VB";
    case ProblemClass::SV: return "SV";
    case ProblemClass::MV: return "MV";
    case ProblemClass::VV: return "VV";
    case ProblemClass::VVc: return "VVc";
  }
  return "?";
}

std::vector<ProblemClass> all_problem_classes() {
  return {ProblemClass::SB, ProblemClass::MB, ProblemClass::VB,
          ProblemClass::SV, ProblemClass::MV, ProblemClass::VV,
          ProblemClass::VVc};
}

AlgebraicClass machine_class_for(ProblemClass c) {
  switch (c) {
    case ProblemClass::SB: return AlgebraicClass::set_broadcast();
    case ProblemClass::MB: return AlgebraicClass::multiset_broadcast();
    case ProblemClass::VB: return AlgebraicClass::vector_broadcast();
    case ProblemClass::SV: return AlgebraicClass::set();
    case ProblemClass::MV: return AlgebraicClass::multiset();
    case ProblemClass::VV:
    case ProblemClass::VVc: return AlgebraicClass::vector();
  }
  return AlgebraicClass::vector();
}

Variant kripke_variant_for(ProblemClass c) {
  switch (c) {
    case ProblemClass::SB:
    case ProblemClass::MB: return Variant::MinusMinus;
    case ProblemClass::VB: return Variant::PlusMinus;
    case ProblemClass::SV:
    case ProblemClass::MV: return Variant::MinusPlus;
    case ProblemClass::VV:
    case ProblemClass::VVc: return Variant::PlusPlus;
  }
  return Variant::PlusPlus;
}

bool graded_logic_for(ProblemClass c) {
  return c == ProblemClass::MB || c == ProblemClass::MV;
}

std::string logic_name_for(ProblemClass c) {
  switch (c) {
    case ProblemClass::SB: return "ML";
    case ProblemClass::MB: return "GML";
    case ProblemClass::VB: return "MML";
    case ProblemClass::SV: return "MML";
    case ProblemClass::MV: return "GMML";
    case ProblemClass::VV:
    case ProblemClass::VVc: return "MML";
  }
  return "?";
}

int linear_order_level(ProblemClass c) {
  switch (c) {
    case ProblemClass::SB: return 0;
    case ProblemClass::MB:
    case ProblemClass::VB: return 1;
    case ProblemClass::SV:
    case ProblemClass::MV:
    case ProblemClass::VV: return 2;
    case ProblemClass::VVc: return 3;
  }
  return -1;
}

SeparationCheck check_separation(const SeparationWitness& w,
                                 ThreadPool* pool) {
  SeparationCheck result;
  const Variant variant = kripke_variant_for(w.excluded_from);
  const KripkeModel k = kripke_from_graph(w.numbering, variant);
  // Corollary 3 uses plain (ungraded) bisimulation: if X cannot be split
  // by any MML formula on this view, no algorithm of the class can split
  // it either (Theorem 2 + Fact 1).
  const Partition p = coarsest_bisimulation(k);
  result.num_blocks = p.num_blocks;
  result.partition_is_bisim = verify_bisimulation_partition(k, p);
  result.x_bisimilar = true;
  for (std::size_t i = 1; i < w.x.size(); ++i) {
    if (!p.same_block(w.x[0], w.x[i])) result.x_bisimilar = false;
  }
  result.solutions_split_x =
      every_solution_splits(*w.problem, w.graph, w.x, pool);
  return result;
}

SeparationWitness thm11_witness(int k) {
  if (k < 2) throw std::invalid_argument("thm11_witness: k >= 2 required");
  SeparationWitness w;
  w.name = "Theorem 11: leaf-in-star on the " + std::to_string(k) + "-star";
  w.problem = leaf_in_star_problem();
  w.graph = star_graph(k);
  w.numbering = PortNumbering::identity(w.graph);
  for (int leaf = 1; leaf <= k; ++leaf) w.x.push_back(leaf);
  w.solvable_in = ProblemClass::SV;
  w.excluded_from = ProblemClass::VB;
  return w;
}

SeparationWitness thm13_witness() {
  // Component A: degree-3 nodes 0..3 on a 4-cycle, each with one
  // degree-2 neighbour (4 and 5). A degree-3 node sees neighbour degrees
  // (3, 3, 2): two odd -> output 0.
  // Component B: K4 minus an edge — degree-3 nodes 6, 7; degree-2 nodes
  // 8, 9. A degree-3 node sees (3, 2, 2): one odd -> output 1.
  // In K_{-,-} both kinds of degree-3 node have proposition q3 and
  // successor *set* {degree-3 class, degree-2 class}; the degree-2 nodes
  // have q2 and successor set {degree-3 class} — a two-block bisimulation
  // across the union, yet the unique valid solution splits X = {0, 6}.
  Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(0, 4);
  g.add_edge(1, 4);
  g.add_edge(2, 5);
  g.add_edge(3, 5);
  g.add_edge(6, 7);
  g.add_edge(6, 8);
  g.add_edge(6, 9);
  g.add_edge(7, 8);
  g.add_edge(7, 9);
  SeparationWitness w;
  w.name = "Theorem 13: odd-odd-neighbours on a biregular witness pair";
  w.problem = odd_odd_problem();
  w.graph = g;
  w.numbering = PortNumbering::identity(g);
  w.x = {0, 6};
  w.solvable_in = ProblemClass::MB;
  w.excluded_from = ProblemClass::SB;
  return w;
}

SeparationWitness mis_cycle_witness(int even_n) {
  if (even_n < 4 || even_n % 2 != 0) {
    throw std::invalid_argument("mis_cycle_witness: need even n >= 4");
  }
  const Graph g = cycle_graph(even_n);
  // Proper 2-edge-colouring of the even cycle: edge {i, i+1} gets colour
  // i % 2 + 1, the wrap edge {n-1, 0} gets colour 2. Using the colour as
  // the port at BOTH endpoints gives a consistent, perfectly symmetric
  // numbering.
  auto colour = [even_n](NodeId a, NodeId b) {
    const NodeId lo = std::min(a, b), hi = std::max(a, b);
    if (lo == 0 && hi == even_n - 1) return 2;
    return static_cast<int>(lo % 2) + 1;
  };
  std::vector<std::vector<int>> perm(static_cast<std::size_t>(even_n));
  for (NodeId v = 0; v < even_n; ++v) {
    for (NodeId u : g.neighbours(v)) perm[v].push_back(colour(v, u));
  }
  auto copy = perm;
  SeparationWitness w;
  w.name = "Section 3.1: maximal independent set on the symmetric " +
           std::to_string(even_n) + "-cycle (consistent numbering)";
  w.problem = maximal_independent_set_problem();
  w.graph = g;
  w.numbering = PortNumbering::from_permutations(g, perm, copy);
  for (NodeId v = 0; v < even_n; ++v) w.x.push_back(v);
  w.solvable_in = ProblemClass::VVc;  // placeholder — see header comment
  w.excluded_from = ProblemClass::VVc;
  return w;
}

SeparationWitness thm17_witness(int k) {
  SeparationWitness w;
  w.name = "Theorem 17: symmetry breaking on the " + std::to_string(k) +
           "-regular class-G graph";
  w.problem = symmetry_break_problem();
  w.graph = class_g_graph(k);
  // Lemma 15: the symmetric (necessarily inconsistent, by Lemma 16) port
  // numbering from the 1-factorised double cover.
  w.numbering = PortNumbering::symmetric_regular(w.graph);
  for (int v = 0; v < w.graph.num_nodes(); ++v) w.x.push_back(v);
  w.solvable_in = ProblemClass::VVc;
  w.excluded_from = ProblemClass::VV;
  return w;
}

}  // namespace wm
