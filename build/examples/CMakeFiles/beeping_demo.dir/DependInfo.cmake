
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/beeping_demo.cpp" "examples/CMakeFiles/beeping_demo.dir/beeping_demo.cpp.o" "gcc" "examples/CMakeFiles/beeping_demo.dir/beeping_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/wm_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/wm_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/wm_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/wm_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/labelled/CMakeFiles/wm_labelled.dir/DependInfo.cmake"
  "/root/repo/build/src/cover/CMakeFiles/wm_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/bisim/CMakeFiles/wm_bisim.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/wm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/wm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/port/CMakeFiles/wm_port.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
