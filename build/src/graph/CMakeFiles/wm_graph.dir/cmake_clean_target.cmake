file(REMOVE_RECURSE
  "libwm_graph.a"
)
