file(REMOVE_RECURSE
  "CMakeFiles/wm_compile.dir/extract.cpp.o"
  "CMakeFiles/wm_compile.dir/extract.cpp.o.d"
  "CMakeFiles/wm_compile.dir/formula_compiler.cpp.o"
  "CMakeFiles/wm_compile.dir/formula_compiler.cpp.o.d"
  "libwm_compile.a"
  "libwm_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
