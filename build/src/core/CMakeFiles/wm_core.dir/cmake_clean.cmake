file(REMOVE_RECURSE
  "CMakeFiles/wm_core.dir/classification.cpp.o"
  "CMakeFiles/wm_core.dir/classification.cpp.o.d"
  "CMakeFiles/wm_core.dir/decision.cpp.o"
  "CMakeFiles/wm_core.dir/decision.cpp.o.d"
  "CMakeFiles/wm_core.dir/solvability.cpp.o"
  "CMakeFiles/wm_core.dir/solvability.cpp.o.d"
  "CMakeFiles/wm_core.dir/synthesis.cpp.o"
  "CMakeFiles/wm_core.dir/synthesis.cpp.o.d"
  "libwm_core.a"
  "libwm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
