// The colour-refinement prologue C_Delta of Theorem 4, as a standalone
// computation — so Lemmas 5 and 6 can be tested at the trace level and
// the 2*Delta bound can be ablated empirically.
//
// Each node v builds beta_t(v) and B_t(v):
//   beta_0 = (), B_0 = {};
//   round t: beta_t = (beta_{t-1}, B_{t-1});
//            send (beta_t, deg, i) to port i;
//            B_t = set of messages received.
//
// Lemma 6: after 2*Delta rounds the keys (beta(u), deg(u), pi(u, v)) of
// distinct neighbours u, w of any v are distinct — which is what lets a
// Set algorithm reconstruct multisets.
#pragma once

#include <vector>

#include "port/port_numbering.hpp"
#include "util/value.hpp"

namespace wm {

struct RefinementTrace {
  /// beta[t][v] for t = 0..rounds.
  std::vector<std::vector<Value>> beta;
  /// bset[t][v] = B_t(v) for t = 0..rounds.
  std::vector<std::vector<Value>> bset;
};

RefinementTrace run_refinement(const PortNumbering& p, int rounds);

/// Lemma 6's conclusion at a given round: for every node v, the keys
/// (beta_t(u), deg(u), pi(u, v)) of its distinct neighbours u differ.
bool neighbour_keys_distinct(const PortNumbering& p,
                             const std::vector<Value>& beta_t);

/// Smallest t <= limit at which neighbour_keys_distinct holds, or -1.
/// (Lemma 6 guarantees a value <= 2*Delta; in practice it is usually
/// much smaller — see bench_thm4_overhead's ablation.)
int rounds_until_keys_distinct(const PortNumbering& p, int limit);

}  // namespace wm
