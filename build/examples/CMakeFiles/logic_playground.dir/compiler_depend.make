# Empty compiler generated dependencies file for logic_playground.
# This may be replaced when dependencies are built.
