# Empty dependencies file for wm_problems.
# This may be replaced when dependencies are built.
