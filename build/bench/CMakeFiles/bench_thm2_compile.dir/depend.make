# Empty dependencies file for bench_thm2_compile.
# This may be replaced when dependencies are built.
