#include "logic/formula.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace wm {

namespace {

std::size_t mix(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "wm::Formula: %s\n", what);
  std::abort();
}

}  // namespace

std::string Modality::to_string() const {
  auto part = [](int x) { return x == 0 ? std::string("*") : std::to_string(x); };
  return "(" + part(in) + "," + part(out) + ")";
}

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::PlusPlus: return "K++";
    case Variant::MinusPlus: return "K-+";
    case Variant::PlusMinus: return "K+-";
    case Variant::MinusMinus: return "K--";
  }
  return "?";
}

Formula Formula::make(Node&& n) {
  std::size_t h = static_cast<std::size_t>(n.kind) * 0x100000001b3ULL;
  h = mix(h, static_cast<std::size_t>(n.prop));
  h = mix(h, static_cast<std::size_t>(n.alpha.in * 131 + n.alpha.out));
  h = mix(h, static_cast<std::size_t>(n.grade));
  int depth = 0;
  std::size_t size = 1;
  for (const Formula& k : n.kids) {
    h = mix(h, k.hash());
    depth = std::max(depth, k.modal_depth());
    size += k.size();
  }
  if (n.kind == Kind::Diamond || n.kind == Kind::Box) ++depth;
  n.depth = depth;
  n.size = size;
  n.hash = h;
  return Formula(std::make_shared<const Node>(std::move(n)));
}

Formula::Formula() : Formula(tru()) {}

Formula Formula::tru() {
  static const Formula t = [] {
    Node n;
    n.kind = Kind::True;
    return make(std::move(n));
  }();
  return t;
}

Formula Formula::fls() {
  static const Formula f = [] {
    Node n;
    n.kind = Kind::False;
    return make(std::move(n));
  }();
  return f;
}

Formula Formula::prop(int p) {
  if (p < 1) die("prop index must be >= 1");
  Node n;
  n.kind = Kind::Prop;
  n.prop = p;
  return make(std::move(n));
}

Formula Formula::negate(Formula f) {
  Node n;
  n.kind = Kind::Not;
  n.kids = {std::move(f)};
  return make(std::move(n));
}

Formula Formula::conj(Formula a, Formula b) {
  Node n;
  n.kind = Kind::And;
  n.kids = {std::move(a), std::move(b)};
  return make(std::move(n));
}

Formula Formula::disj(Formula a, Formula b) {
  Node n;
  n.kind = Kind::Or;
  n.kids = {std::move(a), std::move(b)};
  return make(std::move(n));
}

Formula Formula::conj_all(FormulaVec fs) {
  if (fs.empty()) return tru();
  Formula acc = fs[0];
  for (std::size_t i = 1; i < fs.size(); ++i) acc = conj(acc, fs[i]);
  return acc;
}

Formula Formula::disj_all(FormulaVec fs) {
  if (fs.empty()) return fls();
  Formula acc = fs[0];
  for (std::size_t i = 1; i < fs.size(); ++i) acc = disj(acc, fs[i]);
  return acc;
}

Formula Formula::diamond(Modality alpha, Formula f, int grade) {
  if (grade < 1) die("diamond grade must be >= 1");
  Node n;
  n.kind = Kind::Diamond;
  n.alpha = alpha;
  n.grade = grade;
  n.kids = {std::move(f)};
  return make(std::move(n));
}

Formula Formula::box(Modality alpha, Formula f) {
  Node n;
  n.kind = Kind::Box;
  n.alpha = alpha;
  n.kids = {std::move(f)};
  return make(std::move(n));
}

int Formula::prop_id() const {
  if (kind() != Kind::Prop) die("prop_id() on non-Prop");
  return node_->prop;
}

const Formula& Formula::child(std::size_t i) const {
  if (i >= node_->kids.size()) die("child() out of range");
  return node_->kids[i];
}

Modality Formula::modality() const {
  if (kind() != Kind::Diamond && kind() != Kind::Box) die("modality() misuse");
  return node_->alpha;
}

int Formula::grade() const {
  if (kind() != Kind::Diamond) die("grade() on non-Diamond");
  return node_->grade;
}

bool Formula::is_graded() const {
  if (kind() == Kind::Diamond && node_->grade >= 2) return true;
  for (const Formula& k : node_->kids) {
    if (k.is_graded()) return true;
  }
  return false;
}

bool Formula::in_signature(Variant variant, int delta) const {
  if (kind() == Kind::Diamond || kind() == Kind::Box) {
    const Modality a = node_->alpha;
    const bool in_star = a.in == 0, out_star = a.out == 0;
    bool ok = false;
    switch (variant) {
      case Variant::PlusPlus: ok = !in_star && !out_star; break;
      case Variant::MinusPlus: ok = in_star && !out_star; break;
      case Variant::PlusMinus: ok = !in_star && out_star; break;
      case Variant::MinusMinus: ok = in_star && out_star; break;
    }
    if (!ok || a.in > delta || a.out > delta) return false;
  }
  if (kind() == Kind::Prop && node_->prop > delta) return false;
  for (const Formula& k : node_->kids) {
    if (!k.in_signature(variant, delta)) return false;
  }
  return true;
}

int Formula::max_prop() const {
  int m = kind() == Kind::Prop ? node_->prop : 0;
  for (const Formula& k : node_->kids) m = std::max(m, k.max_prop());
  return m;
}

int Formula::max_port() const {
  int m = 0;
  if (kind() == Kind::Diamond || kind() == Kind::Box) {
    m = std::max(node_->alpha.in, node_->alpha.out);
  }
  for (const Formula& k : node_->kids) m = std::max(m, k.max_port());
  return m;
}

bool operator==(const Formula& a, const Formula& b) {
  if (a.node_ == b.node_) return true;
  if (a.hash() != b.hash()) return false;
  return (a <=> b) == std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const Formula& a, const Formula& b) {
  if (a.node_ == b.node_) return std::strong_ordering::equal;
  if (auto c = a.kind() <=> b.kind(); c != 0) return c;
  if (auto c = a.node_->prop <=> b.node_->prop; c != 0) return c;
  if (auto c = a.node_->alpha <=> b.node_->alpha; c != 0) return c;
  if (auto c = a.node_->grade <=> b.node_->grade; c != 0) return c;
  const auto& x = a.node_->kids;
  const auto& y = b.node_->kids;
  if (auto c = x.size() <=> y.size(); c != 0) return c;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (auto c = x[i] <=> y[i]; c != 0) return c;
  }
  return std::strong_ordering::equal;
}

std::string Formula::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::True:
      return os << "T";
    case Formula::Kind::False:
      return os << "F";
    case Formula::Kind::Prop:
      return os << 'q' << f.prop_id();
    case Formula::Kind::Not:
      return os << '~' << f.child();
    case Formula::Kind::And:
      return os << '(' << f.child(0) << " & " << f.child(1) << ')';
    case Formula::Kind::Or:
      return os << '(' << f.child(0) << " | " << f.child(1) << ')';
    case Formula::Kind::Diamond: {
      os << '<' << (f.modality().in == 0 ? "*" : std::to_string(f.modality().in))
         << ',' << (f.modality().out == 0 ? "*" : std::to_string(f.modality().out))
         << '>';
      if (f.grade() > 1) os << ">=" << f.grade();
      return os << ' ' << f.child();
    }
    case Formula::Kind::Box:
      return os << '['
                << (f.modality().in == 0 ? "*" : std::to_string(f.modality().in))
                << ','
                << (f.modality().out == 0 ? "*" : std::to_string(f.modality().out))
                << "] " << f.child();
  }
  return os;
}

FormulaVec subformula_closure(const Formula& f) {
  FormulaVec out;
  std::unordered_set<Formula> seen;
  // Post-order DFS so children precede parents.
  std::vector<std::pair<Formula, bool>> stack{{f, false}};
  while (!stack.empty()) {
    auto [cur, expanded] = stack.back();
    stack.pop_back();
    if (seen.contains(cur)) continue;
    if (expanded) {
      seen.insert(cur);
      out.push_back(cur);
      continue;
    }
    stack.push_back({cur, true});
    for (std::size_t i = 0; i < cur.num_children(); ++i) {
      stack.push_back({cur.child(i), false});
    }
  }
  return out;
}

}  // namespace wm
