#include "bisim/quotient.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "graph/canonical.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/visitor.hpp"

namespace wm {

KripkeModel quotient_model(const KripkeModel& k, const Partition& p) {
  WM_COUNT(quotient.minimisations);
  KripkeModel q(p.num_blocks, k.num_props());
  const auto blocks = p.blocks();
  for (const Modality& alpha : k.modalities()) {
    q.ensure_relation(alpha);
    std::set<std::pair<int, int>> added;
    for (int v = 0; v < k.num_states(); ++v) {
      for (int w : k.successors(alpha, v)) {
        const std::pair<int, int> e{p.block[v], p.block[w]};
        if (added.insert(e).second) q.add_edge(alpha, e.first, e.second);
      }
    }
  }
  for (int b = 0; b < p.num_blocks; ++b) {
    if (blocks[b].empty()) continue;
    const int rep = blocks[b][0];
    for (int prop = 1; prop <= k.num_props(); ++prop) {
      if (k.prop_holds(prop, rep)) q.set_prop(prop, b);
    }
  }
  return q;
}

KripkeModel minimise(const KripkeModel& k) {
  return quotient_model(k, coarsest_bisimulation(k));
}

KripkeModel graded_quotient_model(const KripkeModel& k, const Partition& p) {
  WM_COUNT(quotient.minimisations);
  KripkeModel q(p.num_blocks, k.num_props());
  const auto blocks = p.blocks();
  for (const Modality& alpha : k.modalities()) {
    q.ensure_relation(alpha);
    for (int b = 0; b < p.num_blocks; ++b) {
      if (blocks[b].empty()) continue;
      const int rep = blocks[b][0];
      std::vector<int> count(static_cast<std::size_t>(p.num_blocks), 0);
      for (int w : k.successors(alpha, rep)) ++count[p.block[w]];
      for (int c = 0; c < p.num_blocks; ++c) {
        for (int i = 0; i < count[c]; ++i) q.add_edge(alpha, b, c);
      }
    }
  }
  for (int b = 0; b < p.num_blocks; ++b) {
    if (blocks[b].empty()) continue;
    const int rep = blocks[b][0];
    for (int prop = 1; prop <= k.num_props(); ++prop) {
      if (k.prop_holds(prop, rep)) q.set_prop(prop, b);
    }
  }
  return q;
}

KripkeModel minimise_graded(const KripkeModel& k) {
  return graded_quotient_model(k, coarsest_graded_bisimulation(k));
}

namespace {

/// Modality-aware colour refinement: iterated (own colour, per-modality
/// sorted successor-colour multiset) until stable. The final colours
/// induce the relabelling order of refinement_fingerprint.
std::vector<int> refinement_colours(const KripkeModel& k) {
  const int n = k.num_states();
  const std::vector<Modality> mods = k.modalities();
  // Initial colour: the valuation profile (shared B1 helper, so colour 0
  // here is block 0 of the refinement partition).
  std::vector<int> colour = valuation_partition(k).block;
  for (int round = 0; round < n; ++round) {
    std::map<std::pair<int, std::vector<int>>, int> dict;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<int> sig;
      for (const Modality& alpha : mods) {
        std::vector<int> succ;
        for (int w : k.successors(alpha, v)) succ.push_back(colour[w]);
        std::sort(succ.begin(), succ.end());
        sig.push_back(-1);  // modality separator
        sig.insert(sig.end(), succ.begin(), succ.end());
      }
      auto key = std::make_pair(colour[v], std::move(sig));
      auto [it, fresh] =
          dict.try_emplace(std::move(key), static_cast<int>(dict.size()));
      next[v] = it->second;
    }
    if (next == colour) break;
    colour = std::move(next);
  }
  return colour;
}

}  // namespace

std::string model_fingerprint(const KripkeModel& k) {
  // The complete key: individualisation–refinement canonical form.
  // Isomorphic models — however symmetric — get byte-identical
  // fingerprints, so dedup tables keyed on this count isomorphism
  // classes exactly.
  return canonical_certificate(k);
}

std::string refinement_fingerprint(const KripkeModel& k) {
  const int n = k.num_states();
  const std::vector<int> colour = refinement_colours(k);
  // Relabel: stable sort by (colour, original index). new_of[old] = new.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return colour[a] < colour[b];
  });
  std::vector<int> new_of(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) new_of[order[i]] = i;

  std::string fp = "n" + std::to_string(n) + "p" +
                   std::to_string(k.num_props()) + ";";
  for (int i = 0; i < n; ++i) {
    const int v = order[i];
    fp += "s";
    for (int q = 1; q <= k.num_props(); ++q) {
      fp += k.prop_holds(q, v) ? '1' : '0';
    }
    fp += ';';
  }
  for (const Modality& alpha : k.modalities()) {
    fp += "m" + alpha.to_string() + ":";
    std::vector<std::pair<int, int>> edges;
    for (int v = 0; v < n; ++v) {
      for (int w : k.successors(alpha, v)) {
        edges.emplace_back(new_of[v], new_of[w]);
      }
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& [a, b] : edges) {
      fp += std::to_string(a) + ">" + std::to_string(b) + ",";
    }
    fp += ';';
  }
  return fp;
}

QuotientSearchResult search_distinct_quotients(
    std::uint64_t count,
    const std::function<KripkeModel(std::uint64_t)>& build, bool graded,
    ThreadPool* pool) {
  auto minimise_at = [&](std::uint64_t i) {
    const KripkeModel k = build(i);
    return graded ? minimise_graded(k) : minimise(k);
  };

  WM_TRACE_SCOPE("quotient.search");
  WM_TIME_SCOPE("quotient.search");
  WM_COUNT(quotient.searches);
  WM_COUNT_ADD(quotient.scanned, count);
  obs::ProgressTask progress("quotient.search", count);
  QuotientSearchResult result;
  result.scanned = count;
  // Pass 1: canonical fingerprint -> lowest input index. The visitor
  // drives per-candidate minimisation AND canonicalisation; the per-key
  // minimum is a pure function of the scanned family, independent of
  // thread timing — the same dedup_scan contract the enumerations use.
  // The key is complete, so each class is one isomorphism class.
  ParallelVisitor visitor(pool);
  visitor.dedup_scan<std::string>(
      count,
      [&](std::uint64_t i, auto&& emit) {
        emit(model_fingerprint(minimise_at(i)));
        progress.tick();
      },
      [&](std::uint64_t rep) {
        result.representatives.push_back(rep);
        return true;
      });
  // Pass 2 (order-preserving slots): rebuild the surviving
  // representatives' minimal models.
  result.models.assign(result.representatives.size(), KripkeModel(0, 0));
  visitor.for_each(result.representatives.size(), [&](std::uint64_t j) {
    result.models[j] = minimise_at(result.representatives[j]);
  });
  WM_COUNT_ADD(quotient.classes, result.representatives.size());
  return result;
}

}  // namespace wm
