file(REMOVE_RECURSE
  "CMakeFiles/wm_util.dir/rational.cpp.o"
  "CMakeFiles/wm_util.dir/rational.cpp.o.d"
  "CMakeFiles/wm_util.dir/rng.cpp.o"
  "CMakeFiles/wm_util.dir/rng.cpp.o.d"
  "CMakeFiles/wm_util.dir/value.cpp.o"
  "CMakeFiles/wm_util.dir/value.cpp.o.d"
  "libwm_util.a"
  "libwm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
