// Unit + property tests for the packed bitset (src/util/bitset.hpp).
//
// The property layer drives every operation against a std::vector<bool>
// oracle over WM_SEED-seeded random inputs (diff_harness seed
// convention: WM_SEED=<n> narrows to one seed), across word-boundary
// sizes 0/1/63/64/65/1000 — the packed representation must agree with
// the scalar one bit-for-bit, which is the same contract the model
// checker's differential suite enforces at the system level.
#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/diff_harness.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

const std::vector<std::size_t>& boundary_sizes() {
  static const std::vector<std::size_t> sizes = {0, 1, 63, 64, 65, 1000};
  return sizes;
}

std::vector<bool> random_bools(std::size_t n, Rng& rng) {
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.chance(1, 2);
  return out;
}

TEST(Bitset, EmptyAndConstruction) {
  for (const std::size_t n : boundary_sizes()) {
    const Bitset zero(n);
    EXPECT_EQ(zero.size(), n);
    EXPECT_EQ(zero.count(), 0u);
    EXPECT_TRUE(zero.none());
    EXPECT_EQ(zero.num_words(), (n + 63) / 64);
    const Bitset ones(n, true);
    EXPECT_EQ(ones.count(), n);
    EXPECT_EQ(ones.any(), n > 0);
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(ones.test(i));
  }
}

TEST(Bitset, SetResetAtWordBoundaries) {
  Bitset b(130);
  for (const std::size_t i : {0u, 62u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    b.set(i);
    EXPECT_TRUE(b.test(i));
  }
  EXPECT_EQ(b.count(), 8u);
  b.reset(63);
  b.reset(64);
  EXPECT_FALSE(b.test(63));
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 6u);
}

TEST(Bitset, TrailingBitsStayZeroAfterFlipAndSetAll) {
  for (const std::size_t n : boundary_sizes()) {
    Bitset b(n);
    b.flip();
    EXPECT_EQ(b.count(), n);  // a dirty trailing word would overcount
    b.set_all();
    EXPECT_EQ(b.count(), n);
    b.flip();
    EXPECT_EQ(b.count(), 0u);
    if (b.num_words() > 0) {
      EXPECT_EQ(b.word(b.num_words() - 1), 0u);
    }
  }
}

TEST(Bitset, FindFirstNextGoldens) {
  Bitset b(200);
  EXPECT_EQ(b.find_first(), Bitset::npos);
  b.set(5);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 63u);
  EXPECT_EQ(b.find_next(63), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), Bitset::npos);
  // Single-bit and empty extremes.
  Bitset one(1);
  EXPECT_EQ(one.find_first(), Bitset::npos);
  one.set(0);
  EXPECT_EQ(one.find_first(), 0u);
  EXPECT_EQ(one.find_next(0), Bitset::npos);
  EXPECT_EQ(Bitset().find_first(), Bitset::npos);
}

TEST(Bitset, PopcountGoldens) {
  Bitset b(65);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(64);
  EXPECT_EQ(b.count(), 2u);
  b.set_all();
  EXPECT_EQ(b.count(), 65u);
  b.reset(64);
  EXPECT_EQ(b.count(), 64u);
}

TEST(Bitset, RoundTripThroughBools) {
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng rng(seed);
    for (const std::size_t n : boundary_sizes()) {
      const std::vector<bool> ref = random_bools(n, rng);
      const Bitset b = Bitset::from_bools(ref);
      EXPECT_EQ(b.to_bools(), ref) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(b.count(),
                static_cast<std::size_t>(
                    std::count(ref.begin(), ref.end(), true)));
    }
  }
}

TEST(Bitset, BooleanOpsAgainstOracle) {
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng rng(seed);
    for (const std::size_t n : boundary_sizes()) {
      const std::vector<bool> ra = random_bools(n, rng);
      const std::vector<bool> rb = random_bools(n, rng);
      const Bitset a = Bitset::from_bools(ra);
      const Bitset b = Bitset::from_bools(rb);
      std::vector<bool> r_and(n), r_or(n), r_xor(n), r_andnot(n), r_not(n);
      for (std::size_t i = 0; i < n; ++i) {
        r_and[i] = ra[i] && rb[i];
        r_or[i] = ra[i] || rb[i];
        r_xor[i] = ra[i] != rb[i];
        r_andnot[i] = ra[i] && !rb[i];
        r_not[i] = !ra[i];
      }
      EXPECT_EQ((a & b).to_bools(), r_and) << "n=" << n << " seed=" << seed;
      EXPECT_EQ((a | b).to_bools(), r_or) << "n=" << n << " seed=" << seed;
      EXPECT_EQ((a ^ b).to_bools(), r_xor) << "n=" << n << " seed=" << seed;
      Bitset diff = a;
      diff.andnot_assign(b);
      EXPECT_EQ(diff.to_bools(), r_andnot) << "n=" << n << " seed=" << seed;
      EXPECT_EQ((~a).to_bools(), r_not) << "n=" << n << " seed=" << seed;
      // In-place forms match the value forms.
      Bitset c = a;
      c &= b;
      EXPECT_EQ(c, a & b);
      c = a;
      c |= b;
      EXPECT_EQ(c, a | b);
      c = a;
      c ^= b;
      EXPECT_EQ(c, a ^ b);
    }
  }
}

TEST(Bitset, FindIterationAgainstOracle) {
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng rng(seed);
    for (const std::size_t n : boundary_sizes()) {
      const std::vector<bool> ref = random_bools(n, rng);
      const Bitset b = Bitset::from_bools(ref);
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < n; ++i) {
        if (ref[i]) expected.push_back(i);
      }
      std::vector<std::size_t> via_find;
      for (std::size_t i = b.find_first(); i != Bitset::npos;
           i = b.find_next(i)) {
        via_find.push_back(i);
      }
      std::vector<std::size_t> via_for_each;
      b.for_each_set([&](std::size_t i) { via_for_each.push_back(i); });
      EXPECT_EQ(via_find, expected) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(via_for_each, expected) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Bitset, EqualityAndOrdering) {
  Bitset a(65), b(65);
  EXPECT_EQ(a, b);
  a.set(64);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a);  // lexicographic on words
  b.set(64);
  EXPECT_EQ(a, b);
  // Different sizes are never equal, even when both are all-zero.
  EXPECT_NE(Bitset(64), Bitset(65));
  EXPECT_TRUE(Bitset(64) < Bitset(65));
}

TEST(Bitset, AssignReuses) {
  Bitset b(10, true);
  b.assign(130, false);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.none());
  b.assign(65, true);
  EXPECT_EQ(b.count(), 65u);
}

}  // namespace
}  // namespace wm
