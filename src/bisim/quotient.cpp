#include "bisim/quotient.hpp"

#include <set>

namespace wm {

KripkeModel quotient_model(const KripkeModel& k, const Partition& p) {
  KripkeModel q(p.num_blocks, k.num_props());
  const auto blocks = p.blocks();
  for (const Modality& alpha : k.modalities()) {
    q.ensure_relation(alpha);
    std::set<std::pair<int, int>> added;
    for (int v = 0; v < k.num_states(); ++v) {
      for (int w : k.successors(alpha, v)) {
        const std::pair<int, int> e{p.block[v], p.block[w]};
        if (added.insert(e).second) q.add_edge(alpha, e.first, e.second);
      }
    }
  }
  for (int b = 0; b < p.num_blocks; ++b) {
    if (blocks[b].empty()) continue;
    const int rep = blocks[b][0];
    for (int prop = 1; prop <= k.num_props(); ++prop) {
      if (k.prop_holds(prop, rep)) q.set_prop(prop, b);
    }
  }
  return q;
}

KripkeModel minimise(const KripkeModel& k) {
  return quotient_model(k, coarsest_bisimulation(k));
}

KripkeModel graded_quotient_model(const KripkeModel& k, const Partition& p) {
  KripkeModel q(p.num_blocks, k.num_props());
  const auto blocks = p.blocks();
  for (const Modality& alpha : k.modalities()) {
    q.ensure_relation(alpha);
    for (int b = 0; b < p.num_blocks; ++b) {
      if (blocks[b].empty()) continue;
      const int rep = blocks[b][0];
      std::vector<int> count(static_cast<std::size_t>(p.num_blocks), 0);
      for (int w : k.successors(alpha, rep)) ++count[p.block[w]];
      for (int c = 0; c < p.num_blocks; ++c) {
        for (int i = 0; i < count[c]; ++i) q.add_edge(alpha, b, c);
      }
    }
  }
  for (int b = 0; b < p.num_blocks; ++b) {
    if (blocks[b].empty()) continue;
    const int rep = blocks[b][0];
    for (int prop = 1; prop <= k.num_props(); ++prop) {
      if (k.prop_holds(prop, rep)) q.set_prop(prop, b);
    }
  }
  return q;
}

KripkeModel minimise_graded(const KripkeModel& k) {
  return graded_quotient_model(k, coarsest_graded_bisimulation(k));
}

}  // namespace wm
