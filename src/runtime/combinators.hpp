// Machine combinators.
//
// The paper handles non-binary outputs "by defining a separate formula
// for each output bit" (Section 4.3) — the algorithmic counterpart is
// running several machines of the same class in lockstep and combining
// their outputs. `product_machine` does exactly that: component i's
// message occupies slot i of a tuple message, inboxes are re-sliced per
// component (set/multiset machines receive the canonicalised projection
// of their slot), and the product stops when every component has
// stopped, with a caller-supplied output combiner.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/state_machine.hpp"

namespace wm {

/// Combines component outputs (stopping states) into the product output.
using OutputCombiner = std::function<Value(const ValueVec&)>;

/// Lockstep product of machines of the same algebraic class. The product
/// is of that class too, and it is faithful in every receive mode:
/// messages are tuples of component messages, and component i receives
/// the canonicalised slot-i projection of the product inbox — which
/// equals what a standalone run would have delivered (the set of slot
/// projections of a set of tuples is the set of per-neighbour values,
/// and likewise for multisets and vectors). Components may stop at
/// different times; a stopped component's slot carries m0. The product
/// stops once every component has, with output combiner(outputs).
/// Default combiner: Tuple of the component outputs.
std::shared_ptr<const StateMachine> product_machine(
    std::vector<std::shared_ptr<const StateMachine>> components,
    OutputCombiner combiner = nullptr);

/// Combiner mapping k 0/1 component outputs to Int(sum of bit_i << i).
OutputCombiner binary_combiner();

/// Combiner: output Int(i + 1) for the first component i that output 1,
/// or Int(0) if none did (used for one-hot colour assignment).
OutputCombiner first_one_combiner();

}  // namespace wm
