file(REMOVE_RECURSE
  "CMakeFiles/test_factorisation.dir/test_factorisation.cpp.o"
  "CMakeFiles/test_factorisation.dir/test_factorisation.cpp.o.d"
  "test_factorisation"
  "test_factorisation.pdb"
  "test_factorisation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factorisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
