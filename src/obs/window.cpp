#include "obs/window.hpp"

#include "obs/counters.hpp"

namespace wm::obs {

namespace {

/// Component-wise newer - older over counter maps. Keys only in the
/// older snapshot are dropped (impossible for monotone registries but
/// harmless); keys only in the newer snapshot count from 0.
std::map<std::string, std::uint64_t> diff_counts(
    const std::map<std::string, std::uint64_t>& newer,
    const std::map<std::string, std::uint64_t>& older) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : newer) {
    const auto it = older.find(name);
    const std::uint64_t base = it == older.end() ? 0 : it->second;
    out.emplace(name, value >= base ? value - base : 0);
  }
  return out;
}

std::map<std::string, HistogramBuckets> diff_timings(
    const std::map<std::string, HistogramBuckets>& newer,
    const std::map<std::string, HistogramBuckets>& older) {
  std::map<std::string, HistogramBuckets> out;
  for (const auto& [name, nb] : newer) {
    HistogramBuckets d;
    const auto it = older.find(name);
    if (it == older.end()) {
      d = nb;
    } else {
      const HistogramBuckets& ob = it->second;
      for (std::size_t i = 0; i < d.counts.size(); ++i) {
        d.counts[i] =
            nb.counts[i] >= ob.counts[i] ? nb.counts[i] - ob.counts[i] : 0;
      }
      d.sum_ns = nb.sum_ns >= ob.sum_ns ? nb.sum_ns - ob.sum_ns : 0;
    }
    // The cumulative max cannot be differenced; leave max_ns 0 so
    // summary_from_buckets falls back to the highest non-empty bucket.
    d.max_ns = 0;
    out.emplace(name, std::move(d));
  }
  return out;
}

}  // namespace

double WindowDelta::rate(const std::string& counter) const noexcept {
  if (!valid || seconds <= 0) return 0;
  const auto it = work.find(counter);
  if (it == work.end()) return 0;
  return static_cast<double>(it->second) / seconds;
}

void WindowRing::capture() {
  auto snap = std::make_shared<Snapshot>();
  snap->when = std::chrono::steady_clock::now();
  snap->work = registry().snapshot(CounterKind::kWork);
  snap->info = registry().snapshot(CounterKind::kInfo);
  snap->timings = histograms().bucket_snapshot();
  // Claim a slot, then publish: seq is 1-based so a loaded snapshot with
  // seq 0 can never exist and readers can order slots by seq alone.
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  snap->seq = ticket + 1;
  slots_[static_cast<std::size_t>(ticket % kSlots)].store(
      std::move(snap), std::memory_order_release);
}

WindowDelta WindowRing::delta(double seconds) const {
  WindowDelta out;
  // Load every populated slot; the ring may be concurrently overwritten,
  // but each loaded shared_ptr pins an immutable Snapshot.
  std::shared_ptr<const Snapshot> newest;
  std::array<std::shared_ptr<const Snapshot>, kSlots> loaded;
  int n = 0;
  for (const auto& slot : slots_) {
    auto s = slot.load(std::memory_order_acquire);
    if (!s) continue;
    if (!newest || s->seq > newest->seq) newest = s;
    loaded[static_cast<std::size_t>(n++)] = std::move(s);
  }
  if (!newest || n < 2) return out;
  // Pick the youngest snapshot at least `seconds` older than the
  // newest; when none is that old, the oldest available.
  std::shared_ptr<const Snapshot> base;
  std::shared_ptr<const Snapshot> oldest;
  const auto cutoff =
      newest->when - std::chrono::duration_cast<std::chrono::steady_clock::
                                                    duration>(
                         std::chrono::duration<double>(seconds < 0 ? 0
                                                                   : seconds));
  for (int i = 0; i < n; ++i) {
    const auto& s = loaded[static_cast<std::size_t>(i)];
    if (s->seq == newest->seq) continue;
    if (!oldest || s->seq < oldest->seq) oldest = s;
    if (s->when <= cutoff && (!base || s->seq > base->seq)) base = s;
  }
  if (!base) base = oldest;
  if (!base) return out;
  out.valid = true;
  out.seconds =
      std::chrono::duration<double>(newest->when - base->when).count();
  out.work = diff_counts(newest->work, base->work);
  out.info = diff_counts(newest->info, base->info);
  out.timings = diff_timings(newest->timings, base->timings);
  return out;
}

std::uint64_t WindowRing::captures() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

WindowRing& window() {
  // Leaked like the registries: delta() may run from atexit paths.
  static WindowRing* ring = new WindowRing();
  return *ring;
}

WindowSampler::WindowSampler(std::chrono::milliseconds period)
    : period_(period) {}

WindowSampler::~WindowSampler() { stop(); }

void WindowSampler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] {
    window().capture();  // t=0 baseline so early deltas are valid
    std::unique_lock<std::mutex> lk(mu_);
    while (!cv_.wait_for(lk, period_, [this] { return stopping_; })) {
      lk.unlock();
      window().capture();
      lk.lock();
    }
  });
}

void WindowSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    thread_ = std::thread();
  }
}

}  // namespace wm::obs
