#include "graph/enumerate.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace wm {
namespace {

TEST(Enumerate, CountsAllGraphsOnThreeNodes) {
  EnumerateOptions opts;
  opts.connected_only = false;
  std::size_t count = 0;
  enumerate_graphs(3, opts, [&](const Graph&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 8u);  // 2^3 edge subsets
}

TEST(Enumerate, CountsConnectedLabelledGraphs) {
  // Known sequence (OEIS A001187): 1, 1, 4, 38, 728 for n = 1, 2, 3, 4, 5.
  const std::size_t expected[] = {1, 1, 4, 38, 728};
  for (int n = 1; n <= 5; ++n) {
    EnumerateOptions opts;
    std::size_t count = 0;
    enumerate_graphs(n, opts, [&](const Graph& g) {
      EXPECT_TRUE(is_connected(g));
      ++count;
      return true;
    });
    EXPECT_EQ(count, expected[n - 1]) << "n=" << n;
  }
}

TEST(Enumerate, DegreeBoundsRespected) {
  EnumerateOptions opts;
  opts.connected_only = true;
  opts.max_degree = 2;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    EXPECT_LE(g.max_degree(), 2);
    return true;
  });
  opts.min_degree = 2;
  // Connected graphs on 5 nodes with all degrees exactly 2 = 5-cycles.
  std::size_t cycles = 0;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    EXPECT_TRUE(g.is_regular(2));
    ++cycles;
    return true;
  });
  EXPECT_EQ(cycles, 12u);  // (5-1)!/2 labelled 5-cycles
}

TEST(Enumerate, EarlyStop) {
  EnumerateOptions opts;
  opts.connected_only = false;
  int seen = 0;
  enumerate_graphs(4, opts, [&](const Graph&) { return ++seen < 5; });
  EXPECT_EQ(seen, 5);
}

TEST(Enumerate, ModuloRefinementVisitsFewer) {
  EnumerateOptions opts;
  std::size_t all = 0, reduced = 0;
  enumerate_graphs(5, opts, [&](const Graph&) {
    ++all;
    return true;
  });
  reduced = enumerate_graphs_modulo_refinement(5, opts,
                                               [&](const Graph&) { return true; });
  EXPECT_LT(reduced, all);
  EXPECT_GT(reduced, 0u);
}

}  // namespace
}  // namespace wm
