file(REMOVE_RECURSE
  "CMakeFiles/test_labelled.dir/test_labelled.cpp.o"
  "CMakeFiles/test_labelled.dir/test_labelled.cpp.o.d"
  "test_labelled"
  "test_labelled.pdb"
  "test_labelled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labelled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
