// The serve memo-cache's contract, pinned:
//
//  - capacity boundary and second-chance eviction order (shards = 1 so
//    the clock hand is deterministic),
//  - hit/miss/eviction/bypass counter goldens for fixed sequences,
//  - single-flight: concurrent requesters of one key run compute once,
//  - a concurrent differential against a mutexed std::unordered_map
//    reference: whatever interleaving happens, every value returned or
//    peeked must be the one compute() produces for that key — eviction
//    must lose entries, never corrupt them.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/memo_cache.hpp"

namespace wm::serve {
namespace {

std::string value_for(const std::string& key) { return "v(" + key + ")"; }

TEST(MemoCache, MissThenHit) {
  MemoCache cache(8, /*shards=*/1);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return std::string("forty-two");
  };
  const MemoCache::Result first = cache.get_or_compute("k", compute);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.value, "forty-two");
  const MemoCache::Result second = cache.get_or_compute("k", compute);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.value, "forty-two");
  EXPECT_EQ(computes, 1);

  const MemoCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.bypasses, 0u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(MemoCache, CapacityBoundary) {
  MemoCache cache(2, /*shards=*/1);
  cache.get_or_compute("a", [] { return std::string("A"); });
  cache.get_or_compute("b", [] { return std::string("B"); });
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Third distinct key: someone must go; live count stays at the cap.
  cache.get_or_compute("c", [] { return std::string("C"); });
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.peek("c").has_value());  // the newcomer is resident
}

TEST(MemoCache, SecondChanceSparesTheReferenced) {
  MemoCache cache(2, /*shards=*/1);
  cache.get_or_compute("a", [] { return std::string("A"); });
  cache.get_or_compute("b", [] { return std::string("B"); });
  // Admitting "c" sweeps the clock: both insertion reference bits are
  // cleared on the first pass and one of a/b is evicted; "c" publishes
  // with its bit set. State now: survivor unreferenced, "c" referenced.
  cache.get_or_compute("c", [] { return std::string("C"); });
  ASSERT_TRUE(cache.peek("c").has_value());  // peek sets no bits
  const std::string survivor = cache.peek("a").has_value() ? "a" : "b";
  // Admitting "d" must therefore evict the unreferenced survivor and
  // spare the referenced "c" — regardless of where the hand points or
  // how keys hashed into slots. This is the second-chance protection.
  cache.get_or_compute("d", [] { return std::string("D"); });
  EXPECT_FALSE(cache.peek(survivor).has_value())
      << "unreferenced entry outlived a referenced one";
  EXPECT_TRUE(cache.peek("c").has_value())
      << "second-chance evicted the referenced entry";
  EXPECT_TRUE(cache.peek("d").has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(MemoCache, EvictedKeyRecomputes) {
  MemoCache cache(1, /*shards=*/1);
  int computes_a = 0;
  cache.get_or_compute("a", [&] {
    ++computes_a;
    return std::string("A");
  });
  cache.get_or_compute("b", [] { return std::string("B"); });  // evicts "a"
  EXPECT_FALSE(cache.peek("a").has_value());
  const MemoCache::Result r = cache.get_or_compute("a", [&] {
    ++computes_a;
    return std::string("A");
  });
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(computes_a, 2);
  EXPECT_EQ(r.value, "A");
}

TEST(MemoCache, CounterGoldenSequence) {
  MemoCache cache(2, /*shards=*/1);
  // miss a, hit a, miss b, hit b, miss c (evicts one of a/b)
  cache.get_or_compute("a", [] { return std::string("A"); });
  cache.get_or_compute("a", [] { return std::string("A"); });
  cache.get_or_compute("b", [] { return std::string("B"); });
  cache.get_or_compute("b", [] { return std::string("B"); });
  cache.get_or_compute("c", [] { return std::string("C"); });
  const MemoCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.capacity, 2u);
}

TEST(MemoCache, FailedComputeIsNotCached) {
  MemoCache cache(8, /*shards=*/1);
  EXPECT_THROW(cache.get_or_compute(
                   "k", []() -> std::string { throw std::runtime_error("x"); }),
               std::runtime_error);
  EXPECT_FALSE(cache.peek("k").has_value());
  const MemoCache::Result r =
      cache.get_or_compute("k", [] { return std::string("ok"); });
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.value, "ok");
  EXPECT_TRUE(cache.peek("k").has_value());
}

TEST(MemoCache, ManyKeysAcrossDefaultShards) {
  MemoCache cache(1024);  // default shard count
  for (int i = 0; i < 512; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const auto r = cache.get_or_compute(key, [&] { return value_for(key); });
    EXPECT_FALSE(r.hit);
  }
  for (int i = 0; i < 512; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const auto r = cache.get_or_compute(key, [&] { return value_for(key); });
    EXPECT_TRUE(r.hit) << key;
    EXPECT_EQ(r.value, value_for(key));
  }
  const MemoCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 512u);
  EXPECT_EQ(st.misses, 512u);
  EXPECT_EQ(st.evictions, 0u);
}

TEST(MemoCacheParallel, SingleFlightComputesOnce) {
  MemoCache cache(8);
  std::atomic<int> computes{0};
  std::atomic<int> hits{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const auto r = cache.get_or_compute("the-key", [&] {
        computes.fetch_add(1);
        // Widen the race window so waiters really pile onto the cv.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::string("shared");
      });
      EXPECT_EQ(r.value, "shared");
      if (r.hit) hits.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  // Exactly one miss; every other requester (waiter or late) is a hit.
  EXPECT_EQ(hits.load(), kThreads - 1);
  const MemoCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(MemoCacheParallel, BypassWhenFullOfInFlight) {
  MemoCache cache(1, /*shards=*/1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  // Thread A occupies the only live slot with a blocked compute.
  std::thread a([&] {
    cache.get_or_compute("blocker", [&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
      return std::string("slow");
    });
  });
  // Wait until the blocker's kComputing slot is claimed.
  while (cache.stats().entries == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // A different key cannot evict the in-flight entry: bypass, computed
  // but not cached.
  const auto r = cache.get_or_compute("other", [] { return std::string("O"); });
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.value, "O");
  EXPECT_GE(cache.stats().bypasses, 1u);
  EXPECT_FALSE(cache.peek("other").has_value());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  a.join();
  EXPECT_EQ(cache.peek("blocker"), std::optional<std::string>("slow"));
}

// The differential: hammer a small cache from many threads with an
// overlapping key population and compare every observation against the
// pure function the cache memoises. A mutexed unordered_map holds the
// reference values (computed eagerly, so the map itself is not under
// test). Eviction pressure is part of the point: entries may vanish and
// recompute, but a value for key K must always be value_for(K).
TEST(MemoCacheParallel, DifferentialAgainstReferenceMap) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kOpsPerThread = 2000;
  MemoCache cache(16, /*shards=*/4);  // heavy eviction pressure

  std::unordered_map<std::string, std::string> reference;
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "key-" + std::to_string(k);
    reference.emplace(key, value_for(key));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic per-thread key walk (splitmix-ish), no shared rng.
      std::uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<unsigned>(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        const std::string key =
            "key-" + std::to_string(x % static_cast<unsigned>(kKeys));
        const auto r =
            cache.get_or_compute(key, [&] { return value_for(key); });
        if (r.value != reference.at(key)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const MemoCache::Stats st = cache.stats();
  // Conservation: every operation resolved as exactly one of hit/miss.
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(st.entries, st.capacity);
  // And whatever survived the pressure is uncorrupted.
  for (const auto& [key, expected] : reference) {
    if (const auto v = cache.peek(key)) {
      EXPECT_EQ(*v, expected) << key;
    }
  }
}

}  // namespace
}  // namespace wm::serve
