file(REMOVE_RECURSE
  "CMakeFiles/wm_problems.dir/catalogue.cpp.o"
  "CMakeFiles/wm_problems.dir/catalogue.cpp.o.d"
  "libwm_problems.a"
  "libwm_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
