// Bipartite double cover and 1-factorisation of regular bipartite graphs.
//
// This is the engine behind Lemma 15: for a k-regular graph G, the double
// cover G* = (V x {1,2}, {{(u,1),(v,2)} : {u,v} in E}) is k-regular
// bipartite, hence (König / Hall) its edge set is a disjoint union of k
// perfect matchings E_1..E_k; those matchings induce the symmetric port
// numbering used to prove VV != VVc.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace wm {

struct DoubleCover {
  Graph graph;             // 2n nodes: (v,1) -> v, (v,2) -> n + v
  std::vector<int> side;   // 0 for copies (v,1), 1 for copies (v,2)
  int original_n = 0;

  /// Node id of copy (v, s) for s in {1,2}.
  NodeId copy(NodeId v, int s) const { return s == 1 ? v : original_n + v; }
  /// Original node of a cover node.
  NodeId original(NodeId w) const { return w < original_n ? w : w - original_n; }
};

DoubleCover bipartite_double_cover(const Graph& g);

/// Decomposes a k-regular bipartite graph into k disjoint perfect
/// matchings (König's edge-colouring theorem), by repeatedly extracting a
/// perfect matching with Hopcroft–Karp and deleting it.
/// Throws if the graph is not regular bipartite.
std::vector<std::vector<Edge>> one_factorise_bipartite(const Graph& g,
                                                       const std::vector<int>& side);

/// For a k-regular graph g, returns k "permutation factors" of the double
/// cover pulled back to g: factor[i] is a function f_i : V -> V such that
/// {v, f_i(v)} is an edge for all v, and for each v the k values f_i(v)
/// enumerate the neighbours of v exactly once; moreover f arises from a
/// perfect matching of the double cover, which is exactly the structure
/// Lemma 15 needs (R_(i,i) relations covering all edges).
std::vector<std::vector<NodeId>> regular_graph_factors(const Graph& g);

}  // namespace wm
