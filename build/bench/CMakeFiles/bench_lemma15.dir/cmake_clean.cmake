file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma15.dir/bench_lemma15.cpp.o"
  "CMakeFiles/bench_lemma15.dir/bench_lemma15.cpp.o.d"
  "bench_lemma15"
  "bench_lemma15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
