#!/usr/bin/env python3
"""Ten-second end-to-end smoke for the wm_serve daemon (CI step).

Starts the daemon on an ephemeral port, sends one request per endpoint
plus a malformed line, checks the replies, scrapes the metrics endpoint
(grammar + exact request-count reconciliation), then SIGTERMs and
verifies the drain exits cleanly within the deadline.

usage: serve_smoke.py path/to/wm_serve
"""
import json
import re
import signal
import socket
import subprocess
import sys
import time

DEADLINE = 10.0


def fail(msg):
    print("serve_smoke: FAIL:", msg)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: serve_smoke.py path/to/wm_serve")
    start = time.monotonic()
    proc = subprocess.Popen(
        [sys.argv[1], "--port", "0", "--print-port"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        if not line.startswith("port "):
            fail("no port line from daemon: %r" % line)
        port = int(line.split()[1])

        sock = socket.create_connection(("127.0.0.1", port), timeout=5)
        f = sock.makefile("rw", encoding="utf-8", newline="\n")

        def ask(obj_or_text):
            text = (
                obj_or_text
                if isinstance(obj_or_text, str)
                else json.dumps(obj_or_text)
            )
            f.write(text + "\n")
            f.flush()
            reply = f.readline()
            if not reply:
                fail("connection closed answering %r" % text)
            return json.loads(reply)

        g = {"n": 4, "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]}

        r = ask({"op": "run", "machine": "degree-parity", "graph": g})
        if not r["ok"] or r["result"]["outputs"] != [0, 0, 0, 0]:
            fail("run: %r" % r)

        r = ask(
            {
                "op": "modelcheck",
                "formula": "<*,*> T",
                "model": {"graph": g, "variant": "--"},
            }
        )
        if not r["ok"] or r["result"]["count"] != 4:
            fail("modelcheck: %r" % r)

        r = ask({"op": "canon", "kind": "graph", "graph": g})
        if not r["ok"] or len(r["result"]["hash"]) != 16:
            fail("canon: %r" % r)

        r = ask(
            {
                "op": "classify",
                "problem": "degree-parity",
                "graph": {"n": 3, "edges": [[0, 1], [1, 2]]},
            }
        )
        if not r["ok"] or len(r["result"]["classes"]) != 7:
            fail("classify: %r" % r)

        r = ask("{not json")
        if r["ok"] or r["error"]["code"] != "parse_error":
            fail("malformed line: %r" % r)

        r = ask({"op": "stats"})
        if not r["ok"] or r["result"]["cache"]["misses"] < 4:
            fail("stats: %r" % r)
        if "window" not in r["result"]:
            fail("stats reply lacks the window section: %r" % r)

        # Metrics scrape: every line must clear the text-format grammar,
        # and the per-endpoint request totals must add up to exactly the
        # requests this script sent (the malformed line never reaches a
        # handler; the metrics request counts itself before rendering).
        r = ask({"op": "metrics"})
        if not r["ok"] or r["result"]["format"] != "prometheus-0.0.4":
            fail("metrics: %r" % r)
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r" (\+Inf|-?[0-9.eE+-]+)$"
        )
        requests_total = 0
        saw_help = 0
        for line in r["result"]["text"].splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                saw_help += 1
                continue
            if not sample_re.match(line):
                fail("metrics line fails the exposition grammar: %r" % line)
            if line.startswith("serve_requests_total{"):
                requests_total += int(line.rsplit(" ", 1)[1])
        if saw_help == 0:
            fail("metrics exposition carries no HELP/TYPE headers")
        # run + modelcheck + canon + classify + stats + metrics = 6.
        if requests_total != 6:
            fail("serve_requests_total sums to %d, want 6" % requests_total)

        sock.close()
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=max(0.1, DEADLINE - (time.monotonic() - start)))
        if rc != 0:
            fail("daemon exited %d after SIGTERM" % rc)
    finally:
        if proc.poll() is None:
            proc.kill()
    print("serve_smoke: OK (%.1fs)" % (time.monotonic() - start))


if __name__ == "__main__":
    main()
