file(REMOVE_RECURSE
  "CMakeFiles/bench_separations.dir/bench_separations.cpp.o"
  "CMakeFiles/bench_separations.dir/bench_separations.cpp.o.d"
  "bench_separations"
  "bench_separations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
