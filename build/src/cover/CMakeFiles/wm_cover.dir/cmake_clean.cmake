file(REMOVE_RECURSE
  "CMakeFiles/wm_cover.dir/covering.cpp.o"
  "CMakeFiles/wm_cover.dir/covering.cpp.o.d"
  "CMakeFiles/wm_cover.dir/views.cpp.o"
  "CMakeFiles/wm_cover.dir/views.cpp.o.d"
  "libwm_cover.a"
  "libwm_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
