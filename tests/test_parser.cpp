#include "logic/parser.hpp"

#include <gtest/gtest.h>

#include "logic/random_formula.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

TEST(Parser, Atoms) {
  EXPECT_EQ(parse_formula("T"), Formula::tru());
  EXPECT_EQ(parse_formula("F"), Formula::fls());
  EXPECT_EQ(parse_formula("q7"), Formula::prop(7));
}

TEST(Parser, Connectives) {
  EXPECT_EQ(parse_formula("~q1"), Formula::negate(Formula::prop(1)));
  EXPECT_EQ(parse_formula("(q1 & q2)"),
            Formula::conj(Formula::prop(1), Formula::prop(2)));
  EXPECT_EQ(parse_formula("q1 | q2 & q3"),
            Formula::disj(Formula::prop(1),
                          Formula::conj(Formula::prop(2), Formula::prop(3))));
}

TEST(Parser, Modalities) {
  EXPECT_EQ(parse_formula("<1,2> q1"),
            Formula::diamond({1, 2}, Formula::prop(1)));
  EXPECT_EQ(parse_formula("<*,2>>=3 q1"),
            Formula::diamond({0, 2}, Formula::prop(1), 3));
  EXPECT_EQ(parse_formula("<*,*> T"), Formula::diamond({0, 0}, Formula::tru()));
  EXPECT_EQ(parse_formula("[3,*] q2"), Formula::box({3, 0}, Formula::prop(2)));
}

TEST(Parser, WhitespaceInsensitive) {
  EXPECT_EQ(parse_formula("  ( q1   &~ q2 ) "),
            Formula::conj(Formula::prop(1), Formula::negate(Formula::prop(2))));
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_formula(""), ParseError);
  EXPECT_THROW(parse_formula("q"), ParseError);
  EXPECT_THROW(parse_formula("(q1"), ParseError);
  EXPECT_THROW(parse_formula("q1 q2"), ParseError);
  EXPECT_THROW(parse_formula("<1> q1"), ParseError);
  EXPECT_THROW(parse_formula("&"), ParseError);
}

struct RoundtripParams {
  Variant variant;
  bool graded;
};

class ParserRoundtrip : public ::testing::TestWithParam<RoundtripParams> {};

TEST_P(ParserRoundtrip, RandomFormulasSurviveRoundtrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam().graded) * 100 +
          static_cast<std::uint64_t>(GetParam().variant));
  RandomFormulaOptions opts;
  opts.variant = GetParam().variant;
  opts.graded = GetParam().graded;
  opts.max_depth = 4;
  for (int i = 0; i < 200; ++i) {
    const Formula f = random_formula(rng, opts);
    EXPECT_EQ(parse_formula(f.to_string()), f) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParserRoundtrip,
    ::testing::Values(RoundtripParams{Variant::PlusPlus, false},
                      RoundtripParams{Variant::MinusPlus, true},
                      RoundtripParams{Variant::PlusMinus, false},
                      RoundtripParams{Variant::MinusMinus, true},
                      RoundtripParams{Variant::MinusMinus, false}));

}  // namespace
}  // namespace wm
