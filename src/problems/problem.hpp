// Graph problems (Section 1.4): a problem Pi maps each graph G to a set
// Pi(G) of valid solutions S : V -> Y. We represent solutions as integer
// vectors (Y is a finite set of ints for every problem in the catalogue)
// and problems by their verifier.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace wm {

class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;

  /// Is `output` (one value per node) in Pi(g)?
  virtual bool valid(const Graph& g, const std::vector<int>& output) const = 0;

  /// The output alphabet Y (used by exhaustive solution enumeration).
  virtual std::vector<int> output_alphabet() const { return {0, 1}; }
};

using ProblemPtr = std::shared_ptr<const Problem>;

/// Enumerates all outputs in Y^V and calls fn; stops early on false.
/// Returns number visited. Only for graphs with |Y|^n manageable.
std::size_t for_each_output(const Problem& p, const Graph& g,
                            const std::function<bool(const std::vector<int>&)>& fn);

/// Corollary 3's premise, checked by brute force: every valid solution S
/// splits X (some u in X has S(u) != S(v) for some v in X). Requires
/// |Y|^n to be small.
bool every_solution_splits(const Problem& p, const Graph& g,
                           const std::vector<NodeId>& x);

}  // namespace wm
