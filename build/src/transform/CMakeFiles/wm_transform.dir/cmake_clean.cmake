file(REMOVE_RECURSE
  "CMakeFiles/wm_transform.dir/beeping.cpp.o"
  "CMakeFiles/wm_transform.dir/beeping.cpp.o.d"
  "CMakeFiles/wm_transform.dir/refinement.cpp.o"
  "CMakeFiles/wm_transform.dir/refinement.cpp.o.d"
  "CMakeFiles/wm_transform.dir/simulations.cpp.o"
  "CMakeFiles/wm_transform.dir/simulations.cpp.o.d"
  "libwm_transform.a"
  "libwm_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
