// A guided tour of the paper's three separation results (Theorems 11, 13
// and 17), each presented as an executable Corollary 3 certificate:
//
//   1. exhibit (G, p) and a node set X,
//   2. show X is bisimilar in the Kripke view of the excluded class,
//   3. show every valid solution must split X,
//   4. run the positive-side algorithm in the stronger class.
//
//   ./separations_tour [--threads N]
//
// The three Corollary 3 certificates are independent, so they are
// verified concurrently on the task-parallel substrate; the presented
// output is identical at any thread count.
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/machines.hpp"
#include "core/classification.hpp"
#include "obs/env.hpp"
#include "runtime/engine.hpp"
#include "util/parallel.hpp"

namespace {

std::string present(const wm::SeparationWitness& w) {
  using namespace wm;
  std::ostringstream out;
  out << "== " << w.name << " ==\n";
  out << "problem: " << w.problem->name() << "\n";
  out << "graph: n=" << w.graph.num_nodes() << ", m="
      << w.graph.num_edges() << "\n";
  out << "claim: problem in " << problem_class_name(w.solvable_in)
      << "(1) but NOT in " << problem_class_name(w.excluded_from)
      << "  (logic: " << logic_name_for(w.excluded_from) << " on "
      << variant_name(kripke_variant_for(w.excluded_from)) << ")\n";
  const SeparationCheck c = check_separation(w);
  out << "  bisimilar node set X of size " << w.x.size() << ": "
      << (c.x_bisimilar ? "yes" : "NO") << "\n";
  out << "  partition verified as bisimulation (B1-B3): "
      << (c.partition_is_bisim ? "yes" : "NO") << " ("
      << c.num_blocks << " block(s))\n";
  out << "  every valid solution splits X (brute force): "
      << (c.solutions_split_x ? "yes" : "NO") << "\n";
  out << "  => separation " << (c.holds() ? "HOLDS" : "FAILS") << "\n\n";
  return out.str();
}

int parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) return std::atoi(argv[i + 1]);
    if (a.rfind("--threads=", 0) == 0) return std::atoi(a.c_str() + 10);
  }
  return wm::default_thread_count();
}

}  // namespace

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  using namespace wm;
  ThreadPool pool(parse_threads(argc, argv));
  std::cout << "The linear order of Figure 5b:\n"
            << "  SB  <  MB = VB  <  SV = MV = VV  <  VVc\n\n";

  // Certify the three witnesses concurrently; print in fixed order.
  const std::vector<SeparationWitness> witnesses = {
      thm13_witness(), thm11_witness(3), thm17_witness(3)};
  std::vector<std::string> certified(witnesses.size());
  pool.parallel_for(0, witnesses.size(), [&](std::uint64_t i) {
    certified[i] = present(witnesses[i]);
  }, 1);

  std::cout << certified[0];
  {
    // Positive side of Theorem 13.
    const SeparationWitness w = thm13_witness();
    const auto r = execute(*odd_odd_machine(), w.numbering);
    std::cout << "  positive side: odd-odd machine ("
              << odd_odd_machine()->algebraic_class().name() << ") outputs:";
    for (int v : r.outputs_as_ints()) std::cout << ' ' << v;
    std::cout << " — valid: "
              << (w.problem->valid(w.graph, r.outputs_as_ints()) ? "yes" : "NO")
              << "\n\n";
  }

  std::cout << certified[1];
  {
    const SeparationWitness w = thm11_witness(3);
    const auto r = execute(*leaf_picker_machine(), w.numbering);
    std::cout << "  positive side: leaf picker ("
              << leaf_picker_machine()->algebraic_class().name() << ") outputs:";
    for (int v : r.outputs_as_ints()) std::cout << ' ' << v;
    std::cout << " — valid: "
              << (w.problem->valid(w.graph, r.outputs_as_ints()) ? "yes" : "NO")
              << "\n\n";
  }

  std::cout << certified[2];
  {
    const SeparationWitness w = thm17_witness(3);
    // Positive side needs a *consistent* numbering (class VVc).
    Rng rng(7);
    const PortNumbering cp = PortNumbering::random_consistent(w.graph, rng);
    const auto r = execute(*local_type_maximum_machine(3), cp);
    int ones = 0;
    for (int v : r.outputs_as_ints()) ones += v;
    std::cout << "  positive side: local-type algorithm under a consistent\n"
              << "  numbering outputs " << ones << " one(s) out of "
              << w.graph.num_nodes() << " — non-constant: "
              << (w.problem->valid(w.graph, r.outputs_as_ints()) ? "yes" : "NO")
              << "\n";
    // And under the symmetric numbering it *cannot* break symmetry.
    const auto rs = execute(*local_type_maximum_machine(3), w.numbering);
    bool constant = true;
    for (int v : rs.outputs_as_ints()) {
      if (v != rs.outputs_as_ints()[0]) constant = false;
    }
    std::cout << "  under the Lemma 15 symmetric numbering the same "
              << "algorithm's output is constant: "
              << (constant ? "yes" : "NO") << "\n";
  }
  return 0;
}
