#include "graph/graph.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace wm {

namespace {
[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "wm::Graph: %s\n", what);
  std::abort();
}
}  // namespace

Graph Graph::from_edges(int n, const std::vector<Edge>& edges) {
  Graph g(n);
  for (const Edge& e : edges) g.add_edge(e.u, e.v);
  return g;
}

void Graph::add_edge(NodeId u, NodeId v) {
  if (u == v) die("self-loop");
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) {
    die("node id out of range");
  }
  if (has_edge(u, v)) die("duplicate edge");
  auto insert_sorted = [](std::vector<NodeId>& vec, NodeId x) {
    vec.insert(std::upper_bound(vec.begin(), vec.end(), x), x);
  };
  insert_sorted(adj_[u], v);
  insert_sorted(adj_[v], u);
  ++num_edges_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  const auto& a = adj_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

int Graph::max_degree() const {
  int d = 0;
  for (int v = 0; v < num_nodes(); ++v) d = std::max(d, degree(v));
  return d;
}

int Graph::min_degree() const {
  if (num_nodes() == 0) return 0;
  int d = degree(0);
  for (int v = 1; v < num_nodes(); ++v) d = std::min(d, degree(v));
  return d;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (int u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.push_back({u, v});
    }
  }
  return out;
}

bool Graph::is_regular(int k) const {
  for (int v = 0; v < num_nodes(); ++v) {
    if (degree(v) != k) return false;
  }
  return true;
}

std::vector<int> Graph::degree_sequence() const {
  std::vector<int> d(static_cast<std::size_t>(num_nodes()));
  for (int v = 0; v < num_nodes(); ++v) d[v] = degree(v);
  std::sort(d.rbegin(), d.rend());
  return d;
}

int Graph::neighbour_index(NodeId v, NodeId u) const {
  const auto& a = adj_[v];
  auto it = std::lower_bound(a.begin(), a.end(), u);
  if (it == a.end() || *it != u) return -1;
  return static_cast<int>(it - a.begin());
}

Graph Graph::induced_subgraph(const std::vector<NodeId>& keep) const {
  std::vector<int> index(static_cast<std::size_t>(num_nodes()), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) index[keep[i]] = static_cast<int>(i);
  Graph g(static_cast<int>(keep.size()));
  for (NodeId u : keep) {
    for (NodeId v : adj_[u]) {
      if (u < v && index[v] >= 0) g.add_edge(index[u], index[v]);
    }
  }
  return g;
}

Graph Graph::relabelled(const std::vector<NodeId>& perm) const {
  Graph g(num_nodes());
  for (const Edge& e : edges()) g.add_edge(perm[e.u], perm[e.v]);
  return g;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << num_nodes() << ", m=" << num_edges() << ")";
  for (int v = 0; v < num_nodes(); ++v) {
    os << "\n  " << v << ":";
    for (NodeId u : adj_[v]) os << ' ' << u;
  }
  return os.str();
}

}  // namespace wm
