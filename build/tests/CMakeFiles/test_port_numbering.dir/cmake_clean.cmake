file(REMOVE_RECURSE
  "CMakeFiles/test_port_numbering.dir/test_port_numbering.cpp.o"
  "CMakeFiles/test_port_numbering.dir/test_port_numbering.cpp.o.d"
  "test_port_numbering"
  "test_port_numbering.pdb"
  "test_port_numbering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_numbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
