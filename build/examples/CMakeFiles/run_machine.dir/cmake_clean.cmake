file(REMOVE_RECURSE
  "CMakeFiles/run_machine.dir/run_machine.cpp.o"
  "CMakeFiles/run_machine.dir/run_machine.cpp.o.d"
  "run_machine"
  "run_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
