# Empty dependencies file for separations_tour.
# This may be replaced when dependencies are built.
