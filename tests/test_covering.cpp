#include "cover/covering.hpp"

#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "bisim/bisimulation.hpp"
#include "cover/views.hpp"
#include "graph/double_cover.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "graph/properties.hpp"
#include "logic/kripke.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

TEST(Covering, DisjointCopiesAreACover) {
  Rng rng(1);
  const Graph g = random_connected_graph(6, 3, 3, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const Lift lift = disjoint_copies(p, 3);
  EXPECT_EQ(lift.numbering.graph().num_nodes(), 18);
  EXPECT_TRUE(is_covering_map(lift.numbering, p, lift.projection));
  EXPECT_EQ(connected_components(lift.numbering.graph()).size(), 3u);
}

TEST(Covering, DoubleCoverLiftMatchesGraphModule) {
  const Graph g = cycle_graph(5);
  const PortNumbering p = PortNumbering::identity(g);
  const Lift lift = double_cover_lift(p);
  EXPECT_TRUE(is_covering_map(lift.numbering, p, lift.projection));
  const Graph& lifted = lift.numbering.graph();
  EXPECT_TRUE(bipartition(lifted).has_value());
  EXPECT_EQ(lifted.num_nodes(), 10);
  EXPECT_EQ(lifted.num_edges(), 10);
  // Same graph (up to node order) as the standalone double cover —
  // checked by actual isomorphism, not just the degree sequence.
  const DoubleCover dc = bipartite_double_cover(g);
  EXPECT_TRUE(are_isomorphic(dc.graph, lifted));
}

TEST(Covering, RandomVoltageLiftsAreCovers) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(7, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const int k = 2 + static_cast<int>(rng.below(3));
    const Lift lift = random_voltage_lift(p, k, rng);
    EXPECT_TRUE(is_covering_map(lift.numbering, p, lift.projection));
  }
}

TEST(Covering, RejectsBadVoltage) {
  const PortNumbering p = PortNumbering::identity(path_graph(2));
  EXPECT_THROW(
      voltage_lift(p, 2, [](NodeId, NodeId) { return std::vector<int>{0, 0}; }),
      std::invalid_argument);
  EXPECT_THROW(
      voltage_lift(p, 2, [](NodeId, NodeId) { return std::vector<int>{0}; }),
      std::invalid_argument);
}

TEST(Covering, IsCoveringMapRejectsNonCovers) {
  const Graph g = path_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  // Identity on the same graph IS a cover; swapping endpoints is not.
  EXPECT_TRUE(is_covering_map(p, p, {0, 1, 2}));
  EXPECT_FALSE(is_covering_map(p, p, {2, 1, 0}));
  // Non-surjective maps are rejected.
  const Lift two = disjoint_copies(p, 2);
  auto phi = two.projection;
  EXPECT_TRUE(is_covering_map(two.numbering, p, phi));
  // Break a single fibre.
  phi[0] = 1;
  EXPECT_FALSE(is_covering_map(two.numbering, p, phi));
}

TEST(Covering, AngluinLiftingLemmaForExecutions) {
  // Executions commute with covering maps: x_t(h) == x_t(phi(h)) — for
  // any machine, any class. Checked for the odd-odd (MB), leaf picker
  // (SV) and a Vector port-probe machine on random voltage lifts.
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_graph(7, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const Lift lift = random_voltage_lift(p, 3, rng);
    ASSERT_TRUE(is_covering_map(lift.numbering, p, lift.projection));
    for (const auto& machine : {odd_odd_machine(), leaf_picker_machine(),
                                local_type_maximum_machine(3)}) {
      const auto base_run = execute(*machine, p);
      const auto lift_run = execute(*machine, lift.numbering);
      ASSERT_TRUE(base_run.stopped);
      ASSERT_TRUE(lift_run.stopped);
      EXPECT_EQ(base_run.rounds, lift_run.rounds);
      for (NodeId h = 0; h < lift.numbering.graph().num_nodes(); ++h) {
        EXPECT_EQ(lift_run.final_states[h],
                  base_run.final_states[lift.projection[h]]);
      }
    }
  }
}

TEST(Covering, CoversInduceBisimulations) {
  // h and phi(h) are bisimilar in the joint K_{+,+} model.
  Rng rng(4);
  const Graph g = random_connected_graph(6, 3, 2, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const Lift lift = random_voltage_lift(p, 2, rng);
  const KripkeModel base = kripke_from_graph(p, Variant::PlusPlus);
  const KripkeModel cover = kripke_from_graph(lift.numbering, Variant::PlusPlus,
                                              g.max_degree());
  for (NodeId h = 0; h < lift.numbering.graph().num_nodes(); ++h) {
    EXPECT_TRUE(bisimilar_across(cover, h, base, lift.projection[h]));
  }
}

TEST(Covering, CoversPreserveViews) {
  Rng rng(5);
  const Graph g = random_connected_graph(6, 3, 2, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const Lift lift = random_voltage_lift(p, 2, rng);
  const int depth = 6;
  const auto base_views = views(p, depth);
  const auto lift_views = views(lift.numbering, depth);
  for (NodeId h = 0; h < lift.numbering.graph().num_nodes(); ++h) {
    EXPECT_EQ(lift_views[h], base_views[lift.projection[h]]);
  }
}

TEST(Covering, SingleLayerLiftIsIdentity) {
  const Graph g = petersen_graph();
  const PortNumbering p = PortNumbering::identity(g);
  const Lift lift = disjoint_copies(p, 1);
  EXPECT_EQ(lift.numbering.graph(), g);
  EXPECT_EQ(lift.numbering, p);
}

}  // namespace
}  // namespace wm
