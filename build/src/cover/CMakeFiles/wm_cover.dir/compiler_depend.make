# Empty compiler generated dependencies file for wm_cover.
# This may be replaced when dependencies are built.
