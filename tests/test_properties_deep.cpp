// Deep property tests of the foundational layers: total-order axioms of
// Value, parser robustness under fuzzing, engine edge cases, and the
// Theorem 2 compilation contract at scale — compiled machines agree
// with the model checker on hundreds of random formula/model pairs per
// logic. The invariants every higher layer silently relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "compile/formula_compiler.hpp"
#include "logic/kripke.hpp"
#include "logic/model_checker.hpp"
#include "logic/parser.hpp"
#include "logic/random_formula.hpp"
#include "port/port_numbering.hpp"
#include "graph/generators.hpp"
#include "runtime/engine.hpp"
#include "util/rng.hpp"
#include "util/value.hpp"

namespace wm {
namespace {

Value random_value(Rng& rng, int depth) {
  const int r = static_cast<int>(rng.below(depth > 0 ? 6 : 3));
  switch (r) {
    case 0:
      return Value::unit();
    case 1:
      return Value::integer(rng.range(-3, 3));
    case 2:
      return Value::str(std::string(1, static_cast<char>('a' + rng.below(3))));
    default: {
      ValueVec kids;
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        kids.push_back(random_value(rng, depth - 1));
      }
      if (r == 3) return Value::tuple(std::move(kids));
      if (r == 4) return Value::set(std::move(kids));
      return Value::mset(std::move(kids));
    }
  }
}

TEST(ValueOrder, Trichotomy) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Value a = random_value(rng, 3);
    const Value b = random_value(rng, 3);
    const int lt = a < b, gt = a > b, eq = a == b;
    EXPECT_EQ(lt + gt + eq, 1) << a << " vs " << b;
  }
}

TEST(ValueOrder, Transitivity) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    Value v[3] = {random_value(rng, 3), random_value(rng, 3),
                  random_value(rng, 3)};
    std::sort(v, v + 3);
    EXPECT_LE(v[0], v[1]);
    EXPECT_LE(v[1], v[2]);
    EXPECT_LE(v[0], v[2]);
  }
}

TEST(ValueOrder, ConsistentWithEquality) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Value a = random_value(rng, 3);
    const Value b = random_value(rng, 3);
    EXPECT_EQ(a == b, (a <=> b) == std::strong_ordering::equal);
    if (a == b) {
      EXPECT_EQ(a.hash(), b.hash());
    }
  }
}

TEST(ValueOrder, CanonicalisationIsOrderIndependent) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    ValueVec items;
    const std::size_t n = 1 + rng.below(5);
    for (std::size_t j = 0; j < n; ++j) items.push_back(random_value(rng, 2));
    auto shuffled = items;
    rng.shuffle(shuffled);
    EXPECT_EQ(Value::set(items), Value::set(shuffled));
    EXPECT_EQ(Value::mset(items), Value::mset(shuffled));
  }
}

TEST(ParserFuzz, MutatedFormulasNeverCrash) {
  Rng rng(5);
  RandomFormulaOptions opts;
  opts.graded = true;
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    std::string text = random_formula(rng, opts).to_string();
    // Mutate: delete, duplicate or replace a random character.
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:
          text.erase(pos, 1);
          break;
        case 1:
          text.insert(pos, 1, text[pos]);
          break;
        default:
          text[pos] = static_cast<char>("<>*&|~q123()T F"[rng.below(15)]);
          break;
      }
    }
    try {
      (void)parse_formula(text);
      ++parsed;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 50);  // mutations do break most inputs
}

TEST(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    std::string text;
    const std::size_t len = rng.below(30);
    for (std::size_t j = 0; j < len; ++j) {
      text += static_cast<char>(32 + rng.below(95));
    }
    try {
      (void)parse_formula(text);
    } catch (const ParseError&) {
    }
  }
  SUCCEED();
}

TEST(EngineEdge, EmptyGraph) {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int) { return Value::integer(0); };
  m.stopping_fn = [](const Value&) { return true; };
  m.message_fn = [](const Value&, int) { return Value::unit(); };
  m.transition_fn = [](const Value& s, const Value&, int) { return s; };
  const Graph g(0);
  const auto r = execute(m, PortNumbering::identity(g));
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_TRUE(r.final_states.empty());
}

TEST(EngineEdge, ExecuteWithStatesValidatesCount) {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int) { return Value::integer(0); };
  m.stopping_fn = [](const Value&) { return true; };
  m.message_fn = [](const Value&, int) { return Value::unit(); };
  m.transition_fn = [](const Value& s, const Value&, int) { return s; };
  const Graph g = path_graph(3);
  EXPECT_THROW(
      execute_with_states(m, PortNumbering::identity(g), {Value::integer(1)}),
      std::invalid_argument);
}

TEST(EngineEdge, ExternalStatesOverrideInit) {
  // A machine whose init would never stop, seeded with stopping states.
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int) { return Value::str("never"); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int) { return Value::integer(0); };
  m.transition_fn = [](const Value& s, const Value&, int) { return s; };
  const Graph g = path_graph(2);
  const auto r = execute_with_states(m, PortNumbering::identity(g),
                                     {Value::integer(7), Value::integer(8)});
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{7, 8}));
}

TEST(EngineEdge, DeterministicAcrossRuns) {
  Rng rng(7);
  const Graph g = random_connected_graph(8, 3, 4, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  LambdaMachine m;
  m.cls = AlgebraicClass::multiset();
  m.init_fn = [](int d) { return Value::pair(Value::str("s"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    std::int64_t acc = 0;
    for (const Value& v : inbox.items()) acc += v.is_unit() ? 0 : v.as_int();
    return Value::integer(acc);
  };
  const auto r1 = execute(m, p);
  const auto r2 = execute(m, p);
  EXPECT_EQ(r1.final_states, r2.final_states);
  EXPECT_EQ(r1.stats.messages_sent, r2.stats.messages_sent);
}

// --- Theorem 2 at scale ----------------------------------------------------
//
// For each logic of Table 3, 500 random (formula, pointed-model) pairs:
// compile the formula into a machine (Theorem 2), execute it on a
// random port-numbered graph, and require the per-node verdicts to
// match the model checker on the matching Kripke view exactly. This is
// the semantic glue the synthesis pipeline and the differential tests
// stand on.
void compile_vs_model_check(const char* logic, bool graded,
                            const std::vector<Variant>& variants,
                            std::uint64_t seed) {
  Rng frng(seed);
  Rng grng(seed + 1);
  ExecutionContext ctx;  // reused scratch across all 500 runs
  constexpr int kPairs = 500;
  for (int pair = 0; pair < kPairs; ++pair) {
    const Variant variant = variants[pair % variants.size()];
    RandomFormulaOptions opts;
    opts.variant = variant;
    opts.graded = graded;
    opts.max_depth = pair % 4;
    opts.delta = 3;
    opts.num_props = 3;
    opts.use_box = pair % 2 == 0;
    const Formula f = random_formula(frng, opts);
    const Graph g = random_connected_graph(4 + pair % 4, 3, 2, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const auto machine = compile_formula(f, variant, 3);
    const auto r = execute(*machine, p, ctx);
    ASSERT_TRUE(r.stopped) << logic << " pair " << pair;
    const auto truth = model_check(kripke_from_graph(p, variant, 3), f);
    for (int v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(r.final_states[v].as_int() == 1, truth[v])
          << logic << " pair " << pair << " node " << v
          << " formula " << f.to_string();
    }
  }
}

TEST(CompiledMachineVsModelChecker, ML) {
  compile_vs_model_check("ML", false, {Variant::MinusMinus}, 101);
}

TEST(CompiledMachineVsModelChecker, GML) {
  compile_vs_model_check("GML", true, {Variant::MinusMinus}, 202);
}

TEST(CompiledMachineVsModelChecker, MML) {
  // MML is the logic of every ported view (Table 3) — cycle through all
  // three so each gets ~167 of the 500 pairs.
  compile_vs_model_check(
      "MML", false,
      {Variant::PlusPlus, Variant::MinusPlus, Variant::PlusMinus}, 303);
}

TEST(CompiledMachineVsModelChecker, GMML) {
  // The MV view (Table 3): graded diamonds over incoming-port modalities.
  compile_vs_model_check("GMML", true, {Variant::MinusPlus}, 404);
}

}  // namespace
}  // namespace wm
