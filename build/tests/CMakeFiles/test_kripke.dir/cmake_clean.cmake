file(REMOVE_RECURSE
  "CMakeFiles/test_kripke.dir/test_kripke.cpp.o"
  "CMakeFiles/test_kripke.dir/test_kripke.cpp.o.d"
  "test_kripke"
  "test_kripke.pdb"
  "test_kripke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
