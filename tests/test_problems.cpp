#include "problems/catalogue.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace wm {
namespace {

TEST(Problems, LeafInStarOnStars) {
  const auto p = leaf_in_star_problem();
  const Graph g = star_graph(3);
  EXPECT_TRUE(p->valid(g, {0, 1, 0, 0}));
  EXPECT_TRUE(p->valid(g, {0, 0, 0, 1}));
  EXPECT_FALSE(p->valid(g, {0, 0, 0, 0}));  // no leaf picked
  EXPECT_FALSE(p->valid(g, {0, 1, 1, 0}));  // two leaves
  EXPECT_FALSE(p->valid(g, {1, 0, 0, 0}));  // centre picked
}

TEST(Problems, LeafInStarUnconstrainedOffStars) {
  const auto p = leaf_in_star_problem();
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(p->valid(g, {0, 0, 0, 0}));
  EXPECT_TRUE(p->valid(g, {1, 1, 1, 1}));
  // The 1-star (single edge) is not a "k-star with k > 1": unconstrained.
  EXPECT_TRUE(p->valid(star_graph(1), {1, 1}));
}

TEST(Problems, OddOddUniqueSolution) {
  const auto p = odd_odd_problem();
  // Path 0-1-2: degrees 1,2,1. Node 0: nbr deg {2} -> 0 odd -> 0.
  // Node 1: nbrs deg {1,1} -> 2 odd -> 0. Node 2 -> 0.
  EXPECT_TRUE(p->valid(path_graph(3), {0, 0, 0}));
  EXPECT_FALSE(p->valid(path_graph(3), {1, 0, 0}));
  // Path 0-1: each node has one odd-degree neighbour -> 1.
  EXPECT_TRUE(p->valid(path_graph(2), {1, 1}));
  // K4: every node has 3 odd-degree neighbours -> all 1.
  EXPECT_TRUE(p->valid(complete_graph(4), {1, 1, 1, 1}));
}

TEST(Problems, ClassGMembership) {
  EXPECT_TRUE(in_class_g(fig9a_graph()));
  EXPECT_TRUE(in_class_g(class_g_graph(5)));
  EXPECT_FALSE(in_class_g(petersen_graph()));    // has a 1-factor
  EXPECT_FALSE(in_class_g(cycle_graph(5)));      // even k
  EXPECT_FALSE(in_class_g(complete_graph(4)));   // has a 1-factor
  EXPECT_FALSE(in_class_g(path_graph(4)));       // not regular
  // Disconnected union of two fig9a graphs is NOT in G (not connected).
  Graph two(32);
  const Graph f = fig9a_graph();
  for (const Edge& e : f.edges()) {
    two.add_edge(e.u, e.v);
    two.add_edge(16 + e.u, 16 + e.v);
  }
  EXPECT_FALSE(in_class_g(two));
}

TEST(Problems, SymmetryBreakSemantics) {
  const auto p = symmetry_break_problem();
  const Graph g = fig9a_graph();
  std::vector<int> constant(16, 1);
  EXPECT_FALSE(p->valid(g, constant));
  std::vector<int> mixed(16, 0);
  mixed[3] = 1;
  EXPECT_TRUE(p->valid(g, mixed));
  // Off class G: anything goes.
  EXPECT_TRUE(p->valid(petersen_graph(), std::vector<int>(10, 1)));
}

TEST(Problems, MisVerifier) {
  const auto p = maximal_independent_set_problem();
  EXPECT_TRUE(p->valid(cycle_graph(4), {1, 0, 1, 0}));
  EXPECT_FALSE(p->valid(cycle_graph(4), {1, 1, 0, 0}));
  EXPECT_FALSE(p->valid(cycle_graph(4), {1, 0, 0, 0}));
}

TEST(Problems, ThreeColouringVerifier) {
  const auto p = three_colouring_problem();
  EXPECT_EQ(p->output_alphabet(), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(p->valid(cycle_graph(5), {1, 2, 1, 2, 3}));
  EXPECT_FALSE(p->valid(cycle_graph(5), {1, 2, 1, 2, 1}));
}

TEST(Problems, EulerianDecision) {
  const auto p = eulerian_decision_problem();
  EXPECT_TRUE(p->valid(cycle_graph(4), {1, 1, 1, 1}));
  EXPECT_FALSE(p->valid(cycle_graph(4), {1, 1, 1, 0}));  // must all accept
  EXPECT_TRUE(p->valid(path_graph(3), {1, 1, 0}));       // someone rejects
  EXPECT_FALSE(p->valid(path_graph(3), {1, 1, 1}));
}

TEST(Problems, ApproxVertexCover) {
  const auto p = approx_vertex_cover_problem();
  const Graph g = star_graph(4);  // OPT = 1
  EXPECT_TRUE(p->valid(g, {1, 0, 0, 0, 0}));
  EXPECT_TRUE(p->valid(g, {1, 1, 0, 0, 0}));            // size 2 <= 2*1
  EXPECT_FALSE(p->valid(g, {1, 1, 1, 0, 0}));           // size 3 > 2
  EXPECT_FALSE(p->valid(g, {0, 1, 1, 1, 0}));           // not a cover
  const auto strict = approx_vertex_cover_problem(1, 1);
  EXPECT_TRUE(strict->valid(g, {1, 0, 0, 0, 0}));
  EXPECT_FALSE(strict->valid(g, {1, 1, 0, 0, 0}));
}

TEST(Problems, IsolatedAndParity) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(isolated_node_problem()->valid(g, {0, 0, 1}));
  EXPECT_FALSE(isolated_node_problem()->valid(g, {0, 0, 0}));
  EXPECT_TRUE(degree_parity_problem()->valid(path_graph(3), {1, 0, 1}));
  EXPECT_FALSE(degree_parity_problem()->valid(path_graph(3), {0, 0, 1}));
}

TEST(Problems, ForEachOutputEnumeratesAlphabetPower) {
  const auto p = three_colouring_problem();
  std::size_t count = for_each_output(*p, path_graph(2),
                                      [](const std::vector<int>&) { return true; });
  EXPECT_EQ(count, 9u);  // 3^2
}

TEST(Problems, EverySolutionSplitsBruteForce) {
  // On the 3-star, every valid leaf-in-star solution splits the leaves.
  EXPECT_TRUE(every_solution_splits(*leaf_in_star_problem(), star_graph(3),
                                    {1, 2, 3}));
  // But not the pair {centre, leaf}: solutions split it too (centre=0,
  // exactly one leaf=1... the chosen leaf differs from centre; but a
  // solution with S(leaf2)=1 does NOT split {centre, leaf1}).
  EXPECT_FALSE(every_solution_splits(*leaf_in_star_problem(), star_graph(3),
                                     {0, 1}));
}

}  // namespace
}  // namespace wm
