#include "logic/model_checker.hpp"

#include <unordered_map>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace wm {

namespace {

// --- Packed fast path -----------------------------------------------------
//
// ||phi||_K is one Bitset over the state set; every Boolean connective is
// a word loop (64 states per operation). The memo maps subformulas to
// their packed denotations and eval_bits returns *references* into it:
// unordered_map nodes are pointer-stable across rehash, so a parent can
// hold its children's rows by reference while inserting its own — no
// copy-on-eval (the former std::vector<bool> memo copied every hit).
// modelcheck.word_ops counts the 64-bit words written by those bulk
// passes: a deterministic function of (model, formula), hence work-kind.

using Memo = std::unordered_map<Formula, Bitset>;

const Bitset& eval_bits(const KripkeModel& k, const Formula& f, Memo& memo) {
  WM_COUNT(modelcheck.evals);
  if (auto it = memo.find(f); it != memo.end()) {
    WM_COUNT(modelcheck.memo_hits);
    return it->second;
  }
  const auto n = static_cast<std::size_t>(k.num_states());
  Bitset out(n);
  switch (f.kind()) {
    case Formula::Kind::True:
      out.set_all();
      WM_COUNT_ADD(modelcheck.word_ops, out.num_words());
      break;
    case Formula::Kind::False:
      break;
    case Formula::Kind::Prop: {
      const int q = f.prop_id();
      if (q <= k.num_props()) {
        out = k.prop_bits(q);
        WM_COUNT_ADD(modelcheck.word_ops, out.num_words());
      }
      break;
    }
    case Formula::Kind::Not: {
      out = eval_bits(k, f.child(), memo);
      out.flip();
      WM_COUNT_ADD(modelcheck.word_ops, 2 * out.num_words());
      break;
    }
    case Formula::Kind::And: {
      out = eval_bits(k, f.child(0), memo);
      out &= eval_bits(k, f.child(1), memo);
      WM_COUNT_ADD(modelcheck.word_ops, 2 * out.num_words());
      break;
    }
    case Formula::Kind::Or: {
      out = eval_bits(k, f.child(0), memo);
      out |= eval_bits(k, f.child(1), memo);
      WM_COUNT_ADD(modelcheck.word_ops, 2 * out.num_words());
      break;
    }
    case Formula::Kind::Diamond: {
      const Bitset& c = eval_bits(k, f.child(), memo);
      const int need = f.grade();
      for (int v = 0; v < k.num_states(); ++v) {
        int cnt = 0;
        for (int w : k.successors(f.modality(), v)) {
          if (c.test(static_cast<std::size_t>(w)) && ++cnt >= need) break;
        }
        if (cnt >= need) out.set(static_cast<std::size_t>(v));
      }
      break;
    }
    case Formula::Kind::Box: {
      const Bitset& c = eval_bits(k, f.child(), memo);
      for (int v = 0; v < k.num_states(); ++v) {
        bool all = true;
        for (int w : k.successors(f.modality(), v)) {
          if (!c.test(static_cast<std::size_t>(w))) {
            all = false;
            break;
          }
        }
        if (all) out.set(static_cast<std::size_t>(v));
      }
      break;
    }
  }
  return memo.emplace(f, std::move(out)).first->second;
}

// --- Scalar reference -----------------------------------------------------
//
// Direct recursion over std::vector<bool> following the truth definition,
// exactly the pre-bitset implementation. The differential suites pin the
// packed path against this bit-for-bit; do not optimise it.

std::vector<bool> eval_naive(const KripkeModel& k, const Formula& f) {
  WM_COUNT(modelcheck.evals);
  const int n = k.num_states();
  std::vector<bool> out(static_cast<std::size_t>(n), false);
  switch (f.kind()) {
    case Formula::Kind::True:
      out.assign(static_cast<std::size_t>(n), true);
      break;
    case Formula::Kind::False:
      break;
    case Formula::Kind::Prop: {
      const int q = f.prop_id();
      if (q <= k.num_props()) {
        for (int v = 0; v < n; ++v) out[v] = k.prop_holds(q, v);
      }
      break;
    }
    case Formula::Kind::Not: {
      auto c = eval_naive(k, f.child());
      for (int v = 0; v < n; ++v) out[v] = !c[v];
      break;
    }
    case Formula::Kind::And: {
      auto a = eval_naive(k, f.child(0));
      auto b = eval_naive(k, f.child(1));
      for (int v = 0; v < n; ++v) out[v] = a[v] && b[v];
      break;
    }
    case Formula::Kind::Or: {
      auto a = eval_naive(k, f.child(0));
      auto b = eval_naive(k, f.child(1));
      for (int v = 0; v < n; ++v) out[v] = a[v] || b[v];
      break;
    }
    case Formula::Kind::Diamond: {
      auto c = eval_naive(k, f.child());
      const int need = f.grade();
      for (int v = 0; v < n; ++v) {
        int cnt = 0;
        for (int w : k.successors(f.modality(), v)) {
          if (c[w] && ++cnt >= need) break;
        }
        out[v] = cnt >= need;
      }
      break;
    }
    case Formula::Kind::Box: {
      auto c = eval_naive(k, f.child());
      for (int v = 0; v < n; ++v) {
        bool all = true;
        for (int w : k.successors(f.modality(), v)) {
          if (!c[w]) {
            all = false;
            break;
          }
        }
        out[v] = all;
      }
      break;
    }
  }
  return out;
}

}  // namespace

Bitset model_check_bits(const KripkeModel& k, const Formula& phi) {
  WM_TIME_SCOPE("modelcheck.check");
  WM_COUNT(modelcheck.checks);
  Memo memo;
  eval_bits(k, phi, memo);
  return std::move(memo.find(phi)->second);  // the root's row; memo dies here
}

std::vector<bool> model_check(const KripkeModel& k, const Formula& phi) {
  return model_check_bits(k, phi).to_bools();
}

bool model_check_at(const KripkeModel& k, const Formula& phi, int state) {
  return model_check_bits(k, phi).test(static_cast<std::size_t>(state));
}

std::vector<bool> model_check_naive(const KripkeModel& k, const Formula& phi) {
  return eval_naive(k, phi);
}

}  // namespace wm
