#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "runtime/state_machine.hpp"

namespace wm {
namespace {

/// Stops immediately with output = degree.
LambdaMachine degree_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int d) { return Value::integer(d); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int) { return Value::unit(); };
  m.transition_fn = [](const Value& s, const Value&, int) { return s; };
  return m;
}

/// Counts down k rounds (broadcasting a token), then outputs 1.
LambdaMachine countdown_machine(int k) {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [k](int) {
    return k == 0 ? Value::integer(1) : Value::pair(Value::str("c"), Value::integer(k));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int) { return Value::integer(0); };
  m.transition_fn = [](const Value& s, const Value&, int) {
    const auto left = s.at(1).as_int();
    if (left == 1) return Value::integer(1);
    return Value::pair(Value::str("c"), Value::integer(left - 1));
  };
  return m;
}

/// Never stops — for max_rounds handling.
LambdaMachine diverging_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int) { return Value::str("loop"); };
  m.stopping_fn = [](const Value&) { return false; };
  m.message_fn = [](const Value&, int) { return Value::integer(0); };
  m.transition_fn = [](const Value& s, const Value&, int) { return s; };
  return m;
}

/// Vector machine that records its first-round inbox as its output state
/// (stringified), used to check delivery and canonicalisation.
LambdaMachine inbox_recorder(AlgebraicClass cls) {
  LambdaMachine m;
  m.cls = cls;
  m.init_fn = [](int d) { return Value::pair(Value::str("w"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) {
    return !s.is_tuple() || s.size() == 0 || !s.at(0).is_str();
  };
  m.message_fn = [](const Value& s, int port) {
    // Send (degree, port) so the receiver can identify sender port info.
    return Value::pair(s.at(1), Value::integer(port));
  };
  m.transition_fn = [](const Value&, const Value& inbox, int) { return inbox; };
  return m;
}

TEST(Engine, TimeZeroStop) {
  const Graph g = star_graph(3);
  const auto r = execute(degree_machine(), PortNumbering::identity(g));
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{3, 1, 1, 1}));
}

TEST(Engine, CountdownRuntime) {
  const Graph g = cycle_graph(4);
  for (int k : {1, 2, 5}) {
    const auto r = execute(countdown_machine(k), PortNumbering::identity(g));
    EXPECT_TRUE(r.stopped);
    EXPECT_EQ(r.rounds, k);
  }
}

TEST(Engine, MaxRoundsAborts) {
  const Graph g = cycle_graph(3);
  ExecutionOptions opts;
  opts.max_rounds = 10;
  const auto r = execute(diverging_machine(), PortNumbering::identity(g), opts);
  EXPECT_FALSE(r.stopped);
  EXPECT_EQ(r.rounds, 10);
}

TEST(Engine, TraceRecordsEveryRound) {
  const Graph g = cycle_graph(3);
  ExecutionOptions opts;
  opts.record_trace = true;
  const auto r = execute(countdown_machine(3), PortNumbering::identity(g), opts);
  ASSERT_EQ(r.trace.size(), 4u);  // x_0 .. x_3
  EXPECT_EQ(r.trace.back(), r.final_states);
}

TEST(Engine, VectorInboxIsOrderedByInPort) {
  // Path 0-1-2: node 1 receives one message per in-port, in port order.
  const Graph g = path_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const auto r = execute(inbox_recorder(AlgebraicClass::vector()), p);
  EXPECT_TRUE(r.stopped);
  const Value& inbox1 = r.final_states[1];
  ASSERT_TRUE(inbox1.is_tuple());
  ASSERT_EQ(inbox1.size(), 2u);
  // In-port 1 of node 1 hears node 0 (degree 1, sent via its port 1);
  // in-port 2 hears node 2.
  EXPECT_EQ(inbox1.at(0), Value::pair(Value::integer(1), Value::integer(1)));
  EXPECT_EQ(inbox1.at(1), Value::pair(Value::integer(1), Value::integer(1)));
}

TEST(Engine, MultisetInboxCanonicalised) {
  const Graph g = star_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const auto r = execute(inbox_recorder(AlgebraicClass::multiset()), p);
  const Value& centre = r.final_states[0];
  ASSERT_TRUE(centre.is_mset());
  // Three leaves, each degree 1 sending via port 1: multiset of three
  // identical pairs.
  EXPECT_EQ(centre,
            Value::mset({Value::pair(Value::integer(1), Value::integer(1)),
                         Value::pair(Value::integer(1), Value::integer(1)),
                         Value::pair(Value::integer(1), Value::integer(1))}));
}

TEST(Engine, SetInboxDropsMultiplicity) {
  const Graph g = star_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const auto r = execute(inbox_recorder(AlgebraicClass::set()), p);
  const Value& centre = r.final_states[0];
  ASSERT_TRUE(centre.is_set());
  EXPECT_EQ(centre.size(), 1u);  // three identical messages collapse
}

TEST(Engine, BroadcastSendsSameMessageEverywhere) {
  // A broadcast machine's mu is evaluated once; receivers on a path get
  // the same content regardless of port.
  LambdaMachine m = inbox_recorder(AlgebraicClass::vector_broadcast());
  const Graph g = star_graph(2);  // path of 3 via star-2: centre + 2 leaves
  const auto r = execute(m, PortNumbering::identity(g));
  const Value& leaf1 = r.final_states[1];
  const Value& leaf2 = r.final_states[2];
  // Both leaves hear the centre's single broadcast (degree 2, "port 1").
  EXPECT_EQ(leaf1, leaf2);
  ASSERT_EQ(leaf1.size(), 1u);
  EXPECT_EQ(leaf1.at(0), Value::pair(Value::integer(2), Value::integer(1)));
}

TEST(Engine, MessageStatsAccumulate) {
  const Graph g = cycle_graph(4);
  const auto r = execute(countdown_machine(3), PortNumbering::identity(g));
  // 3 rounds, 8 directed deliveries per round, each message size 1.
  EXPECT_EQ(r.stats.messages_sent, 24u);
  EXPECT_EQ(r.stats.total_size, 24u);
  EXPECT_EQ(r.stats.max_size, 1u);
}

TEST(Engine, ValueSizeIsStructural) {
  EXPECT_EQ(value_size(Value::integer(5)), 1u);
  EXPECT_EQ(value_size(Value::pair(Value::integer(1), Value::integer(2))), 3u);
  EXPECT_EQ(value_size(Value::tuple({Value::pair(Value::unit(), Value::unit())})),
            4u);
}

TEST(Engine, StoppedNodesSendNoMessages) {
  // Degree machine stops at time 0: nothing is ever sent.
  const Graph g = cycle_graph(5);
  const auto r = execute(degree_machine(), PortNumbering::identity(g));
  EXPECT_EQ(r.stats.messages_sent, 0u);
}

}  // namespace
}  // namespace wm
