// Quickstart: run a distributed algorithm on a port-numbered graph,
// compile a modal formula into an algorithm, and check both against the
// model checker — the core loop of the library in ~80 lines.
//
//   ./quickstart
#include <cstdio>
#include <iostream>

#include "algorithms/machines.hpp"
#include "compile/formula_compiler.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/parser.hpp"
#include "obs/env.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"

int main() {
  wm::obs::init_from_env();
  using namespace wm;

  // 1. A graph and a port numbering (Sections 1.1-1.2 of the paper).
  const Graph g = star_graph(4);
  const PortNumbering p = PortNumbering::identity(g);
  std::cout << "Graph: " << g.to_string() << "\n";
  std::cout << p.to_string() << "\n\n";

  // 2. Run the MB(1) odd-odd-neighbours algorithm (Theorem 13's positive
  //    side): output 1 iff a node has an odd number of odd-degree
  //    neighbours.
  const auto machine = odd_odd_machine();
  const ExecutionResult run = execute(*machine, p);
  std::cout << "odd-odd algorithm (class " << machine->algebraic_class().name()
            << "): " << run.summary().to_string() << "\n  outputs:";
  for (int v : run.outputs_as_ints()) std::cout << ' ' << v;
  std::cout << "\n\n";

  // 3. The same predicate as a graded modal logic formula on K_{-,-}:
  //    "odd number of odd-degree neighbours" for max degree 4 is
  //    (>=1 odd and not >=2) or (>=3 and not >=4).
  const Formula odd_nbr = parse_formula("q1 | q3");
  const Formula psi = Formula::disj(
      Formula::conj(Formula::diamond({0, 0}, odd_nbr, 1),
                    Formula::negate(Formula::diamond({0, 0}, odd_nbr, 2))),
      Formula::conj(Formula::diamond({0, 0}, odd_nbr, 3),
                    Formula::negate(Formula::diamond({0, 0}, odd_nbr, 4))));
  std::cout << "GML formula: " << psi.to_string() << "\n";

  // 4. Model-check it on the Kripke view K_{-,-}(G, p) (Section 4.3)...
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
  const auto truth = model_check(k, psi);
  std::cout << "model checker:";
  for (int v = 0; v < g.num_nodes(); ++v) std::cout << ' ' << truth[v];
  std::cout << "\n";

  // 5. ... and compile it into a Multiset∩Broadcast machine (Theorem 2f).
  const auto compiled = compile_formula(psi, Variant::MinusMinus, 4);
  const ExecutionResult run2 = execute(*compiled, p);
  std::cout << "compiled machine (" << run2.rounds
            << " rounds = modal depth + 1):";
  for (int v : run2.outputs_as_ints()) std::cout << ' ' << v;
  std::cout << "\n\nAll three answers agree: "
            << (run.outputs_as_ints() == run2.outputs_as_ints() ? "yes" : "NO")
            << "\n";
  return 0;
}
