// View-based leader election (Angluin 1980; Yamashita–Kameda 1996 —
// the founding problem of the port-numbering literature, Section 3.2).
//
// Leader election is NOT solvable by anonymous algorithms without extra
// information: it is a global problem, and on symmetric (G, p) all nodes
// are bisimilar. With the local input n = |V| (Section 3.4 local
// inputs), the classic view algorithm works whenever it can work at all:
//
//   phase 1 (n - 1 rounds): compute the stable view (depth n - 1);
//   phase 2 (n rounds):     flood the maximum view;
//   output 1 iff own stable view equals the global maximum.
//
// The elected set is exactly the maximum view class of (G, p): a single
// leader iff that class is a singleton — matching Yamashita and
// Kameda's characterisation of when leader election is solvable.
#pragma once

#include <memory>

#include "labelled/labelled.hpp"

namespace wm {

/// The Vector-class labelled machine described above. Local input:
/// Int n = |V| (the paper's local input f(v), constant over V).
/// Precondition for meaningful output: G connected, input == |V|.
std::shared_ptr<const LabelledStateMachine> view_leader_machine();

/// Convenience: run leader election on (G, p); returns the 0/1 leader
/// indicator vector.
std::vector<int> elect_leaders(const PortNumbering& p);

/// Section 3.1 (a): with unique identifiers as local inputs, greedy
/// (Delta+1)-colouring becomes solvable — each round, every uncoloured
/// node whose id is the local maximum among uncoloured neighbours picks
/// the smallest colour not used by coloured neighbours. Terminates in at
/// most n+1 rounds with a proper colouring using colours 1..Delta+1.
/// Class Multiset∩Broadcast (over labelled graphs). Output: Int colour.
std::shared_ptr<const LabelledStateMachine> greedy_colouring_machine();

/// Convenience: run greedy colouring with ids 1..n; returns the colours.
std::vector<int> greedy_colouring(const PortNumbering& p);

}  // namespace wm
