// Theorem 2 at the problem level, property-tested: for any GML formula
// psi, the canonical problem Pi_Psi (Section 4.3) is in MB(1) with
// locality md(psi) — and in SB(1) if psi is ungraded. The converse
// bound also shows up: random graded formulas regularly produce
// problems whose SB locality is strictly worse or unsolvable.
#include <gtest/gtest.h>

#include "compile/formula_compiler.hpp"
#include "core/solvability.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/random_formula.hpp"
#include "logic/simplify.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

constexpr int kDelta = 3;

std::vector<ScopedInstance> small_scope(const Problem& problem, int max_n) {
  std::vector<ScopedInstance> scope;
  EnumerateOptions opts;
  opts.connected_only = false;
  opts.max_degree = kDelta;
  for (int n = 1; n <= max_n; ++n) {
    enumerate_graphs(n, opts, [&](const Graph& g) {
      scope.push_back(instance_for(problem, PortNumbering::identity(g)));
      return true;
    });
  }
  return scope;
}

TEST(FormulaProblems, ValidatorMatchesModelChecker) {
  const Formula psi = Formula::diamond({0, 0}, Formula::prop(1), 2);
  const auto problem = formula_problem(psi, kDelta);
  // Star-3 centre has 3 degree-1 neighbours: psi true only there.
  EXPECT_TRUE(problem->valid(star_graph(3), {1, 0, 0, 0}));
  EXPECT_FALSE(problem->valid(star_graph(3), {0, 0, 0, 0}));
  EXPECT_THROW((void)problem->valid(star_graph(5), {0, 0, 0, 0, 0, 0}),
               std::invalid_argument);
  EXPECT_THROW(formula_problem(Formula::diamond({1, 1}, Formula::tru()), 3),
               std::invalid_argument);
}

TEST(FormulaProblems, CompiledMachineSolvesItsOwnProblem) {
  Rng rng(1);
  RandomFormulaOptions opts;
  opts.variant = Variant::MinusMinus;
  opts.delta = kDelta;
  opts.num_props = kDelta;
  opts.graded = true;
  opts.max_depth = 2;
  Rng grng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Formula psi = random_formula(rng, opts);
    const auto problem = formula_problem(psi, kDelta);
    const auto machine = compile_formula(psi, Variant::MinusMinus, kDelta);
    for (int i = 0; i < 3; ++i) {
      const Graph g = random_connected_graph(7, kDelta, 3, grng);
      const PortNumbering p = PortNumbering::random(g, grng);
      const auto r = execute(*machine, p);
      ASSERT_TRUE(r.stopped);
      EXPECT_TRUE(problem->valid(g, r.outputs_as_ints())) << psi.to_string();
    }
  }
}

TEST(FormulaProblems, GradedFormulaProblemsAreInMbWithLocalityMd) {
  // The solvability analyser must certify Pi_Psi in MB with min rounds
  // <= md(psi) on an exhaustive small scope.
  Rng rng(3);
  RandomFormulaOptions opts;
  opts.variant = Variant::MinusMinus;
  opts.delta = kDelta;
  opts.num_props = kDelta;
  opts.graded = true;
  opts.max_depth = 2;
  int interesting = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const Formula psi = simplify(random_formula(rng, opts));
    const auto problem = formula_problem(psi, kDelta);
    const auto scope = small_scope(*problem, 4);
    const SolvabilityReport r =
        analyse_solvability(scope, ProblemClass::MB, kDelta);
    ASSERT_TRUE(r.min_rounds.has_value()) << psi.to_string();
    EXPECT_LE(*r.min_rounds, psi.modal_depth()) << psi.to_string();
    if (psi.modal_depth() > 0 && *r.min_rounds > 0) ++interesting;
  }
  EXPECT_GT(interesting, 0);
}

TEST(FormulaProblems, UngradedFormulaProblemsAreInSb) {
  Rng rng(4);
  RandomFormulaOptions opts;
  opts.variant = Variant::MinusMinus;
  opts.delta = kDelta;
  opts.num_props = kDelta;
  opts.graded = false;
  opts.max_depth = 2;
  for (int trial = 0; trial < 12; ++trial) {
    const Formula psi = simplify(random_formula(rng, opts));
    const auto problem = formula_problem(psi, kDelta);
    const auto scope = small_scope(*problem, 4);
    const SolvabilityReport r =
        analyse_solvability(scope, ProblemClass::SB, kDelta);
    ASSERT_TRUE(r.min_rounds.has_value()) << psi.to_string();
    EXPECT_LE(*r.min_rounds, psi.modal_depth()) << psi.to_string();
  }
}

TEST(FormulaProblems, CountingFormulaEscapesSb) {
  // <*,*>_{>=2} q3 (at least two degree-3 neighbours) cannot be decided
  // from the SET of messages: a scope containing both a K4 node (three
  // q3-neighbours) and a node with exactly one q3-neighbour that is
  // otherwise SB-indistinguishable makes SB fail. The Theorem 13
  // biregular witness provides exactly that.
  const Formula psi = Formula::diamond({0, 0}, Formula::prop(3), 2);
  const auto problem = formula_problem(psi, kDelta);
  auto scope = small_scope(*problem, 5);
  scope.push_back(
      instance_for(*problem, PortNumbering::identity(thm13_witness().graph)));
  const SolvabilityReport sb =
      analyse_solvability(scope, ProblemClass::SB, kDelta);
  EXPECT_FALSE(sb.min_rounds.has_value());
  const SolvabilityReport mb =
      analyse_solvability(scope, ProblemClass::MB, kDelta);
  ASSERT_TRUE(mb.min_rounds.has_value());
  EXPECT_EQ(*mb.min_rounds, 1);
}

}  // namespace
}  // namespace wm
