// End-to-end integration: the full Figure 5b pipeline — equalities by
// transformation, separations by bisimulation, logic by compilation —
// exercised together.
#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "compile/extract.hpp"
#include "compile/formula_compiler.hpp"
#include "core/classification.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "problems/catalogue.hpp"
#include "runtime/class_checker.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"

namespace wm {
namespace {

TEST(Integration, OddOddSolvedInMbViaLogicAndMachineAgree) {
  // Three routes to the same answer on every small graph:
  //  1. the hand-written MB machine,
  //  2. the GML formula extracted from it, model-checked on K_{-,-},
  //  3. the machine compiled back from that formula.
  ExtractionOptions opts;
  opts.delta = 3;
  opts.rounds = 1;
  const auto machine = odd_odd_machine();
  const Formula psi = extract_formula(*machine, opts);
  const auto recompiled = compile_formula(psi, Variant::MinusMinus, 3);
  EnumerateOptions eopts;
  eopts.connected_only = false;
  eopts.max_degree = 3;
  enumerate_graphs(5, eopts, [&](const Graph& g) {
    const PortNumbering p = PortNumbering::identity(g);
    const auto r1 = execute(*machine, p);
    const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus, 3);
    const auto truth = model_check(k, psi);
    const auto r3 = execute(*recompiled, p);
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r1.final_states[v].as_int() == 1, truth[v]);
      EXPECT_EQ(r3.final_states[v].as_int() == 1, truth[v]);
    }
    return true;
  });
}

TEST(Integration, LeafInStarDownTheHierarchy) {
  // The SV(1) leaf picker pushed through Theorem 4 would need a Multiset
  // source; instead demonstrate the other direction: the Set machine is
  // *also* a Multiset machine by containment, and wrapping a Vector
  // machine by Theorems 8 + 4 yields a Set machine solving the problem.
  LambdaMachine vector_picker;  // Vector-mode leaf picker
  vector_picker.cls = AlgebraicClass::vector();
  vector_picker.init_fn = [](int d) {
    return Value::pair(Value::str("L"), Value::integer(d));
  };
  vector_picker.stopping_fn = [](const Value& s) { return s.is_int(); };
  vector_picker.message_fn = [](const Value&, int port) {
    return Value::integer(port);
  };
  vector_picker.transition_fn = [](const Value& s, const Value& inbox, int d) {
    const bool leaf = s.at(1).as_int() == 1;
    const bool one = d == 1 && inbox.at(0) == Value::integer(1);
    return Value::integer(leaf && one ? 1 : 0);
  };
  const auto problem = leaf_in_star_problem();
  for (int k : {2, 3}) {
    const Graph g = star_graph(k);
    const auto set_machine = vector_to_set_machine(
        std::make_shared<LambdaMachine>(vector_picker), k);
    for_each_port_numbering(g, [&](const PortNumbering& p) {
      const auto r = execute(*set_machine, p);
      EXPECT_TRUE(r.stopped);
      EXPECT_TRUE(problem->valid(g, r.outputs_as_ints()));
      return true;
    });
  }
}

TEST(Integration, HierarchyEqualityChainOnRandomInstances) {
  // VV -> MV -> SV chain on a port-sensitive machine: outputs of the SV
  // machine must be valid outputs of the original VV machine's canonical
  // problem. We use a graph-determined machine so equality is exact.
  LambdaMachine sum2;
  sum2.cls = AlgebraicClass::vector();
  sum2.init_fn = [](int d) {
    return Value::triple(Value::str("x"), Value::integer(2), Value::integer(d));
  };
  sum2.stopping_fn = [](const Value& s) { return s.is_int(); };
  sum2.message_fn = [](const Value& s, int) { return s.at(2); };
  sum2.transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t acc = 0;
    for (const Value& m : inbox.items()) {
      if (!m.is_unit()) acc += m.as_int();
    }
    if (s.at(1).as_int() == 1) return Value::integer(acc);
    return Value::triple(Value::str("x"), Value::integer(1), Value::integer(acc));
  };
  auto v = std::make_shared<LambdaMachine>(sum2);
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 3, 3, rng);
    const auto m = to_multiset_machine(v);
    const auto s = to_set_machine(m, 3);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto rv = execute(*v, p);
    const auto rm = execute(*m, p);
    const auto rs = execute(*s, p);
    EXPECT_EQ(rv.final_states, rm.final_states);
    EXPECT_EQ(rm.final_states, rs.final_states);
    EXPECT_EQ(rs.rounds, rv.rounds + 6);  // +2*Delta
  }
}

TEST(Integration, AllThreeSeparationsPlusTransformersGiveFigure5b) {
  EXPECT_TRUE(check_separation(thm11_witness(3)).holds());
  EXPECT_TRUE(check_separation(thm13_witness()).holds());
  EXPECT_TRUE(check_separation(thm17_witness(3)).holds());
}

TEST(Integration, VertexCoverFullStory) {
  // Section 3.3 end-to-end: VB algorithm — class-checked — wrapped by
  // Theorem 9 into MB — solves 2-approx VC, verified against the exact
  // branch-and-bound optimum.
  auto vb = vertex_cover_packing_vb_machine();
  Rng crng(51);
  const Graph probe = petersen_graph();
  const auto report = check_class_invariance(
      *vb, PortNumbering::identity(probe), crng, 8);
  ASSERT_TRUE(report.multiset_invariant);
  ASSERT_TRUE(report.broadcast_invariant);
  const auto mb = to_multiset_machine(vb);
  const auto problem = approx_vertex_cover_problem();
  Rng rng(52);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_graph(10, 4, 6, rng);
    const auto r = execute(*mb, PortNumbering::random(g, rng));
    ASSERT_TRUE(r.stopped);
    EXPECT_TRUE(problem->valid(g, r.outputs_as_ints()));
  }
}

TEST(Integration, Remark2SboIsTrivial) {
  // The degree-oblivious SB machine solves isolated-node detection, and
  // bisimulation shows SBo can solve little else: in K_{-,-} *without*
  // degree propositions every non-isolated node of every graph is
  // bisimilar (they all just "have a neighbour").
  const Graph g1 = star_graph(3);
  const Graph g2 = cycle_graph(4);
  auto strip_props = [](const KripkeModel& k) {
    KripkeModel out(k.num_states(), 0);
    for (const Modality& alpha : k.modalities()) {
      out.ensure_relation(alpha);
      for (int v = 0; v < k.num_states(); ++v) {
        for (int w : k.successors(alpha, v)) out.add_edge(alpha, v, w);
      }
    }
    return out;
  };
  const KripkeModel a =
      strip_props(kripke_from_graph(PortNumbering::identity(g1), Variant::MinusMinus));
  const KripkeModel b =
      strip_props(kripke_from_graph(PortNumbering::identity(g2), Variant::MinusMinus));
  // Star centre ~ star leaf ~ cycle node once degrees are invisible.
  EXPECT_TRUE(bisimilar_across(a, 0, b, 0));
  EXPECT_TRUE(bisimilar_across(a, 1, b, 0));
}

TEST(Integration, RuntimeEqualsModalDepthBothWays) {
  // Theorem 2's quantitative footnote: compile gives md+1 rounds;
  // extract of a T-round machine gives md <= T.
  const Formula f = Formula::diamond(
      {0, 0}, Formula::diamond({0, 0}, Formula::prop(1)));
  const auto m = compile_formula(f, Variant::MinusMinus, 2);
  const auto r = execute(*m, PortNumbering::identity(path_graph(5)));
  EXPECT_EQ(r.rounds, 3);
  ExtractionOptions opts;
  opts.delta = 2;
  opts.rounds = 1;
  const Formula g = extract_formula(*odd_odd_machine(), opts);
  EXPECT_LE(g.modal_depth(), 1);
}

}  // namespace
}  // namespace wm
