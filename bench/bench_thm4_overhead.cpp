// Regenerates the quantitative claim of Theorem 4 (MV = SV with round
// overhead T + O(Delta)) and measures the message-size price of the
// colour-refinement prologue — Section 5.4's open question asks whether
// the large message overhead of the simulations is necessary; this bench
// provides the measured baseline.
//
// Series: Delta = 2..8 on random Delta-regular graphs; columns report
// the Multiset source rounds T, the Set simulation rounds (expected
// exactly T + 2*Delta), and the maximum message size of both runs.
#include <cstdio>
#include <memory>

#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/refinement.hpp"
#include "transform/simulations.hpp"
#include "bench_util.hpp"

namespace {

using namespace wm;

/// A T-round Multiset probe: iteratively hash the inbox multiset.
std::shared_ptr<const StateMachine> multiset_probe(int rounds) {
  auto m = std::make_shared<LambdaMachine>();
  m->cls = AlgebraicClass::multiset();
  m->init_fn = [rounds](int d) {
    return Value::triple(Value::str("m"), Value::integer(rounds),
                         Value::integer(d));
  };
  m->stopping_fn = [](const Value& s) { return s.is_int(); };
  m->message_fn = [](const Value& s, int) { return s.at(2); };
  m->transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t acc = 0;
    std::int64_t w = 1;
    for (const Value& v : inbox.items()) {
      if (!v.is_unit()) acc += w * (v.as_int() % 1000003);
      w = (w * 31) % 1000003;
    }
    const auto left = s.at(1).as_int() - 1;
    const Value digest = Value::integer((s.at(2).as_int() * 131 + acc) % 1000003);
    if (left == 0) return digest;
    return Value::triple(Value::str("m"), Value::integer(left), digest);
  };
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  std::printf("=== Theorem 4: Set simulation of Multiset algorithms ===\n\n");
  std::printf("%-6s %-4s %-8s %-10s %-10s %-12s %-14s %-14s\n", "Delta", "n",
              "T (MV)", "T' (SV)", "T'-T", "2*Delta", "maxmsg(MV)",
              "maxmsg(SV)");
  // The beta_t histories grow exponentially in Delta (size ~ (deg+1)^
  // {2*Delta}); Delta <= 4 keeps the bench fast while showing the trend.
  Rng rng(99);
  for (int delta = 2; delta <= 4; ++delta) {
    WM_TIME_SCOPE("bench.thm4.delta");
    const int n = 2 * ((delta + 4) / 2 + 3);  // even, comfortably > delta
    const Graph g = random_regular_graph(n, delta, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const int rounds = 3;
    auto a = multiset_probe(rounds);
    auto b = to_set_machine(a, delta);
    const auto ra = execute(*a, p);
    const auto rb = execute(*b, p);
    const bool same = ra.final_states == rb.final_states;
    std::printf("%-6d %-4d %-8d %-10d %-10d %-12d %-14zu %-14zu%s\n", delta, n,
                ra.rounds, rb.rounds, rb.rounds - ra.rounds, 2 * delta,
                ra.stats.max_size, rb.stats.max_size,
                same ? "" : "   OUTPUT MISMATCH!");
  }
  std::printf("\nShape check (paper): T' - T == 2*Delta for every Delta;\n");
  std::printf("message size grows exponentially in Delta (the beta_t\n");
  std::printf("histories), the open-question cost of Section 5.4.\n");

  // Ablation: how many prologue rounds are *actually* needed before the
  // Lemma 6 keys become distinct, versus the worst-case 2*Delta bound?
  std::printf("\n=== Ablation: minimal prologue length vs the 2*Delta bound "
              "===\n");
  std::printf("%-22s %-6s %-10s %-10s\n", "graph", "Delta", "needed",
              "2*Delta");
  Rng arng(7);
  auto ablate = [&](const char* name, const Graph& g) {
    WM_TIME_SCOPE("bench.thm4.ablate");
    const PortNumbering p = PortNumbering::random(g, arng);
    const int delta = g.max_degree();
    const int needed = rounds_until_keys_distinct(p, 2 * delta);
    std::printf("%-22s %-6d %-10d %-10d%s\n", name, delta, needed, 2 * delta,
                needed < 0 ? "  BOUND VIOLATED!" : "");
  };
  ablate("star-6", star_graph(6));
  ablate("cycle-10", cycle_graph(10));
  ablate("path-10", path_graph(10));
  ablate("complete-6", complete_graph(6));
  ablate("petersen", petersen_graph());
  ablate("grid-4x4", grid_graph(4, 4));
  ablate("fig9a", fig9a_graph());
  for (int i = 0; i < 4; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "random-12-d4 #%d", i);
    ablate(name, random_connected_graph(12, 4, 6, arng));
  }
  std::printf("\nObservation: the bound 2*Delta is loose in practice — a\n");
  std::printf("couple of refinement rounds usually suffice; the proof's\n");
  std::printf("induction (Lemma 5) pays for adversarial numberings.\n");
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("thm4_overhead", 4, threads, wm_total.ms(), 0);
  return 0;
}
