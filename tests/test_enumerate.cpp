#include "graph/enumerate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/canonical.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

TEST(Enumerate, CountsAllGraphsOnThreeNodes) {
  EnumerateOptions opts;
  opts.connected_only = false;
  std::size_t count = 0;
  enumerate_graphs(3, opts, [&](const Graph&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 8u);  // 2^3 edge subsets
}

TEST(Enumerate, CountsConnectedLabelledGraphs) {
  // Known sequence (OEIS A001187): 1, 1, 4, 38, 728 for n = 1, 2, 3, 4, 5.
  const std::size_t expected[] = {1, 1, 4, 38, 728};
  for (int n = 1; n <= 5; ++n) {
    EnumerateOptions opts;
    std::size_t count = 0;
    enumerate_graphs(n, opts, [&](const Graph& g) {
      EXPECT_TRUE(is_connected(g));
      ++count;
      return true;
    });
    EXPECT_EQ(count, expected[n - 1]) << "n=" << n;
  }
}

TEST(Enumerate, DegreeBoundsRespected) {
  EnumerateOptions opts;
  opts.connected_only = true;
  opts.max_degree = 2;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    EXPECT_LE(g.max_degree(), 2);
    return true;
  });
  opts.min_degree = 2;
  // Connected graphs on 5 nodes with all degrees exactly 2 = 5-cycles.
  std::size_t cycles = 0;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    EXPECT_TRUE(g.is_regular(2));
    ++cycles;
    return true;
  });
  EXPECT_EQ(cycles, 12u);  // (5-1)!/2 labelled 5-cycles
}

TEST(Enumerate, EarlyStop) {
  EnumerateOptions opts;
  opts.connected_only = false;
  int seen = 0;
  enumerate_graphs(4, opts, [&](const Graph&) { return ++seen < 5; });
  EXPECT_EQ(seen, 5);
}

TEST(Enumerate, ReturnValueCountsGraphsStreamedToFn) {
  // Every variant returns the number of graphs passed to fn — including
  // the one on which fn returned false — never the number of candidate
  // edge sets.
  EnumerateOptions all;
  all.connected_only = false;
  std::size_t calls = 0;
  const std::size_t full = enumerate_graphs(4, all, [&](const Graph&) {
    ++calls;
    return true;
  });
  EXPECT_EQ(full, calls);
  EXPECT_EQ(full, 64u);  // 2^6 edge subsets
  calls = 0;
  const std::size_t stopped =
      enumerate_graphs(4, all, [&](const Graph&) { return ++calls < 5; });
  EXPECT_EQ(stopped, 5u);
  EXPECT_EQ(calls, 5u);

  EnumerateOptions conn;
  calls = 0;
  const std::size_t reduced = enumerate_graphs_modulo_refinement(
      5, conn, [&](const Graph&) {
        ++calls;
        return true;
      });
  EXPECT_EQ(reduced, calls);
  calls = 0;
  const std::size_t reduced_stopped = enumerate_graphs_modulo_refinement(
      5, conn, [&](const Graph&) { return ++calls < 3; });
  EXPECT_EQ(reduced_stopped, 3u);
}

TEST(Enumerate, ReturnValueMatchesA001187) {
  // Labelled connected graphs (OEIS A001187), via the return value alone.
  const std::size_t expected[] = {1, 1, 4, 38, 728};
  for (int n = 1; n <= 5; ++n) {
    EnumerateOptions opts;
    EXPECT_EQ(enumerate_graphs(n, opts, [](const Graph&) { return true; }),
              expected[n - 1])
        << "n=" << n;
  }
}

// Counts the connected graphs on n labelled nodes fixed by `perm`: a
// graph is fixed iff its edge set is a union of perm's edge orbits, so we
// enumerate orbit unions and test connectivity with bitmask BFS.
std::uint64_t connected_graphs_fixed_by(int n, const std::vector<int>& perm) {
  std::vector<std::pair<int, int>> edges;
  std::vector<std::vector<int>> idx(static_cast<std::size_t>(n),
                                    std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      idx[u][v] = idx[v][u] = static_cast<int>(edges.size());
      edges.emplace_back(u, v);
    }
  }
  const int m = static_cast<int>(edges.size());
  std::vector<std::uint32_t> orbits;  // n <= 7 => m <= 21 edge bits
  std::vector<char> done(static_cast<std::size_t>(m), 0);
  for (int e = 0; e < m; ++e) {
    if (done[e]) continue;
    std::uint32_t mask = 0;
    int cur = e;
    while (!done[cur]) {
      done[cur] = 1;
      mask |= 1u << cur;
      cur = idx[perm[edges[cur].first]][perm[edges[cur].second]];
    }
    orbits.push_back(mask);
  }
  std::uint64_t count = 0;
  for (std::uint64_t s = 0; s < (1ULL << orbits.size()); ++s) {
    std::uint32_t edge_mask = 0;
    for (std::size_t o = 0; o < orbits.size(); ++o) {
      if (s & (1ULL << o)) edge_mask |= orbits[o];
    }
    std::uint32_t adj[7] = {};
    for (std::uint32_t rem = edge_mask; rem; rem &= rem - 1) {
      const int e = std::countr_zero(rem);
      adj[edges[e].first] |= 1u << edges[e].second;
      adj[edges[e].second] |= 1u << edges[e].first;
    }
    std::uint32_t reached = 1, frontier = 1;
    while (frontier) {
      std::uint32_t next = 0;
      for (std::uint32_t f = frontier; f; f &= f - 1) {
        next |= adj[std::countr_zero(f)];
      }
      frontier = next & ~reached;
      reached |= next;
    }
    if (reached == (1u << n) - 1) ++count;
  }
  return count;
}

TEST(Enumerate, IdentityBurnsideTermIsTheReturnValue) {
  // The identity permutation fixes every graph, so its Burnside term is
  // exactly the labelled connected count — i.e. what enumerate_graphs
  // reports through its return value.
  for (int n = 1; n <= 5; ++n) {
    std::vector<int> id(static_cast<std::size_t>(n));
    std::iota(id.begin(), id.end(), 0);
    EnumerateOptions opts;
    EXPECT_EQ(connected_graphs_fixed_by(n, id),
              enumerate_graphs(n, opts, [](const Graph&) { return true; }))
        << "n=" << n;
  }
}

TEST(Enumerate, UnlabelledConnectedCountsMatchOeisA001349) {
  // Burnside / orbit counting: #unlabelled connected graphs on n nodes =
  // (1/n!) * sum over permutations of #connected graphs fixed. The fixed
  // count depends only on the cycle type, so it is memoised per type.
  const std::uint64_t expected[] = {1, 1, 2, 6, 21, 112, 853};
  for (int n = 1; n <= 7; ++n) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::map<std::vector<int>, std::uint64_t> by_type;
    std::uint64_t total = 0, nperms = 0;
    do {
      std::vector<int> type;
      std::vector<char> seen(static_cast<std::size_t>(n), 0);
      for (int v = 0; v < n; ++v) {
        if (seen[v]) continue;
        int len = 0;
        for (int c = v; !seen[c]; c = perm[c]) {
          seen[c] = 1;
          ++len;
        }
        type.push_back(len);
      }
      std::sort(type.begin(), type.end());
      auto it = by_type.find(type);
      if (it == by_type.end()) {
        it = by_type.emplace(type, connected_graphs_fixed_by(n, perm)).first;
      }
      total += it->second;
      ++nperms;
    } while (std::next_permutation(perm.begin(), perm.end()));
    ASSERT_EQ(total % nperms, 0u) << "n=" << n;
    EXPECT_EQ(total / nperms, expected[n - 1]) << "n=" << n;
  }
}

TEST(Enumerate, ModuloIsoMatchesOeisA000088) {
  // Graphs up to isomorphism (OEIS A000088): canonical-certificate dedup
  // must land exactly on the unlabelled counts — the golden cross-check
  // that the certificate neither merges non-isomorphic graphs (count
  // would drop) nor splits isomorphism classes (count would grow).
  const std::size_t expected[] = {1, 2, 4, 11, 34, 156};
  for (int n = 1; n <= 6; ++n) {
    EnumerateOptions opts;
    opts.connected_only = false;
    EXPECT_EQ(enumerate_graphs_modulo_iso(
                  n, opts, [](const Graph&) { return true; }),
              expected[n - 1])
        << "n=" << n;
  }
}

TEST(Enumerate, ModuloIsoConnectedMatchesOeisA001349) {
  // Connected graphs up to isomorphism (OEIS A001349) — agrees with the
  // independent Burnside computation in UnlabelledConnectedCountsMatch.
  const std::size_t expected[] = {1, 1, 2, 6, 21, 112};
  for (int n = 1; n <= 6; ++n) {
    EnumerateOptions opts;
    std::size_t connected_reps = 0;
    enumerate_graphs_modulo_iso(n, opts, [&](const Graph& g) {
      EXPECT_TRUE(is_connected(g));
      ++connected_reps;
      return true;
    });
    EXPECT_EQ(connected_reps, expected[n - 1]) << "n=" << n;
  }
}

TEST(Enumerate, ModuloIsoFixesBothRefinementFailureModes) {
  // The refinement signature is only a heuristic dedup key: its colour
  // ids are assigned in first-seen vertex order, so it SPLITS
  // isomorphism classes (relabelled copies can sign apart), and it
  // also MERGES non-isomorphic regular graphs (one colour class each).
  // The canonical certificate has neither failure mode. Demonstrate the
  // split concretely — P3 with the centre first vs the centre second —
  // and check the aggregate consequence: on all graphs of order 5 the
  // signature count strictly exceeds the exact A000088 count.
  Graph centre_mid(3);  // 0 - 1 - 2
  centre_mid.add_edge(0, 1);
  centre_mid.add_edge(1, 2);
  Graph centre_first(3);  // 1 - 0 - 2
  centre_first.add_edge(0, 1);
  centre_first.add_edge(0, 2);
  EXPECT_NE(refinement_signature(centre_mid),
            refinement_signature(centre_first));
  EXPECT_EQ(canonical_certificate(centre_mid),
            canonical_certificate(centre_first));

  EnumerateOptions opts;
  opts.connected_only = false;
  const std::size_t by_refinement = enumerate_graphs_modulo_refinement(
      5, opts, [](const Graph&) { return true; });
  const std::size_t by_iso = enumerate_graphs_modulo_iso(
      5, opts, [](const Graph&) { return true; });
  EXPECT_EQ(by_iso, 34u);          // A000088(5): exact
  EXPECT_GT(by_refinement, by_iso);  // the splits dominate at this scope
}

TEST(Enumerate, ModuloRefinementVisitsFewer) {
  EnumerateOptions opts;
  std::size_t all = 0, reduced = 0;
  enumerate_graphs(5, opts, [&](const Graph&) {
    ++all;
    return true;
  });
  reduced = enumerate_graphs_modulo_refinement(5, opts,
                                               [&](const Graph&) { return true; });
  EXPECT_LT(reduced, all);
  EXPECT_GT(reduced, 0u);
}

}  // namespace
}  // namespace wm
