
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bisim/bisimulation.cpp" "src/bisim/CMakeFiles/wm_bisim.dir/bisimulation.cpp.o" "gcc" "src/bisim/CMakeFiles/wm_bisim.dir/bisimulation.cpp.o.d"
  "/root/repo/src/bisim/definability.cpp" "src/bisim/CMakeFiles/wm_bisim.dir/definability.cpp.o" "gcc" "src/bisim/CMakeFiles/wm_bisim.dir/definability.cpp.o.d"
  "/root/repo/src/bisim/distinguish.cpp" "src/bisim/CMakeFiles/wm_bisim.dir/distinguish.cpp.o" "gcc" "src/bisim/CMakeFiles/wm_bisim.dir/distinguish.cpp.o.d"
  "/root/repo/src/bisim/quotient.cpp" "src/bisim/CMakeFiles/wm_bisim.dir/quotient.cpp.o" "gcc" "src/bisim/CMakeFiles/wm_bisim.dir/quotient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/wm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/port/CMakeFiles/wm_port.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
