file(REMOVE_RECURSE
  "CMakeFiles/test_class_checker.dir/test_class_checker.cpp.o"
  "CMakeFiles/test_class_checker.dir/test_class_checker.cpp.o.d"
  "test_class_checker"
  "test_class_checker.pdb"
  "test_class_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
