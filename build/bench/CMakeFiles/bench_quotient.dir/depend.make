# Empty dependencies file for bench_quotient.
# This may be replaced when dependencies are built.
