# Empty compiler generated dependencies file for wm_graph.
# This may be replaced when dependencies are built.
