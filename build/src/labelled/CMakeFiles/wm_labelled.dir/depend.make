# Empty dependencies file for wm_labelled.
# This may be replaced when dependencies are built.
