#include "util/value.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace wm {

namespace {

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  // boost::hash_combine-style mixing with a 64-bit golden-ratio constant.
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::size_t compute_hash(const Value::Kind kind, std::int64_t i,
                         const std::string& s, const ValueVec& kids) {
  std::size_t h = static_cast<std::size_t>(kind) * 0x100000001b3ULL;
  switch (kind) {
    case Value::Kind::Unit:
      break;
    case Value::Kind::Int:
      h = hash_combine(h, std::hash<std::int64_t>{}(i));
      break;
    case Value::Kind::Str:
      h = hash_combine(h, std::hash<std::string>{}(s));
      break;
    default:
      for (const Value& k : kids) h = hash_combine(h, k.hash());
      break;
  }
  return h;
}

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "wm::Value: %s\n", what);
  std::abort();
}

}  // namespace

Value Value::make(Node&& n) {
  n.hash = compute_hash(n.kind, n.i, n.s, n.kids);
  return Value(std::make_shared<const Node>(std::move(n)));
}

Value Value::unit() {
  static const Value u = [] {
    Node n;
    n.kind = Kind::Unit;
    return make(std::move(n));
  }();
  return u;
}

Value::Value() : node_(unit().node_) {}

Value Value::integer(std::int64_t v) {
  Node n;
  n.kind = Kind::Int;
  n.i = v;
  return make(std::move(n));
}

Value Value::boolean(bool v) { return integer(v ? 1 : 0); }

Value Value::str(std::string s) {
  Node n;
  n.kind = Kind::Str;
  n.s = std::move(s);
  return make(std::move(n));
}

Value Value::tuple(ValueVec items) {
  Node n;
  n.kind = Kind::Tuple;
  n.kids = std::move(items);
  return make(std::move(n));
}

Value Value::set(ValueVec items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  Node n;
  n.kind = Kind::Set;
  n.kids = std::move(items);
  return make(std::move(n));
}

Value Value::mset(ValueVec items) {
  std::sort(items.begin(), items.end());
  Node n;
  n.kind = Kind::MSet;
  n.kids = std::move(items);
  return make(std::move(n));
}

Value Value::pair(Value a, Value b) {
  return tuple({std::move(a), std::move(b)});
}

Value Value::triple(Value a, Value b, Value c) {
  return tuple({std::move(a), std::move(b), std::move(c)});
}

std::int64_t Value::as_int() const {
  if (!is_int()) die("as_int() on non-Int value");
  return node_->i;
}

const std::string& Value::as_str() const {
  if (!is_str()) die("as_str() on non-Str value");
  return node_->s;
}

const ValueVec& Value::items() const {
  static const ValueVec empty;
  switch (kind()) {
    case Kind::Tuple:
    case Kind::Set:
    case Kind::MSet:
      return node_->kids;
    default:
      return empty;
  }
}

std::size_t Value::size() const { return items().size(); }

const Value& Value::at(std::size_t i) const {
  if (i >= items().size()) die("at() index out of range");
  return items()[i];
}

bool Value::contains(const Value& v) const {
  const ValueVec& k = items();
  if (kind() == Kind::Tuple) return std::find(k.begin(), k.end(), v) != k.end();
  return std::binary_search(k.begin(), k.end(), v);
}

std::size_t Value::count(const Value& v) const {
  const ValueVec& k = items();
  auto [lo, hi] = std::equal_range(k.begin(), k.end(), v);
  return static_cast<std::size_t>(hi - lo);
}

bool operator==(const Value& a, const Value& b) {
  if (a.node_ == b.node_) return true;
  if (a.hash() != b.hash()) return false;
  return (a <=> b) == std::strong_ordering::equal;
}

std::strong_ordering operator<=>(const Value& a, const Value& b) {
  if (a.node_ == b.node_) return std::strong_ordering::equal;
  if (auto c = a.kind() <=> b.kind(); c != 0) return c;
  switch (a.kind()) {
    case Value::Kind::Unit:
      return std::strong_ordering::equal;
    case Value::Kind::Int:
      return a.node_->i <=> b.node_->i;
    case Value::Kind::Str:
      return a.node_->s.compare(b.node_->s) <=> 0;
    default: {
      const ValueVec& x = a.node_->kids;
      const ValueVec& y = b.node_->kids;
      const std::size_t n = std::min(x.size(), y.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (auto c = x[i] <=> y[i]; c != 0) return c;
      }
      return x.size() <=> y.size();
    }
  }
}

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Unit:
      return os << "()";
    case Value::Kind::Int:
      return os << v.as_int();
    case Value::Kind::Str:
      return os << '"' << v.as_str() << '"';
    case Value::Kind::Tuple:
    case Value::Kind::Set:
    case Value::Kind::MSet: {
      const char* open = v.is_tuple() ? "(" : (v.is_set() ? "{" : "{|");
      const char* close = v.is_tuple() ? ")" : (v.is_set() ? "}" : "|}");
      os << open;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) os << ", ";
        os << v.at(i);
      }
      return os << close;
    }
  }
  return os;
}

Value multiset_of(const ValueVec& msgs) { return Value::mset(msgs); }

Value set_of(const ValueVec& msgs) { return Value::set(msgs); }

}  // namespace wm
