// Scope-limited solvability and round lower bounds.
//
// For problems with a UNIQUE valid solution per graph (odd-odd
// neighbours, degree parity, isolated-node detection, ...), class
// membership over a finite scope of instances reduces to a refinement
// question: a t-round algorithm of class C exists for the scope iff the
// target outputs are constant on the t-step (graded, for Multiset
// classes) bisimilarity classes of the joint Kripke model of all
// instances — sufficiency is witnessed constructively by compiling the
// classes' characteristic formulas (Theorem 2), necessity by Fact 1.
//
// This gives executable statements like "odd-odd needs exactly 1 round
// in MB but is unsolvable in SB on this scope" — the quantitative core
// of the paper's locality perspective (Section 2, contribution (b)).
#pragma once

#include <optional>
#include <vector>

#include "core/classification.hpp"

namespace wm {

class CancelToken;
class ThreadPool;

struct ScopedInstance {
  PortNumbering numbering;
  std::vector<int> target;  // required output per node (0/1)
};

struct SolvabilityReport {
  /// Smallest t <= max_rounds at which the targets are constant on the
  /// t-step refinement classes; nullopt if none (including at the
  /// refinement fixpoint, i.e. unsolvable on this scope in this class).
  std::optional<int> min_rounds;
  /// Rounds at which the refinement reached its fixpoint.
  int fixpoint_rounds = 0;
  /// Number of blocks at the fixpoint.
  int blocks = 0;
};

/// Analyses solvability of the target outputs in problem class `c` over
/// the scope. All instances must share max degree <= delta (pass the
/// common Delta so degree propositions align).
///
/// With a pool, the per-round-bound refinements (independent
/// computations: the t-step partition is rebuilt from scratch per t,
/// exactly as the sequential loop does) are scanned with
/// parallel_find_first — min_rounds and fixpoint_rounds are lowest
/// witnesses, so the report is identical at any thread count.
///
/// `cancel` (util/cancel.hpp) is polled once per per-round-bound
/// refinement; an expired token aborts with CancelledError. Sequential
/// callers only — the parallel scans run the refinements inside
/// speculative predicates whose exception contract already covers
/// cancellation, but the serving layer always calls this pool-less.
SolvabilityReport analyse_solvability(const std::vector<ScopedInstance>& scope,
                                      ProblemClass c, int delta,
                                      int max_rounds = 64,
                                      ThreadPool* pool = nullptr,
                                      const CancelToken* cancel = nullptr);

/// Builds a scope from graphs: instances get the given numberings and
/// targets from a uniquely-solvable problem's solution (computed by
/// brute force over the output alphabet via the verifier — the problem
/// must have exactly one valid solution per graph; throws otherwise).
/// With a pool the |Y|^n output scan runs as a chunk-ordered parallel
/// reduction (lowest valid index + validity count), so the instance —
/// and the thrown diagnostics — match the sequential scan exactly.
/// `cancel` is polled every 1024 outputs in the sequential scan.
ScopedInstance instance_for(const Problem& problem, PortNumbering numbering,
                            ThreadPool* pool = nullptr,
                            const CancelToken* cancel = nullptr);

}  // namespace wm
