#include "store/checkpoint.hpp"

#include <cstdio>
#include <sstream>

namespace wm::store {

namespace {
constexpr const char* kMagic = "wm-census-checkpoint";
}

void write_checkpoint(const std::string& path, const Checkpoint& cp) {
  std::string body;
  body += kMagic;
  body += " ";
  body += std::to_string(Checkpoint::kVersion);
  body += "\nkind ";
  body += cp.kind;
  body += "\nspace ";
  body += std::to_string(cp.space);
  body += "\nbatch ";
  body += std::to_string(cp.batch);
  body += "\nnext ";
  body += std::to_string(cp.next);
  body += "\nclasses ";
  body += std::to_string(cp.classes);
  body += "\nadmissible ";
  body += std::to_string(cp.admissible);
  body += "\nscanned ";
  body += std::to_string(cp.scanned);
  body += "\nbatches ";
  body += std::to_string(cp.batches);
  body += "\ncheckpoints ";
  body += std::to_string(cp.checkpoints);
  body += "\n";
  for (const SegmentRef& ref : cp.store_segments) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x", ref.crc);
    body += "segment ";
    body += ref.file;
    body += " ";
    body += std::to_string(ref.count);
    body += " ";
    body += crc_hex;
    body += "\n";
  }
  // The manifest JSON is one line by construction (obs::manifest_json
  // never emits raw newlines); keep it last so the grammar stays
  // prefix-parseable.
  body += "manifest ";
  body += cp.manifest_json;
  body += "\n";
  write_crc_file(path, body);
}

Checkpoint load_checkpoint(const std::string& path) {
  const std::string body = load_crc_file(path, "census checkpoint");
  std::istringstream in(body);
  std::string magic;
  std::uint32_t version = 0;
  if (!(in >> magic) || magic != kMagic) {
    throw StoreError(StoreErrorCode::kBadMagic,
                     path + ": not a census checkpoint");
  }
  if (!(in >> version) || version != Checkpoint::kVersion) {
    throw StoreError(StoreErrorCode::kVersionSkew,
                     path + ": checkpoint version " + std::to_string(version) +
                         ", this build reads " +
                         std::to_string(Checkpoint::kVersion));
  }
  Checkpoint cp;
  std::string word;
  bool saw_kind = false, saw_next = false;
  while (in >> word) {
    if (word == "kind") {
      in >> cp.kind;
      saw_kind = true;
    } else if (word == "space") {
      in >> cp.space;
    } else if (word == "batch") {
      in >> cp.batch;
    } else if (word == "next") {
      in >> cp.next;
      saw_next = true;
    } else if (word == "classes") {
      in >> cp.classes;
    } else if (word == "admissible") {
      in >> cp.admissible;
    } else if (word == "scanned") {
      in >> cp.scanned;
    } else if (word == "batches") {
      in >> cp.batches;
    } else if (word == "checkpoints") {
      in >> cp.checkpoints;
    } else if (word == "segment") {
      SegmentRef ref;
      std::string crc_hex;
      if (!(in >> ref.file >> ref.count >> crc_hex)) {
        throw StoreError(StoreErrorCode::kBadManifest,
                         path + ": bad segment line");
      }
      ref.crc = static_cast<std::uint32_t>(std::stoul(crc_hex, nullptr, 16));
      cp.store_segments.push_back(std::move(ref));
    } else if (word == "manifest") {
      std::getline(in, cp.manifest_json);
      if (!cp.manifest_json.empty() && cp.manifest_json.front() == ' ') {
        cp.manifest_json.erase(0, 1);
      }
    } else {
      throw StoreError(StoreErrorCode::kBadManifest,
                       path + ": unknown field " + word);
    }
  }
  if (!saw_kind || !saw_next) {
    throw StoreError(StoreErrorCode::kTruncated,
                     path + ": missing required fields");
  }
  if (cp.next > cp.space) {
    throw StoreError(StoreErrorCode::kBadManifest,
                     path + ": frontier past the end of the space");
  }
  return cp;
}

}  // namespace wm::store
