// The wm_serve protocol, pinned three ways:
//
//  1. *Goldens*: reply lines are byte-exact strings. The protocol
//     promises a fixed field order and fixed separators precisely so
//     clients can be this literal; any drift in serialisation is a
//     wire-format break and should fail loudly here.
//  2. *Malformed-input table*: every way a request can be wrong maps to
//     a structured {"ok": false, "error": {code}} reply — never a
//     crash, never an exception out of Service::handle_line.
//  3. *Differential*: served answers equal direct library calls — for
//     fresh entries (compute path) and for isomorphic re-queries served
//     from the memo-cache through canonical-coordinate transport, which
//     is the part of the cache design that could silently corrupt
//     per-node data if the labelling algebra were wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/classification.hpp"
#include "core/solvability.hpp"
#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "logic/kripke.hpp"
#include "logic/model_checker.hpp"
#include "logic/parser.hpp"
#include "logic/random_formula.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "port/port_numbering.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"
#include "algorithms/machines.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "support/canon_harness.hpp"
#include "support/diff_harness.hpp"
#include "util/rng.hpp"

namespace wm::serve {
namespace {

std::string edges_json(const Graph& g) {
  std::string out = "[";
  bool first = true;
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (const int v : g.neighbours(u)) {
      if (v < u) continue;
      if (!first) out += ", ";
      first = false;
      out += "[" + std::to_string(u) + ", " + std::to_string(v) + "]";
    }
  }
  out += "]";
  return out;
}

std::string graph_json(const Graph& g) {
  return "{\"n\": " + std::to_string(g.num_nodes()) +
         ", \"edges\": " + edges_json(g) + "}";
}

// --- 1. Byte-exact goldens --------------------------------------------------

TEST(ServeGolden, RunReplyBytes) {
  Service service;
  EXPECT_EQ(
      service.handle_line(
          R"({"op": "run", "id": 7, "machine": "degree-parity", )"
          R"("graph": {"n": 3, "edges": [[0, 1], [1, 2]]}})"),
      R"({"ok": true, "id": 7, "op": "run", "result": {"machine": )"
      R"("degree-parity", "stopped": true, "rounds": 0, "outputs": [1, 0, 1], )"
      R"("messages": {"sent": 0, "total_size": 0, "max_size": 0}}})");
}

TEST(ServeGolden, ModelcheckReplyBytes) {
  Service service;
  EXPECT_EQ(
      service.handle_line(
          R"({"op": "modelcheck", "formula": "<*,*> T", "model": )"
          R"({"graph": {"n": 3, "edges": [[0, 1], [1, 2]]}, "variant": "--"}})"),
      R"({"ok": true, "op": "modelcheck", "result": {"formula": "<*,*> T", )"
      R"("states": 3, "count": 3, "holds": [1, 1, 1]}})");
}

TEST(ServeGolden, ModelcheckExplicitModelBytes) {
  Service service;
  EXPECT_EQ(
      service.handle_line(
          R"({"op": "modelcheck", "formula": "[*,*] q1", "model": )"
          R"({"states": 3, "props": 1, "edges": [[0, 0, 0, 1], [0, 0, 1, 2]], )"
          R"("valuation": [[1, 2]]}})"),
      R"({"ok": true, "op": "modelcheck", "result": {"formula": "[*,*] q1", )"
      R"("states": 3, "count": 2, "holds": [0, 1, 1]}})");
}

TEST(ServeGolden, CanonReplyBytes) {
  Service service;
  EXPECT_EQ(
      service.handle_line(
          R"({"op": "canon", "kind": "graph", "graph": )"
          R"({"n": 4, "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]}})"),
      R"({"ok": true, "op": "canon", "result": {"kind": "graph", "n": 4, )"
      R"("hash": "a6fcae8d5556aaa7", "certificate_bytes": 51, )"
      R"("labelling": [0, 1, 3, 2]}})");
}

TEST(ServeGolden, ClassifyReplyBytes) {
  Service service;
  EXPECT_EQ(
      service.handle_line(
          R"({"op": "classify", "id": "c1", "problem": "degree-parity", )"
          R"("graph": {"n": 2, "edges": [[0, 1]]}})"),
      R"({"ok": true, "id": "c1", "op": "classify", "result": {"problem": )"
      R"("degree-parity", "n": 2, "delta": 1, "max_rounds": 8, "classes": )"
      R"([{"class": "SB", "logic": "ML", "min_rounds": 0, )"
      R"("fixpoint_rounds": 0, "blocks": 1}, {"class": "MB", "logic": "GML", )"
      R"("min_rounds": 0, "fixpoint_rounds": 0, "blocks": 1}, {"class": "VB", )"
      R"("logic": "MML", "min_rounds": 0, "fixpoint_rounds": 0, "blocks": 1}, )"
      R"({"class": "SV", "logic": "MML", "min_rounds": 0, )"
      R"("fixpoint_rounds": 0, "blocks": 1}, {"class": "MV", "logic": "GMML", )"
      R"("min_rounds": 0, "fixpoint_rounds": 0, "blocks": 1}, {"class": "VV", )"
      R"("logic": "MML", "min_rounds": 0, "fixpoint_rounds": 0, "blocks": 1}, )"
      R"({"class": "VVc", "logic": "MML", "min_rounds": 0, )"
      R"("fixpoint_rounds": 0, "blocks": 1}]}})");
}

TEST(ServeGolden, IdenticalRequestIsACacheHitWithIdenticalBytes) {
  Service service;
  const std::string req =
      R"({"op": "run", "machine": "odd-odd", "graph": )"
      R"({"n": 4, "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]}})";
  const std::string first = service.handle_line(req);
  const MemoCache::Stats before = service.cache().stats();
  const std::string second = service.handle_line(req);
  const MemoCache::Stats after = service.cache().stats();
  EXPECT_EQ(first, second);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(ServeGolden, StatsReplyIsWellFormed) {
  // Counters are process-global, so stats cannot be byte-pinned here;
  // pin its shape instead.
  Service service;
  service.handle_line(
      R"({"op": "canon", "kind": "graph", "graph": {"n": 1, "edges": []}})");
  const std::string reply = service.handle_line(R"({"op": "stats"})");
  const Json j = parse_json(reply);
  ASSERT_NE(j.find("ok"), nullptr);
  EXPECT_TRUE(j.find("ok")->as_bool());
  const Json* result = j.find("result");
  ASSERT_NE(result, nullptr);
  for (const char* key : {"counters", "timings", "cache", "manifest"}) {
    EXPECT_NE(result->find(key), nullptr) << key;
  }
  const Json* cache = result->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->find("misses")->as_int(), 1);
}

// --- 2. Malformed input -----------------------------------------------------

struct BadCase {
  const char* what;
  const char* line;
  const char* code;
};

TEST(ServeErrors, MalformedInputTable) {
  Service service;
  const std::vector<BadCase> cases = {
      {"truncated json", R"({"op": "run")", "parse_error"},
      {"not json at all", "hello there", "parse_error"},
      {"top-level array", R"([1, 2, 3])", "bad_request"},
      {"empty object", R"({})", "bad_request"},
      {"op wrong type", R"({"op": 7})", "bad_request"},
      {"unknown op", R"({"op": "frobnicate"})", "unknown_op"},
      {"id wrong type",
       R"({"op": "stats", "id": [1]})", "bad_request"},
      {"negative timeout",
       R"({"op": "stats", "timeout_ms": -5})", "bad_request"},
      {"unknown problem",
       R"({"op": "classify", "problem": "warp", )"
       R"("graph": {"n": 1, "edges": []}})",
       "unknown_problem"},
      {"unknown machine",
       R"({"op": "run", "machine": "warp", "graph": {"n": 1, "edges": []}})",
       "unknown_machine"},
      {"bad formula",
       R"({"op": "modelcheck", "formula": "<<", )"
       R"("model": {"states": 1, "props": 0}})",
       "bad_formula"},
      {"formula names absent proposition",
       R"({"op": "modelcheck", "formula": "q5", )"
       R"("model": {"states": 1, "props": 1}})",
       "bad_formula"},
      {"missing graph",
       R"({"op": "run", "machine": "odd-odd"})", "bad_request"},
      {"graph n too large",
       R"({"op": "run", "machine": "odd-odd", )"
       R"("graph": {"n": 129, "edges": []}})",
       "bad_request"},
      {"classify n too large for the output scan",
       R"({"op": "classify", "problem": "degree-parity", )"
       R"("graph": {"n": 17, "edges": []}})",
       "bad_request"},
      {"self-loop", R"({"op": "run", "machine": "odd-odd", )"
                    R"("graph": {"n": 2, "edges": [[0, 0]]}})",
       "bad_request"},
      {"duplicate edge",
       R"({"op": "run", "machine": "odd-odd", )"
       R"("graph": {"n": 2, "edges": [[0, 1], [1, 0]]}})",
       "bad_request"},
      {"edge out of range",
       R"({"op": "run", "machine": "odd-odd", )"
       R"("graph": {"n": 2, "edges": [[0, 2]]}})",
       "bad_request"},
      {"edge not a pair",
       R"({"op": "run", "machine": "odd-odd", )"
       R"("graph": {"n": 2, "edges": [[0]]}})",
       "bad_request"},
      {"unknown numbering",
       R"({"op": "run", "machine": "odd-odd", )"
       R"("graph": {"n": 2, "edges": [[0, 1]]}, "numbering": "magic"})",
       "bad_request"},
      {"symmetric numbering on irregular graph",
       R"({"op": "run", "machine": "degree-parity", )"
       R"("graph": {"n": 3, "edges": [[0, 1], [1, 2]]}, )"
       R"("numbering": "symmetric"})",
       "unsupported"},
      {"unknown variant",
       R"({"op": "modelcheck", "formula": "T", "model": )"
       R"({"graph": {"n": 2, "edges": [[0, 1]]}, "variant": "+*"}})",
       "bad_request"},
      {"kripke edge out of range",
       R"({"op": "modelcheck", "formula": "T", "model": )"
       R"({"states": 2, "props": 0, "edges": [[0, 0, 0, 5]]}})",
       "bad_request"},
      {"valuation out of range",
       R"({"op": "modelcheck", "formula": "T", "model": )"
       R"({"states": 1, "props": 1, "valuation": [[2, 0]]}})",
       "bad_request"},
      {"canon unknown kind",
       R"({"op": "canon", "kind": "tensor", )"
       R"("graph": {"n": 1, "edges": []}})",
       "bad_request"},
      {"classify non-unique solution",
       R"({"op": "classify", "problem": "leaf-in-star", )"
       R"("graph": {"n": 4, "edges": [[0, 1], [0, 2], [0, 3]]}})",
       "unsupported"},
  };
  for (const BadCase& c : cases) {
    const std::string reply = service.handle_line(c.line);
    const Json j = parse_json(reply);  // every reply is valid JSON
    ASSERT_NE(j.find("ok"), nullptr) << c.what;
    EXPECT_FALSE(j.find("ok")->as_bool()) << c.what;
    const Json* error = j.find("error");
    ASSERT_NE(error, nullptr) << c.what;
    EXPECT_EQ(error->find("code")->as_string(), c.code)
        << c.what << " -> " << reply;
  }
}

TEST(ServeErrors, OversizedRequestLine) {
  ServiceConfig cfg;
  cfg.max_request_bytes = 64;
  Service service(cfg);
  const std::string big(100, 'x');
  const Json j = parse_json(service.handle_line(big));
  EXPECT_FALSE(j.find("ok")->as_bool());
  EXPECT_EQ(j.find("error")->find("code")->as_string(), "oversized");
}

TEST(ServeErrors, DeadlineAlreadyExpired) {
  // timeout_ms: 1 on a classify with a real output scan: the token is
  // polled inside instance_for / the refinement loop. We cannot force
  // slowness deterministically, so accept either a deadline error or a
  // fast success — what must never happen is a crash or a third shape.
  Service service;
  const std::string reply = service.handle_line(
      R"({"op": "classify", "problem": "degree-parity", "timeout_ms": 1, )"
      R"("graph": {"n": 5, "edges": [[0, 1], [1, 2], [2, 3], [3, 4]]}})");
  const Json j = parse_json(reply);
  if (!j.find("ok")->as_bool()) {
    EXPECT_EQ(j.find("error")->find("code")->as_string(), "deadline");
  }
}

// --- 3. Differential: served == direct --------------------------------------

std::vector<int> holds_from_reply(const std::string& reply) {
  const Json j = parse_json(reply);
  EXPECT_TRUE(j.find("ok")->as_bool()) << reply;
  std::vector<int> out;
  for (const Json& b : j.find("result")->find("holds")->items()) {
    out.push_back(static_cast<int>(b.as_int()));
  }
  return out;
}

TEST(ServeDifferential, ModelcheckMatchesDirectCalls) {
  // seeds × cases ≥ 500 runs at the default seed set; each case also
  // re-queries an isomorphic copy, exercising cache-hit transport.
  Service service;
  std::uint64_t hit_checked = 0;
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng rng(seed);
    for (int i = 0; i < 50; ++i) {
      const int n = 2 + static_cast<int>(rng.below(6));
      const Graph g = random_connected_graph(n, 3, 1, rng);
      RandomFormulaOptions opts;
      opts.variant = Variant::MinusMinus;
      // kripke_from_graph(p, v) carries delta propositions (degrees).
      opts.num_props = g.max_degree();
      opts.max_depth = 2 + static_cast<int>(rng.below(2));
      const Formula phi = random_formula(rng, opts);

      const PortNumbering p = PortNumbering::identity(g);
      const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
      const Bitset direct = model_check_bits(k, phi);

      const std::string req = R"({"op": "modelcheck", "formula": )" +
                              json_quoted(phi.to_string()) +
                              R"(, "model": {"graph": )" + graph_json(g) +
                              R"(, "variant": "--"}})";
      const std::vector<int> served = holds_from_reply(service.handle_line(req));
      ASSERT_EQ(static_cast<int>(served.size()), n);
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(served[static_cast<std::size_t>(v)],
                  direct.test(static_cast<std::size_t>(v)) ? 1 : 0)
            << "state " << v << " seed " << seed << " case " << i;
      }

      // Isomorphic re-query: relabel the graph, ask again. The answer
      // comes out of the cache (same canonical certificate) and must
      // match a direct check on the relabelled structure.
      const std::vector<int> perm = canontest::random_permutation(n, rng);
      const Graph h = g.relabelled(perm);
      const KripkeModel kh =
          kripke_from_graph(PortNumbering::identity(h), Variant::MinusMinus);
      const Bitset direct_h = model_check_bits(kh, phi);
      const MemoCache::Stats before = service.cache().stats();
      const std::string req_h = R"({"op": "modelcheck", "formula": )" +
                                json_quoted(phi.to_string()) +
                                R"(, "model": {"graph": )" + graph_json(h) +
                                R"(, "variant": "--"}})";
      const std::vector<int> served_h =
          holds_from_reply(service.handle_line(req_h));
      const MemoCache::Stats after = service.cache().stats();
      EXPECT_EQ(after.hits, before.hits + 1)
          << "isomorphic re-query missed the cache (seed " << seed << ")";
      ++hit_checked;
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(served_h[static_cast<std::size_t>(v)],
                  direct_h.test(static_cast<std::size_t>(v)) ? 1 : 0)
            << "transported state " << v << " seed " << seed << " case " << i;
      }
    }
  }
  EXPECT_GT(hit_checked, 0u);
}

TEST(ServeDifferential, RunMatchesDirectExecution) {
  Service service;
  const std::vector<std::string> machines = {"degree-parity", "odd-odd",
                                             "even-degree", "port-one-parity"};
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const int n = 2 + static_cast<int>(rng.below(7));
      const Graph g = random_connected_graph(n, 3, 1, rng);
      const std::string machine =
          machines[rng.below(machines.size())];
      const auto sm = [&] {
        if (machine == "degree-parity") return degree_parity_machine();
        if (machine == "odd-odd") return odd_odd_machine();
        if (machine == "even-degree") return even_degree_machine();
        return port_one_parity_machine();
      }();
      const PortNumbering p = PortNumbering::identity(g);
      const ExecutionResult direct = execute(*sm, p);

      const std::string req = R"({"op": "run", "machine": )" +
                              json_quoted(machine) + R"(, "graph": )" +
                              graph_json(g) + "}";
      const Json j = parse_json(service.handle_line(req));
      ASSERT_TRUE(j.find("ok")->as_bool()) << machine << " seed " << seed;
      const Json* result = j.find("result");
      EXPECT_EQ(result->find("stopped")->as_bool(), direct.stopped);
      EXPECT_EQ(result->find("rounds")->as_int(), direct.rounds);
      if (direct.stopped) {
        const std::vector<int> expected = direct.outputs_as_ints();
        const auto& served = result->find("outputs")->items();
        ASSERT_EQ(static_cast<int>(served.size()), n);
        for (int v = 0; v < n; ++v) {
          EXPECT_EQ(served[static_cast<std::size_t>(v)].as_int(),
                    expected[static_cast<std::size_t>(v)])
              << machine << " node " << v << " seed " << seed;
        }
      }
    }
  }
}

TEST(ServeDifferential, CanonMatchesDirectCanonicalForm) {
  Service service;
  for (const std::uint64_t seed : difftest::seeds_under_test()) {
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      const int n = 1 + static_cast<int>(rng.below(8));
      const Graph g = random_bounded_degree_graph(n, 3, 0.5, rng);
      const CanonicalForm direct = canonical_form(g);

      const std::string req = R"({"op": "canon", "kind": "graph", "graph": )" +
                              graph_json(g) + "}";
      const Json j = parse_json(service.handle_line(req));
      ASSERT_TRUE(j.find("ok")->as_bool()) << "seed " << seed;
      const Json* result = j.find("result");
      char expected_hash[17];
      std::snprintf(expected_hash, sizeof(expected_hash), "%016llx",
                    static_cast<unsigned long long>(
                        certificate_hash(direct.certificate)));
      EXPECT_EQ(result->find("hash")->as_string(), expected_hash);
      EXPECT_EQ(result->find("certificate_bytes")->as_int(),
                static_cast<long long>(direct.certificate.size()));
      const auto& lab = result->find("labelling")->items();
      ASSERT_EQ(lab.size(), direct.labelling.size());
      for (std::size_t v = 0; v < lab.size(); ++v) {
        EXPECT_EQ(lab[v].as_int(), direct.labelling[v]);
      }
    }
  }
}

TEST(ServeDifferential, ClassifyMatchesDirectAnalysis) {
  Service service;
  // classify runs a |Y|^n output scan per request — keep the inputs
  // tiny and the case count low; the endpoint's caching and transport
  // are independent of problem size.
  const Graph g = path_graph(3);
  const ProblemPtr problem = degree_parity_problem();
  const PortNumbering p = PortNumbering::identity(g);
  const ScopedInstance inst = instance_for(*problem, p);
  const std::string req =
      R"({"op": "classify", "problem": "degree-parity", "graph": )" +
      graph_json(g) + "}";
  const Json j = parse_json(service.handle_line(req));
  ASSERT_TRUE(j.find("ok")->as_bool());
  const auto& classes = j.find("result")->find("classes")->items();
  const std::vector<ProblemClass> order = all_problem_classes();
  ASSERT_EQ(classes.size(), order.size());
  for (std::size_t c = 0; c < order.size(); ++c) {
    const SolvabilityReport direct =
        analyse_solvability({inst}, order[c], g.max_degree(), 8);
    EXPECT_EQ(classes[c].find("class")->as_string(),
              problem_class_name(order[c]));
    if (direct.min_rounds.has_value()) {
      EXPECT_EQ(classes[c].find("min_rounds")->as_int(), *direct.min_rounds);
    } else {
      EXPECT_TRUE(classes[c].find("min_rounds")->is_null());
    }
    EXPECT_EQ(classes[c].find("blocks")->as_int(), direct.blocks);
  }
}

// --- 4. Observability: metrics exposition, window deltas, access log --------

/// The exposition text out of a metrics reply.
std::string exposition_of(const std::string& reply) {
  const Json j = parse_json(reply);
  EXPECT_TRUE(j.find("ok")->as_bool()) << reply;
  EXPECT_EQ(j.find("result")->find("format")->as_string(),
            "prometheus-0.0.4");
  return j.find("result")->find("text")->as_string();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Looks up one sample value by its exact `name{labels}` prefix.
/// Returns "" when the series is absent (distinguishable from "0").
std::string sample_value(const std::string& text, const std::string& series) {
  for (const std::string& line : split_lines(text)) {
    if (line.size() > series.size() && line[series.size()] == ' ' &&
        line.compare(0, series.size(), series) == 0) {
      return line.substr(series.size() + 1);
    }
  }
  return "";
}

/// Text-format 0.0.4 grammar: a line is `# HELP`, `# TYPE`, or
/// `name[{label="value",...}] value` with a strtod-parsable (or +Inf)
/// value. Anything else is a scrape break.
bool valid_exposition_line(const std::string& line) {
  if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
    return true;
  }
  std::size_t pos = 0;
  auto name_char = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
  };
  while (pos < line.size() && name_char(line[pos])) ++pos;
  if (pos == 0) return false;
  if (pos < line.size() && line[pos] == '{') {
    const std::size_t close = line.find('}', pos);
    if (close == std::string::npos) return false;
    std::string inside = line.substr(pos + 1, close - pos - 1);
    std::size_t p = 0;
    while (p < inside.size()) {
      const std::size_t eq = inside.find("=\"", p);
      if (eq == std::string::npos) return false;
      const std::size_t endq = inside.find('"', eq + 2);
      if (endq == std::string::npos) return false;
      p = endq + 1;
      if (p < inside.size()) {
        if (inside[p] != ',') return false;
        ++p;
      }
    }
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  const std::string v = line.substr(pos + 1);
  if (v == "+Inf") return true;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  (void)parsed;
  return end == v.c_str() + v.size() && !v.empty();
}

TEST(ServeMetrics, ExpositionGoldenAtOneShard) {
#if defined(WM_OBS_DISABLED)
  GTEST_SKIP() << "observability compiled out";
#else
  // Counters and histograms are process-global; reset both so the
  // serve_* families below are byte-pinnable. shards=1 and a
  // single-threaded request sequence make every tally closed-form.
  obs::registry().reset();
  obs::histograms().reset();
  ServiceConfig cfg;
  cfg.cache_shards = 1;
  Service service(cfg);

  const std::string req_a =
      R"({"op": "run", "machine": "degree-parity", )"
      R"("graph": {"n": 3, "edges": [[0, 1], [1, 2]]}})";
  const std::string req_b =
      R"({"op": "run", "machine": "odd-odd", )"
      R"("graph": {"n": 2, "edges": [[0, 1]]}})";
  ASSERT_TRUE(parse_json(service.handle_line(req_a)).find("ok")->as_bool());
  ASSERT_TRUE(parse_json(service.handle_line(req_b)).find("ok")->as_bool());
  ASSERT_TRUE(parse_json(service.handle_line(req_a)).find("ok")->as_bool());

  const std::string text =
      exposition_of(service.handle_line(R"({"op": "metrics"})"));

  // 3 run requests (2 misses + 1 hit) and the metrics request itself —
  // which is counted *before* rendering so the scrape includes it.
  EXPECT_EQ(sample_value(text, R"(serve_requests_total{endpoint="run"})"),
            "3");
  EXPECT_EQ(sample_value(text, R"(serve_requests_total{endpoint="metrics"})"),
            "1");
  EXPECT_EQ(sample_value(text, R"(serve_cache_hits_total{endpoint="run"})"),
            "1");
  EXPECT_EQ(sample_value(text, R"(serve_cache_misses_total{endpoint="run"})"),
            "2");
  EXPECT_EQ(sample_value(text, "serve_cache_entries"), "2");
  EXPECT_EQ(sample_value(text, "serve_cache_capacity"), "4096");
  EXPECT_EQ(sample_value(text, "serve_cache_evictions_total"), "0");
  EXPECT_EQ(sample_value(text, "serve_cache_bypasses_total"), "0");
  EXPECT_EQ(
      sample_value(text,
                   R"(serve_request_duration_seconds_bucket{endpoint="run",le="+Inf"})"),
      "3");
  EXPECT_EQ(sample_value(
                text, R"(serve_request_duration_seconds_count{endpoint="run"})"),
            "3");
  EXPECT_EQ(sample_value(text, R"(wm_work_total{counter="serve.requests.run"})"),
            "3");
  EXPECT_NE(sample_value(text, "wm_window_seconds"), "");

  // Every line must clear the scrape grammar, and the run-endpoint
  // cumulative buckets must be monotone up to the +Inf total.
  std::uint64_t prev_bucket = 0;
  for (const std::string& line : split_lines(text)) {
    EXPECT_TRUE(valid_exposition_line(line)) << line;
    const std::string prefix =
        R"(serve_request_duration_seconds_bucket{endpoint="run",le=)";
    if (line.compare(0, prefix.size(), prefix) == 0) {
      const std::uint64_t cum = std::strtoull(
          line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
      EXPECT_GE(cum, prev_bucket) << line;
      EXPECT_LE(cum, 3u) << line;
      prev_bucket = cum;
    }
  }
  EXPECT_EQ(prev_bucket, 3u);  // the +Inf bucket equals _count
#endif
}

TEST(ServeMetrics, StatsWindowBracketsRequestBatchExactly) {
#if defined(WM_OBS_DISABLED)
  GTEST_SKIP() << "observability compiled out";
#else
  // Two stats polls bracket a known batch: each poll captures a window
  // snapshot, and since work counters are monotone, the difference of
  // the two polls' per-window run-request deltas is *exactly* the batch
  // size — regardless of wall clock or what ran before in this process.
  // The huge lookback pins both polls to the same base snapshot.
  ServiceConfig cfg;
  cfg.window_secs = 86400.0;
  Service service(cfg);

  auto run_delta = [&]() -> std::int64_t {
    const Json j = parse_json(service.handle_line(R"({"op": "stats"})"));
    EXPECT_TRUE(j.find("ok")->as_bool());
    const Json* window = j.find("result")->find("window");
    EXPECT_NE(window, nullptr);
    EXPECT_GE(window->find("captures")->as_int(), 1);
    const Json* work = window->find("work");
    EXPECT_NE(work, nullptr);
    const Json* runs = work->find("serve.requests.run");
    return runs != nullptr ? runs->as_int() : 0;
  };

  const std::int64_t before = run_delta();
  constexpr int kBatch = 5;
  for (int n = 2; n < 2 + kBatch; ++n) {
    std::string edges = "[";
    for (int v = 0; v + 1 < n; ++v) {
      if (v > 0) edges += ", ";
      edges += "[" + std::to_string(v) + ", " + std::to_string(v + 1) + "]";
    }
    edges += "]";
    const std::string req =
        R"({"op": "run", "machine": "degree-parity", "graph": {"n": )" +
        std::to_string(n) + R"(, "edges": )" + edges + "}}";
    ASSERT_TRUE(parse_json(service.handle_line(req)).find("ok")->as_bool());
  }
  const std::int64_t after = run_delta();
  EXPECT_EQ(after - before, kBatch);
#endif
}

TEST(ServeMetrics, ExpositionReconcilesWithStatsJson) {
#if defined(WM_OBS_DISABLED)
  GTEST_SKIP() << "observability compiled out";
#else
  // Quiesced state: no request of the compute endpoints lands between
  // the metrics scrape and the stats poll, so the exposition and the
  // JSON reply must agree exactly — same registries, same snapshots.
  Service service;
  for (const char* req :
       {R"({"op": "run", "machine": "odd-odd", )"
        R"("graph": {"n": 3, "edges": [[0, 1], [1, 2], [2, 0]]}})",
        R"({"op": "modelcheck", "formula": "<*,*> T", "model": )"
        R"({"variant": "--", "graph": {"n": 2, "edges": [[0, 1]]}}})",
        R"({"op": "canon", "kind": "graph", )"
        R"("graph": {"n": 2, "edges": [[0, 1]]}})",
        R"({"op": "classify", "problem": "degree-parity", )"
        R"("graph": {"n": 2, "edges": [[0, 1]]}})"}) {
    ASSERT_TRUE(parse_json(service.handle_line(req)).find("ok")->as_bool())
        << req;
  }
  const std::string text =
      exposition_of(service.handle_line(R"({"op": "metrics"})"));
  const Json stats =
      parse_json(service.handle_line(R"({"op": "stats"})"));
  const Json* result = stats.find("result");
  ASSERT_NE(result, nullptr);
  const Json* work = result->find("counters")->find("work");
  ASSERT_NE(work, nullptr);
  for (const char* ep : {"run", "modelcheck", "canon", "classify"}) {
    const Json* counter =
        work->find(std::string("serve.requests.") + ep);
    ASSERT_NE(counter, nullptr) << ep;
    EXPECT_EQ(sample_value(text, std::string("serve_requests_total{endpoint=\"") +
                                     ep + "\"}"),
              std::to_string(counter->as_int()))
        << ep;
  }
  const Json* cache = result->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(sample_value(text, "serve_cache_entries"),
            std::to_string(cache->find("entries")->as_int()));
  EXPECT_EQ(sample_value(text, "serve_cache_capacity"),
            std::to_string(cache->find("capacity")->as_int()));
  EXPECT_EQ(sample_value(text, "serve_cache_evictions_total"),
            std::to_string(cache->find("evictions")->as_int()));
  EXPECT_EQ(sample_value(text, "serve_cache_bypasses_total"),
            std::to_string(cache->find("bypasses")->as_int()));
#endif
}

TEST(ServeObsLog, AccessLogLinesCarryRequestContext) {
#if defined(WM_OBS_DISABLED)
  GTEST_SKIP() << "observability compiled out";
#else
  const char* path = "serve_access_log_test.jsonl";
  obs::log_open(path);
  Service service;
  const std::string req =
      R"({"op": "run", "machine": "odd-odd", )"
      R"("graph": {"n": 4, "edges": [[0, 1], [1, 2], [2, 3]]}})";
  service.handle_line(req);       // miss
  service.handle_line(req);       // hit
  service.handle_line("not json");
  obs::set_slow_threshold_ms(1e-6);  // everything is slow
  service.handle_line(R"({"op": "stats"})");
  obs::set_slow_threshold_ms(0);
  obs::log_close();

  std::vector<Json> requests;
  bool saw_slow = false;
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) {
      const Json j = parse_json(line);  // every log line is one object
      const std::string event = j.find("event")->as_string();
      if (event == "request") requests.push_back(parse_json(line));
      if (event == "slow_request") saw_slow = true;
    }
  }
  std::remove(path);

  ASSERT_EQ(requests.size(), 4u);
  std::int64_t prev_rid = 0;
  for (const Json& r : requests) {
    ASSERT_NE(r.find("rid"), nullptr);
    EXPECT_GT(r.find("rid")->as_int(), prev_rid);  // monotone per thread
    prev_rid = r.find("rid")->as_int();
    EXPECT_GE(r.find("ms")->as_double(), 0.0);
    EXPECT_GT(r.find("bytes_out")->as_int(), 0);
  }
  EXPECT_EQ(requests[0].find("op")->as_string(), "run");
  EXPECT_EQ(requests[0].find("cache")->as_string(), "miss");
  EXPECT_EQ(requests[0].find("status")->as_string(), "ok");
  EXPECT_NE(requests[0].find("key")->as_string(), "-");
  EXPECT_EQ(requests[1].find("cache")->as_string(), "hit");
  EXPECT_EQ(requests[1].find("key")->as_string(),
            requests[0].find("key")->as_string());
  EXPECT_EQ(requests[2].find("status")->as_string(), "error");
  EXPECT_EQ(requests[2].find("code")->as_string(), "parse_error");
  EXPECT_TRUE(saw_slow);
#endif
}

}  // namespace
}  // namespace wm::serve
