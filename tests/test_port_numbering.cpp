#include "port/port_numbering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace wm {
namespace {

TEST(PortNumbering, IdentityIsValidAndConsistent) {
  for (const Graph& g : {path_graph(4), cycle_graph(5), star_graph(3),
                         petersen_graph()}) {
    const PortNumbering p = PortNumbering::identity(g);
    EXPECT_TRUE(p.is_valid());
    EXPECT_TRUE(p.is_consistent());
  }
}

TEST(PortNumbering, ForwardBackwardInverse) {
  Rng rng(3);
  const Graph g = random_connected_graph(10, 4, 6, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  EXPECT_TRUE(p.is_valid());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int i = 1; i <= g.degree(v); ++i) {
      EXPECT_EQ(p.backward(p.forward({v, i})), (PortRef{v, i}));
      EXPECT_EQ(p.forward(p.backward({v, i})), (PortRef{v, i}));
    }
  }
}

TEST(PortNumbering, ForwardCoversAllNeighbours) {
  Rng rng(4);
  const Graph g = cycle_graph(6);
  const PortNumbering p = PortNumbering::random(g, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::set<NodeId> targets;
    for (int i = 1; i <= g.degree(v); ++i) {
      targets.insert(p.forward({v, i}).node);
    }
    const std::set<NodeId> expected(g.neighbours(v).begin(),
                                    g.neighbours(v).end());
    EXPECT_EQ(targets, expected);  // A(p) = A(G)
  }
}

TEST(PortNumbering, RandomConsistentIsConsistent) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 3, 4, rng);
    const PortNumbering p = PortNumbering::random_consistent(g, rng);
    EXPECT_TRUE(p.is_valid());
    EXPECT_TRUE(p.is_consistent());
  }
}

TEST(PortNumbering, RandomGeneralUsuallyInconsistent) {
  Rng rng(6);
  int inconsistent = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = cycle_graph(6);
    if (!PortNumbering::random(g, rng).is_consistent()) ++inconsistent;
  }
  EXPECT_GT(inconsistent, 10);
}

TEST(PortNumbering, OutAndInPortAccessors) {
  const Graph g = path_graph(3);  // 0-1-2
  const PortNumbering p = PortNumbering::identity(g);
  // Node 1 has neighbours {0, 2}; identity assigns ports in sorted order.
  EXPECT_EQ(p.out_port(1, 0), 1);
  EXPECT_EQ(p.out_port(1, 2), 2);
  EXPECT_EQ(p.in_port(1, 0), 1);
  EXPECT_EQ(p.out_neighbour(1, 2), 2);
  EXPECT_EQ(p.in_neighbour(1, 1), 0);
  EXPECT_THROW(p.out_port(0, 2), std::invalid_argument);
}

TEST(PortNumbering, FromPermutationsValidation) {
  const Graph g = path_graph(3);
  EXPECT_THROW(
      PortNumbering::from_permutations(g, {{1}, {1, 1}, {1}}, {{1}, {1, 2}, {1}}),
      std::invalid_argument);
  EXPECT_THROW(PortNumbering::from_permutations(g, {{1}}, {{1}}),
               std::invalid_argument);
}

TEST(PortNumbering, EnumerateConsistentCounts) {
  // A consistent numbering = independent permutation per node:
  // star k: centre k!, leaves 1 -> k! total.
  std::size_t count =
      for_each_consistent_port_numbering(star_graph(3), [](const PortNumbering& p) {
        EXPECT_TRUE(p.is_consistent());
        return true;
      });
  EXPECT_EQ(count, 6u);
  // Triangle: 2!^3 = 8.
  count = for_each_consistent_port_numbering(complete_graph(3),
                                             [](const PortNumbering&) { return true; });
  EXPECT_EQ(count, 8u);
}

TEST(PortNumbering, EnumerateGeneralCounts) {
  // General numberings: out x in permutations: star 3 -> (3!)^2 = 36.
  std::size_t count = for_each_port_numbering(star_graph(3), [](const PortNumbering& p) {
    EXPECT_TRUE(p.is_valid());
    return true;
  });
  EXPECT_EQ(count, 36u);
}

TEST(PortNumbering, EnumerationEarlyStop) {
  int seen = 0;
  for_each_port_numbering(complete_graph(3),
                          [&](const PortNumbering&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST(PortNumbering, SymmetricRegularStructure) {
  // Lemma 15 numbering: p((v,i)) = (f_i(v), i) — out-port i always lands
  // on in-port i.
  for (const Graph& g : {cycle_graph(5), petersen_graph(), fig9a_graph()}) {
    const PortNumbering p = PortNumbering::symmetric_regular(g);
    EXPECT_TRUE(p.is_valid());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (int i = 1; i <= g.degree(v); ++i) {
        EXPECT_EQ(p.forward({v, i}).index, i);
      }
    }
  }
}

TEST(PortNumbering, SymmetricRegularOnFig9aIsInconsistent) {
  // Lemma 16: a consistent symmetric numbering would force a 1-factor;
  // fig9a has none, so the Lemma 15 numbering must be inconsistent.
  const PortNumbering p = PortNumbering::symmetric_regular(fig9a_graph());
  EXPECT_FALSE(p.is_consistent());
}

TEST(PortNumbering, LocalTypesUnderConsistentNumbering) {
  const Graph g = star_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  // Leaves connect to distinct centre in-ports: their types differ.
  std::set<std::vector<int>> types;
  for (int leaf = 1; leaf <= 3; ++leaf) {
    types.insert(p.local_type(leaf, 3));
  }
  EXPECT_EQ(types.size(), 3u);
  // Centre type: out-port i of the centre lands on a leaf's only port (1).
  EXPECT_EQ(p.local_type(0, 3), (std::vector<int>{1, 1, 1}));
}

TEST(PortNumbering, Equality) {
  const Graph g = path_graph(3);
  EXPECT_EQ(PortNumbering::identity(g), PortNumbering::identity(g));
  Rng rng(8);
  const PortNumbering q = PortNumbering::random(g, rng);
  // Probably different from identity; just ensure == is callable/sane.
  EXPECT_EQ(q, q);
}

}  // namespace
}  // namespace wm
