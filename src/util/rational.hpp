// Exact rational arithmetic.
//
// Used by the maximal fractional edge-packing vertex-cover algorithm
// (Section 3.3 of the paper refers to the MB(1) 2-approximation of [3]);
// floating point would make "saturated" and "maximal" tests unsound.
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>

namespace wm {

class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  Rational(std::int64_t n, std::int64_t d);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational operator-() const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  bool is_zero() const { return num_ == 0; }
  bool is_negative() const { return num_ < 0; }
  /// Largest power of two 2^-k (k >= 0) that is <= *this; requires 0 < *this <= 1.
  Rational floor_to_pow2() const;

  static Rational min(const Rational& a, const Rational& b) {
    return a <= b ? a : b;
  }

  std::string to_string() const;
  double to_double() const { return static_cast<double>(num_) / static_cast<double>(den_); }

 private:
  void normalise();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace wm
