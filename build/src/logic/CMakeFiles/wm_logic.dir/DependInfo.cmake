
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/formula.cpp" "src/logic/CMakeFiles/wm_logic.dir/formula.cpp.o" "gcc" "src/logic/CMakeFiles/wm_logic.dir/formula.cpp.o.d"
  "/root/repo/src/logic/kripke.cpp" "src/logic/CMakeFiles/wm_logic.dir/kripke.cpp.o" "gcc" "src/logic/CMakeFiles/wm_logic.dir/kripke.cpp.o.d"
  "/root/repo/src/logic/model_checker.cpp" "src/logic/CMakeFiles/wm_logic.dir/model_checker.cpp.o" "gcc" "src/logic/CMakeFiles/wm_logic.dir/model_checker.cpp.o.d"
  "/root/repo/src/logic/parser.cpp" "src/logic/CMakeFiles/wm_logic.dir/parser.cpp.o" "gcc" "src/logic/CMakeFiles/wm_logic.dir/parser.cpp.o.d"
  "/root/repo/src/logic/random_formula.cpp" "src/logic/CMakeFiles/wm_logic.dir/random_formula.cpp.o" "gcc" "src/logic/CMakeFiles/wm_logic.dir/random_formula.cpp.o.d"
  "/root/repo/src/logic/simplify.cpp" "src/logic/CMakeFiles/wm_logic.dir/simplify.cpp.o" "gcc" "src/logic/CMakeFiles/wm_logic.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/port/CMakeFiles/wm_port.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
