#include "graph/double_cover.hpp"

#include <stdexcept>

namespace wm {

DoubleCover bipartite_double_cover(const Graph& g) {
  const int n = g.num_nodes();
  DoubleCover dc;
  dc.original_n = n;
  dc.graph = Graph(2 * n);
  dc.side.assign(static_cast<std::size_t>(2 * n), 0);
  for (int v = 0; v < n; ++v) dc.side[n + v] = 1;
  for (const Edge& e : g.edges()) {
    // Each undirected edge {u,v} lifts to two cover edges.
    dc.graph.add_edge(dc.copy(e.u, 1), dc.copy(e.v, 2));
    dc.graph.add_edge(dc.copy(e.v, 1), dc.copy(e.u, 2));
  }
  return dc;
}

std::vector<std::vector<Edge>> one_factorise_bipartite(
    const Graph& g, const std::vector<int>& side) {
  const int k = g.max_degree();
  if (!g.is_regular(k)) {
    throw std::invalid_argument("one_factorise_bipartite: graph not regular");
  }
  std::vector<std::vector<Edge>> factors;
  Graph rest = g;
  for (int round = 0; round < k; ++round) {
    const Matching m = hopcroft_karp(rest, side);
    if (matching_size(m) * 2 != g.num_nodes()) {
      throw std::logic_error(
          "one_factorise_bipartite: no perfect matching in regular bipartite "
          "remainder (violates König's theorem — graph was not bipartite?)");
    }
    std::vector<Edge> factor = matching_edges(m);
    factors.push_back(factor);
    // Remove the factor and continue with the (k-round-1)-regular rest.
    Graph next(rest.num_nodes());
    for (const Edge& e : rest.edges()) {
      if (m[e.u] != e.v) next.add_edge(e.u, e.v);
    }
    rest = next;
  }
  return factors;
}

std::vector<std::vector<NodeId>> regular_graph_factors(const Graph& g) {
  const int k = g.max_degree();
  if (!g.is_regular(k)) {
    throw std::invalid_argument("regular_graph_factors: graph not regular");
  }
  const DoubleCover dc = bipartite_double_cover(g);
  const auto factors = one_factorise_bipartite(dc.graph, dc.side);
  const int n = g.num_nodes();
  std::vector<std::vector<NodeId>> maps;
  maps.reserve(factors.size());
  for (const auto& factor : factors) {
    std::vector<NodeId> f(static_cast<std::size_t>(n), -1);
    for (const Edge& e : factor) {
      // Edge {(u,1),(v,2)} in the cover: u < n <= v by construction order,
      // but normalise via side lookup.
      const NodeId a = dc.side[e.u] == 0 ? e.u : e.v;   // the (.,1) copy
      const NodeId b = dc.side[e.u] == 0 ? e.v : e.u;   // the (.,2) copy
      f[dc.original(a)] = dc.original(b);
    }
    maps.push_back(std::move(f));
  }
  return maps;
}

}  // namespace wm
