// A guided tour of the paper's three separation results (Theorems 11, 13
// and 17), each presented as an executable Corollary 3 certificate:
//
//   1. exhibit (G, p) and a node set X,
//   2. show X is bisimilar in the Kripke view of the excluded class,
//   3. show every valid solution must split X,
//   4. run the positive-side algorithm in the stronger class.
//
//   ./separations_tour
#include <iostream>

#include "algorithms/machines.hpp"
#include "core/classification.hpp"
#include "runtime/engine.hpp"

namespace {

void present(const wm::SeparationWitness& w) {
  using namespace wm;
  std::cout << "== " << w.name << " ==\n";
  std::cout << "problem: " << w.problem->name() << "\n";
  std::cout << "graph: n=" << w.graph.num_nodes() << ", m="
            << w.graph.num_edges() << "\n";
  std::cout << "claim: problem in " << problem_class_name(w.solvable_in)
            << "(1) but NOT in " << problem_class_name(w.excluded_from)
            << "  (logic: " << logic_name_for(w.excluded_from) << " on "
            << variant_name(kripke_variant_for(w.excluded_from)) << ")\n";
  const SeparationCheck c = check_separation(w);
  std::cout << "  bisimilar node set X of size " << w.x.size() << ": "
            << (c.x_bisimilar ? "yes" : "NO") << "\n";
  std::cout << "  partition verified as bisimulation (B1-B3): "
            << (c.partition_is_bisim ? "yes" : "NO") << " ("
            << c.num_blocks << " block(s))\n";
  std::cout << "  every valid solution splits X (brute force): "
            << (c.solutions_split_x ? "yes" : "NO") << "\n";
  std::cout << "  => separation " << (c.holds() ? "HOLDS" : "FAILS") << "\n\n";
}

}  // namespace

int main() {
  using namespace wm;
  std::cout << "The linear order of Figure 5b:\n"
            << "  SB  <  MB = VB  <  SV = MV = VV  <  VVc\n\n";

  present(thm13_witness());
  {
    // Positive side of Theorem 13.
    const SeparationWitness w = thm13_witness();
    const auto r = execute(*odd_odd_machine(), w.numbering);
    std::cout << "  positive side: odd-odd machine ("
              << odd_odd_machine()->algebraic_class().name() << ") outputs:";
    for (int v : r.outputs_as_ints()) std::cout << ' ' << v;
    std::cout << " — valid: "
              << (w.problem->valid(w.graph, r.outputs_as_ints()) ? "yes" : "NO")
              << "\n\n";
  }

  present(thm11_witness(3));
  {
    const SeparationWitness w = thm11_witness(3);
    const auto r = execute(*leaf_picker_machine(), w.numbering);
    std::cout << "  positive side: leaf picker ("
              << leaf_picker_machine()->algebraic_class().name() << ") outputs:";
    for (int v : r.outputs_as_ints()) std::cout << ' ' << v;
    std::cout << " — valid: "
              << (w.problem->valid(w.graph, r.outputs_as_ints()) ? "yes" : "NO")
              << "\n\n";
  }

  present(thm17_witness(3));
  {
    const SeparationWitness w = thm17_witness(3);
    // Positive side needs a *consistent* numbering (class VVc).
    Rng rng(7);
    const PortNumbering cp = PortNumbering::random_consistent(w.graph, rng);
    const auto r = execute(*local_type_maximum_machine(3), cp);
    int ones = 0;
    for (int v : r.outputs_as_ints()) ones += v;
    std::cout << "  positive side: local-type algorithm under a consistent\n"
              << "  numbering outputs " << ones << " one(s) out of "
              << w.graph.num_nodes() << " — non-constant: "
              << (w.problem->valid(w.graph, r.outputs_as_ints()) ? "yes" : "NO")
              << "\n";
    // And under the symmetric numbering it *cannot* break symmetry.
    const auto rs = execute(*local_type_maximum_machine(3), w.numbering);
    bool constant = true;
    for (int v : rs.outputs_as_ints()) {
      if (v != rs.outputs_as_ints()[0]) constant = false;
    }
    std::cout << "  under the Lemma 15 symmetric numbering the same "
              << "algorithm's output is constant: "
              << (constant ? "yes" : "NO") << "\n";
  }
  return 0;
}
