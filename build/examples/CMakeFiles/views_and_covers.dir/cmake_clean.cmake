file(REMOVE_RECURSE
  "CMakeFiles/views_and_covers.dir/views_and_covers.cpp.o"
  "CMakeFiles/views_and_covers.dir/views_and_covers.cpp.o.d"
  "views_and_covers"
  "views_and_covers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/views_and_covers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
