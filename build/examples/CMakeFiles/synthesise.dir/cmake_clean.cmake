file(REMOVE_RECURSE
  "CMakeFiles/synthesise.dir/synthesise.cpp.o"
  "CMakeFiles/synthesise.dir/synthesise.cpp.o.d"
  "synthesise"
  "synthesise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
