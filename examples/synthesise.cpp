// Algorithm synthesis, end to end: pick a problem, a scope of
// port-numbered graphs and a class; the library decides solvability,
// extracts a modal formula from the refinement structure, compiles it
// via Theorem 2 into a distributed machine of that class, and runs the
// machine against the problem's verifier.
//
//   ./synthesise [--threads N]
//
// The colouring scan inside the decision procedure and the per-instance
// Kripke builds run on the task-parallel substrate; the lowest-witness
// contract of the scan makes the synthesised formula and machine —
// hence all output — identical at any --threads value.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/synthesis.hpp"
#include "graph/generators.hpp"
#include "logic/simplify.hpp"
#include "obs/env.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

void attempt(const char* label, const Problem& problem,
             const std::vector<PortNumbering>& scope, ProblemClass c,
             int rounds, ThreadPool* pool) {
  DecisionOptions opts;
  opts.rounds = rounds;
  opts.pool = pool;
  std::printf("== %s, class %s, rounds %s ==\n", label,
              problem_class_name(c).c_str(),
              rounds < 0 ? "any" : std::to_string(rounds).c_str());
  std::optional<SynthesisResult> result;
  try {
    result = synthesise_solution(problem, scope, c, opts);
  } catch (const DecisionBudgetError& e) {
    std::printf("  budget exceeded: %s\n\n", e.what());
    return;
  }
  if (!result) {
    std::printf("  UNSOLVABLE on this scope — no algorithm of this class "
                "exists.\n\n");
    return;
  }
  std::printf("  blocks: %d   Delta: %d   machine class: %s\n", result->blocks,
              result->delta, result->machine->algebraic_class().name().c_str());
  std::cout << "  formula: " << result->formula << "\n";
  int valid = 0;
  int max_rounds = 0;
  ExecutionContext ctx;  // reused scratch across the verification runs
  for (const PortNumbering& p : scope) {
    const auto r = execute(*result->machine, p, ctx);
    if (r.stopped && problem.valid(p.graph(), r.outputs_as_ints())) ++valid;
    max_rounds = std::max(max_rounds, r.rounds);
  }
  std::printf("  compiled machine verified on %d/%zu instances "
              "(%d rounds = md + 1)\n\n",
              valid, scope.size(), max_rounds);
}

}  // namespace

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) threads = std::atoi(argv[++i]);
    if (a.rfind("--threads=", 0) == 0) threads = std::atoi(a.c_str() + 10);
  }
  ThreadPool pool(threads);
  std::printf("##### Distributed algorithm synthesis #####\n\n");

  // Theorem 11's problem on star scopes.
  {
    std::vector<PortNumbering> scope;
    for (int k = 2; k <= 4; ++k) {
      scope.push_back(PortNumbering::identity(star_graph(k)));
    }
    const auto problem = leaf_in_star_problem();
    attempt("leaf-in-star on stars k=2..4", *problem, scope, ProblemClass::SV,
            1, &pool);
    attempt("leaf-in-star on stars k=2..4", *problem, scope, ProblemClass::VB,
            -1, &pool);
  }

  // Theorem 13's problem: a graded MB formula materialises; adding the
  // witness graph to the scope kills every SB attempt.
  {
    std::vector<PortNumbering> scope;
    for (const Graph& g : {path_graph(3), star_graph(3), cycle_graph(4),
                           complete_graph(4)}) {
      scope.push_back(PortNumbering::identity(g));
    }
    scope.push_back(thm13_witness().numbering);
    attempt("odd-odd incl. thm13 witness", *odd_odd_problem(), scope,
            ProblemClass::MB, 1, &pool);
    attempt("odd-odd incl. thm13 witness", *odd_odd_problem(), scope,
            ProblemClass::SB, -1, &pool);
  }

  // Section 3.1: MIS — synthesis fails on the symmetric cycle, succeeds
  // on an asymmetric path.
  {
    attempt("MIS on the symmetric consistent C6",
            *maximal_independent_set_problem(),
            {mis_cycle_witness(6).numbering}, ProblemClass::VVc, -1, &pool);
    attempt("MIS on the path P5", *maximal_independent_set_problem(),
            {PortNumbering::identity(path_graph(5))}, ProblemClass::VV, -1,
            &pool);
  }
  return 0;
}
