// Coherence of the classification layer (Table 3 both ways), an
// independent reference implementation of the execution engine
// cross-validated against the production engine, and Remark 1
// ("constant time" = per-Delta constant, independent of n).
#include <gtest/gtest.h>

#include "compile/extract.hpp"
#include "compile/formula_compiler.hpp"
#include "core/classification.hpp"
#include "graph/generators.hpp"
#include "logic/random_formula.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

TEST(Classification, MachineClassAndLogicAgree) {
  // machine_class_for(c) must equal the natural class of the class's
  // Kripke variant and gradedness — Table 3 read in both directions.
  for (const ProblemClass c : all_problem_classes()) {
    EXPECT_EQ(machine_class_for(c),
              natural_class_for(kripke_variant_for(c), graded_logic_for(c)))
        << problem_class_name(c);
    EXPECT_EQ(variant_for_class(machine_class_for(c)), kripke_variant_for(c))
        << problem_class_name(c);
  }
}

TEST(Classification, ContainmentLatticeProperties) {
  const std::vector<AlgebraicClass> classes = {
      AlgebraicClass::vector(),         AlgebraicClass::multiset(),
      AlgebraicClass::set(),            AlgebraicClass::vector_broadcast(),
      AlgebraicClass::multiset_broadcast(), AlgebraicClass::set_broadcast()};
  for (const auto& a : classes) {
    EXPECT_TRUE(a.contained_in(a));  // reflexive
    for (const auto& b : classes) {
      for (const auto& c : classes) {
        if (a.contained_in(b) && b.contained_in(c)) {
          EXPECT_TRUE(a.contained_in(c));  // transitive
        }
      }
      if (a.contained_in(b) && b.contained_in(a)) {
        EXPECT_TRUE(a == b);  // antisymmetric
      }
    }
  }
  // Figure 5a's trivial containments.
  EXPECT_TRUE(AlgebraicClass::set_broadcast().contained_in(
      AlgebraicClass::multiset_broadcast()));
  EXPECT_TRUE(AlgebraicClass::multiset_broadcast().contained_in(
      AlgebraicClass::vector()));
  EXPECT_TRUE(AlgebraicClass::set().contained_in(AlgebraicClass::vector()));
  EXPECT_FALSE(AlgebraicClass::vector().contained_in(AlgebraicClass::set()));
  EXPECT_FALSE(AlgebraicClass::vector_broadcast().contained_in(
      AlgebraicClass::set_broadcast()));
}

TEST(Classification, LinearOrderMatchesContainments) {
  // Lower linear-order level implies machine-class containment where the
  // paper's Figure 5a draws an edge (within the same send column).
  EXPECT_LE(linear_order_level(ProblemClass::SB),
            linear_order_level(ProblemClass::MB));
  EXPECT_LE(linear_order_level(ProblemClass::MB),
            linear_order_level(ProblemClass::MV));
  EXPECT_LE(linear_order_level(ProblemClass::SV),
            linear_order_level(ProblemClass::VVc));
}

/// An independent, deliberately naive re-implementation of the
/// synchronous engine (Section 1.3's equations, transcribed directly).
std::vector<Value> reference_execute(const StateMachine& m,
                                     const PortNumbering& p, int max_rounds) {
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  std::vector<Value> x(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) x[u] = m.init(g.degree(u));
  for (int t = 0; t < max_rounds; ++t) {
    bool all = true;
    for (NodeId u = 0; u < n; ++u) {
      if (!m.is_stopping(x[u])) all = false;
    }
    if (all) break;
    std::vector<Value> next(static_cast<std::size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
      if (m.is_stopping(x[u])) {
        next[u] = x[u];
        continue;
      }
      // a_{t+1}(u, i) = mu(x_t(v), j) with (v, j) = p^{-1}((u, i)).
      ValueVec a;
      for (int i = 1; i <= g.degree(u); ++i) {
        const PortRef src = p.backward({u, i});
        if (m.is_stopping(x[src.node])) {
          a.push_back(Value::unit());
        } else if (m.algebraic_class().send == SendMode::Broadcast) {
          a.push_back(m.message(x[src.node], 1));
        } else {
          a.push_back(m.message(x[src.node], src.index));
        }
      }
      Value inbox;
      switch (m.algebraic_class().receive) {
        case ReceiveMode::Vector: inbox = Value::tuple(a); break;
        case ReceiveMode::Multiset: inbox = Value::mset(a); break;
        case ReceiveMode::Set: inbox = Value::set(a); break;
      }
      next[u] = m.transition(x[u], inbox, g.degree(u));
    }
    x = std::move(next);
  }
  return x;
}

TEST(ReferenceEngine, AgreesWithProductionEngineOnCompiledMachines) {
  Rng frng(1);
  Rng grng(2);
  RandomFormulaOptions opts;
  opts.variant = Variant::MinusMinus;
  opts.graded = true;
  opts.max_depth = 3;
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(7, 3, 3, grng);
    opts.delta = g.max_degree();
    opts.num_props = g.max_degree();
    const Formula f = random_formula(frng, opts);
    const auto m = compile_formula(f, Variant::MinusMinus, g.max_degree());
    const PortNumbering p = PortNumbering::random(g, grng);
    const auto fast = execute(*m, p);
    const auto slow = reference_execute(*m, p, 64);
    EXPECT_EQ(fast.final_states, slow) << f.to_string();
  }
}

TEST(Remark1, CompiledRuntimeIndependentOfGraphSize) {
  // "Constant time" means constant for each fixed Delta: the same
  // compiled machine takes md+1 rounds on C4 and on C4000 alike.
  const Formula f = Formula::diamond(
      {0, 0}, Formula::diamond({0, 0}, Formula::prop(2), 2));
  const auto m = compile_formula(f, Variant::MinusMinus, 2);
  int expected = -1;
  for (const int n : {4, 40, 400}) {
    const auto r = execute(*m, PortNumbering::identity(cycle_graph(n)));
    ASSERT_TRUE(r.stopped);
    if (expected < 0) expected = r.rounds;
    EXPECT_EQ(r.rounds, expected) << n;
  }
  EXPECT_EQ(expected, f.modal_depth() + 1);
}

}  // namespace
}  // namespace wm
