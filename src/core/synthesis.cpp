#include "core/synthesis.hpp"

#include <stdexcept>

#include "bisim/distinguish.hpp"
#include "compile/formula_compiler.hpp"
#include "logic/simplify.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "runtime/combinators.hpp"
#include "util/visitor.hpp"

namespace wm {

namespace {

int common_delta(const std::vector<PortNumbering>& scope, int requested) {
  if (requested >= 0) return requested;
  int delta = 0;
  for (const PortNumbering& p : scope) {
    delta = std::max(delta, p.graph().max_degree());
  }
  return delta;
}

/// Rebuilds the joint model exactly as decide_solvable does (so block
/// ids line up with the returned colouring): per-instance builds run
/// through the visitor into index-ordered slots, the fold stays
/// sequential — state numbering is therefore thread-count-invariant.
KripkeModel joint_model(const std::vector<PortNumbering>& scope,
                        Variant variant, int delta, ThreadPool* pool) {
  std::vector<KripkeModel> parts(scope.size(), KripkeModel(0, 0));
  ParallelVisitor(pool).for_each(scope.size(), [&](std::uint64_t i) {
    parts[i] = kripke_from_graph(scope[i], variant, delta);
  });
  KripkeModel joint(0, 0);
  for (const KripkeModel& part : parts) {
    joint = KripkeModel::disjoint_union(joint, part);
  }
  return joint;
}

}  // namespace

std::optional<SynthesisResult> synthesise_solution(
    const Problem& problem, const std::vector<PortNumbering>& scope,
    ProblemClass c, const DecisionOptions& opts) {
  WM_TRACE_SCOPE("synthesis");
  WM_TIME_SCOPE("synthesis.solution");
  WM_COUNT(synthesis.calls);
  if (problem.output_alphabet() != std::vector<int>{0, 1}) {
    throw std::invalid_argument(
        "synthesise_solution: binary-output problems only");
  }
  const Decision decision = decide_solvable(problem, scope, c, opts);
  if (!decision.solvable) return std::nullopt;

  const Variant variant = kripke_variant_for(c);
  const bool graded = graded_logic_for(c);
  const int delta = common_delta(scope, opts.delta);

  const KripkeModel joint = joint_model(scope, variant, delta, opts.pool);
  const Partition part = graded
                             ? coarsest_graded_bisimulation(joint, opts.rounds)
                             : coarsest_bisimulation(joint, opts.rounds);
  const auto chi = characteristic_formulas(joint, opts.rounds, graded);

  // One characteristic formula per 1-coloured block (first member found).
  // (The heavy scan — decide_solvable's colouring search — publishes its
  // own "decision.scan" progress; this covers the extraction pass.)
  obs::ProgressTask progress("synthesis.blocks",
                             static_cast<std::uint64_t>(joint.num_states()));
  FormulaVec ones;
  std::vector<bool> taken(static_cast<std::size_t>(part.num_blocks), false);
  for (int v = 0; v < joint.num_states(); ++v) {
    progress.tick();
    const int b = part.block[v];
    if (decision.block_output[b] == 1 && !taken[b]) {
      taken[b] = true;
      ones.push_back(chi[v]);
    }
  }
  SynthesisResult result;
  result.formula = simplify(Formula::disj_all(std::move(ones)));
  result.blocks = decision.blocks;
  WM_COUNT_ADD(synthesis.blocks, decision.blocks);
  result.delta = delta;
  result.machine = compile_formula(result.formula, variant, delta,
                                   natural_class_for(variant, graded));
  return result;
}

std::optional<MultiSynthesisResult> synthesise_multivalued(
    const Problem& problem, const std::vector<PortNumbering>& scope,
    ProblemClass c, const DecisionOptions& opts) {
  WM_TRACE_SCOPE("synthesis.multivalued");
  WM_TIME_SCOPE("synthesis.multivalued");
  WM_COUNT(synthesis.calls);
  const Decision decision = decide_solvable(problem, scope, c, opts);
  if (!decision.solvable) return std::nullopt;

  const Variant variant = kripke_variant_for(c);
  const bool graded = graded_logic_for(c);
  const int delta = common_delta(scope, opts.delta);

  const KripkeModel joint = joint_model(scope, variant, delta, opts.pool);
  const Partition part = graded
                             ? coarsest_graded_bisimulation(joint, opts.rounds)
                             : coarsest_bisimulation(joint, opts.rounds);
  const auto chi = characteristic_formulas(joint, opts.rounds, graded);

  MultiSynthesisResult result;
  result.alphabet = problem.output_alphabet();
  result.blocks = decision.blocks;
  result.delta = delta;
  // One characteristic formula per block, grouped by assigned value.
  obs::ProgressTask progress("synthesis.blocks",
                             static_cast<std::uint64_t>(joint.num_states()));
  std::vector<FormulaVec> per_value(result.alphabet.size());
  std::vector<bool> taken(static_cast<std::size_t>(part.num_blocks), false);
  for (int v = 0; v < joint.num_states(); ++v) {
    progress.tick();
    const int b = part.block[v];
    if (taken[b]) continue;
    taken[b] = true;
    for (std::size_t i = 0; i < result.alphabet.size(); ++i) {
      if (decision.block_output[b] == result.alphabet[i]) {
        per_value[i].push_back(chi[v]);
      }
    }
  }
  std::vector<std::shared_ptr<const StateMachine>> components;
  const AlgebraicClass cls = natural_class_for(variant, graded);
  for (std::size_t i = 0; i < per_value.size(); ++i) {
    result.value_formulas.push_back(
        simplify(Formula::disj_all(std::move(per_value[i]))));
    components.push_back(
        compile_formula(result.value_formulas.back(), variant, delta, cls));
  }
  const std::vector<int> alphabet = result.alphabet;
  result.machine = product_machine(
      std::move(components), [alphabet](const ValueVec& outs) {
        for (std::size_t i = 0; i < outs.size(); ++i) {
          if (outs[i].is_int() && outs[i].as_int() == 1) {
            return Value::integer(alphabet[i]);
          }
        }
        return Value::integer(alphabet.empty() ? 0 : alphabet[0]);
      });
  return result;
}

}  // namespace wm
