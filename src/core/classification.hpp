// The classification layer: the seven problem classes of the paper, the
// machinery mapping them to machine classes / Kripke variants / logics
// (Table 3), and executable separation certificates (Corollary 3).
//
// The paper's main result (Figure 5b):
//
//   SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc
//
// Equalities are witnessed by the transformers in src/transform
// (Theorems 4, 8, 9); strict separations by the witnesses below
// (Theorems 11, 13, 17), each checked by the three-part recipe of
// Corollary 3: (1) the designated node set X is bisimilar in the right
// Kripke view, (2) the computed partition really is a bisimulation, and
// (3) every valid solution must split X (checked by brute force).
#pragma once

#include <string>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "logic/formula.hpp"
#include "port/port_numbering.hpp"
#include "problems/problem.hpp"
#include "runtime/state_machine.hpp"

namespace wm {

class ThreadPool;

enum class ProblemClass { SB, MB, VB, SV, MV, VV, VVc };

std::string problem_class_name(ProblemClass c);

/// All seven classes in the order of Figure 5b (weakest first).
std::vector<ProblemClass> all_problem_classes();

/// The machine class whose algorithms define the problem class.
AlgebraicClass machine_class_for(ProblemClass c);

/// The Kripke view the class's logic lives on (Theorem 2 / Table 3).
Variant kripke_variant_for(ProblemClass c);

/// Whether the capturing logic is graded (GML / GMML).
bool graded_logic_for(ProblemClass c);

/// The capturing logic's name: ML, GML, MML or GMML (Theorem 2).
std::string logic_name_for(ProblemClass c);

/// Rank in the linear order (1): SB=0 < MB=VB=1 < SV=MV=VV=2 < VVc=3.
int linear_order_level(ProblemClass c);

// --- Separation certificates (Corollary 3) ---------------------------------

struct SeparationWitness {
  std::string name;
  ProblemPtr problem;
  Graph graph;
  PortNumbering numbering;
  std::vector<NodeId> x;        // bisimilar nodes every solution must split
  ProblemClass solvable_in;     // the problem IS in this class (constant time)
  ProblemClass excluded_from;   // ... and NOT in this (general-time) class
};

struct SeparationCheck {
  bool x_bisimilar = false;        // X inside one refinement block
  bool partition_is_bisim = false; // B1-B3 verified for the partition
  bool solutions_split_x = false;  // brute-forced Corollary 3 premise
  int num_blocks = 0;

  bool holds() const {
    return x_bisimilar && partition_is_bisim && solutions_split_x;
  }
};

/// Runs the Corollary 3 recipe on a witness. A pool parallelises the
/// brute-force "every solution splits X" scan (part 3); the boolean
/// outcome is trivially thread-count-invariant.
SeparationCheck check_separation(const SeparationWitness& w,
                                 ThreadPool* pool = nullptr);

/// Theorem 11: leaf-in-star on the k-star (k >= 2), any port numbering —
/// the k leaves are bisimilar in K_{+,-}. Proves VB != SV.
SeparationWitness thm11_witness(int k);

/// Theorem 13: odd-odd-neighbours on the disjoint union of two
/// (3,2)-biregular graphs whose degree-3 nodes are bisimilar in K_{-,-}
/// but need different outputs. Proves SB != MB.
SeparationWitness thm13_witness();

/// Theorem 17: symmetry breaking on a class-G graph (k odd) under the
/// Lemma 15 symmetric (inconsistent) port numbering — all nodes bisimilar
/// in K_{+,+}. Proves VV != VVc. k = 3 gives the Figure 9 graph.
SeparationWitness thm17_witness(int k = 3);

/// Section 3.1's example separating ALL the weak models from stronger
/// ones (unique identifiers / randomisation): maximal independent set on
/// an even cycle with the consistent 2-edge-coloured port numbering.
/// All nodes are bisimilar in K_{+,+} even though the numbering is
/// consistent, so MIS is not even in VVc — while it is solvable in
/// Linial's LOCAL model. The witness's `solvable_in` field is set to VVc
/// only as a placeholder; the problem lies in none of the seven classes.
SeparationWitness mis_cycle_witness(int even_n = 4);

}  // namespace wm
