#include "core/synthesis.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

std::vector<PortNumbering> star_scope(int kmax) {
  std::vector<PortNumbering> scope;
  for (int k = 2; k <= kmax; ++k) {
    scope.push_back(PortNumbering::identity(star_graph(k)));
  }
  return scope;
}

/// The pipeline's end-to-end guarantee: the synthesised machine solves
/// the problem on every instance of the scope.
void expect_machine_solves(const SynthesisResult& result, const Problem& problem,
                           const std::vector<PortNumbering>& scope) {
  for (const PortNumbering& p : scope) {
    const auto r = execute(*result.machine, p);
    ASSERT_TRUE(r.stopped);
    EXPECT_TRUE(problem.valid(p.graph(), r.outputs_as_ints()))
        << result.formula.to_string();
  }
}

TEST(Synthesis, LeafInStarYieldsAnSvAlgorithm) {
  const auto problem = leaf_in_star_problem();
  const auto scope = star_scope(4);
  DecisionOptions opts;
  opts.rounds = 1;
  const auto result =
      synthesise_solution(*problem, scope, ProblemClass::SV, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->machine->algebraic_class(), AlgebraicClass::set());
  EXPECT_LE(result->formula.modal_depth(), 1);
  EXPECT_FALSE(result->formula.is_graded());
  expect_machine_solves(*result, *problem, scope);
}

TEST(Synthesis, LeafInStarImpossibleInBroadcastClasses) {
  const auto problem = leaf_in_star_problem();
  const auto scope = star_scope(4);
  for (const ProblemClass c : {ProblemClass::SB, ProblemClass::MB,
                               ProblemClass::VB}) {
    EXPECT_FALSE(synthesise_solution(*problem, scope, c).has_value());
  }
}

TEST(Synthesis, OddOddYieldsAGradedMbAlgorithm) {
  const auto problem = odd_odd_problem();
  std::vector<PortNumbering> scope;
  Rng rng(1);
  for (const Graph& g : {path_graph(3), path_graph(4), star_graph(3),
                         cycle_graph(4), complete_graph(4)}) {
    scope.push_back(PortNumbering::identity(g));
    scope.push_back(PortNumbering::random(g, rng));
  }
  DecisionOptions opts;
  opts.rounds = 1;
  const auto result =
      synthesise_solution(*problem, scope, ProblemClass::MB, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->machine->algebraic_class(),
            AlgebraicClass::multiset_broadcast());
  expect_machine_solves(*result, *problem, scope);
}

TEST(Synthesis, MisOnSymmetricCycleReturnsNullopt) {
  const SeparationWitness w = mis_cycle_witness(6);
  EXPECT_FALSE(synthesise_solution(*w.problem, {w.numbering},
                                   ProblemClass::VVc)
                   .has_value());
}

TEST(Synthesis, MisOnAsymmetricPathSynthesised) {
  // On a single asymmetric path instance, a VV formula picking an MIS
  // exists and the compiled machine produces one.
  const auto problem = maximal_independent_set_problem();
  const std::vector<PortNumbering> scope{PortNumbering::identity(path_graph(5))};
  const auto result = synthesise_solution(*problem, scope, ProblemClass::VV);
  ASSERT_TRUE(result.has_value());
  expect_machine_solves(*result, *problem, scope);
}

TEST(Synthesis, RejectsNonBinaryProblems) {
  const std::vector<PortNumbering> scope{PortNumbering::identity(path_graph(3))};
  EXPECT_THROW(synthesise_solution(*three_colouring_problem(), scope,
                                   ProblemClass::VV),
               std::invalid_argument);
}

TEST(Synthesis, FormulaMatchesMachineOnModelChecker) {
  // Internal consistency: model-checking the synthesised formula on each
  // instance equals running the synthesised machine.
  const auto problem = leaf_in_star_problem();
  const auto scope = star_scope(3);
  const auto result = synthesise_solution(*problem, scope, ProblemClass::MV);
  ASSERT_TRUE(result.has_value());
  for (const PortNumbering& p : scope) {
    const KripkeModel k =
        kripke_from_graph(p, kripke_variant_for(ProblemClass::MV),
                          result->delta);
    const auto truth = model_check(k, result->formula);
    const auto r = execute(*result->machine, p);
    for (int v = 0; v < p.graph().num_nodes(); ++v) {
      EXPECT_EQ(truth[v], r.final_states[v].as_int() == 1);
    }
  }
}

}  // namespace
}  // namespace wm
