# Empty dependencies file for wm_bisim.
# This may be replaced when dependencies are built.
