file(REMOVE_RECURSE
  "CMakeFiles/bench_thm8_overhead.dir/bench_thm8_overhead.cpp.o"
  "CMakeFiles/bench_thm8_overhead.dir/bench_thm8_overhead.cpp.o.d"
  "bench_thm8_overhead"
  "bench_thm8_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm8_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
