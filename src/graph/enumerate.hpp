// Exhaustive enumeration of small graphs.
//
// The paper's theorems quantify over *all* graphs (and all port
// numberings). The executable analogue checks small scopes exhaustively:
// this module streams every simple graph on n nodes (optionally connected,
// degree-bounded), and the separation benches search these for witnesses.
//
// All variants return the number of graphs actually passed to `fn`
// (including the one on which fn returned false, if any) — never the
// number of candidate edge sets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "store/census.hpp"

namespace wm {

class ThreadPool;

struct EnumerateOptions {
  bool connected_only = true;
  int max_degree = -1;      // -1 = unbounded
  int min_degree = 0;
};

/// Calls `fn` for every simple graph on n labelled nodes matching the
/// options, in increasing edge-mask order. Stops early if fn returns
/// false. Returns the number of graphs passed to fn. Intended for n <= 7
/// (2^21 candidate edge sets).
std::size_t enumerate_graphs(int n, const EnumerateOptions& opts,
                             const std::function<bool(const Graph&)>& fn);

/// Deduplicated-by-degree-refinement variant: skips graphs whose colour
/// refinement signature was already seen (a cheap, sound-for-our-purposes
/// symmetry reduction: bisimulation-based witnesses only depend on the
/// refinement classes). Visits strictly fewer graphs; the representative
/// of each signature class is the graph with the lowest edge mask.
std::size_t enumerate_graphs_modulo_refinement(
    int n, const EnumerateOptions& opts,
    const std::function<bool(const Graph&)>& fn);

/// Parallel enumeration over `pool`: partitions the edge-set space into
/// prefix chunks and streams the admissible graphs to per-thread
/// consumers — fn(g, worker) with worker in [0, pool.num_threads()),
/// stable per executing thread for the duration of the call, so consumers
/// can keep per-thread scratch without locking. Within one worker graphs
/// arrive in increasing edge-mask order; across workers the interleaving
/// is unspecified. If any consumer returns false, chunks not yet claimed
/// are cancelled (in-flight chunks finish), so with more than one thread
/// the return value may exceed the sequential early-stop count. With
/// pool.num_threads() == 1 this is exactly enumerate_graphs.
std::size_t enumerate_graphs_parallel(
    int n, const EnumerateOptions& opts, ThreadPool& pool,
    const std::function<bool(const Graph&, int worker)>& fn);

/// Deterministic parallel modulo-refinement enumeration. Discovery is
/// parallel — a lock-free signature -> minimum-edge-mask table built over
/// `pool` (util/visitor.hpp) — and the surviving representatives (lowest
/// mask per signature,
/// i.e. *the same graphs* the sequential variant picks) are then replayed
/// to `fn` sequentially in increasing mask order. Output is therefore
/// byte-identical at any thread count. Early stop (fn returning false)
/// halts the replay; the discovery pass always covers the full space.
std::size_t enumerate_graphs_modulo_refinement_parallel(
    int n, const EnumerateOptions& opts, ThreadPool& pool,
    const std::function<bool(const Graph&)>& fn);

/// Exact iso-free generation: visits exactly one representative per
/// isomorphism class (the graph with the lowest edge mask), deduplicated
/// by the complete canonical-form key of graph/canonical.hpp. Unlike the
/// refinement signature — which merges non-isomorphic regular graphs AND
/// splits isomorphism classes (its colour ids depend on vertex order) —
/// this key is exact, so the counts match OEIS A000088 / A001349: the
/// executable form of the paper's "all graphs in F(Delta)"
/// quantification.
std::size_t enumerate_graphs_modulo_iso(
    int n, const EnumerateOptions& opts,
    const std::function<bool(const Graph&)>& fn);

/// Deterministic parallel variant: per-candidate canonicalisation runs
/// on the pool into a lock-free certificate -> minimum-edge-mask table
/// (the lowest-witness contract), then the surviving representatives —
/// the same graphs the sequential variant picks — replay to `fn`
/// sequentially in increasing mask order. Byte-identical at any thread
/// count; early stop halts the replay only.
std::size_t enumerate_graphs_modulo_iso_parallel(
    int n, const EnumerateOptions& opts, ThreadPool& pool,
    const std::function<bool(const Graph&)>& fn);

/// The store/checkpoint kind tag for the census of (n, opts):
/// "graph-all-n6", "graph-conn-n6", with "-dmin<k>"/"-dmax<k>" suffixes
/// when degree bounds are set. Distinct option sets get distinct tags,
/// so resuming a census with changed options is a structured error
/// instead of a silently mixed store.
std::string graph_census_kind(int n, const EnumerateOptions& opts);

/// The edge-mask space of (n, opts) as a streaming census space for
/// store::run_census: count = 2^(n choose 2), classify(mask) = the
/// canonical certificate when the mask's graph is admissible, nullopt
/// otherwise. classify is pure and thread-safe.
store::CensusSpace graph_census_space(int n, const EnumerateOptions& opts);

/// Materialises the graph a census representative index denotes (the
/// inverse of graph_census_space's indexing).
Graph graph_from_census_index(int n, std::uint64_t mask);

/// Streaming sibling of enumerate_graphs_modulo_iso: scans the mask
/// space in fixed `batch`-sized frontiers through dedup_stream, so peak
/// memory is bounded by the batch's class count instead of the whole
/// family's. Within-batch duplicates are dropped here; cross-batch dedup
/// is delegated to `sink(cert, mask)`, which returns true iff the
/// certificate is globally fresh (e.g. CertStore::insert_fresh, or an
/// in-memory set in tests). Fresh representatives are materialised and
/// streamed to `fn` in increasing mask order; fn returning false stops
/// the whole scan at the next batch boundary. Returns the number of
/// graphs passed to fn. With a set-backed sink this visits exactly the
/// graphs enumerate_graphs_modulo_iso visits, in the same order, at any
/// thread count and any batch size.
std::size_t enumerate_graphs_modulo_iso_stream(
    int n, const EnumerateOptions& opts, ThreadPool* pool,
    std::uint64_t batch,
    const std::function<bool(const std::string&, std::uint64_t)>& sink,
    const std::function<bool(const Graph&)>& fn);

/// Colour-refinement (1-WL) signature: stable partition colours plus the
/// coloured-edge multiset, sorted. Exposed so tests can cross-check the
/// parallel and sequential enumerations. NOTE: a heuristic dedup key,
/// not an isomorphism key in either direction — colour ids are assigned
/// in first-seen vertex order, so relabelled copies of one graph can
/// sign apart, and all k-regular graphs on n nodes share one signature.
/// Use enumerate_graphs_modulo_iso / canonical_form for exact dedup.
std::vector<int> refinement_signature(const Graph& g);

}  // namespace wm
