#include "graph/enumerate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "graph/properties.hpp"

namespace wm {

namespace {

/// Colour-refinement (1-WL) signature: stable partition colours, sorted.
/// Graphs with equal signatures are indistinguishable to every anonymous
/// broadcast algorithm, so for witness searches one representative suffices.
std::vector<int> refinement_signature(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<int> colour(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) colour[v] = g.degree(v);
  for (int round = 0; round < n; ++round) {
    std::map<std::pair<int, std::vector<int>>, int> dict;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<int> nb;
      nb.reserve(g.neighbours(v).size());
      for (NodeId u : g.neighbours(v)) nb.push_back(colour[u]);
      std::sort(nb.begin(), nb.end());
      auto key = std::make_pair(colour[v], std::move(nb));
      auto [it, inserted] = dict.try_emplace(std::move(key), static_cast<int>(dict.size()));
      next[v] = it->second;
    }
    if (next == colour) break;
    colour = std::move(next);
  }
  // Signature = multiset of (colour, count of colour class) — plus the
  // multiset of coloured edges so different graphs rarely collide.
  std::vector<int> sig = colour;
  std::sort(sig.begin(), sig.end());
  for (const Edge& e : g.edges()) {
    const int a = std::min(colour[e.u], colour[e.v]);
    const int b = std::max(colour[e.u], colour[e.v]);
    sig.push_back(1000 + a * 100 + b);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

bool admissible(const Graph& g, const EnumerateOptions& opts) {
  if (opts.max_degree >= 0 && g.max_degree() > opts.max_degree) return false;
  if (g.min_degree() < opts.min_degree) return false;
  if (opts.connected_only && !is_connected(g)) return false;
  return true;
}

}  // namespace

std::size_t enumerate_graphs(int n, const EnumerateOptions& opts,
                             const std::function<bool(const Graph&)>& fn) {
  std::vector<Edge> all_edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) all_edges.push_back({u, v});
  }
  const std::size_t m = all_edges.size();
  std::size_t visited = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    Graph g(n);
    for (std::size_t i = 0; i < m; ++i) {
      if (mask & (1ULL << i)) g.add_edge(all_edges[i].u, all_edges[i].v);
    }
    if (!admissible(g, opts)) continue;
    ++visited;
    if (!fn(g)) break;
  }
  return visited;
}

std::size_t enumerate_graphs_modulo_refinement(
    int n, const EnumerateOptions& opts,
    const std::function<bool(const Graph&)>& fn) {
  std::set<std::vector<int>> seen;
  std::size_t visited = 0;
  enumerate_graphs(n, opts, [&](const Graph& g) {
    auto sig = refinement_signature(g);
    if (!seen.insert(std::move(sig)).second) return true;
    ++visited;
    return fn(g);
  });
  return visited;
}

}  // namespace wm
