#include "serve/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <set>
#include <utility>

#include "algorithms/machines.hpp"
#include "core/classification.hpp"
#include "core/solvability.hpp"
#include "graph/canonical.hpp"
#include "logic/model_checker.hpp"
#include "logic/parser.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/window.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace wm::serve {

namespace {

// Input bounds. The protocol exists to answer small-structure queries
// fast; anything past these limits deserves the batch binaries.
constexpr int kMaxNodes = 128;          // run / canon / derived Kripke
constexpr int kMaxClassifyNodes = 16;   // classify scans 2^n outputs
constexpr int kMaxStates = 2048;        // explicit Kripke models
constexpr int kMaxProps = 64;
constexpr int kMaxPort = 64;            // modality components
constexpr std::size_t kMaxEdges = 65536;
constexpr int kMaxTimeoutMs = 3600 * 1000;

/// Validation failure -> structured error reply. Not derived from
/// std::exception so the catch-all cannot shadow it by ordering.
struct RequestError {
  std::string code;
  std::string message;
};

/// Per-request facts the handlers report back for the access-log line:
/// cache outcome, cache-key digest, deadline state. Plain strings so the
/// whole struct is a no-op to fill when logging is disarmed.
struct RequestObs {
  const char* cache = "none";     // none | hit | miss
  std::string key;                // 16-hex digest of the cache key
  const char* deadline = "none";  // none | ok | expired
};

#if !defined(WM_OBS_DISABLED)
void bump_work(std::string_view name) {
  obs::registry().counter(name, obs::CounterKind::kWork).add(1);
}
void bump_info(std::string_view name) {
  obs::registry().counter(name, obs::CounterKind::kInfo).add(1);
}
#else
void bump_work(std::string_view) {}
void bump_info(std::string_view) {}
#endif

// --- Field access helpers ---------------------------------------------------

const Json& require_field(const Json& obj, std::string_view key) {
  const Json* f = obj.find(key);
  if (f == nullptr) {
    throw RequestError{"bad_request",
                       "missing field \"" + std::string(key) + "\""};
  }
  return *f;
}

std::string get_string(const Json& obj, std::string_view key) {
  const Json& f = require_field(obj, key);
  if (!f.is_string()) {
    throw RequestError{"bad_request",
                       "field \"" + std::string(key) + "\" must be a string"};
  }
  return f.as_string();
}

long long get_int(const Json& obj, std::string_view key, long long fallback,
                  long long lo, long long hi) {
  const Json* f = obj.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_int()) {
    throw RequestError{"bad_request", "field \"" + std::string(key) +
                                          "\" must be an integer"};
  }
  const long long v = f->as_int();
  if (v < lo || v > hi) {
    throw RequestError{"bad_request",
                       "field \"" + std::string(key) + "\" out of range [" +
                           std::to_string(lo) + ", " + std::to_string(hi) +
                           "]"};
  }
  return v;
}

// --- Structure parsing ------------------------------------------------------

Graph parse_graph(const Json& obj, int max_nodes) {
  const Json& gj = require_field(obj, "graph");
  if (!gj.is_object()) {
    throw RequestError{"bad_request", "field \"graph\" must be an object"};
  }
  const int n =
      static_cast<int>(get_int(gj, "n", -1, 0, max_nodes));
  if (n < 0) throw RequestError{"bad_request", "missing field \"n\""};
  const Json& ej = require_field(gj, "edges");
  if (!ej.is_array() || ej.items().size() > kMaxEdges) {
    throw RequestError{"bad_request",
                       "field \"edges\" must be an array (bounded)"};
  }
  std::vector<Edge> edges;
  std::set<std::pair<int, int>> seen;
  for (const Json& e : ej.items()) {
    if (!e.is_array() || e.items().size() != 2 || !e.items()[0].is_int() ||
        !e.items()[1].is_int()) {
      throw RequestError{"bad_request", "each edge must be [u, v]"};
    }
    const long long u = e.items()[0].as_int();
    const long long v = e.items()[1].as_int();
    if (u < 0 || v < 0 || u >= n || v >= n || u == v) {
      throw RequestError{"bad_request", "edge endpoints must be distinct ids "
                                        "in [0, n)"};
    }
    const int ui = static_cast<int>(u), vi = static_cast<int>(v);
    const std::pair<int, int> key{std::min(ui, vi), std::max(ui, vi)};
    if (!seen.insert(key).second) {
      throw RequestError{"bad_request", "duplicate edge"};
    }
    edges.push_back({key.first, key.second});
  }
  return Graph::from_edges(n, edges);
}

PortNumbering parse_numbering(const Json& obj, const Graph& g) {
  const Json* f = obj.find("numbering");
  std::string mode = "identity";
  if (f != nullptr) {
    if (!f->is_string()) {
      throw RequestError{"bad_request",
                         "field \"numbering\" must be a string"};
    }
    mode = f->as_string();
  }
  const auto seed = static_cast<std::uint64_t>(
      get_int(obj, "seed", 1, 0, std::numeric_limits<long long>::max()));
  if (mode == "identity") return PortNumbering::identity(g);
  if (mode == "random") {
    Rng rng(seed);
    return PortNumbering::random(g, rng);
  }
  if (mode == "consistent") {
    Rng rng(seed);
    return PortNumbering::random_consistent(g, rng);
  }
  if (mode == "symmetric") {
    if (g.num_nodes() == 0 || !g.is_regular(g.max_degree())) {
      throw RequestError{"unsupported",
                         "symmetric numbering requires a regular graph"};
    }
    return PortNumbering::symmetric_regular(g);
  }
  throw RequestError{"bad_request", "unknown numbering \"" + mode +
                                        "\" (identity | random | consistent "
                                        "| symmetric)"};
}

KripkeModel parse_kripke(const Json& obj) {
  // Two spellings: an explicit model, or K_{a,b}(G, p) derived from a
  // graph + variant + numbering.
  const Json& mj = require_field(obj, "model");
  if (!mj.is_object()) {
    throw RequestError{"bad_request", "field \"model\" must be an object"};
  }
  if (mj.find("graph") != nullptr) {
    const Graph g = parse_graph(mj, kMaxNodes);
    const PortNumbering p = parse_numbering(mj, g);
    const std::string vs = get_string(mj, "variant");
    Variant variant;
    if (vs == "++") {
      variant = Variant::PlusPlus;
    } else if (vs == "-+") {
      variant = Variant::MinusPlus;
    } else if (vs == "+-") {
      variant = Variant::PlusMinus;
    } else if (vs == "--") {
      variant = Variant::MinusMinus;
    } else {
      throw RequestError{"bad_request",
                         "unknown variant \"" + vs + "\" (++ | -+ | +- | --)"};
    }
    const int delta = static_cast<int>(
        get_int(mj, "delta", -1, g.max_degree(), kMaxPort));
    return kripke_from_graph(p, variant, delta);
  }
  const int states = static_cast<int>(get_int(mj, "states", -1, 0, kMaxStates));
  if (states < 0) throw RequestError{"bad_request", "missing field \"states\""};
  const int props = static_cast<int>(get_int(mj, "props", 0, 0, kMaxProps));
  KripkeModel k(states, props);
  if (const Json* ej = mj.find("edges")) {
    if (!ej->is_array() || ej->items().size() > kMaxEdges) {
      throw RequestError{"bad_request",
                         "field \"edges\" must be an array (bounded)"};
    }
    for (const Json& e : ej->items()) {
      if (!e.is_array() || e.items().size() != 4 ||
          !std::all_of(e.items().begin(), e.items().end(),
                       [](const Json& x) { return x.is_int(); })) {
        throw RequestError{"bad_request",
                           "each Kripke edge must be [in, out, from, to]"};
      }
      const long long in = e.items()[0].as_int();
      const long long out = e.items()[1].as_int();
      const long long from = e.items()[2].as_int();
      const long long to = e.items()[3].as_int();
      if (in < 0 || in > kMaxPort || out < 0 || out > kMaxPort || from < 0 ||
          from >= states || to < 0 || to >= states) {
        throw RequestError{"bad_request", "Kripke edge out of range"};
      }
      k.add_edge(Modality{static_cast<int>(in), static_cast<int>(out)},
                 static_cast<int>(from), static_cast<int>(to));
    }
  }
  if (const Json* vj = mj.find("valuation")) {
    if (!vj->is_array()) {
      throw RequestError{"bad_request", "field \"valuation\" must be an array"};
    }
    for (const Json& e : vj->items()) {
      if (!e.is_array() || e.items().size() != 2 || !e.items()[0].is_int() ||
          !e.items()[1].is_int()) {
        throw RequestError{"bad_request",
                           "each valuation entry must be [q, state]"};
      }
      const long long q = e.items()[0].as_int();
      const long long state = e.items()[1].as_int();
      if (q < 1 || q > props || state < 0 || state >= states) {
        throw RequestError{"bad_request", "valuation entry out of range"};
      }
      k.set_prop(static_cast<int>(q), static_cast<int>(state));
    }
  }
  return k;
}

// --- Name catalogues --------------------------------------------------------

ProblemPtr problem_by_name(const std::string& name) {
  if (name == "leaf-in-star") return leaf_in_star_problem();
  if (name == "odd-odd-neighbours") return odd_odd_problem();
  if (name == "symmetry-break-in-G") return symmetry_break_problem();
  if (name == "maximal-independent-set") {
    return maximal_independent_set_problem();
  }
  if (name == "vertex-3-colouring") return three_colouring_problem();
  if (name == "eulerian-decision") return eulerian_decision_problem();
  if (name == "approx-vertex-cover") return approx_vertex_cover_problem();
  if (name == "isolated-node-detection") return isolated_node_problem();
  if (name == "degree-parity") return degree_parity_problem();
  throw RequestError{"unknown_problem", "unknown problem \"" + name + "\""};
}

std::shared_ptr<const StateMachine> machine_by_name(const std::string& name,
                                                    int delta) {
  if (name == "leaf-picker") return leaf_picker_machine();
  if (name == "odd-odd") return odd_odd_machine();
  if (name == "local-type-maximum") {
    return local_type_maximum_machine(std::max(1, delta));
  }
  if (name == "isolated-detector") return isolated_detector_machine();
  if (name == "degree-parity") return degree_parity_machine();
  if (name == "vertex-cover-packing") return vertex_cover_packing_machine();
  if (name == "vertex-cover-packing-vb") {
    return vertex_cover_packing_vb_machine();
  }
  if (name == "even-degree") return even_degree_machine();
  if (name == "port-one-parity") return port_one_parity_machine();
  throw RequestError{"unknown_machine", "unknown machine \"" + name + "\""};
}

// --- Reply serialisation ----------------------------------------------------
// Fixed field order, `", "` / `": "` separators (the obs/manifest.cpp
// style) — the golden tests pin replies byte-for-byte.

std::string ints_json(const std::vector<int>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(v[i]);
  }
  out += "]";
  return out;
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string ok_reply(const std::string& op, const std::string& id_echo,
                     const std::string& result_body) {
  std::string out = "{\"ok\": true";
  if (!id_echo.empty()) {
    out += ", \"id\": ";
    out += id_echo;
  }
  out += ", \"op\": ";
  append_json_quoted(out, op);
  out += ", \"result\": ";
  out += result_body;
  out += "}";
  return out;
}

std::string error_reply(const std::string& op, const std::string& id_echo,
                        const std::string& code, const std::string& message) {
  bump_info("serve.errors");
  std::string out = "{\"ok\": false";
  if (!id_echo.empty()) {
    out += ", \"id\": ";
    out += id_echo;
  }
  out += ", \"op\": ";
  if (op.empty()) {
    out += "null";
  } else {
    append_json_quoted(out, op);
  }
  out += ", \"error\": {\"code\": ";
  append_json_quoted(out, code);
  out += ", \"message\": ";
  append_json_quoted(out, message);
  out += "}}";
  return out;
}

// --- Request parsing --------------------------------------------------------

void parse_envelope(const Json& j, Request& req, const ServiceConfig& cfg) {
  if (!j.is_object()) {
    throw RequestError{"bad_request", "request must be a JSON object"};
  }
  if (const Json* id = j.find("id")) {
    if (id->is_int()) {
      req.id_echo = std::to_string(id->as_int());
    } else if (id->is_string()) {
      req.id_echo = json_quoted(id->as_string());
    } else {
      throw RequestError{"bad_request",
                         "field \"id\" must be an integer or string"};
    }
  }
  const Json* op = j.find("op");
  if (op == nullptr || !op->is_string()) {
    throw RequestError{"bad_request", "missing string field \"op\""};
  }
  req.op = op->as_string();
  req.timeout_ms = static_cast<int>(
      get_int(j, "timeout_ms", cfg.default_timeout_ms, 0, kMaxTimeoutMs));
}

/// Fills `req` in place — the envelope lands before any payload
/// parsing, so error replies for malformed payloads still echo op/id.
void parse_request(const Json& j, const ServiceConfig& cfg, Request& req) {
  parse_envelope(j, req, cfg);
  if (req.op == "classify") {
    ClassifyRequest r;
    r.problem = get_string(j, "problem");
    (void)problem_by_name(r.problem);  // unknown_problem before any work
    const Graph g = parse_graph(j, kMaxClassifyNodes);
    r.numbering = parse_numbering(j, g);
    r.max_rounds = static_cast<int>(get_int(j, "max_rounds", 8, 1, 64));
    req.payload = std::move(r);
  } else if (req.op == "modelcheck") {
    ModelcheckRequest r;
    r.formula = parse_formula(get_string(j, "formula"));
    r.model = parse_kripke(j);
    if (r.formula.max_prop() > r.model.num_props()) {
      throw RequestError{"bad_formula",
                         "formula mentions q" +
                             std::to_string(r.formula.max_prop()) +
                             " but the model has " +
                             std::to_string(r.model.num_props()) +
                             " propositions"};
    }
    req.payload = std::move(r);
  } else if (req.op == "run") {
    RunRequest r;
    r.machine = get_string(j, "machine");
    const Graph g = parse_graph(j, kMaxNodes);
    (void)machine_by_name(r.machine, std::max(1, g.max_degree()));
    r.numbering = parse_numbering(j, g);
    r.max_rounds =
        static_cast<int>(get_int(j, "max_rounds", 1000, 1, 100000));
    req.payload = std::move(r);
  } else if (req.op == "canon") {
    CanonRequest r;
    r.kind = get_string(j, "kind");
    if (r.kind == "graph") {
      r.graph = parse_graph(j, kMaxNodes);
      r.input_encoding = "g;" + r.graph.to_string();
    } else if (r.kind == "pn") {
      const Graph g = parse_graph(j, kMaxNodes);
      r.numbering = parse_numbering(j, g);
      r.input_encoding = "p;" + r.numbering.to_string();
    } else if (r.kind == "kripke") {
      r.kripke = parse_kripke(j);
      r.input_encoding = "k;" + r.kripke.to_string();
    } else {
      throw RequestError{"bad_request", "unknown kind \"" + r.kind +
                                            "\" (graph | pn | kripke)"};
    }
    req.payload = std::move(r);
  } else if (req.op == "stats") {
    req.payload = StatsRequest{};
  } else if (req.op == "metrics") {
    req.payload = MetricsRequest{};
  } else {
    throw RequestError{"unknown_op", "unknown op \"" + req.op + "\""};
  }
}

// --- Endpoint handlers ------------------------------------------------------
// Each handler returns the *result body*; the caller wraps the envelope.
// Cache-key soundness per endpoint is argued in DESIGN.md "Serving and
// the memo-cache": blobs are stored in canonical coordinates and keys
// carry the full certificate (not merely its 64-bit hash), so hash
// collisions degrade to probe steps, never to wrong answers.

void count_cache_outcome(const char* op, bool hit, RequestObs& robs) {
  std::string name = hit ? "serve.cache_hits." : "serve.cache_misses.";
  name += op;
  bump_work(name);
  robs.cache = hit ? "hit" : "miss";
}

std::string handle_classify(MemoCache& cache, const ClassifyRequest& r,
                            const CancelToken* cancel, RequestObs& robs) {
  WM_TIME_SCOPE("serve.classify");
  bump_work("serve.requests.classify");
  const Graph& g = r.numbering.graph();
  const int delta = g.max_degree();
  // The whole reply is isomorphism-invariant (class names, round counts,
  // block counts — no per-node data), so the blob is the result body
  // itself, keyed on the port numbering's complete certificate.
  std::string key = "classify\x1f" + r.problem + "\x1f" +
                    std::to_string(r.max_rounds) + "\x1f" +
                    canonical_certificate(r.numbering);
  robs.key = hash_hex(certificate_hash(key));
  const MemoCache::Result res = cache.get_or_compute(key, [&] {
    poll_cancel(cancel);
    const ProblemPtr problem = problem_by_name(r.problem);
    const ScopedInstance inst =
        instance_for(*problem, r.numbering, nullptr, cancel);
    std::string body = "{\"problem\": " + json_quoted(r.problem) +
                       ", \"n\": " + std::to_string(g.num_nodes()) +
                       ", \"delta\": " + std::to_string(delta) +
                       ", \"max_rounds\": " + std::to_string(r.max_rounds) +
                       ", \"classes\": [";
    bool first = true;
    for (const ProblemClass c : all_problem_classes()) {
      const SolvabilityReport rep = analyse_solvability(
          {inst}, c, delta, r.max_rounds, nullptr, cancel);
      if (!first) body += ", ";
      first = false;
      body += "{\"class\": " + json_quoted(problem_class_name(c)) +
              ", \"logic\": " + json_quoted(logic_name_for(c)) +
              ", \"min_rounds\": " +
              (rep.min_rounds ? std::to_string(*rep.min_rounds) : "null") +
              ", \"fixpoint_rounds\": " +
              std::to_string(rep.fixpoint_rounds) +
              ", \"blocks\": " + std::to_string(rep.blocks) + "}";
    }
    body += "]}";
    return body;
  });
  count_cache_outcome("classify", res.hit, robs);
  return res.value;
}

std::string handle_modelcheck(MemoCache& cache, const ModelcheckRequest& r,
                              const CancelToken* cancel, RequestObs& robs) {
  WM_TIME_SCOPE("serve.modelcheck");
  bump_work("serve.requests.modelcheck");
  const int n = r.model.num_states();
  // Key: normalised formula text + the model's complete certificate.
  // The blob holds the denotation in canonical coordinates — bit
  // labelling[v] speaks for state v — because denotations are definable
  // sets: every automorphism fixes them (the blob is well-defined) and
  // isomorphisms transport them (the blob is shareable). The querying
  // model's own labelling maps the blob back below.
  const CanonicalForm cf = canonical_form(r.model);
  std::string key =
      "modelcheck\x1f" + r.formula.to_string() + "\x1f" + cf.certificate;
  robs.key = hash_hex(certificate_hash(key));
  const MemoCache::Result res = cache.get_or_compute(key, [&] {
    poll_cancel(cancel);
    const Bitset bits = model_check_bits(r.model, r.formula);
    std::string blob(static_cast<std::size_t>(n), '0');
    for (int v = 0; v < n; ++v) {
      if (bits.test(static_cast<std::size_t>(v))) {
        blob[static_cast<std::size_t>(cf.labelling[v])] = '1';
      }
    }
    return blob;
  });
  count_cache_outcome("modelcheck", res.hit, robs);
  std::vector<int> holds(static_cast<std::size_t>(n), 0);
  int count = 0;
  for (int v = 0; v < n; ++v) {
    if (res.value.at(static_cast<std::size_t>(cf.labelling[v])) == '1') {
      holds[static_cast<std::size_t>(v)] = 1;
      ++count;
    }
  }
  return "{\"formula\": " + json_quoted(r.formula.to_string()) +
         ", \"states\": " + std::to_string(n) +
         ", \"count\": " + std::to_string(count) +
         ", \"holds\": " + ints_json(holds) + "}";
}

std::string handle_run(MemoCache& cache, const RunRequest& r,
                       const CancelToken* cancel, RequestObs& robs) {
  WM_TIME_SCOPE("serve.run");
  bump_work("serve.requests.run");
  const Graph& g = r.numbering.graph();
  const int n = g.num_nodes();
  // Anonymous deterministic machines are equivariant under
  // port-numbered-graph isomorphism, so outputs are transported exactly
  // like denotations; round counts and message totals are invariants.
  // Blob: "stopped rounds sent total max\n" + canonical-coordinate
  // outputs (empty when the run aborted at max_rounds).
  const CanonicalForm cf = canonical_form(r.numbering);
  std::string key = "run\x1f" + r.machine + "\x1f" +
                    std::to_string(r.max_rounds) + "\x1f" + cf.certificate;
  robs.key = hash_hex(certificate_hash(key));
  const MemoCache::Result res = cache.get_or_compute(key, [&] {
    poll_cancel(cancel);
    const auto machine = machine_by_name(r.machine, std::max(1, g.max_degree()));
    ExecutionContext ctx;  // one per request, never shared
    ExecutionOptions opts;
    opts.max_rounds = r.max_rounds;
    opts.cancel = cancel;
    const ExecutionResult er = execute(*machine, r.numbering, ctx, opts);
    std::string blob = std::string(er.stopped ? "1" : "0") + " " +
                       std::to_string(er.rounds) + " " +
                       std::to_string(er.stats.messages_sent) + " " +
                       std::to_string(er.stats.total_size) + " " +
                       std::to_string(er.stats.max_size) + "\n";
    if (er.stopped) {
      const std::vector<int> outputs = er.outputs_as_ints();
      std::vector<int> canon(outputs.size());
      for (int v = 0; v < n; ++v) {
        canon[static_cast<std::size_t>(cf.labelling[v])] =
            outputs[static_cast<std::size_t>(v)];
      }
      for (std::size_t i = 0; i < canon.size(); ++i) {
        if (i > 0) blob += ' ';
        blob += std::to_string(canon[i]);
      }
    }
    return blob;
  });
  count_cache_outcome("run", res.hit, robs);

  // Decode the blob and transport outputs back through this request's
  // own canonical labelling.
  const std::size_t nl = res.value.find('\n');
  bool stopped = false;
  long long rounds = 0, sent = 0, total = 0, max_size = 0;
  {
    int stopped_int = 0;
    std::sscanf(res.value.c_str(), "%d %lld %lld %lld %lld", &stopped_int,
                &rounds, &sent, &total, &max_size);
    stopped = stopped_int != 0;
  }
  std::string body = "{\"machine\": " + json_quoted(r.machine) +
                     ", \"stopped\": " + (stopped ? "true" : "false") +
                     ", \"rounds\": " + std::to_string(rounds) +
                     ", \"outputs\": ";
  if (stopped) {
    std::vector<int> canon;
    canon.reserve(static_cast<std::size_t>(n));
    {
      const char* s = res.value.c_str() + nl + 1;
      char* end = nullptr;
      for (int i = 0; i < n; ++i) {
        canon.push_back(static_cast<int>(std::strtol(s, &end, 10)));
        s = end;
      }
    }
    std::vector<int> outputs(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      outputs[static_cast<std::size_t>(v)] =
          canon[static_cast<std::size_t>(cf.labelling[v])];
    }
    body += ints_json(outputs);
  } else {
    body += "null";
  }
  body += ", \"messages\": {\"sent\": " + std::to_string(sent) +
          ", \"total_size\": " + std::to_string(total) +
          ", \"max_size\": " + std::to_string(max_size) + "}}";
  return body;
}

std::string handle_canon(MemoCache& cache, const CanonRequest& r,
                         const CancelToken* cancel, RequestObs& robs) {
  WM_TIME_SCOPE("serve.canon");
  bump_work("serve.requests.canon");
  // Computing the certificate IS the work here, so the key is the
  // normalised input encoding (exact-repeat cache) and the blob is the
  // result body — including the labelling, which is well-defined
  // because the key pins the input representation exactly.
  std::string key = "canon\x1f" + r.kind + "\x1f" + r.input_encoding;
  robs.key = hash_hex(certificate_hash(key));
  const MemoCache::Result res = cache.get_or_compute(key, [&] {
    poll_cancel(cancel);
    CanonicalForm cf;
    int n = 0;
    if (r.kind == "graph") {
      cf = canonical_form(r.graph);
      n = r.graph.num_nodes();
    } else if (r.kind == "pn") {
      cf = canonical_form(r.numbering);
      n = r.numbering.graph().num_nodes();
    } else {
      cf = canonical_form(r.kripke);
      n = r.kripke.num_states();
    }
    return "{\"kind\": " + json_quoted(r.kind) +
           ", \"n\": " + std::to_string(n) + ", \"hash\": " +
           json_quoted(hash_hex(certificate_hash(cf.certificate))) +
           ", \"certificate_bytes\": " +
           std::to_string(cf.certificate.size()) +
           ", \"labelling\": " + ints_json(cf.labelling) + "}";
  });
  count_cache_outcome("canon", res.hit, robs);
  return res.value;
}

/// The stats "window" section: what happened between the previous
/// window capture and this stats call. Every stats poll captures, so two
/// polls bracketing a request batch report the batch's exact work-counter
/// deltas (work counters are deterministic; rates and latency quantiles
/// remain info-kind telemetry).
std::string window_json(double window_secs) {
  obs::window().capture();
  const obs::WindowDelta wd = obs::window().delta(window_secs);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", wd.valid ? wd.seconds : 0.0);
  std::string out = "{\"seconds\": ";
  out += buf;
  out += ", \"captures\": " + std::to_string(obs::window().captures());
  std::uint64_t requests = 0;
  std::string work = "{";
  bool first = true;
  for (const auto& [key, value] : wd.work) {
    if (key.rfind("serve.", 0) != 0) continue;
    if (key.rfind("serve.requests.", 0) == 0) requests += value;
    if (!first) work += ", ";
    first = false;
    work += json_quoted(key) + ": " + std::to_string(value);
  }
  work += "}";
  out += ", \"requests\": " + std::to_string(requests);
  const double rps = wd.valid && wd.seconds > 0
                         ? static_cast<double>(requests) / wd.seconds
                         : 0.0;
  std::snprintf(buf, sizeof buf, "%.3f", rps);
  out += ", \"requests_per_sec\": ";
  out += buf;
  out += ", \"work\": " + work + "}";
  return out;
}

std::string handle_stats(const MemoCache& cache, const ServiceConfig& cfg) {
  WM_TIME_SCOPE("serve.stats");
  bump_work("serve.requests.stats");
  const MemoCache::Stats cs = cache.stats();
  return "{\"counters\": {\"work\": " +
         obs::counters_json(obs::CounterKind::kWork) +
         ", \"info\": " + obs::counters_json(obs::CounterKind::kInfo) +
         "}, \"timings\": " + obs::timings_json() +
         ", \"cache\": {\"entries\": " + std::to_string(cs.entries) +
         ", \"capacity\": " + std::to_string(cs.capacity) +
         ", \"hits\": " + std::to_string(cs.hits) +
         ", \"misses\": " + std::to_string(cs.misses) +
         ", \"evictions\": " + std::to_string(cs.evictions) +
         ", \"bypasses\": " + std::to_string(cs.bypasses) +
         "}, \"window\": " + window_json(cfg.window_secs) +
         ", \"manifest\": " + obs::manifest_json(cfg.threads) + "}";
}

std::string handle_metrics(const MemoCache& cache, const ServiceConfig& cfg) {
  WM_TIME_SCOPE("serve.metrics");
  // Bump before rendering so the exposition's serve_requests_total
  // includes this very request — scrape totals then match requests sent.
  bump_work("serve.requests.metrics");
  obs::window().capture();
  const std::string text =
      metrics_exposition(cache.stats(), cfg.window_secs);
  return "{\"format\": \"prometheus-0.0.4\", \"text\": " + json_quoted(text) +
         "}";
}

}  // namespace

Service::Service(const ServiceConfig& cfg)
    : cfg_(cfg), cache_(cfg.cache_capacity, cfg.cache_shards) {}

std::string Service::handle_line(std::string_view line) {
  WM_TIME_SCOPE("serve.request");
  // Request-id context: one monotone id per line, bound to this thread
  // for the whole handling frame so log lines and WM_TRACE spans emitted
  // underneath (engine, solvability, memo-cache) all carry it.
  const std::uint64_t rid = obs::next_request_id();
  obs::RequestIdScope rid_scope(rid);
  const auto begin = std::chrono::steady_clock::now();
  RequestObs robs;
  Request req;
  const char* status = "ok";
  std::string error_code;
  std::string reply;
  if (line.size() > cfg_.max_request_bytes) {
    status = "error";
    error_code = "oversized";
    reply = error_reply("", "", "oversized",
                        "request exceeds " +
                            std::to_string(cfg_.max_request_bytes) +
                            " bytes");
  } else {
    try {
      const Json j = parse_json(line);
      parse_request(j, cfg_, req);
      // The deadline token lives on this frame; drivers poll it at their
      // natural boundaries (util/cancel.hpp).
      std::unique_ptr<CancelToken> deadline;
      if (req.timeout_ms > 0) {
        deadline = std::make_unique<CancelToken>(
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(req.timeout_ms));
        robs.deadline = "ok";
      }
      const CancelToken* cancel = deadline.get();
      std::string body;
      if (const auto* r = std::get_if<ClassifyRequest>(&req.payload)) {
        body = handle_classify(cache_, *r, cancel, robs);
      } else if (const auto* r =
                     std::get_if<ModelcheckRequest>(&req.payload)) {
        body = handle_modelcheck(cache_, *r, cancel, robs);
      } else if (const auto* r = std::get_if<RunRequest>(&req.payload)) {
        body = handle_run(cache_, *r, cancel, robs);
      } else if (const auto* r = std::get_if<CanonRequest>(&req.payload)) {
        body = handle_canon(cache_, *r, cancel, robs);
      } else if (std::get_if<MetricsRequest>(&req.payload) != nullptr) {
        body = handle_metrics(cache_, cfg_);
      } else {
        body = handle_stats(cache_, cfg_);
      }
      reply = ok_reply(req.op, req.id_echo, body);
    } catch (const RequestError& e) {
      status = "error";
      error_code = e.code;
      reply = error_reply(req.op, req.id_echo, e.code, e.message);
    } catch (const JsonError& e) {
      status = "error";
      error_code = "parse_error";
      reply = error_reply(req.op, req.id_echo, "parse_error", e.what());
    } catch (const ParseError& e) {
      status = "error";
      error_code = "bad_formula";
      reply = error_reply(req.op, req.id_echo, "bad_formula", e.what());
    } catch (const CancelledError& e) {
      status = "error";
      error_code = "deadline";
      robs.deadline = "expired";
      reply = error_reply(req.op, req.id_echo, "deadline", e.what());
    } catch (const std::invalid_argument& e) {
      // instance_for's "no unique solution" family and kin: the request
      // was well-formed but asks for something the endpoint cannot do.
      status = "error";
      error_code = "unsupported";
      reply = error_reply(req.op, req.id_echo, "unsupported", e.what());
    } catch (const std::exception& e) {
      status = "error";
      error_code = "internal";
      reply = error_reply(req.op, req.id_echo, "internal", e.what());
    }
  }
  // Access log: one structured line per request when WM_LOG is armed,
  // plus a warning above the WM_SLOW_MS threshold. Everything below is
  // a relaxed load and an early return when logging is off.
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - begin)
          .count();
  if (obs::log_enabled(obs::LogLevel::kInfo)) {
    obs::LogEvent(obs::LogLevel::kInfo, "request")
        .str("op", req.op.empty() ? "?" : req.op)
        .str("cache", robs.cache)
        .str("key", robs.key.empty() ? "-" : robs.key)
        .str("deadline", robs.deadline)
        .str("status", status)
        .str("code", error_code.empty() ? "-" : error_code)
        .num("bytes_in", static_cast<std::int64_t>(line.size()))
        .num("bytes_out", static_cast<std::int64_t>(reply.size()))
        .dbl("ms", ms);
  }
  const double slow_ms = obs::slow_threshold_ms();
  if (slow_ms > 0 && ms >= slow_ms &&
      obs::log_enabled(obs::LogLevel::kWarn)) {
    obs::LogEvent(obs::LogLevel::kWarn, "slow_request")
        .str("op", req.op.empty() ? "?" : req.op)
        .str("cache", robs.cache)
        .str("status", status)
        .dbl("ms", ms)
        .dbl("threshold_ms", slow_ms);
  }
  return reply;
}

}  // namespace wm::serve
