#include "labelled/labelled.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "algorithms/machines.hpp"
#include "bisim/bisimulation.hpp"
#include "core/classification.hpp"
#include "cover/views.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

#include <set>
#include "labelled/leader_election.hpp"
#include "logic/model_checker.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

/// SBo machine over labelled graphs: broadcast own label, output 1 iff
/// some neighbour has label 1. Degree-oblivious init — this is exactly
/// the setting where Remark 2 says SBo becomes non-trivial.
LabelledLambdaMachine neighbour_has_one_machine() {
  LabelledLambdaMachine m;
  m.cls = AlgebraicClass::set_broadcast();
  m.init_fn = [](int, const Value& input) {
    return Value::pair(Value::str("w"), input);  // ignores the degree
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    return Value::boolean(inbox.contains(Value::integer(1)));
  };
  return m;
}

TEST(Labelled, ExecutionUsesInputs) {
  const Graph g = path_graph(4);
  const PortNumbering p = PortNumbering::identity(g);
  const std::vector<Value> inputs{Value::integer(1), Value::integer(0),
                                  Value::integer(0), Value::integer(0)};
  const auto r = execute_labelled(neighbour_has_one_machine(), p, inputs);
  ASSERT_TRUE(r.stopped);
  // Only node 1 is adjacent to the label-1 node 0.
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 0, 0}));
}

TEST(Labelled, InputCountValidated) {
  const Graph g = path_graph(3);
  EXPECT_THROW(execute_labelled(neighbour_has_one_machine(),
                                PortNumbering::identity(g),
                                {Value::integer(0)}),
               std::invalid_argument);
}

TEST(Labelled, IgnoreLabelsAdapterMatchesUnlabelledRun) {
  Rng rng(1);
  const Graph g = random_connected_graph(8, 3, 3, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const auto lifted = ignore_labels(odd_odd_machine());
  const std::vector<Value> inputs(static_cast<std::size_t>(g.num_nodes()),
                                  Value::str("whatever"));
  const auto r1 = execute_labelled(*lifted, p, inputs);
  const auto r2 = execute(*odd_odd_machine(), p);
  EXPECT_EQ(r1.final_states, r2.final_states);
  EXPECT_EQ(r1.rounds, r2.rounds);
}

TEST(Labelled, KripkeWithLabelPropositions) {
  const Graph g = path_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const std::vector<int> labels{1, 0, 1};
  const KripkeModel k =
      kripke_from_labelled_graph(p, Variant::MinusMinus, labels, 2);
  const int delta = g.max_degree();
  // Degree props survive; label props live above them.
  EXPECT_TRUE(k.prop_holds(1, 0));               // deg(0) = 1
  EXPECT_TRUE(k.prop_holds(delta + 1 + 1, 0));   // label 1 at node 0
  EXPECT_TRUE(k.prop_holds(delta + 1 + 0, 1));   // label 0 at node 1
  EXPECT_FALSE(k.prop_holds(delta + 1 + 1, 1));
  // "my label is 1 and some neighbour's label is 1" is expressible.
  const Formula psi = Formula::conj(
      Formula::prop(delta + 2),
      Formula::diamond({0, 0}, Formula::prop(delta + 2)));
  const auto truth = model_check(k, psi);
  EXPECT_EQ(truth, (std::vector<bool>{false, false, false}));
  const KripkeModel k2 =
      kripke_from_labelled_graph(p, Variant::MinusMinus, {1, 1, 0}, 2);
  const auto truth2 = model_check(k2, psi);
  EXPECT_EQ(truth2, (std::vector<bool>{true, true, false}));
}

TEST(Labelled, SeparationsTransferToLabelledGraphs) {
  // Section 3.4: a separation on unlabelled graphs is a separation on
  // labelled ones — with constant labels, the label propositions refine
  // nothing, so the bisimilarity half of every witness is unchanged.
  for (const auto& w : {thm13_witness(), thm11_witness(3)}) {
    const Variant variant = kripke_variant_for(w.excluded_from);
    const std::vector<int> labels(
        static_cast<std::size_t>(w.graph.num_nodes()), 0);
    const KripkeModel k =
        kripke_from_labelled_graph(w.numbering, variant, labels, 1);
    const Partition part = coarsest_bisimulation(k);
    for (std::size_t i = 1; i < w.x.size(); ++i) {
      EXPECT_TRUE(part.same_block(w.x[0], w.x[i])) << w.name;
    }
  }
}

TEST(Labelled, NonConstantLabelsCanBreakWitnesses) {
  // ... and with informative labels the same nodes become separable:
  // label the Theorem 13 witness nodes differently.
  const SeparationWitness w = thm13_witness();
  std::vector<int> labels(static_cast<std::size_t>(w.graph.num_nodes()), 0);
  labels[6] = 1;
  const KripkeModel k =
      kripke_from_labelled_graph(w.numbering, Variant::MinusMinus, labels, 2);
  const Partition part = coarsest_bisimulation(k);
  EXPECT_FALSE(part.same_block(0, 6));
}

// --- Leader election ---------------------------------------------------------

TEST(LeaderElection, SingleNode) {
  const Graph g(1);
  EXPECT_EQ(elect_leaders(PortNumbering::identity(g)), (std::vector<int>{1}));
}

TEST(LeaderElection, AsymmetricGraphsElectExactlyOne) {
  Rng rng(5);
  int asymmetric_seen = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(7, 3, 2, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto classes = view_classes(p);
    const int distinct =
        *std::max_element(classes.begin(), classes.end()) + 1;
    const auto leaders = elect_leaders(p);
    const int count = std::accumulate(leaders.begin(), leaders.end(), 0);
    if (distinct == g.num_nodes()) {
      ++asymmetric_seen;
      EXPECT_EQ(count, 1) << "all views distinct -> unique leader";
    }
    // In general the leaders are exactly the maximum view class.
    const auto vs = stable_views(p);
    const Value maxview = *std::max_element(vs.begin(), vs.end());
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(leaders[v] == 1, vs[v] == maxview);
    }
  }
  EXPECT_GT(asymmetric_seen, 5);  // the sweep hit genuinely asymmetric cases
}

TEST(LeaderElection, SymmetricGraphElectsEverybody) {
  // On a perfectly symmetric (G, p) every node is in the max view class:
  // leader election fails exactly as the impossibility theory dictates.
  const Graph g = cycle_graph(6);
  const PortNumbering p = PortNumbering::symmetric_regular(g);
  const auto leaders = elect_leaders(p);
  EXPECT_EQ(std::accumulate(leaders.begin(), leaders.end(), 0), 6);
}

TEST(LeaderElection, StarAlwaysElectsTheCentreOrAUniqueLeaf) {
  // On stars, the centre's view differs from every leaf's; leaves may
  // tie among themselves. With identity numbering all leaves look alike
  // EXCEPT for the in-port at the centre... which is invisible to the
  // leaf views of depth 0 but visible at depth >= 1 via the centre's
  // out-port tags. Exactly one node ends up maximal.
  for (int k : {2, 3, 5}) {
    const auto leaders = elect_leaders(PortNumbering::identity(star_graph(k)));
    EXPECT_EQ(std::accumulate(leaders.begin(), leaders.end(), 0), 1) << k;
  }
}

// --- Section 3.1 (a): greedy colouring with unique identifiers --------------

TEST(GreedyColouring, ProperColouringWithinDeltaPlusOne) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const Graph g = random_connected_graph(10, 4, 6, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto colours = greedy_colouring(p);
    EXPECT_TRUE(is_proper_colouring(g, colours, g.max_degree() + 1))
        << g.to_string();
  }
}

TEST(GreedyColouring, StructuredFamilies) {
  for (const Graph& g : {path_graph(7), cycle_graph(8), star_graph(5),
                         complete_graph(5), petersen_graph()}) {
    const PortNumbering p = PortNumbering::identity(g);
    const auto colours = greedy_colouring(p);
    EXPECT_TRUE(is_proper_colouring(g, colours, g.max_degree() + 1));
  }
  // Complete graphs need exactly Delta + 1 = n colours.
  const auto kcols = greedy_colouring(PortNumbering::identity(complete_graph(4)));
  std::set<int> distinct(kcols.begin(), kcols.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(GreedyColouring, IsolatedNodesGetColourOne) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto colours = greedy_colouring(PortNumbering::identity(g));
  EXPECT_EQ(colours[2], 1);
  EXPECT_NE(colours[0], colours[1]);
}

TEST(GreedyColouring, SolvesWhatAnonymousAlgorithmsCannot) {
  // 3-colouring the symmetric odd cycle is impossible anonymously (see
  // test_decision), but trivial with ids — the paper's point about the
  // strictly stronger models of Section 3.1.
  const Graph g = cycle_graph(5);
  const PortNumbering p = PortNumbering::symmetric_regular(g);
  const auto colours = greedy_colouring(p);
  EXPECT_TRUE(is_proper_colouring(g, colours, 3));
}

// --- Section 3.1: MIS is beyond all seven classes ---------------------------

TEST(MisWitness, MisNotInVVc) {
  for (int n : {4, 6, 8}) {
    const SeparationWitness w = mis_cycle_witness(n);
    ASSERT_TRUE(w.numbering.is_consistent());  // that's the point: even VVc
    const SeparationCheck c = check_separation(w);
    EXPECT_TRUE(c.x_bisimilar) << n;
    EXPECT_TRUE(c.partition_is_bisim) << n;
    EXPECT_TRUE(c.solutions_split_x) << n;
    EXPECT_EQ(c.num_blocks, 1);
  }
  EXPECT_THROW(mis_cycle_witness(5), std::invalid_argument);
}

TEST(MisWitness, MisSolvableWithLabels) {
  // With unique identifiers as local inputs (the stronger model of
  // Section 3.1a), a trivial greedy-by-id machine solves MIS — run a
  // 2-phase-per-wave algorithm: nodes whose id is a local maximum among
  // undecided neighbours join; neighbours of joined nodes leave.
  LabelledLambdaMachine m;
  m.cls = AlgebraicClass::multiset_broadcast();
  m.init_fn = [](int, const Value& input) {
    return Value::pair(Value::str("u"), input);  // undecided, with id
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) {
    return Value::pair(s.at(0), s.at(1));  // (status, id)
  };
  m.transition_fn = [](const Value& s, const Value& inbox, int) -> Value {
    const Value& my_id = s.at(1);
    bool neighbour_joined = false;
    bool local_max = true;
    for (const Value& msg : inbox.items()) {
      if (msg.is_unit()) continue;  // decided-out neighbour
      if (msg.at(0).as_str() == "in") neighbour_joined = true;
      if (msg.at(0).as_str() == "u" && msg.at(1) > my_id) local_max = false;
    }
    if (s.at(0).as_str() == "in") return Value::integer(1);
    if (neighbour_joined) return Value::integer(0);
    if (local_max) return Value::pair(Value::str("in"), my_id);
    return s;
  };
  Rng rng(9);
  const auto problem = maximal_independent_set_problem();
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_graph(9, 3, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    std::vector<Value> ids;
    for (int v = 0; v < g.num_nodes(); ++v) ids.push_back(Value::integer(v + 1));
    const auto r = execute_labelled(m, p, ids);
    ASSERT_TRUE(r.stopped);
    EXPECT_TRUE(problem->valid(g, r.outputs_as_ints())) << g.to_string();
  }
}

}  // namespace
}  // namespace wm
