// Regenerates the Section 3.3 application claim: a non-trivial graph
// problem — 2-approximate vertex cover — solvable without any port
// numbers (class MB), built from a VB algorithm plus the MB(1) = VB(1)
// collapse (Theorem 9).
//
// Table: per graph family, the approximation ratio of the distributed
// fractional-packing cover vs the exact branch-and-bound optimum, and
// the round count.
#include <cstdio>

#include "algorithms/machines.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"
#include "bench_util.hpp"

namespace {

using namespace wm;

void row(const char* name, const Graph& g, const StateMachine& m, Rng& rng) {
  WM_TIME_SCOPE("bench.vertex_cover.row");
  const PortNumbering p = PortNumbering::random(g, rng);
  const ExecutionResult r = execute(m, p);
  if (!r.stopped) {
    std::printf("%-22s DID NOT STOP\n", name);
    return;
  }
  const auto out = r.outputs_as_ints();
  int size = 0;
  for (int v : out) size += v;
  const int opt = minimum_vertex_cover_size(g);
  std::printf("%-22s %-5d %-5d %-6d %-6d %-8.3f %-7d %s\n", name,
              g.num_nodes(), g.num_edges(), opt, size,
              opt ? static_cast<double>(size) / opt : 1.0, r.rounds,
              is_vertex_cover(g, out) ? "cover" : "NOT A COVER");
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  std::printf("=== Section 3.3: 2-approx vertex cover in MB = VB ===\n\n");
  const auto mb = to_multiset_machine(vertex_cover_packing_vb_machine());
  std::printf("machine: VB fractional edge packing wrapped by Theorem 9 "
              "-> class %s\n\n",
              mb->algebraic_class().name().c_str());
  std::printf("%-22s %-5s %-5s %-6s %-6s %-8s %-7s %s\n", "graph", "n", "m",
              "OPT", "|C|", "ratio", "rounds", "check");
  Rng rng(7);
  row("path-12", path_graph(12), *mb, rng);
  row("cycle-12", cycle_graph(12), *mb, rng);
  row("star-12", star_graph(12), *mb, rng);
  row("complete-8", complete_graph(8), *mb, rng);
  row("petersen", petersen_graph(), *mb, rng);
  row("grid-4x4", grid_graph(4, 4), *mb, rng);
  row("hypercube-4", hypercube(4), *mb, rng);
  row("bipartite-5x5", complete_bipartite(5, 5), *mb, rng);
  row("fig9a", fig9a_graph(), *mb, rng);
  for (int i = 0; i < 5; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "random-16-d4 #%d", i);
    row(name, random_connected_graph(16, 4, 8, rng), *mb, rng);
  }
  std::printf("\nShape check (paper): ratio <= 2.000 on every instance;\n");
  std::printf("no port numbers consulted (Multiset∩Broadcast class).\n");
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("vertex_cover", 8, threads, wm_total.ms(), 0);
  return 0;
}
