#include "compile/formula_compiler.hpp"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace wm {

Formula desugar_boxes(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::True:
    case Formula::Kind::False:
    case Formula::Kind::Prop:
      return f;
    case Formula::Kind::Not:
      return Formula::negate(desugar_boxes(f.child()));
    case Formula::Kind::And:
      return Formula::conj(desugar_boxes(f.child(0)), desugar_boxes(f.child(1)));
    case Formula::Kind::Or:
      return Formula::disj(desugar_boxes(f.child(0)), desugar_boxes(f.child(1)));
    case Formula::Kind::Diamond:
      return Formula::diamond(f.modality(), desugar_boxes(f.child()), f.grade());
    case Formula::Kind::Box:
      return Formula::negate(Formula::diamond(
          f.modality(), Formula::negate(desugar_boxes(f.child())), 1));
  }
  return f;
}

AlgebraicClass natural_class_for(Variant variant, bool graded) {
  switch (variant) {
    case Variant::PlusPlus:
      return AlgebraicClass::vector();
    case Variant::MinusPlus:
      return graded ? AlgebraicClass::multiset() : AlgebraicClass::set();
    case Variant::PlusMinus:
      return AlgebraicClass::vector_broadcast();
    case Variant::MinusMinus:
      return graded ? AlgebraicClass::multiset_broadcast()
                    : AlgebraicClass::set_broadcast();
  }
  return AlgebraicClass::vector();
}

namespace {

constexpr std::int64_t kU = 2;  // the paper's "undefined" truth value

/// The machine of Theorem 2, Parts 1-2. One instance per (psi, Delta).
class FormulaMachine final : public StateMachine {
 public:
  FormulaMachine(Formula psi, Variant variant, int delta, AlgebraicClass cls)
      : psi_(desugar_boxes(psi)), variant_(variant), delta_(delta), cls_(cls) {
    if (!psi_.in_signature(variant, delta)) {
      throw std::invalid_argument(
          "compile_formula: formula not in the variant's signature");
    }
    validate_class();
    // Closure with children preceding parents.
    closure_ = subformula_closure(psi_);
    for (std::size_t i = 0; i < closure_.size(); ++i) {
      index_.emplace(closure_[i], static_cast<int>(i));
    }
    psi_idx_ = index_.at(psi_);
    // Message payload: truth values of all diamond children, in closure
    // order. (The paper restricts the message to D_j per port; sending
    // the union keeps the construction uniform and stays in-class.)
    for (std::size_t i = 0; i < closure_.size(); ++i) {
      if (closure_[i].kind() == Formula::Kind::Diamond) {
        const int child = index_.at(closure_[i].child());
        if (payload_slot_.try_emplace(child, static_cast<int>(payload_.size()))
                .second) {
          payload_.push_back(child);
        }
      }
    }
  }

  AlgebraicClass algebraic_class() const override { return cls_; }

  Value init(int degree) const override {
    std::vector<std::int64_t> vals(closure_.size(), kU);
    for (std::size_t i = 0; i < closure_.size(); ++i) {
      const Formula& f = closure_[i];
      switch (f.kind()) {
        case Formula::Kind::True:
          vals[i] = 1;
          break;
        case Formula::Kind::False:
          vals[i] = 0;
          break;
        case Formula::Kind::Prop:
          vals[i] = f.prop_id() == degree ? 1 : 0;
          break;
        case Formula::Kind::Not: {
          const std::int64_t c = vals[index_.at(f.child())];
          vals[i] = c == kU ? kU : 1 - c;
          break;
        }
        case Formula::Kind::And: {
          vals[i] = and3(vals[index_.at(f.child(0))], vals[index_.at(f.child(1))]);
          break;
        }
        case Formula::Kind::Or: {
          const std::int64_t a = vals[index_.at(f.child(0))];
          const std::int64_t b = vals[index_.at(f.child(1))];
          // or = ~( ~a & ~b ) with strict U-propagation.
          vals[i] = (a == kU || b == kU) ? kU : (a == 1 || b == 1 ? 1 : 0);
          break;
        }
        case Formula::Kind::Diamond:
          vals[i] = kU;  // resolved from round 1 messages onward
          break;
        case Formula::Kind::Box:
          throw std::logic_error("FormulaMachine: box not desugared");
      }
    }
    return encode(vals);
  }

  bool is_stopping(const Value& state) const override { return state.is_int(); }

  Value message(const Value& state, int port) const override {
    const ValueVec& vals = state.items();
    ValueVec payload_vals;
    payload_vals.reserve(payload_.size());
    for (int idx : payload_) payload_vals.push_back(vals[idx]);
    Value payload = Value::tuple(std::move(payload_vals));
    if (cls_.send == SendMode::Broadcast) return payload;
    return Value::pair(Value::integer(port), std::move(payload));
  }

  Value transition(const Value& state, const Value& inbox,
                   int degree) const override {
    const ValueVec& old_tuple = state.items();
    // Paper: if f(psi) != U the next state is the stopping state f(psi).
    if (old_tuple[psi_idx_].as_int() != kU) return old_tuple[psi_idx_];

    std::vector<std::int64_t> f(closure_.size());
    for (std::size_t i = 0; i < closure_.size(); ++i) f[i] = old_tuple[i].as_int();
    std::vector<std::int64_t> g = f;

    for (std::size_t i = 0; i < closure_.size(); ++i) {
      if (f[i] != kU) continue;  // rule (a): keep determined values
      const Formula& fla = closure_[i];
      switch (fla.kind()) {
        case Formula::Kind::Not: {
          const std::int64_t c = g[index_.at(fla.child())];
          g[i] = c == kU ? kU : 1 - c;
          break;
        }
        case Formula::Kind::And:
          g[i] = and3(g[index_.at(fla.child(0))], g[index_.at(fla.child(1))]);
          break;
        case Formula::Kind::Or: {
          const std::int64_t a = g[index_.at(fla.child(0))];
          const std::int64_t b = g[index_.at(fla.child(1))];
          g[i] = (a == kU || b == kU) ? kU : (a == 1 || b == 1 ? 1 : 0);
          break;
        }
        case Formula::Kind::Diamond: {
          const int child = index_.at(fla.child());
          // Rule (delta_3): gate on the *old* value of the child; by
          // synchrony the senders' tables are determined at the same
          // global round as ours.
          if (f[child] == kU) {
            g[i] = kU;
            break;
          }
          g[i] = eval_diamond(fla, child, inbox, degree) ? 1 : 0;
          break;
        }
        default:
          // True/False/Prop are never U after init.
          throw std::logic_error("FormulaMachine: undefined atom after init");
      }
    }
    std::vector<std::int64_t> out = std::move(g);
    return encode(out);
  }

 private:
  static std::int64_t and3(std::int64_t a, std::int64_t b) {
    if (a == 0 || b == 0) {
      // Paper's (delta_and): 0 only when both children are determined.
      return (a != kU && b != kU) ? 0 : kU;
    }
    if (a == kU || b == kU) return kU;
    return 1;
  }

  void validate_class() const {
    bool ok = false;
    switch (variant_) {
      case Variant::PlusPlus:
        ok = cls_ == AlgebraicClass::vector();
        break;
      case Variant::MinusPlus:
        ok = cls_ == AlgebraicClass::multiset() || cls_ == AlgebraicClass::set();
        break;
      case Variant::PlusMinus:
        ok = cls_ == AlgebraicClass::vector_broadcast();
        break;
      case Variant::MinusMinus:
        ok = cls_ == AlgebraicClass::multiset_broadcast() ||
             cls_ == AlgebraicClass::set_broadcast();
        break;
    }
    if (!ok) {
      throw std::invalid_argument(
          "compile_formula: class incompatible with Kripke variant");
    }
    if (cls_.receive == ReceiveMode::Set && psi_.is_graded()) {
      throw std::invalid_argument(
          "compile_formula: graded modalities need Multiset, not Set");
    }
  }

  bool eval_diamond(const Formula& fla, int child, const Value& inbox,
                    int degree) const {
    const Modality alpha = fla.modality();
    const int slot = payload_slot_.at(child);
    auto payload_true = [&](const Value& payload) {
      return payload.at(static_cast<std::size_t>(slot)).as_int() == 1;
    };
    switch (variant_) {
      case Variant::PlusPlus: {
        // inbox = Tuple by in-port. Modality (i, j).
        if (alpha.in > degree) return false;
        const Value& msg = inbox.at(static_cast<std::size_t>(alpha.in - 1));
        if (msg.is_unit()) return false;  // m0 from a stopped sender
        return msg.at(0).as_int() == alpha.out && payload_true(msg.at(1)) &&
               fla.grade() <= 1;
      }
      case Variant::PlusMinus: {
        if (alpha.in > degree) return false;
        const Value& msg = inbox.at(static_cast<std::size_t>(alpha.in - 1));
        if (msg.is_unit()) return false;
        return payload_true(msg) && fla.grade() <= 1;
      }
      case Variant::MinusPlus: {
        // inbox = MSet or Set of (tag, payload). Modality (*, j), grade k.
        int count = 0;
        for (const Value& msg : inbox.items()) {
          if (msg.is_unit()) continue;
          if (msg.at(0).as_int() == alpha.out && payload_true(msg.at(1))) ++count;
        }
        return count >= fla.grade();
      }
      case Variant::MinusMinus: {
        int count = 0;
        for (const Value& msg : inbox.items()) {
          if (msg.is_unit()) continue;
          if (payload_true(msg)) ++count;
        }
        return count >= fla.grade();
      }
    }
    return false;
  }

  Value encode(const std::vector<std::int64_t>& vals) const {
    ValueVec items;
    items.reserve(vals.size());
    for (std::int64_t v : vals) items.push_back(Value::integer(v));
    return Value::tuple(std::move(items));
  }

  Formula psi_;
  Variant variant_;
  int delta_;
  AlgebraicClass cls_;
  FormulaVec closure_;
  std::unordered_map<Formula, int> index_;
  std::unordered_map<int, int> payload_slot_;  // closure idx -> payload slot
  std::vector<int> payload_;                   // payload slot -> closure idx
  int psi_idx_ = 0;
};

}  // namespace

std::shared_ptr<const StateMachine> compile_formula(const Formula& psi,
                                                    Variant variant, int delta,
                                                    AlgebraicClass cls) {
  return std::make_shared<FormulaMachine>(psi, variant, delta, cls);
}

std::shared_ptr<const StateMachine> compile_formula(const Formula& psi,
                                                    Variant variant, int delta) {
  return compile_formula(psi, variant, delta,
                         natural_class_for(variant, desugar_boxes(psi).is_graded()));
}

}  // namespace wm
