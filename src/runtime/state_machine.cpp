#include "runtime/state_machine.hpp"

namespace wm {

std::string AlgebraicClass::name() const {
  const char* recv = receive == ReceiveMode::Vector     ? "Vector"
                     : receive == ReceiveMode::Multiset ? "Multiset"
                                                        : "Set";
  if (send == SendMode::Broadcast) {
    return std::string(recv) + "∩Broadcast";
  }
  return recv;
}

bool AlgebraicClass::contained_in(const AlgebraicClass& other) const {
  // Receive: Set ⊆ Multiset ⊆ Vector (a machine oblivious to order is in
  // particular a machine; the *class of machines* Set is a subset of
  // Multiset is a subset of Vector). Send: Broadcast ⊆ Ported.
  auto recv_rank = [](ReceiveMode m) {
    switch (m) {
      case ReceiveMode::Set: return 0;
      case ReceiveMode::Multiset: return 1;
      case ReceiveMode::Vector: return 2;
    }
    return 2;
  };
  const bool recv_ok = recv_rank(receive) <= recv_rank(other.receive);
  const bool send_ok =
      send == SendMode::Broadcast || other.send == SendMode::Ported;
  return recv_ok && send_ok;
}

}  // namespace wm
