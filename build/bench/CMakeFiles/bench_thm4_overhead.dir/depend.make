# Empty dependencies file for bench_thm4_overhead.
# This may be replaced when dependencies are built.
