
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/class_checker.cpp" "src/runtime/CMakeFiles/wm_runtime.dir/class_checker.cpp.o" "gcc" "src/runtime/CMakeFiles/wm_runtime.dir/class_checker.cpp.o.d"
  "/root/repo/src/runtime/combinators.cpp" "src/runtime/CMakeFiles/wm_runtime.dir/combinators.cpp.o" "gcc" "src/runtime/CMakeFiles/wm_runtime.dir/combinators.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/wm_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/wm_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/state_machine.cpp" "src/runtime/CMakeFiles/wm_runtime.dir/state_machine.cpp.o" "gcc" "src/runtime/CMakeFiles/wm_runtime.dir/state_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/port/CMakeFiles/wm_port.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
