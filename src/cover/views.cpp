#include "cover/views.hpp"

#include <map>
#include <unordered_map>

#include "obs/counters.hpp"

namespace wm {

namespace {

std::vector<Value> iterate_views(const PortNumbering& p, int depth,
                                 bool broadcast) {
  WM_COUNT(views.computed);
  WM_COUNT_ADD(views.rounds, depth);
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  std::vector<Value> cur(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) cur[v] = Value::integer(g.degree(v));
  for (int r = 1; r <= depth; ++r) {
    std::vector<Value> next(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      ValueVec kids;
      kids.reserve(static_cast<std::size_t>(g.degree(v)));
      for (int i = 1; i <= g.degree(v); ++i) {
        const PortRef src = p.backward({v, i});
        if (broadcast) {
          kids.push_back(cur[src.node]);
        } else {
          kids.push_back(Value::pair(Value::integer(src.index), cur[src.node]));
        }
      }
      const Value children =
          broadcast ? Value::mset(std::move(kids)) : Value::tuple(std::move(kids));
      next[v] = Value::pair(Value::integer(g.degree(v)), children);
    }
    // Intern: equal views of the same depth share one node, so deeper
    // comparisons short-circuit on pointer identity and the whole
    // computation stays O(depth * m) despite exponentially-sized trees.
    std::unordered_map<Value, Value> canon;
    for (NodeId v = 0; v < n; ++v) {
      auto [it, _] = canon.try_emplace(next[v], next[v]);
      next[v] = it->second;
    }
    cur = std::move(next);
  }
  return cur;
}

}  // namespace

std::vector<Value> views(const PortNumbering& p, int depth) {
  return iterate_views(p, depth, /*broadcast=*/false);
}

Value view_of(const PortNumbering& p, NodeId v, int depth) {
  return views(p, depth)[v];
}

std::vector<Value> stable_views(const PortNumbering& p) {
  const int n = p.graph().num_nodes();
  return views(p, n > 0 ? n - 1 : 0);
}

std::vector<int> view_classes(const PortNumbering& p) {
  const auto vs = stable_views(p);
  std::map<Value, int> dict;
  std::vector<int> out(vs.size());
  for (std::size_t v = 0; v < vs.size(); ++v) {
    auto [it, _] = dict.try_emplace(vs[v], static_cast<int>(dict.size()));
    out[v] = it->second;
  }
  return out;
}

std::vector<Value> broadcast_views(const PortNumbering& p, int depth) {
  return iterate_views(p, depth, /*broadcast=*/true);
}

Value broadcast_view_of(const PortNumbering& p, NodeId v, int depth) {
  return broadcast_views(p, depth)[v];
}

}  // namespace wm
