# Empty dependencies file for test_labelled.
# This may be replaced when dependencies are built.
