#include "obs/env.hpp"

#include <mutex>

#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace wm::obs {

void init_from_env() {
  // Explicitly once: the constituents each guard themselves, but a
  // binary that calls both init_from_env() and benchutil::parse_threads
  // (which calls it again) must not re-arm anything — in particular it
  // must not launch a second heartbeat thread or re-stamp the manifest
  // start clock. One guard here keeps that property independent of how
  // the constituents evolve.
  static std::once_flag once;
  std::call_once(once, [] {
    mark_process_start();
    trace_init_from_env();
    progress_init_from_env();
    log_init_from_env();
  });
}

}  // namespace wm::obs
