// Slow canonical-form sweeps (CTest label `slow`): the full n = 7
// enumeration — 2^21 edge sets — bucketed by canonical certificate,
// cross-validated against OEIS golden counts and the exhaustive
// isomorphism test.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "graph/canonical.hpp"
#include "graph/enumerate.hpp"
#include "graph/graph.hpp"
#include "graph/isomorphism.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

TEST(CanonicalSlow, SweepN7GoldenCountsAndCompleteness) {
  EnumerateOptions opts;
  opts.connected_only = false;
  // One pass over all 2^21 graphs: bucket by certificate, remember the
  // first (lowest-mask) member as representative plus one later member
  // per bucket for the within-bucket agreement check.
  std::map<std::string, std::pair<Graph, std::vector<Graph>>> buckets;
  enumerate_graphs(7, opts, [&](const Graph& g) {
    auto [it, fresh] = buckets.try_emplace(canonical_certificate(g),
                                           std::make_pair(g, std::vector<Graph>{}));
    if (!fresh && it->second.second.size() < 2) it->second.second.push_back(g);
    return true;
  });

  // Golden counts: A000088(7) = 1044 graphs up to isomorphism, of which
  // A001349(7) = 853 are connected.
  EXPECT_EQ(buckets.size(), 1044u);
  std::size_t connected = 0;
  for (const auto& [cert, bucket] : buckets) {
    if (is_connected(bucket.first)) ++connected;
  }
  EXPECT_EQ(connected, 853u);

  // Within-bucket agreement: sampled members really are isomorphic to
  // their representative, per the pre-existing exhaustive test (n = 7 is
  // below the canonical routing cutoff, so this is an independent check).
  for (const auto& [cert, bucket] : buckets) {
    for (const Graph& member : bucket.second) {
      const auto witness = find_isomorphism(bucket.first, member);
      ASSERT_TRUE(witness.has_value());
      ASSERT_TRUE(is_isomorphism(bucket.first, member, *witness));
    }
  }

  // Cross-bucket refutation: representatives of distinct certificates
  // are pairwise non-isomorphic. 1044 choose 2 exhaustive searches is
  // too slow; the degree-sequence prefilter inside find_isomorphism
  // rejects almost all pairs, so group by degree sequence first and only
  // run the search within groups.
  std::map<std::vector<int>, std::vector<const Graph*>> by_degseq;
  for (const auto& [cert, bucket] : buckets) {
    by_degseq[bucket.first.degree_sequence()].push_back(&bucket.first);
  }
  for (const auto& [seq, group] : by_degseq) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        ASSERT_FALSE(find_isomorphism(*group[i], *group[j]).has_value());
      }
    }
  }
}

TEST(CanonicalSlow, ModuloIsoEnumeratorMatchesSweep) {
  // The streaming enumerator must agree with the bucket count — and the
  // connected-only variant with A001349 directly.
  EnumerateOptions all;
  all.connected_only = false;
  std::size_t count = 0;
  enumerate_graphs_modulo_iso(7, all, [&](const Graph&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1044u);

  EnumerateOptions conn;
  conn.connected_only = true;
  count = 0;
  enumerate_graphs_modulo_iso(7, conn, [&](const Graph&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 853u);
}

}  // namespace
}  // namespace wm
