// The simulation theorems: constructive proofs of the class equalities.
//
//   Theorem 8: Vector -> Multiset, zero round overhead    (VV = MV)
//   Theorem 9: Broadcast -> Multiset∩Broadcast, zero      (VB = MB)
//   Theorem 4: Multiset -> Set, +2*Delta rounds           (MV = SV)
//
// Each transformer takes an arbitrary machine of the stronger class and
// returns a machine of the weaker class that produces *the same output*
// on every port-numbered graph (Theorem 8/9: identical output for some
// port numbering in the compatible family P_T, which is a valid output of
// the problem; Theorem 4: identical output to the source machine on the
// same (G, p)).
//
// The round overhead is 0 for Theorems 8/9 and exactly 2*Delta for
// Theorem 4; the price is message size (the open question of Section
// 5.4), which bench_thm8_overhead measures.
//
// The returned wrappers hold no per-run mutable state — every observer
// is a pure function of (state, inbox) — so one transformed machine may
// be executed on many graphs concurrently (the parallel certification in
// bench_fig5_hierarchy does exactly that).
#pragma once

#include <memory>

#include "runtime/state_machine.hpp"

namespace wm {

/// Theorem 8 (and 9): wraps a Vector-receive machine into a
/// Multiset-receive machine with the same send mode. Every outgoing
/// message is augmented with the sender's full per-port (resp. broadcast)
/// message history; the receiver sorts the histories lexicographically to
/// recover a message vector that is consistent with *some* port numbering
/// in the paper's compatible family P_t, round after round.
///
/// Precondition: a.algebraic_class().receive == Vector. The machine's
/// states must never be confused with the wrapper's tagged tuples (the
/// wrapper tags with the string "H"; any machine whose states are not
/// tuples headed by the Str "H" is safe).
std::shared_ptr<const StateMachine> to_multiset_machine(
    std::shared_ptr<const StateMachine> a);

/// Theorem 4: wraps a Multiset-receive, Ported-send machine into a
/// Set-receive machine. Runs the colour-refinement prologue C_Delta for
/// 2*Delta rounds (building the beta_t / B_t sequences of Section 5.1);
/// by Lemma 6 the keys (beta_{2Delta}(u), deg(u), pi(u, v)) of distinct
/// neighbours of v are then distinct, so tagging every simulated message
/// with its key makes the received *set* reconstruct the multiset.
///
/// `delta` is the family parameter (max degree the machine is built for).
/// Precondition: a.algebraic_class() == {Multiset, Ported}; states must
/// not be tuples headed by Str "C" or "S".
std::shared_ptr<const StateMachine> to_set_machine(
    std::shared_ptr<const StateMachine> a, int delta);

/// Remark 3: the composition Vector -> Multiset -> Set (VV = SV).
std::shared_ptr<const StateMachine> vector_to_set_machine(
    std::shared_ptr<const StateMachine> a, int delta);

}  // namespace wm
