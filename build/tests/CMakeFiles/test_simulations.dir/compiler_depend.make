# Empty compiler generated dependencies file for test_simulations.
# This may be replaced when dependencies are built.
