#include "cover/views.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bisim/bisimulation.hpp"
#include "graph/generators.hpp"
#include "logic/kripke.hpp"

namespace wm {
namespace {

TEST(Views, DepthZeroIsDegree) {
  const Graph g = star_graph(3);
  const auto vs = views(PortNumbering::identity(g), 0);
  EXPECT_EQ(vs[0], Value::integer(3));
  EXPECT_EQ(vs[1], Value::integer(1));
}

TEST(Views, DepthOneStructure) {
  // Path 0-1-2 with identity numbering: node 0's depth-1 view is
  // (1, ((1, 2))) — one in-port fed by node 1 via its out-port 1,
  // node 1 having degree 2.
  const Graph g = path_graph(3);
  const PortNumbering p = PortNumbering::identity(g);
  const Value v0 = view_of(p, 0, 1);
  EXPECT_EQ(v0,
            Value::pair(Value::integer(1),
                        Value::tuple({Value::pair(Value::integer(1),
                                                  Value::integer(2))})));
}

TEST(Views, PortNumbersBreakMirrorSymmetry) {
  // In the degree-only K_{-,-} world the path P5 folds by reflection
  // (0 ~ 4, 1 ~ 3), but full views SEE the port numbers: the identity
  // numbering is not reflection-invariant, so a VV algorithm can tell
  // the two endpoints apart — while broadcast views cannot.
  const Graph g = path_graph(5);
  const PortNumbering p = PortNumbering::identity(g);
  const auto vs = stable_views(p);
  EXPECT_NE(vs[0], vs[4]);
  EXPECT_NE(vs[0], vs[1]);
  const auto bv = broadcast_views(p, 4);
  EXPECT_EQ(bv[0], bv[4]);
  EXPECT_EQ(bv[1], bv[3]);
  EXPECT_NE(bv[0], bv[1]);
}

class ViewBisimEquivalence : public ::testing::TestWithParam<int> {};

// The central correspondence: depth-t views coincide exactly with
// t-round bounded bisimilarity in K_{+,+}.
TEST_P(ViewBisimEquivalence, ViewEqualityMatchesBoundedBisimulation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = random_connected_graph(9, 3, 4, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const KripkeModel k = kripke_from_graph(p, Variant::PlusPlus);
  for (int t = 0; t <= 5; ++t) {
    const auto vs = views(p, t);
    const Partition part = coarsest_bisimulation(k, t);
    for (int u = 0; u < g.num_nodes(); ++u) {
      for (int v = u + 1; v < g.num_nodes(); ++v) {
        EXPECT_EQ(vs[u] == vs[v], part.same_block(u, v))
            << "t=" << t << " u=" << u << " v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewBisimEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Views, StableViewClassesMatchFullBisimulation) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 3, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto classes = view_classes(p);
    const Partition part =
        coarsest_bisimulation(kripke_from_graph(p, Variant::PlusPlus));
    for (int u = 0; u < g.num_nodes(); ++u) {
      for (int v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(classes[u] == classes[v], part.same_block(u, v));
      }
    }
  }
}

TEST(Views, NorrisStabilisation) {
  // Equality at depth n-1 persists at depth n and n+5.
  Rng rng(11);
  const Graph g = random_connected_graph(8, 3, 3, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const int n = g.num_nodes();
  const auto base = views(p, n - 1);
  for (int extra : {1, 5}) {
    const auto deeper = views(p, n - 1 + extra);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(base[u] == base[v], deeper[u] == deeper[v]);
      }
    }
  }
}

TEST(Views, SymmetricRegularNumberingGivesOneViewClass) {
  for (const Graph& g : {cycle_graph(5), petersen_graph(), fig9a_graph()}) {
    const PortNumbering p = PortNumbering::symmetric_regular(g);
    const auto classes = view_classes(p);
    EXPECT_EQ(*std::max_element(classes.begin(), classes.end()), 0);
  }
}

TEST(Views, BroadcastViewsMatchGradedBisimulationOnKmm) {
  Rng rng(13);
  const Graph g = random_connected_graph(9, 3, 4, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus);
  for (int t = 0; t <= 4; ++t) {
    const auto vs = broadcast_views(p, t);
    const Partition part = coarsest_graded_bisimulation(k, t);
    for (int u = 0; u < g.num_nodes(); ++u) {
      for (int v = u + 1; v < g.num_nodes(); ++v) {
        EXPECT_EQ(vs[u] == vs[v], part.same_block(u, v)) << "t=" << t;
      }
    }
  }
}

TEST(Views, BroadcastViewsCoarserThanFullViews) {
  Rng rng(17);
  const Graph g = random_connected_graph(8, 3, 4, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const auto bv = broadcast_views(p, 4);
  const auto fv = views(p, 4);
  std::set<Value> b(bv.begin(), bv.end()), f(fv.begin(), fv.end());
  EXPECT_LE(b.size(), f.size());
}

TEST(Views, LargeSymmetricGraphIsFast) {
  // The interning keeps stable-view computation polynomial even though
  // view trees are exponentially large.
  const Graph g = cycle_graph(64);
  const PortNumbering p = PortNumbering::symmetric_regular(g);
  const auto classes = view_classes(p);
  EXPECT_EQ(*std::max_element(classes.begin(), classes.end()), 0);
}

}  // namespace
}  // namespace wm
