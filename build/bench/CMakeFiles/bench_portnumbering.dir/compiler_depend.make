# Empty compiler generated dependencies file for bench_portnumbering.
# This may be replaced when dependencies are built.
