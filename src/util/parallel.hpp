// Task-parallel substrate for the exhaustive searches.
//
// Every theorem-checking experiment quantifies over all graphs and all
// port numberings at small scopes, so the hot path is embarrassingly
// parallel. This module provides the one shared engine for it: a small
// work-stealing thread pool plus three data-parallel helpers —
// `parallel_for`, a chunked `parallel_reduce`, and a cancellable
// `parallel_find_first` whose result is *deterministic* (the witness with
// the lowest index), so early-stop searches stay reproducible regardless
// of thread timing.
//
// Concurrency contract: the pool never touches user state; the helpers
// invoke the supplied callable from several threads at once, so the
// callable must only mutate data it owns (per-index slots, per-worker
// scratch). Exceptions thrown by a callable cancel the remaining chunks
// and one of them is rethrown in the calling thread after all workers
// have drained.
//
// A pool of size 1 spawns no threads at all: every helper then runs
// inline in the calling thread, in index order — the sequential entry
// points of the layers above are thin wrappers around this case.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace wm {

/// Worker count used when a caller does not specify one: the WM_THREADS
/// environment variable if set and positive, else hardware concurrency,
/// else 1.
int default_thread_count();

/// Scheduling telemetry snapshot for one pool (ThreadPool::telemetry()).
/// All values are timing-dependent — they describe how the work was
/// scheduled, never how much work was done — and are mirrored into the
/// global `pool.*` info counters (obs/counters.hpp). Do not gate on them.
struct PoolTelemetry {
  /// Tasks executed per executor; slot 0 is the calling thread (tasks it
  /// drained on a single-executor pool), slots 1.. the spawned workers.
  std::vector<std::uint64_t> tasks_per_worker;
  std::uint64_t steal_attempts = 0;   // victim scans by idle workers
  std::uint64_t steal_successes = 0;  // scans that found a task
  std::uint64_t idle_wakeups = 0;     // times a worker slept on the cv
  std::uint64_t chunks_claimed = 0;   // cursor claims across all helpers
  std::uint64_t queue_high_water = 0; // deepest single deque seen
};

class ThreadPool {
 public:
  /// `threads` is the number of concurrent executors including the
  /// calling thread: the pool spawns `threads - 1` workers. 0 means
  /// default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of concurrent executors (>= 1, includes the calling thread).
  int num_threads() const { return executors_; }

  /// Enqueues a fire-and-forget task onto this worker's own deque when
  /// called from a pool thread, else onto the least-loaded deque. Idle
  /// workers steal from the back of other workers' deques. Tasks do not
  /// run on the calling thread; with num_threads() == 1 they run inside
  /// the next blocking helper call (or the destructor), which drains the
  /// queues.
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end), partitioned into chunks
  /// claimed in increasing order by all executors (the calling thread
  /// participates). Blocks until done; rethrows the first exception.
  /// `chunk` 0 picks a size aimed at ~8 chunks per executor.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(std::uint64_t)>& body,
                    std::uint64_t chunk = 0);

  /// Chunked variant: body(lo, hi, worker) with [lo, hi) a chunk and
  /// `worker` in [0, num_threads()) identifying the executor, stable for
  /// the duration of the call — use it to index per-thread scratch or
  /// per-thread consumers. Within one worker chunks arrive in increasing
  /// order; across workers the interleaving is unspecified.
  void parallel_chunks(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(std::uint64_t, std::uint64_t, int)>& body,
      std::uint64_t chunk = 0);

  /// Cancellable form of parallel_chunks: body returns false to cancel
  /// all chunks not yet claimed (chunks already running finish normally).
  /// Used by early-stopping enumerations.
  void parallel_chunks_until(
      std::uint64_t begin, std::uint64_t end,
      const std::function<bool(std::uint64_t, std::uint64_t, int)>& body,
      std::uint64_t chunk = 0);

  /// Chunked reduction: acc = combine(acc, map(i)) within each chunk,
  /// partials combined across chunks *in chunk order*, so the result is
  /// deterministic for any associative (not necessarily commutative)
  /// combine, at any thread count.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::uint64_t begin, std::uint64_t end, T identity,
                    Map&& map, Combine&& combine, std::uint64_t chunk = 0) {
    if (begin >= end) return identity;
    const std::uint64_t c = chunk_size(begin, end, chunk);
    const std::uint64_t nchunks = (end - begin + c - 1) / c;
    std::vector<T> partial(static_cast<std::size_t>(nchunks), identity);
    parallel_chunks(
        begin, end,
        [&](std::uint64_t lo, std::uint64_t hi, int) {
          const std::uint64_t ci = (lo - begin) / c;
          T acc = identity;
          for (std::uint64_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
          partial[static_cast<std::size_t>(ci)] = std::move(acc);
        },
        c);
    T acc = std::move(identity);
    for (T& p : partial) acc = combine(std::move(acc), std::move(p));
    return acc;
  }

  /// Cancellable early-stop search: the lowest i in [begin, end) with
  /// pred(i), or nullopt. Deterministic: chunks are claimed in increasing
  /// order and a chunk is skipped only once a strictly lower witness is
  /// already known, so the returned index never depends on thread timing.
  /// pred may run on indices above the returned witness (in-flight chunks
  /// are not interrupted mid-scan) but never on a lower one it would miss.
  std::optional<std::uint64_t> parallel_find_first(
      std::uint64_t begin, std::uint64_t end,
      const std::function<bool(std::uint64_t)>& pred,
      std::uint64_t chunk = 0);

  /// Scheduling counters accumulated since construction. Safe to call
  /// concurrently with running helpers (values are a consistent-enough
  /// monotone snapshot, not a linearised one).
  PoolTelemetry telemetry() const;

 private:
  struct Queue {
    std::deque<std::function<void()>> tasks;
  };

  std::uint64_t chunk_size(std::uint64_t begin, std::uint64_t end,
                           std::uint64_t requested) const;
  void worker_loop(int index);
  bool run_one_task();

  /// Shared driver for the chunked helpers: every executor claims chunks
  /// from an atomic cursor; returns when all chunks are done on all
  /// executors. `body(lo, hi, worker)` returns false to cancel remaining
  /// chunks.
  void run_chunked(
      std::uint64_t begin, std::uint64_t end, std::uint64_t chunk,
      const std::function<bool(std::uint64_t, std::uint64_t, int)>& body);

  int executors_ = 1;
  std::vector<std::thread> workers_;
  std::vector<Queue> queues_;  // one per spawned worker
  mutable std::mutex mu_;
  std::condition_variable cv_;        // workers: work available / stop
  std::condition_variable done_cv_;   // callers: job finished
  bool stop_ = false;

  // Telemetry. tasks_run_ / steal / idle / high-water are only mutated
  // under mu_ (the queue operations they describe already hold it);
  // chunks_claimed_ is on the lock-free cursor path, hence atomic.
  std::vector<std::uint64_t> tasks_run_;  // slot 0 = caller, 1.. = workers
  std::uint64_t steal_attempts_ = 0;
  std::uint64_t steal_successes_ = 0;
  std::uint64_t idle_wakeups_ = 0;
  std::uint64_t queue_high_water_ = 0;
  std::atomic<std::uint64_t> chunks_claimed_{0};
};

}  // namespace wm
