// wm_serve: the resident query daemon. Binds 127.0.0.1:<port> and
// answers newline-delimited JSON requests (classify / modelcheck / run /
// canon / stats / metrics) through the canonical-certificate memo-cache
// — see src/serve/protocol.hpp for the wire format and README.md
// "Serving" for client examples.
//
//   wm_serve [--port P] [--threads N] [--cache-capacity C]
//            [--timeout-ms T] [--window-secs S] [--print-port]
//
// Observability: WM_LOG=<file|stderr> arms one structured access-log
// line per request (WM_SLOW_MS adds slow-request warnings), the
// `metrics` endpoint serves Prometheus text exposition for tools/wm_top
// or a scraper, and --window-secs sets the lookback of the windowed
// rate/latency families (default 60).
//
// SIGTERM/SIGINT drain: stop accepting, finish every request whose
// bytes have arrived, reply, exit 0. --print-port writes the bound port
// (useful with --port 0) to stdout as the single line "port <P>" and
// flushes, so harnesses can wait for readiness.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <unistd.h>

#include "obs/env.hpp"
#include "serve/server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &b, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--threads N] [--cache-capacity C] "
               "[--timeout-ms T] [--window-secs S] [--print-port]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  wm::serve::ServerConfig cfg;
  bool print_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_int = [&](long long lo, long long hi) -> long long {
      if (i + 1 >= argc) std::exit(usage(argv[0]));
      const long long v = std::atoll(argv[++i]);
      if (v < lo || v > hi) std::exit(usage(argv[0]));
      return v;
    };
    if (a == "--port") {
      cfg.port = static_cast<int>(next_int(0, 65535));
    } else if (a == "--threads") {
      cfg.service.threads = static_cast<int>(next_int(1, 256));
    } else if (a == "--cache-capacity") {
      cfg.service.cache_capacity =
          static_cast<std::size_t>(next_int(1, 1 << 24));
    } else if (a == "--timeout-ms") {
      cfg.service.default_timeout_ms = static_cast<int>(next_int(0, 3600000));
    } else if (a == "--window-secs") {
      cfg.service.window_secs = static_cast<double>(next_int(1, 86400));
    } else if (a == "--print-port") {
      print_port = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "wm_serve: pipe() failed\n");
    return 1;
  }
  // Handlers only write a byte; the watcher thread below does the
  // actual drain (Server::request_stop is not async-signal-safe).
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  try {
    wm::serve::Server server(cfg);
    server.start();
    if (print_port) {
      std::printf("port %d\n", server.port());
      std::fflush(stdout);
    }
    std::fprintf(stderr, "[wm_serve] listening on 127.0.0.1:%d (threads=%d)\n",
                 server.port(), cfg.service.threads);
    std::thread watcher([&server] {
      char b;
      while (::read(g_signal_pipe[0], &b, 1) < 0 && errno == EINTR) {
      }
      std::fprintf(stderr, "[wm_serve] draining\n");
      server.request_stop();
    });
    server.wait();
    // Unblock the watcher if the server stopped by other means.
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &b, 1);
    watcher.join();
    std::fprintf(stderr, "[wm_serve] drained, exiting\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wm_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
