# Empty compiler generated dependencies file for bench_thm8_overhead.
# This may be replaced when dependencies are built.
