# Empty compiler generated dependencies file for test_definability.
# This may be replaced when dependencies are built.
