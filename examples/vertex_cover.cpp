// Section 3.3's motivating application: 2-approximate vertex cover
// without port numbers. The algorithm is written once as a Broadcast
// (VB) machine; Theorem 9 turns it into a Multiset∩Broadcast (MB)
// machine mechanically. Both are run on a family of random graphs and
// compared against the exact optimum.
//
//   ./vertex_cover [num_graphs] [nodes] [max_degree]
#include <cstdio>
#include <cstdlib>

#include "algorithms/machines.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "obs/env.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  using namespace wm;
  const int num_graphs = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = argc > 2 ? std::atoi(argv[2]) : 14;
  const int max_deg = argc > 3 ? std::atoi(argv[3]) : 4;

  const auto vb = vertex_cover_packing_vb_machine();
  const auto mb = to_multiset_machine(vb);  // Theorem 9
  std::printf("VB machine class: %s;   wrapped (Theorem 9): %s\n\n",
              vb->algebraic_class().name().c_str(),
              mb->algebraic_class().name().c_str());
  std::printf("%-8s %-6s %-6s %-8s %-8s %-8s %-8s\n", "graph", "n", "m",
              "OPT", "|C|", "ratio", "rounds");

  Rng rng(2026);
  double worst = 0;
  for (int i = 0; i < num_graphs; ++i) {
    const Graph g = random_connected_graph(n, max_deg, n / 2, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const ExecutionResult r = execute(*mb, p);
    if (!r.stopped) {
      std::printf("#%d: DID NOT STOP\n", i);
      continue;
    }
    const auto out = r.outputs_as_ints();
    int size = 0;
    for (int v : out) size += v;
    const int opt = minimum_vertex_cover_size(g);
    const bool cover = is_vertex_cover(g, out);
    const double ratio = opt > 0 ? static_cast<double>(size) / opt : 1.0;
    worst = ratio > worst ? ratio : worst;
    std::printf("#%-7d %-6d %-6d %-8d %-8d %-8.3f %-8d%s\n", i, g.num_nodes(),
                g.num_edges(), opt, size, ratio, r.rounds,
                cover ? "" : "  NOT A COVER!");
  }
  std::printf("\nworst ratio observed: %.3f (guarantee: 2.000)\n", worst);
  return 0;
}
