// Theorem 2, proof Parts 3–4: extracting a modal formula from a local
// algorithm (Tables 4 and 5 of the paper).
//
// Given a machine A_Delta that stops within T rounds on every
// port-numbered graph of maximum degree Delta, builds a formula psi with
// md(psi) <= T such that ||psi||_{K_{a,b}(G,p)} equals the set of nodes
// outputting 1 — where the variant (a, b) matches the machine's class:
//
//   Vector               -> MML  on K_{+,+}     (Part 3)
//   Multiset / Set       -> GMML / MML on K_{-,+}
//   Vector∩Broadcast     -> MML  on K_{+,-}
//   Multiset∩Broadcast   -> GML  on K_{-,-}     (Part 4 (f))
//   Set∩Broadcast        -> ML   on K_{-,-}
//
// The construction enumerates the *abstract reachable* (state, degree)
// pairs round by round: R_0 = {(z0(d), d)}, and R_{t+1} closes R_t under
// delta applied to every combinatorially possible inbox over the round-t
// message alphabet. This over-approximates true reachability, which is
// sound: the formulas phi_{z,t} of Table 4 are built exactly per Table 5,
// and extra disjuncts for unreachable configurations are simply never
// true. The machine must have a finite abstraction; the options cap the
// search and extraction throws ExtractionLimitError beyond the caps.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "logic/formula.hpp"
#include "runtime/state_machine.hpp"

namespace wm {

class ExtractionLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ExtractionOptions {
  int delta = 2;
  /// Number of rounds the formula simulates. The machine must stop within
  /// this many rounds on every (G, p) with max degree <= delta, and its
  /// stopping states must be Int 0/1.
  int rounds = 2;
  std::size_t max_abstract_states = 50000;
  std::size_t max_inbox_combos = 2000000;
};

/// Builds psi_Delta for the machine. Output-1 semantics: K,v |= psi iff
/// the machine's output at v is Int 1.
Formula extract_formula(const StateMachine& m, const ExtractionOptions& opts);

/// The Kripke variant matching a machine class (Table 3 correspondence).
Variant variant_for_class(const AlgebraicClass& cls);

}  // namespace wm
