// The beeping model (Table 1: the closest prior-work equivalent of
// class SB — Afek et al., Cornejo–Kuhn).
//
// A beeping machine sends at most one bit per round: it either BEEPS or
// stays silent, and it hears only whether AT LEAST ONE neighbour beeped.
// That is exactly a Set∩Broadcast machine with message alphabet of size
// one — and conversely any SB machine with a finite per-round message
// alphabet M is simulated by a beeping machine with a |M|-fold round
// blowup: each SB round becomes |M| beep slots, sending message m means
// beeping in slot index(m), and the set of slots heard IS the set of
// messages received (set semantics makes the reconstruction exact).
//
// This module provides both directions:
//   - `BeepMachine`, a dedicated single-bit interface, with an adapter
//     into the StateMachine framework (class Set∩Broadcast);
//   - `to_beeping_machine`, the SB -> beeping simulation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/state_machine.hpp"

namespace wm {

/// A machine in the beeping model.
class BeepMachine {
 public:
  virtual ~BeepMachine() = default;
  virtual Value init(int degree) const = 0;
  virtual bool is_stopping(const Value& state) const = 0;
  /// Whether to beep this round.
  virtual bool beeps(const Value& state) const = 0;
  /// heard = true iff at least one neighbour beeped.
  virtual Value transition(const Value& state, bool heard, int degree) const = 0;
};

/// Wraps a beeping machine as a Set∩Broadcast StateMachine (beep =
/// message Int 1; silence = no message; "heard" = the received set
/// contains Int 1).
std::shared_ptr<const StateMachine> as_state_machine(
    std::shared_ptr<const BeepMachine> m);

/// Simulates an SB machine whose messages each round come from the given
/// finite alphabet. Every source round expands into alphabet.size() beep
/// slots; the wrapped machine is again presented as a StateMachine (of
/// class Set∩Broadcast with single-bit messages), and its outputs equal
/// the source machine's on every (G, p), with rounds multiplied by
/// |alphabet| (verified in tests). Alphabet entries must be distinct and
/// must cover every message the machine can send; Value::unit() (m0 /
/// silence) is handled implicitly and must NOT be in the alphabet.
std::shared_ptr<const StateMachine> to_beeping_machine(
    std::shared_ptr<const StateMachine> sb, std::vector<Value> alphabet);

/// A classic beeping primitive for tests and benches: wave propagation.
/// Sources (degree-d nodes for the given d) beep in round 1; every node
/// that hears a beep beeps once in the next round and records the round
/// it first heard one; after `rounds` rounds each node outputs its
/// first-heard round (0 if source, -1 encoded as rounds+1 if never).
/// Computes BFS distance from the source set, capped — entirely within
/// the beeping model.
std::shared_ptr<const BeepMachine> beep_wave_machine(int source_degree,
                                                     int rounds);

}  // namespace wm
