// Kripke models and the four canonical constructions K_{a,b}(G, p) from a
// port-numbered graph (Section 4.3, Figure 7).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "logic/formula.hpp"
#include "port/port_numbering.hpp"
#include "util/bitset.hpp"

namespace wm {

/// A finite multimodal Kripke model with proposition symbols q_1..q_P.
/// Relations are keyed by modality; successor lists are sorted.
class KripkeModel {
 public:
  KripkeModel() = default;
  KripkeModel(int num_states, int num_props);

  int num_states() const { return num_states_; }
  int num_props() const { return num_props_; }

  void add_edge(const Modality& alpha, int from, int to);
  void set_prop(int q, int state, bool value = true);

  bool prop_holds(int q, int state) const {
    return valuation_[q - 1].test(static_cast<std::size_t>(state));
  }
  /// Valuation row ||q_q|| as a packed bitset over the state set — the
  /// model checker's leaf representation (64 states per word op).
  const Bitset& prop_bits(int q) const { return valuation_[q - 1]; }
  /// Successors of `state` under alpha (empty if relation absent).
  const std::vector<int>& successors(const Modality& alpha, int state) const;
  /// The whole successor-list array for alpha (nullptr if unregistered) —
  /// lets hot loops hoist the per-call modality lookup out of state scans.
  const std::vector<std::vector<int>>* relation(const Modality& alpha) const;
  /// All modalities with a (possibly empty) registered relation.
  std::vector<Modality> modalities() const;
  bool has_relation(const Modality& alpha) const { return rel_.contains(alpha); }

  /// Registers an (empty) relation for alpha — needed so bisimulation
  /// treats "no successors" as information even when no edge exists.
  void ensure_relation(const Modality& alpha);

  /// Disjoint union (states of `other` shifted by num_states()); used for
  /// cross-model bisimilarity checks. Props / modalities are unioned.
  static KripkeModel disjoint_union(const KripkeModel& a, const KripkeModel& b);

  std::string to_string() const;

 private:
  int num_states_ = 0;
  int num_props_ = 0;
  std::map<Modality, std::vector<std::vector<int>>> rel_;
  std::vector<Bitset> valuation_;  // [q-1], one packed row per prop
};

/// Builds K_{a,b}(G, p): states = V; R_(i,j) = {(u,v) : p((v,j)) = (u,i)}
/// with components unioned away to '*' per the variant; valuation
/// tau(q_i) = {v : deg(v) = i}. Delta defaults to max degree of G.
KripkeModel kripke_from_graph(const PortNumbering& p, Variant variant,
                              int delta = -1);

}  // namespace wm
