#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>

#include "obs/counters.hpp"
#include "obs/log.hpp"
#include "util/parallel.hpp"

namespace wm::serve {

namespace {

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writes the whole buffer; MSG_NOSIGNAL so a client that hung up turns
/// into EPIPE instead of killing the process. False on any failure.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(const ServerConfig& cfg) : cfg_(cfg), service_(cfg.service) {
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    close_quiet(listen_fd_);
    throw std::runtime_error(std::string("serve: cannot listen on port ") +
                             std::to_string(cfg.port) + ": " +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  if (cfg_.service.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(cfg_.service.threads);
  }
}

Server::~Server() {
  request_stop();
  wait();
  close_quiet(listen_fd_);
  close_quiet(wake_pipe_[0]);
  close_quiet(wake_pipe_[1]);
}

void Server::start() {
  sampler_.start();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  // Poke the accept thread's poll(); a single byte suffices and the
  // write end stays open, so repeated calls are harmless.
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept loop exits no new connection threads appear, so
  // draining the vector once is complete.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  sampler_.stop();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // request_stop woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    WM_COUNT_INFO(serve.connections);
    if (obs::log_enabled(obs::LogLevel::kDebug)) {
      obs::LogEvent(obs::LogLevel::kDebug, "connection_open").num("fd", fd);
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
  // Stop accepting immediately; connection threads keep draining.
  ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::connection_loop(int fd) {
  // One handler per connection: buffer bytes, peel complete lines,
  // answer each. The per-line size bound is enforced on the raw buffer
  // so an attacker cannot balloon memory by never sending a newline.
  const std::size_t max_line = service_.config().max_request_bytes;
  std::string buffer;
  char chunk[4096];

  auto answer = [&](std::string_view line) {
    std::string reply;
    if (pool_ != nullptr) {
      // Hand the request to the shared pool so heavy requests from one
      // client interleave with others'. std::future gives the hand-back.
      std::packaged_task<std::string()> task(
          [this, line] { return service_.handle_line(line); });
      std::future<std::string> done = task.get_future();
      pool_->submit([&task] { task(); });
      reply = done.get();
    } else {
      reply = service_.handle_line(line);
    }
    reply += '\n';
    return send_all(fd, reply.data(), reply.size());
  };

  auto drain_buffer = [&]() -> bool {  // false = connection dead
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line.empty()) continue;
      if (!answer(line)) {
        return false;
      }
    }
    buffer.erase(0, start);
    return true;
  };

  // Never block in recv without a timeout: the thread must observe a
  // drain (stopping_) even on an idle connection. Poll in 200 ms slices;
  // a timeout slice during a drain is the linger window — an idle or
  // mid-line connection gets that long to complete before we close.
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // idle, not draining: keep listening
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (!drain_buffer()) break;
    if (buffer.size() > max_line) {
      // No newline within the size bound: reply once and close — there
      // is no way to find the next request boundary in the stream.
      const std::string reply =
          service_.handle_line(std::string_view(buffer.data(), buffer.size()));
      std::string framed = reply + "\n";
      send_all(fd, framed.data(), framed.size());
      break;
    }
  }
  ::close(fd);
  if (obs::log_enabled(obs::LogLevel::kDebug)) {
    obs::LogEvent(obs::LogLevel::kDebug, "connection_close").num("fd", fd);
  }
}

}  // namespace wm::serve
