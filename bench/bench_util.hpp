// Shared plumbing for the parallel-ported benches: --threads parsing,
// per-phase wall-clock reporting, and the machine-readable
// BENCH_<name>.json summary tracked across PRs.
//
// Convention: witness/result output goes to stdout and is byte-identical
// at any --threads setting; perf lines (wall-clock, graphs/sec) go to
// stderr, so diffing stdout across thread counts stays meaningful. The
// json carries a "metrics" object — "work" counters are deterministic
// across thread counts (tools/bench_diff.py gates on them), "info"
// counters are scheduling telemetry (informational only) — plus a
// "manifest" provenance block (obs/manifest.hpp) and a "timings"
// duration-histogram block (obs/histogram.hpp), both informational.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/counters.hpp"
#include "obs/env.hpp"
#include "obs/histogram.hpp"
#include "obs/manifest.hpp"
#include "util/parallel.hpp"

namespace wm::benchutil {

/// Parses `--threads N` (also `--threads=N`) from argv; any other
/// arguments are left for the bench. Returns default_thread_count() when
/// absent, which itself honours the WM_THREADS environment variable.
/// Also arms every env-driven observability hook (WM_TRACE phase
/// tracing, WM_PROGRESS heartbeats, the manifest start clock) — every
/// bench calls this first, so the env hooks need no per-bench code; the
/// examples call obs::init_from_env() themselves.
inline int parse_threads(int argc, char** argv) {
  obs::init_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) return std::atoi(argv[i + 1]);
    if (a.rfind("--threads=", 0) == 0) return std::atoi(a.c_str() + 10);
  }
  return default_thread_count();
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-phase perf line on stderr; pass items > 0 for a graphs/sec rate.
inline void report_phase(const char* label, double ms, std::size_t items = 0) {
  if (items > 0 && ms > 0) {
    std::fprintf(stderr, "[phase] %-28s %10.2f ms  %12.0f graphs/sec\n",
                 label, ms, 1000.0 * static_cast<double>(items) / ms);
  } else {
    std::fprintf(stderr, "[phase] %-28s %10.2f ms\n", label, ms);
  }
}

/// Serialises one counter-snapshot kind as a JSON object body.
/// (Thin alias — the implementation moved to obs::counters_json so the
/// serve stats endpoint and the benches emit the identical encoding.)
inline std::string metrics_json(wm::obs::CounterKind kind) {
  return wm::obs::counters_json(kind);
}

/// Writes BENCH_<name>.json in the working directory: the cross-PR perf
/// trajectory record. `n` is the bench's headline size parameter and
/// graphs_per_sec its headline throughput (0 if not meaningful). The
/// "metrics" object snapshots every registered counter: "work" values
/// are identical at any --threads setting (the regression gate input),
/// "info" values describe scheduling and vary run to run. "manifest"
/// carries run provenance (commit, compiler, flags, seed, wallclock)
/// and "timings" the per-phase duration histograms — both are
/// timing/environment-dependent, so tools/bench_diff.py ignores them;
/// tools/bench_trend.py folds them into the cross-run trend table.
inline void write_bench_json(const std::string& name, long long n,
                             int threads, double wall_ms,
                             double graphs_per_sec) {
  const std::string path = "BENCH_" + name + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\"name\": \"%s\", \"n\": %lld, \"threads\": %d, "
                 "\"wall_ms\": %.3f, \"graphs_per_sec\": %.3f, "
                 "\"metrics\": {\"work\": %s, \"info\": %s}, "
                 "\"manifest\": %s, \"timings\": %s}\n",
                 name.c_str(), n, threads, wall_ms, graphs_per_sec,
                 metrics_json(wm::obs::CounterKind::kWork).c_str(),
                 metrics_json(wm::obs::CounterKind::kInfo).c_str(),
                 wm::obs::manifest_json(threads).c_str(),
                 wm::obs::timings_json().c_str());
    std::fclose(f);
    std::fprintf(stderr, "[json]  wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[json]  cannot write %s\n", path.c_str());
  }
}

}  // namespace wm::benchutil
