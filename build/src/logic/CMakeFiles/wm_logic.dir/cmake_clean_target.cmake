file(REMOVE_RECURSE
  "libwm_logic.a"
)
