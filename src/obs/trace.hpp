// Phase tracing: nestable RAII scopes emitting a Chrome
// `trace_event`-format JSON file (load it in chrome://tracing or
// https://ui.perfetto.dev).
//
// Tracing is off by default and costs a single relaxed atomic load per
// scope while off. Enable it either programmatically
// (`trace_start(path)` ... `trace_stop()`) or by setting `WM_TRACE=<file>`
// in the environment and calling `trace_init_from_env()` — the benches do
// this from benchutil::parse_threads, so `WM_TRACE=out.json bench_foo`
// just works. Events are buffered in memory under a mutex (tracing is an
// opt-in debugging tool, not a production hot path) and flushed on
// trace_stop() or at process exit.
//
// Spans emitted inside a RequestIdScope (obs/log.hpp) carry the request
// id as {"args": {"rid": N}}, so the Chrome-trace view of one served
// request joins with its structured access-log line on that id.
//
// Configure with -DWM_OBS=OFF to compile WM_TRACE_SCOPE out entirely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wm::obs {

/// True while a trace is being collected.
bool trace_enabled() noexcept;

/// Begins collecting trace events, to be written to `path` (Chrome
/// trace_event JSON) when the trace stops. Replaces any active trace.
void trace_start(const std::string& path);

/// Stops collecting and writes the buffered events. Returns true iff a
/// trace was active and its output file was written; a no-op call (no
/// active trace) and a write failure both return false.
bool trace_stop();

/// Starts a trace to $WM_TRACE if that variable is set and non-empty,
/// registering an atexit flush. Safe to call repeatedly; only the first
/// call can start the trace.
void trace_init_from_env();

/// Records one complete ("ph":"X") event [begin_us, begin_us + dur_us)
/// on the calling thread's trace track. Usually used via TraceScope.
void trace_emit(std::string_view name, std::int64_t begin_us,
                std::int64_t dur_us);

/// Current trace timestamp in microseconds (monotonic, arbitrary epoch).
std::int64_t trace_now_us() noexcept;

/// RAII phase scope: emits a complete event covering its own lifetime.
/// Nesting works naturally — Chrome stacks overlapping events per tid.
class TraceScope {
 public:
  explicit TraceScope(std::string_view name) noexcept {
    if (trace_enabled()) {
      name_ = name;
      begin_us_ = trace_now_us();
      active_ = true;
    }
  }
  ~TraceScope() {
    if (active_) trace_emit(name_, begin_us_, trace_now_us() - begin_us_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string_view name_;
  std::int64_t begin_us_ = 0;
  bool active_ = false;
};

}  // namespace wm::obs

#if !defined(WM_OBS_DISABLED)

#define WM_OBS_CONCAT_IMPL(a, b) a##b
#define WM_OBS_CONCAT(a, b) WM_OBS_CONCAT_IMPL(a, b)

/// Names the enclosing block as a trace phase: WM_TRACE_SCOPE("decision").
#define WM_TRACE_SCOPE(name) \
  ::wm::obs::TraceScope WM_OBS_CONCAT(wm_obs_trace_scope_, __LINE__)(name)

#else  // WM_OBS_DISABLED

#define WM_TRACE_SCOPE(name) \
  do {                       \
  } while (0)

#endif  // WM_OBS_DISABLED
