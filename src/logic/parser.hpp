// Parser for the formula syntax produced by Formula::to_string():
//
//   formula := disj
//   disj    := conj ('|' conj)*
//   conj    := unary ('&' unary)*
//   unary   := '~' unary | '<'mod'>' ['>=' INT] unary | '['mod']' unary | atom
//   atom    := 'T' | 'F' | 'q' INT | '(' formula ')'
//   mod     := part ',' part        part := '*' | INT
//
// `parse_formula(to_string(f)) == f` holds up to associativity of the
// printed (left-nested) binary operators — exact round-trip is tested.
#pragma once

#include <stdexcept>
#include <string>

#include "logic/formula.hpp"

namespace wm {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a formula; throws ParseError on malformed input.
Formula parse_formula(const std::string& text);

}  // namespace wm
