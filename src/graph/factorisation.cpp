#include "graph/factorisation.hpp"

#include <stdexcept>

#include "graph/double_cover.hpp"
#include "graph/properties.hpp"

namespace wm {

std::optional<std::vector<NodeId>> eulerian_circuit(const Graph& g,
                                                    NodeId start) {
  // Index edges so traversal can mark them used.
  const std::vector<Edge> edges = g.edges();
  std::vector<std::vector<std::pair<NodeId, int>>> adj(
      static_cast<std::size_t>(g.num_nodes()));
  for (int e = 0; e < static_cast<int>(edges.size()); ++e) {
    adj[edges[e].u].push_back({edges[e].v, e});
    adj[edges[e].v].push_back({edges[e].u, e});
  }
  const std::vector<int> dist = bfs_distances(g, start);
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) % 2 != 0 && dist[v] >= 0) return std::nullopt;
  }
  // Hierholzer with an explicit stack.
  std::vector<bool> used(edges.size(), false);
  std::vector<std::size_t> next(static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<NodeId> stack{start};
  std::vector<NodeId> circuit;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    bool advanced = false;
    while (next[v] < adj[v].size()) {
      const auto [u, e] = adj[v][next[v]];
      if (used[e]) {
        ++next[v];
        continue;
      }
      used[e] = true;
      ++next[v];
      stack.push_back(u);
      advanced = true;
      break;
    }
    if (!advanced) {
      circuit.push_back(v);
      stack.pop_back();
    }
  }
  // All edges of the start component must be used.
  for (int e = 0; e < static_cast<int>(edges.size()); ++e) {
    if (!used[e] && dist[edges[e].u] >= 0) return std::nullopt;
  }
  return circuit;
}

std::vector<std::vector<Edge>> two_factorisation(const Graph& g) {
  const int deg = g.max_degree();
  if (deg % 2 != 0 || !g.is_regular(deg)) {
    throw std::invalid_argument("two_factorisation: graph must be 2k-regular");
  }
  const int k = deg / 2;
  const int n = g.num_nodes();
  if (k == 0) return {};

  // Orient every edge along an Eulerian circuit of its component.
  std::vector<std::pair<NodeId, NodeId>> oriented;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    const auto circuit = eulerian_circuit(g, s);
    if (!circuit) {
      throw std::logic_error("two_factorisation: even-regular component "
                             "without an Eulerian circuit");
    }
    for (NodeId v : *circuit) seen[v] = true;
    for (std::size_t i = 0; i + 1 < circuit->size(); ++i) {
      oriented.emplace_back((*circuit)[i], (*circuit)[i + 1]);
    }
  }

  // Out/in bipartite graph: left copy v (out), right copy n + v (in);
  // k-regular by the circuit orientation, so it 1-factorises (König).
  Graph h(2 * n);
  std::vector<int> side(static_cast<std::size_t>(2 * n), 0);
  for (int v = 0; v < n; ++v) side[n + v] = 1;
  for (const auto& [u, v] : oriented) h.add_edge(u, n + v);
  const auto matchings = one_factorise_bipartite(h, side);

  std::vector<std::vector<Edge>> factors;
  factors.reserve(static_cast<std::size_t>(k));
  for (const auto& m : matchings) {
    std::vector<Edge> factor;
    factor.reserve(static_cast<std::size_t>(n));
    for (const Edge& e : m) {
      const NodeId out = side[e.u] == 0 ? e.u : e.v;
      const NodeId in = (side[e.u] == 0 ? e.v : e.u) - n;
      factor.push_back({std::min(out, in), std::max(out, in)});
    }
    factors.push_back(std::move(factor));
  }
  return factors;
}

bool is_two_factor(const Graph& g, const std::vector<Edge>& edges) {
  std::vector<int> deg(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const Edge& e : edges) {
    if (!g.has_edge(e.u, e.v)) return false;
    ++deg[e.u];
    ++deg[e.v];
  }
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (deg[v] != 2) return false;
  }
  return true;
}

}  // namespace wm
