// Canonical forms for graphs, port-numbered graphs and Kripke models —
// nauty-style individualisation–refinement with automorphism (orbit)
// pruning.
//
// The colour-refinement fingerprints used elsewhere (refinement_signature,
// the PR-2 model_fingerprint) are sound but incomplete: highly symmetric
// isomorphic structures can fingerprint apart. This module computes a
// *complete* isomorphism key: two structures have equal certificates if
// and ONLY if they are isomorphic. That turns dedup tables into exact
// iso-free generation (enumerate_graphs_modulo_iso, the quotient search)
// and replaces the exponential backtracking isomorphism test beyond the
// exhaustive cutoff.
//
// Everything reduces to one carrier, RelationalStructure: n vertices with
// an initial colouring plus a list of binary relations. Graph maps to a
// single symmetric relation; a port numbering to the Delta^2 relations
// R_(i,j) = {(u,v) : p((u,i)) = (v,j)}; a Kripke model to one relation per
// modality with valuation profiles as initial colours (the same relational
// signature the bisimulation layer works over). The engine is defined
// here; the PortNumbering / KripkeModel reductions live with their types
// (wm_port / wm_logic) so the library dependency graph stays acyclic.
//
// Algorithm (see DESIGN.md "Canonical forms"): refine the colouring to a
// stable partition with *canonical* colour ids (classes numbered by sorted
// signature content, never by vertex index); if the partition is discrete
// it IS a labelling, emit the certificate; otherwise pick the first
// smallest non-singleton class (the target cell), individualise each
// member in turn and recurse. The certificate is the lexicographic
// minimum over all leaves. Leaves that tie with the current best yield
// automorphisms (compose the two labellings); branches whose root is in
// the orbit of an already-explored branch under automorphisms fixing the
// individualisation path are pruned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wm {

class Graph;
class PortNumbering;
class KripkeModel;

/// The common reduction target: vertices 0..n-1, an initial colouring
/// (ids MUST be contiguous 0..k-1 and assigned canonically — i.e. by
/// sorted colour-class *content*, never by first-seen vertex order), and
/// directed binary relations. `header` tags the reduction kind and the
/// meaning of the colour ids (e.g. the valuation profiles of a Kripke
/// model) and is prepended to the certificate, so structures of different
/// kinds or signatures never compare equal.
struct RelationalStructure {
  int n = 0;
  std::string header;
  std::vector<int> colour;
  /// out[r][v] = targets of v under relation r; in[r][v] = sources.
  /// Both sides are kept so refinement sees in- and out-degrees.
  std::vector<std::vector<std::vector<int>>> out;
  std::vector<std::vector<std::vector<int>>> in;

  /// Appends an empty relation and returns its index.
  std::size_t add_relation();
  void add_edge(std::size_t r, int from, int to);
};

struct CanonicalForm {
  /// labelling[old] = canonical position; always a permutation of 0..n-1
  /// (the final colouring is discrete).
  std::vector<int> labelling;
  /// Complete isomorphism key: byte-identical across all relabellings of
  /// the structure, distinct for non-isomorphic structures (of the same
  /// reduction kind).
  std::string certificate;
  /// Automorphism generators discovered by the search (old -> old vertex
  /// maps, identity excluded). A subgroup witness, not necessarily the
  /// full group; every entry is a verified automorphism.
  std::vector<std::vector<int>> automorphisms;
};

/// Stable colour refinement with canonical class ids: iterates
/// (own colour, per-relation sorted successor/predecessor colour
/// multisets) until stable, renumbering classes each round by sorted
/// signature order. The returned ids are invariant under vertex
/// relabelling (as numbers, not merely as a partition).
std::vector<int> refine_colours(const RelationalStructure& s,
                                std::vector<int> colour);

/// Individualisation–refinement canonical labelling of `s`.
CanonicalForm canonical_form(const RelationalStructure& s);

/// FNV-1a of a certificate — the canonical_hash of every reduction kind.
std::uint64_t certificate_hash(const std::string& certificate);

// --- Plain graphs (defined in wm_graph) -------------------------------------

RelationalStructure structure_of(const Graph& g);
CanonicalForm canonical_form(const Graph& g);
std::string canonical_certificate(const Graph& g);
std::uint64_t canonical_hash(const Graph& g);
/// Exact isomorphism via certificate equality — complete at any size, no
/// backtracking. find_isomorphism (graph/isomorphism.hpp) routes here
/// beyond its exhaustive cutoff.
bool is_isomorphic(const Graph& g, const Graph& h);

// --- Port-numbered graphs (defined in wm_port) ------------------------------

/// Isomorphism notion: a node bijection preserving adjacency AND both
/// port families (out_v, in_v) — i.e. the relations R_(i,j).
RelationalStructure structure_of(const PortNumbering& p);
CanonicalForm canonical_form(const PortNumbering& p);
std::string canonical_certificate(const PortNumbering& p);
std::uint64_t canonical_hash(const PortNumbering& p);
bool is_isomorphic(const PortNumbering& p, const PortNumbering& q);

// --- Kripke models (defined in wm_logic) ------------------------------------

/// Isomorphism notion: a state bijection preserving every modality's
/// relation and the valuation of every proposition (registered-but-empty
/// relations count, matching the bisimulation layer's treatment).
RelationalStructure structure_of(const KripkeModel& k);
CanonicalForm canonical_form(const KripkeModel& k);
std::string canonical_certificate(const KripkeModel& k);
std::uint64_t canonical_hash(const KripkeModel& k);
bool is_isomorphic(const KripkeModel& a, const KripkeModel& b);

}  // namespace wm
