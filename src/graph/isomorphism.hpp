// Graph isomorphism for small graphs: colour-refinement pruned
// backtracking. Used to compare independently-built constructions (e.g.
// the two double-cover implementations) and to deduplicate enumerations.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace wm {

/// An isomorphism g -> h as a node map, if one exists. Small graphs use
/// refinement-pruned exhaustive backtracking; beyond the exhaustive
/// cutoff (n > 8) the search routes through graph/canonical.hpp —
/// certificates compared, canonical labellings composed into the map —
/// so the worst case is the canonicaliser's, not exponential matching.
std::optional<std::vector<NodeId>> find_isomorphism(const Graph& g,
                                                    const Graph& h);

bool are_isomorphic(const Graph& g, const Graph& h);

/// Checks that perm is an isomorphism g -> h.
bool is_isomorphism(const Graph& g, const Graph& h,
                    const std::vector<NodeId>& perm);

}  // namespace wm
