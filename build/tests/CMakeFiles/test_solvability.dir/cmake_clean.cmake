file(REMOVE_RECURSE
  "CMakeFiles/test_solvability.dir/test_solvability.cpp.o"
  "CMakeFiles/test_solvability.dir/test_solvability.cpp.o.d"
  "test_solvability"
  "test_solvability.pdb"
  "test_solvability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solvability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
