# Empty dependencies file for run_machine.
# This may be replaced when dependencies are built.
