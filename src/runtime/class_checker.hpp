// Empirical validation that a machine belongs to the algebraic class it
// claims (Section 1.5's invariance conditions).
//
// The engine already *enforces* class restrictions by canonicalising the
// inbox, so machines cannot cheat at run time. This checker serves a
// different purpose: it property-tests that a machine declared in a
// *stronger* mode (e.g. ReceiveMode::Vector) would in fact be well-defined
// in a weaker one — i.e. that delta(x, a) = delta(x, b) whenever
// multiset(a) = multiset(b) (Multiset-invariance) or set(a) = set(b)
// (Set-invariance), and that mu(x, i) = mu(x, j) (Broadcast-invariance).
// Used when validating hand-written algorithms and the transformers.
#pragma once

#include <string>

#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "runtime/state_machine.hpp"
#include "util/rng.hpp"

namespace wm {

struct ClassCheckReport {
  bool multiset_invariant = true;  // order of inbox does not matter
  bool set_invariant = true;       // multiplicities do not matter either
  bool broadcast_invariant = true; // all out-ports get the same message
  int transitions_checked = 0;
  int messages_checked = 0;
  int rounds_executed = 0;         // rounds actually probed (<= max_rounds)
  int nodes = 0;

  /// One-line digest: verdicts plus probe volume (rounds, nodes,
  /// transitions, messages) — the class checker's run summary.
  std::string to_string() const;
};

/// Runs the machine on (G, p); at every (state, inbox) pair encountered,
/// probes invariance with `trials` random permutations / duplications of
/// the inbox and all out-port pairs. Requires a Vector-mode machine (the
/// only mode where the raw inbox is observable).
ClassCheckReport check_class_invariance(const StateMachine& m,
                                        const PortNumbering& p, Rng& rng,
                                        int trials = 8, int max_rounds = 64);

/// Re-entrant variant: all per-run scratch lives in `ctx`, so one machine
/// can be checked on many (G, p) concurrently — one ExecutionContext and
/// one Rng per thread.
ClassCheckReport check_class_invariance(const StateMachine& m,
                                        const PortNumbering& p, Rng& rng,
                                        ExecutionContext& ctx, int trials = 8,
                                        int max_rounds = 64);

}  // namespace wm
