// Theorem 2, proof Parts 1–2: compiling a modal formula into a local
// distributed algorithm of the matching class.
//
//   (b) MML  on K_{+,+}  ->  Vector machine            (class VV(1))
//   (c) GMML on K_{-,+}  ->  Multiset machine          (class MV(1))
//   (d) MML  on K_{-,+}  ->  Set machine               (class SV(1))
//   (e) MML  on K_{+,-}  ->  Broadcast machine         (class VB(1))
//   (f) GML  on K_{-,-}  ->  Multiset∩Broadcast        (class MB(1))
//   (g) ML   on K_{-,-}  ->  Set∩Broadcast             (class SB(1))
//
// The machine's intermediate state is the paper's truth-value table
// f : Sigma -> {0, 1, U} over the subformula closure Sigma of psi
// (encoded as a Tuple of Ints, U = 2); messages carry the table
// restricted to diamond children, tagged with the sending out-port for
// ported classes. The machine stops after exactly md(psi) + 1 rounds with
// output Int 0/1 = the truth value of psi at the node in K_{a,b}(G, p).
#pragma once

#include <memory>

#include "logic/formula.hpp"
#include "runtime/state_machine.hpp"

namespace wm {

/// Replaces every [alpha]phi by ~<alpha>~phi. True/False/Or are kept.
Formula desugar_boxes(const Formula& f);

/// The algebraic class Theorem 2 associates with a variant:
/// PlusPlus -> Vector, MinusPlus -> Multiset or Set (graded or not),
/// PlusMinus -> Vector∩Broadcast, MinusMinus -> Multiset/Set∩Broadcast.
AlgebraicClass natural_class_for(Variant variant, bool graded);

/// Compiles psi (signature I^delta_{a,b} per `variant`) into a machine of
/// class `cls`. Throws std::invalid_argument if the formula is not in the
/// signature, if cls is incompatible with the variant, or if a graded
/// modality is used with a Set-receive class.
std::shared_ptr<const StateMachine> compile_formula(const Formula& psi,
                                                    Variant variant, int delta,
                                                    AlgebraicClass cls);

/// Convenience: compile with the natural class for the variant.
std::shared_ptr<const StateMachine> compile_formula(const Formula& psi,
                                                    Variant variant, int delta);

}  // namespace wm
