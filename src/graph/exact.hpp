// Exact (exponential-time) solvers for small graphs.
//
// Used as ground truth when verifying approximation guarantees of
// distributed algorithms (e.g. the MB(1) 2-approximate vertex cover of
// Section 3.3) and when checking problem verifiers.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace wm {

/// Size of a minimum vertex cover. Branch and bound on a max-degree
/// vertex; practical to ~60 nodes for sparse graphs.
int minimum_vertex_cover_size(const Graph& g);

/// Size of a maximum independent set (= n - min VC).
int maximum_independent_set_size(const Graph& g);

/// One minimum vertex cover (indicator per node).
std::vector<int> minimum_vertex_cover(const Graph& g);

/// Chromatic number for small graphs (iterative deepening on k).
int chromatic_number(const Graph& g);

/// True if graph can be properly coloured with k colours.
bool is_k_colourable(const Graph& g, int k);

}  // namespace wm
