// Random formula generation for property-based tests and the model
// checking / compilation benches.
#pragma once

#include "logic/formula.hpp"
#include "util/rng.hpp"

namespace wm {

struct RandomFormulaOptions {
  Variant variant = Variant::MinusMinus;
  int delta = 3;          // port numbers drawn from [1, delta]
  int num_props = 3;      // propositions q_1..q_num_props
  int max_depth = 3;      // maximum modal depth
  bool graded = false;    // allow grades up to max_grade
  int max_grade = 3;
  bool use_box = true;    // allow [alpha] nodes
};

/// A random well-signed formula with modal depth <= opts.max_depth.
Formula random_formula(Rng& rng, const RandomFormulaOptions& opts);

}  // namespace wm
