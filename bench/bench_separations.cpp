// Regenerates the separation evidence of Theorems 11, 13 and 17 at
// scale, plus an automated witness *search* that rediscovers Theorem 13
// style counterexamples among all small graphs (the paper exhibits one
// drawing; we show the phenomenon is machine-findable).
#include <cstdio>
#include <map>
#include <vector>

#include "bisim/bisimulation.hpp"
#include "core/classification.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"

namespace {

using namespace wm;

void sweep_thm11() {
  std::printf("=== Theorem 11 sweep: leaf-in-star vs VB, k = 2..10 ===\n");
  std::printf("%-4s %-14s %-10s %-12s\n", "k", "numberings", "blocks",
              "leaves bisim");
  for (int k = 2; k <= 10; ++k) {
    SeparationWitness w = thm11_witness(k);
    // Exhaust all numberings for small k, sample for large.
    std::size_t count = 0;
    bool all_bisim = true;
    int blocks = -1;
    if (k <= 3) {
      count = for_each_port_numbering(w.graph, [&](const PortNumbering& p) {
        const KripkeModel m = kripke_from_graph(p, Variant::PlusMinus);
        const Partition part = coarsest_bisimulation(m);
        blocks = part.num_blocks;
        for (int leaf = 2; leaf <= k; ++leaf) {
          if (!part.same_block(1, leaf)) all_bisim = false;
        }
        return true;
      });
    } else {
      Rng rng(k);
      for (int trial = 0; trial < 20; ++trial) {
        const PortNumbering p = PortNumbering::random(w.graph, rng);
        const KripkeModel m = kripke_from_graph(p, Variant::PlusMinus);
        const Partition part = coarsest_bisimulation(m);
        blocks = part.num_blocks;
        for (int leaf = 2; leaf <= k; ++leaf) {
          if (!part.same_block(1, leaf)) all_bisim = false;
        }
        ++count;
      }
    }
    std::printf("%-4d %-14zu %-10d %-12s\n", k, count, blocks,
                all_bisim ? "yes" : "NO");
  }
  std::printf("\n");
}

void search_thm13_witnesses() {
  std::printf("=== Theorem 13 witness search over small graph pairs ===\n");
  std::printf("Looking for connected graphs G1, G2 (n <= 6) with K_{-,-}\n");
  std::printf("bisimilar nodes whose odd-odd outputs differ...\n");
  // One pass: build the disjoint union of ALL candidate graphs as a
  // single Kripke model, refine once, and scan blocks for output
  // disagreements — linear instead of quadratic in the candidate count.
  struct Entry {
    int graph_id;
    int n, m;
    int node;
    int output;
  };
  std::vector<Entry> entries;
  KripkeModel joint(0, 0);
  EnumerateOptions opts;
  opts.max_degree = 3;
  int graphs = 0;
  for (int n = 3; n <= 6; ++n) {
    enumerate_graphs_modulo_refinement(n, opts, [&](const Graph& g) {
      ++graphs;
      const KripkeModel k =
          kripke_from_graph(PortNumbering::identity(g), Variant::MinusMinus, 3);
      const int base = joint.num_states();
      joint = KripkeModel::disjoint_union(joint, k);
      for (int v = 0; v < g.num_nodes(); ++v) {
        int odd = 0;
        for (NodeId u : g.neighbours(v)) {
          if (g.degree(u) % 2 == 1) ++odd;
        }
        entries.push_back({graphs, g.num_nodes(), g.num_edges(), base + v,
                           odd % 2});
      }
      return true;
    });
  }
  std::printf("candidate graphs (mod refinement): %d, joint model states: %d\n",
              graphs, joint.num_states());
  const Partition part = coarsest_bisimulation(joint);
  // For each block, report at most one disagreeing pair.
  std::map<int, std::size_t> first_in_block;
  int found = 0;
  for (std::size_t i = 0; i < entries.size() && found < 5; ++i) {
    const int b = part.block[entries[i].node];
    auto [it, fresh] = first_in_block.try_emplace(b, i);
    if (fresh) continue;
    const Entry& a = entries[it->second];
    if (a.output != entries[i].output && a.graph_id != entries[i].graph_id) {
      ++found;
      std::printf("  witness %d: node of G%d(n=%d,m=%d) ~ node of "
                  "G%d(n=%d,m=%d), outputs %d vs %d\n",
                  found, a.graph_id, a.n, a.m, entries[i].graph_id,
                  entries[i].n, entries[i].m, a.output, entries[i].output);
    }
  }
  std::printf("found %d automated witnesses (>=1 proves SB != MB)\n\n", found);
}

void sweep_thm17() {
  std::printf("=== Theorem 17 sweep: class-G graphs, odd k ===\n");
  std::printf("%-4s %-6s %-12s %-18s %-14s\n", "k", "n", "1-factor",
              "sym-numbering", "K_{+,+} blocks");
  for (int k : {3, 5, 7}) {
    const Graph g = class_g_graph(k);
    const PortNumbering p = PortNumbering::symmetric_regular(g);
    const KripkeModel m = kripke_from_graph(p, Variant::PlusPlus);
    const Partition part = coarsest_bisimulation(m);
    std::printf("%-4d %-6d %-12s %-18s %-14d\n", k, g.num_nodes(),
                in_class_g(g) ? "none" : "exists",
                p.is_consistent() ? "consistent(!)" : "inconsistent",
                part.num_blocks);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("##### Separation benches (Theorems 11, 13, 17) #####\n\n");
  for (const auto& w : {thm13_witness(), thm11_witness(3), thm17_witness(3)}) {
    const SeparationCheck c = check_separation(w);
    std::printf("%-55s -> %s\n", w.name.c_str(),
                c.holds() ? "VERIFIED" : "FAILED");
  }
  std::printf("\n");
  sweep_thm11();
  search_thm13_witnesses();
  sweep_thm17();
  return 0;
}
