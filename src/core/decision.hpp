// Deciding scoped solvability for problems with solution SETS.
//
// core/solvability.hpp handles uniquely-solvable problems; this module
// decides the general case on a finite scope: a t-round algorithm of
// class C producing valid outputs on every instance exists iff there is
// an assignment of output values to the t-step refinement blocks of the
// *joint* model whose induced per-instance outputs all pass the
// verifier. (Necessity: Fact 1 — outputs must be constant on blocks and
// consistent ACROSS instances, since an algorithm cannot tell which
// instance it runs in. Sufficiency: compile the blocks' characteristic
// formulas, Theorem 2.)
//
// This turns statements like Theorem 11 — "leaf-in-star is solvable in
// SV(1) but in no number of rounds in VB" — into terminating
// computations on concrete scopes. Exponential in the number of blocks;
// guarded by a budget.
#pragma once

#include <optional>
#include <vector>

#include "core/classification.hpp"
#include "problems/problem.hpp"

namespace wm {

class ThreadPool;

struct DecisionOptions {
  int rounds = -1;              // t; -1 = refinement fixpoint (any time)
  int delta = -1;               // common Delta; -1 = max over scope
  std::size_t max_assignments = 1u << 22;  // colouring budget
  /// Optional task-parallel substrate for the colouring scan (and the
  /// per-instance Kripke builds). nullptr = sequential. The result is
  /// byte-identical at any thread count: the scan uses
  /// parallel_find_first, whose witness is always the lowest assignment
  /// index — exactly the assignment the sequential odometer finds first.
  ThreadPool* pool = nullptr;
};

struct Decision {
  bool solvable = false;
  int blocks = 0;
  /// If solvable: the output value per block (indexed by block id).
  std::vector<int> block_output;
  /// Number of assignments examined.
  std::size_t assignments_tried = 0;
};

class DecisionBudgetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Decides whether some t-round algorithm of class `c` solves `problem`
/// on every instance of the scope. Throws DecisionBudgetError if
/// |Y|^blocks exceeds the budget.
Decision decide_solvable(const Problem& problem,
                         const std::vector<PortNumbering>& scope,
                         ProblemClass c, const DecisionOptions& opts = {});

}  // namespace wm
