// Deterministic, seedable PRNG for property-based tests and workload
// generation. xoshiro256** seeded through splitmix64; independent of the
// platform's std::mt19937 so test vectors are stable across toolchains.
#pragma once

#include <cstdint>
#include <vector>

namespace wm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  double uniform01();

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[below(v.size())];
  }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace wm
