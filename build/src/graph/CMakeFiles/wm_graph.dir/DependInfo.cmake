
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/double_cover.cpp" "src/graph/CMakeFiles/wm_graph.dir/double_cover.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/double_cover.cpp.o.d"
  "/root/repo/src/graph/enumerate.cpp" "src/graph/CMakeFiles/wm_graph.dir/enumerate.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/enumerate.cpp.o.d"
  "/root/repo/src/graph/exact.cpp" "src/graph/CMakeFiles/wm_graph.dir/exact.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/exact.cpp.o.d"
  "/root/repo/src/graph/factorisation.cpp" "src/graph/CMakeFiles/wm_graph.dir/factorisation.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/factorisation.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/wm_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/wm_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/isomorphism.cpp" "src/graph/CMakeFiles/wm_graph.dir/isomorphism.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/isomorphism.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/graph/CMakeFiles/wm_graph.dir/matching.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/matching.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/graph/CMakeFiles/wm_graph.dir/properties.cpp.o" "gcc" "src/graph/CMakeFiles/wm_graph.dir/properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
