// Timing bench: model checking (||phi||_K) and formula compilation as
// functions of graph size and modal depth, plus compiled-machine
// execution (whose round count is md + 1 by Theorem 2).
//
// Ported to the task-parallel substrate: the (n, depth) grid cells
// evaluate in parallel into order-preserving slots. stdout carries the
// semantic results — satisfying-state counts, machine classes, round
// counts and output checksums — and is byte-identical at any --threads
// setting; perf goes to stderr and BENCH_modelcheck.json.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "compile/formula_compiler.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

Formula deep_formula(int depth) {
  // (<*,*>)^depth (q1 | <*,*>_{>=2} q2) — a fixed graded pattern.
  Formula f = Formula::disj(Formula::prop(1),
                            Formula::diamond({0, 0}, Formula::prop(2), 2));
  for (int i = 0; i < depth; ++i) f = Formula::diamond({0, 0}, f);
  return f;
}

std::uint64_t checksum(const std::vector<bool>& bits) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const bool b : bits) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr int kSizes[] = {32, 128, 512};
constexpr int kDepths[] = {1, 4, 8};
constexpr int kExecSizes[] = {32, 128};

std::string modelcheck_cell(int n, int depth) {
  WM_TIME_SCOPE("bench.modelcheck.cell");
  Rng rng(1);
  const Graph g = random_connected_graph(n, 4, n, rng);
  const KripkeModel k =
      kripke_from_graph(PortNumbering::random(g, rng), Variant::MinusMinus);
  const std::vector<bool> sat = model_check(k, deep_formula(depth));
  std::size_t count = 0;
  for (const bool b : sat) count += b;
  char buf[96];
  std::snprintf(buf, sizeof buf, "%6d %6d %12zu   %016llx\n", n, depth, count,
                static_cast<unsigned long long>(checksum(sat)));
  return buf;
}

std::string execute_cell(int n, int depth) {
  WM_TIME_SCOPE("bench.modelcheck.execute");
  Rng rng(2);
  const Graph g = random_connected_graph(n, 4, n, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const auto m = compile_formula(deep_formula(depth), Variant::MinusMinus, 4);
  const ExecutionResult r = execute(*m, p);
  // Theorem 2: the compiled machine stops after exactly md + 1 rounds,
  // and its Boolean outputs must coincide with the model checker's
  // verdicts on the K_{-,-} view.
  const std::vector<bool> truth = model_check(
      kripke_from_graph(p, Variant::MinusMinus, 4), deep_formula(depth));
  std::vector<bool> outputs(truth.size());
  bool agree = r.stopped;
  for (int v = 0; v < g.num_nodes(); ++v) {
    outputs[v] = r.final_states[v].as_int() == 1;
    if (outputs[v] != truth[v]) agree = false;
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%6d %6d %8d %8s   %016llx\n", n, depth,
                r.rounds, agree ? "yes" : "NO",
                static_cast<unsigned long long>(checksum(outputs)));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("=== Model checking (||phi||_K) ===\n\n");
  std::printf("%6s %6s %12s   %-16s\n", "n", "depth", "satisfying", "checksum");
  {
    std::vector<std::pair<int, int>> grid;
    for (const int n : kSizes) {
      for (const int d : kDepths) grid.emplace_back(n, d);
    }
    const benchutil::Timer t;
    std::vector<std::string> rows(grid.size());
    pool.parallel_for(0, grid.size(), [&](std::uint64_t i) {
      rows[i] = modelcheck_cell(grid[i].first, grid[i].second);
    }, 1);
    for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
    benchutil::report_phase("model check grid", t.ms(), grid.size());
  }

  std::printf("\n=== Formula compilation (Theorem 2) ===\n\n");
  std::printf("%6s %-10s %-10s\n", "depth", "class", "size");
  {
    const benchutil::Timer t;
    std::vector<std::string> rows(std::size(kDepths));
    pool.parallel_for(0, rows.size(), [&](std::uint64_t i) {
      const int depth = kDepths[i];
      const Formula f = deep_formula(depth);
      const auto m = compile_formula(f, Variant::MinusMinus, 4);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%6d %-10s %-10zu\n", depth,
                    m->algebraic_class().name().c_str(), f.size());
      rows[i] = buf;
    }, 1);
    for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
    benchutil::report_phase("compile", t.ms(), rows.size());
  }

  std::printf("\n=== Compiled-machine execution ===\n\n");
  std::printf("%6s %6s %8s %8s   %-16s\n", "n", "depth", "rounds",
              "agree", "checksum");
  std::size_t exec_cells = 0;
  {
    std::vector<std::pair<int, int>> grid;
    for (const int n : kExecSizes) {
      for (const int d : kDepths) grid.emplace_back(n, d);
    }
    exec_cells = grid.size();
    const benchutil::Timer t;
    std::vector<std::string> rows(grid.size());
    pool.parallel_for(0, grid.size(), [&](std::uint64_t i) {
      rows[i] = execute_cell(grid[i].first, grid[i].second);
    }, 1);
    for (const std::string& r : rows) std::fputs(r.c_str(), stdout);
    benchutil::report_phase("execute grid", t.ms(), grid.size());
  }

  std::printf("\nShape checks: deep_formula(depth) has md = depth + 1, so\n");
  std::printf("rounds == depth + 2 on every execute row (Theorem 2: md + 1),\n");
  std::printf("and agree == yes everywhere — the machine's outputs match\n");
  std::printf("the model checker on the K_{-,-} view.\n");

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "modelcheck", kSizes[std::size(kSizes) - 1], pool.num_threads(), wall,
      wall > 0 ? 1000.0 * static_cast<double>(9 + 3 + exec_cells) / wall : 0);
  return 0;
}
