file(REMOVE_RECURSE
  "CMakeFiles/wm_algorithms.dir/machines.cpp.o"
  "CMakeFiles/wm_algorithms.dir/machines.cpp.o.d"
  "libwm_algorithms.a"
  "libwm_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
