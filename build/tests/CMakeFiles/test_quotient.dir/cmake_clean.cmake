file(REMOVE_RECURSE
  "CMakeFiles/test_quotient.dir/test_quotient.cpp.o"
  "CMakeFiles/test_quotient.dir/test_quotient.cpp.o.d"
  "test_quotient"
  "test_quotient.pdb"
  "test_quotient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quotient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
