// The one parallel-search engine behind every exhaustive scan.
//
// Every search in this repo quantifies over an indexed candidate space —
// edge masks, port numberings, block colourings, anchor assignments —
// and needs one of four shapes:
//
//   dedup_scan   visit all candidates, keep one representative per
//                equivalence class (lowest index), stream representatives
//                in index order
//   dedup_stream dedup_scan over a sub-range, streaming (key, rep) pairs
//                so batched callers can dedup across batches (the
//                streaming census of src/store)
//   find_first   lowest index satisfying a predicate (early stop)
//   for_each     independent per-index work into caller-owned slots
//   reduce       chunk-ordered deterministic fold
//
// ParallelVisitor provides exactly those, runs them on the work-stealing
// ThreadPool when one is supplied and inline (index order, zero threads)
// when not, and owns the determinism contract in both modes: the result
// of every method is a pure function of the candidate space, never of
// thread timing. Searches above this layer (graph/enumerate,
// bisim/quotient, cover/covering, core/decision, core/solvability,
// core/synthesis, problems/catalogue) declare *what* to scan; this file
// is the only place that knows *how* — DiVinE's shape: one generic
// visitor driving all algorithms over one concurrent dedup table
// (util/lockfree_set.hpp).
//
// Determinism contracts (see DESIGN.md "Parallel visitor core"):
//  - dedup_scan keeps the *lowest* index per key (LockfreeMinMap's
//    min-merge) and replays representatives sorted, so the streamed
//    sequence is identical at any worker count — and identical to the
//    sequential first-seen order, because a full in-order scan's first
//    occurrence IS the lowest index.
//  - find_first delegates to ThreadPool::parallel_find_first
//    (lowest-witness contract); the inline path scans in order. Both run
//    the predicate inside obs::SpeculativeScope, so work counters hit
//    from predicates count 0 everywhere instead of a timing-dependent
//    amount.
//  - reduce combines partials in chunk order (associativity suffices,
//    commutativity is not required).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "util/lockfree_set.hpp"
#include "util/parallel.hpp"

namespace wm {

class ParallelVisitor {
 public:
  /// `pool` may be nullptr: every method then runs inline in the calling
  /// thread, in index order — the sequential entry points of the layers
  /// above are thin wrappers around this case.
  explicit ParallelVisitor(ThreadPool* pool) : pool_(pool) {}

  bool parallel() const { return pool_ != nullptr; }
  int workers() const { return pool_ == nullptr ? 1 : pool_->num_threads(); }

  /// Deduplicated exhaustive scan over [0, count). For each index,
  /// visit(i, emit) classifies the candidate: emit(key) files index i
  /// under `key` (zero emits = candidate inadmissible). The lowest index
  /// of each class is its representative; representatives are streamed
  /// to consume(rep) in increasing index order until consume returns
  /// false. Returns the number of representatives streamed.
  ///
  /// Pooled: full frontier scan in per-worker batches into the lock-free
  /// min-map, then sorted replay — consume's early stop ends the replay
  /// but cannot cancel the (already complete) scan. Inline: first
  /// occurrences stream immediately and a stop cancels the rest of the
  /// scan. Either way the streamed prefix is the same sequence.
  ///
  /// Both paths emit the dedup.fresh_keys / dedup.dedup_hits work
  /// counters (distinct keys / re-encounters across the indices actually
  /// scanned), so pooled totals are thread-count-invariant by
  /// construction. `expected_keys` pre-sizes the table (0 = grow
  /// cooperatively).
  template <typename Key, typename Hash = std::hash<Key>, typename Visit,
            typename Consume>
  std::size_t dedup_scan(std::uint64_t count, Visit&& visit,
                         Consume&& consume,
                         std::size_t expected_keys = 0) const {
    if (pool_ != nullptr) {
      LockfreeMinMap<Key, std::uint64_t, Hash> table(expected_keys);
      pool_->parallel_chunks(0, count, [&](std::uint64_t lo, std::uint64_t hi,
                                           int) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          visit(i, [&](Key key) { table.insert_min(std::move(key), i); });
        }
      });
      std::vector<std::uint64_t> reps = table.values();
      std::sort(reps.begin(), reps.end());
      std::size_t streamed = 0;
      for (const std::uint64_t rep : reps) {
        ++streamed;
        if (!consume(rep)) break;
      }
      return streamed;
    }
    // Inline: in-order scan, first occurrence per key streamed on the
    // spot. Counter totals are emitted from the same two quantities the
    // table harvest uses (inserts and distinct keys).
    std::unordered_set<Key, Hash> seen;
    std::uint64_t inserts = 0;
    std::size_t streamed = 0;
    bool stop = false;
    for (std::uint64_t i = 0; i < count && !stop; ++i) {
      visit(i, [&](Key key) {
        ++inserts;
        if (!seen.insert(std::move(key)).second || stop) return;
        ++streamed;
        if (!consume(i)) stop = true;
      });
    }
    WM_COUNT_ADD(dedup.fresh_keys, seen.size());
    WM_COUNT_ADD(dedup.dedup_hits, inserts - seen.size());
    return streamed;
  }

  /// Streaming sibling of dedup_scan for *batched* scans: deduplicates
  /// the sub-range [begin, end) and streams (key, representative) pairs
  /// — the representative is the lowest index of the key *within this
  /// range* — to consume(key, rep) in increasing index order until
  /// consume returns false. Returns the number of pairs streamed.
  ///
  /// Passing the key through lets a caller running consecutive batches
  /// dedup across them against longer-lived state (the disk-backed
  /// certificate store of src/store): within-batch duplicates never
  /// leave this method, cross-batch duplicates are the caller's to
  /// resolve. Because batches are scanned in increasing index order and
  /// pairs replay sorted, the first batch to stream a key holds its
  /// global minimum — the lowest-witness contract survives batching.
  ///
  /// Counter behaviour matches dedup_scan (dedup.fresh_keys /
  /// dedup.dedup_hits per range scanned); totals are thread-count
  /// invariant for a fixed batching, and the caller's batching must not
  /// depend on thread count (every call site uses a fixed batch size).
  template <typename Key, typename Hash = std::hash<Key>, typename Visit,
            typename Consume>
  std::size_t dedup_stream(std::uint64_t begin, std::uint64_t end,
                           Visit&& visit, Consume&& consume,
                           std::size_t expected_keys = 0) const {
    if (pool_ != nullptr) {
      LockfreeMinMap<Key, std::uint64_t, Hash> table(expected_keys);
      pool_->parallel_chunks(begin, end, [&](std::uint64_t lo,
                                             std::uint64_t hi, int) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          visit(i, [&](Key key) { table.insert_min(std::move(key), i); });
        }
      });
      std::vector<std::pair<Key, std::uint64_t>> reps = table.harvest();
      std::sort(reps.begin(), reps.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      std::size_t streamed = 0;
      for (const auto& [key, rep] : reps) {
        ++streamed;
        if (!consume(key, rep)) break;
      }
      return streamed;
    }
    std::unordered_set<Key, Hash> seen;
    std::uint64_t inserts = 0;
    std::size_t streamed = 0;
    bool stop = false;
    for (std::uint64_t i = begin; i < end && !stop; ++i) {
      visit(i, [&](Key key) {
        ++inserts;
        auto [it, fresh] = seen.insert(std::move(key));
        if (!fresh || stop) return;
        ++streamed;
        if (!consume(*it, i)) stop = true;
      });
    }
    WM_COUNT_ADD(dedup.fresh_keys, seen.size());
    WM_COUNT_ADD(dedup.dedup_hits, inserts - seen.size());
    return streamed;
  }

  /// Lowest index in [begin, end) satisfying pred, or nullopt. The
  /// predicate runs inside obs::SpeculativeScope in both modes: pooled
  /// scans are speculative (indices above the witness may be probed), so
  /// work counters incremented from predicates are suppressed everywhere
  /// to keep totals thread-count-invariant — count deterministic work
  /// from the returned witness instead.
  std::optional<std::uint64_t> find_first(
      std::uint64_t begin, std::uint64_t end,
      const std::function<bool(std::uint64_t)>& pred) const {
    if (pool_ != nullptr) return pool_->parallel_find_first(begin, end, pred);
    obs::SpeculativeScope suppress_work_counters;
    for (std::uint64_t i = begin; i < end; ++i) {
      if (pred(i)) return i;
    }
    return std::nullopt;
  }

  /// Runs body(i) for every i in [0, count): pooled parallel_for, or an
  /// inline in-order loop. body must only touch data it owns (per-index
  /// slots, per-worker scratch).
  void for_each(std::uint64_t count,
                const std::function<void(std::uint64_t)>& body) const {
    if (pool_ != nullptr) {
      pool_->parallel_for(0, count, body);
      return;
    }
    for (std::uint64_t i = 0; i < count; ++i) body(i);
  }

  /// Deterministic fold of map(i) over [0, count) with an associative
  /// combine: partials are combined in chunk order, so the result
  /// matches the inline left fold at any worker count.
  template <typename T, typename Map, typename Combine>
  T reduce(std::uint64_t count, T identity, Map&& map,
           Combine&& combine) const {
    if (pool_ != nullptr) {
      return pool_->parallel_reduce<T>(0, count, std::move(identity),
                                       std::forward<Map>(map),
                                       std::forward<Combine>(combine));
    }
    T acc = std::move(identity);
    for (std::uint64_t i = 0; i < count; ++i) acc = combine(std::move(acc), map(i));
    return acc;
  }

 private:
  ThreadPool* pool_;
};

}  // namespace wm
