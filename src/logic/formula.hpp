// Modal logic formulas: ML, GML, MML and GMML in one AST (Section 4.1).
//
// A modality alpha is a pair (i, j) of port numbers where either component
// may be '*' (encoded 0): the accessibility relation R_(i,j) of the Kripke
// models K_{a,b}(G, p) (Section 4.3, Figure 7). Grades k >= 1 give graded
// diamonds <alpha>_{>=k}; grade 1 is the plain diamond.
//
// Formulas are immutable and cheaply shareable; structural equality and
// hashing make subformula memoisation cheap in the model checker and the
// Theorem 2 compiler.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wm {

/// Modality index alpha; 0 means '*'. The four signatures I^Delta_{a,b} of
/// the paper are: (+,+) i,j in [Delta]; (-,+) i = *, j in [Delta];
/// (+,-) i in [Delta], j = *; (-,-) i = j = *.
struct Modality {
  int in = 0;   // i: receiver-side port, 0 = '*'
  int out = 0;  // j: sender-side port, 0 = '*'
  friend bool operator==(const Modality&, const Modality&) = default;
  friend auto operator<=>(const Modality&, const Modality&) = default;
  std::string to_string() const;
};

/// Which Kripke view / modality signature a formula lives in (Section 4.3).
enum class Variant {
  PlusPlus,    // K_{+,+}: modalities (i,j) — classes VVc(1), VV(1)
  MinusPlus,   // K_{-,+}: modalities (*,j) — classes MV(1), SV(1)
  PlusMinus,   // K_{+,-}: modalities (i,*) — class VB(1)
  MinusMinus,  // K_{-,-}: modalities (*,*) — classes MB(1), SB(1)
};

std::string variant_name(Variant v);

class Formula;
using FormulaVec = std::vector<Formula>;

class Formula {
 public:
  enum class Kind : std::uint8_t { True, False, Prop, Not, And, Or, Diamond, Box };

  /// Default is the constant True.
  Formula();

  static Formula tru();
  static Formula fls();
  /// Proposition q_p, p >= 1 (the paper's degree propositions Phi_Delta).
  static Formula prop(int p);
  static Formula negate(Formula f);
  static Formula conj(Formula a, Formula b);
  static Formula disj(Formula a, Formula b);
  /// Conjunction over a list; empty list = True.
  static Formula conj_all(FormulaVec fs);
  /// Disjunction over a list; empty list = False.
  static Formula disj_all(FormulaVec fs);
  /// <alpha>_{>=grade} f. Precondition: grade >= 1.
  static Formula diamond(Modality alpha, Formula f, int grade = 1);
  /// [alpha] f == ~<alpha>~f (kept as a node for readability).
  static Formula box(Modality alpha, Formula f);

  Kind kind() const { return node_->kind; }
  /// Precondition: kind() == Prop.
  int prop_id() const;
  /// Children: Not/Box/Diamond have one, And/Or have two.
  const Formula& child(std::size_t i = 0) const;
  std::size_t num_children() const { return node_->kids.size(); }
  /// Precondition: Diamond or Box.
  Modality modality() const;
  /// Precondition: Diamond. Grade k of <alpha>_{>=k}.
  int grade() const;

  /// md(phi) — number of nested modalities (Section 4.1). Equals the
  /// running time of the compiled algorithm minus one (Theorem 2).
  int modal_depth() const { return node_->depth; }
  /// Number of AST nodes.
  std::size_t size() const { return node_->size; }

  /// True if some diamond has grade >= 2 — i.e. the formula needs a
  /// graded logic (GML / GMML) rather than ML / MML.
  bool is_graded() const;

  /// True if every modality fits the signature I^Delta_{a,b}: components
  /// are '*' exactly where the variant demands and port numbers <= delta.
  bool in_signature(Variant variant, int delta) const;

  /// Largest proposition index used (0 if none).
  int max_prop() const;
  /// Largest port number mentioned in any modality (0 if none).
  int max_port() const;

  std::string to_string() const;

  std::size_t hash() const { return node_->hash; }
  friend bool operator==(const Formula& a, const Formula& b);
  friend std::strong_ordering operator<=>(const Formula& a, const Formula& b);

 private:
  struct Node {
    Kind kind = Kind::True;
    int prop = 0;
    Modality alpha;
    int grade = 1;
    std::vector<Formula> kids;
    int depth = 0;
    std::size_t size = 1;
    std::size_t hash = 0;
  };
  explicit Formula(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  static Formula make(Node&& n);

  std::shared_ptr<const Node> node_;
};

std::ostream& operator<<(std::ostream& os, const Formula& f);

/// All distinct subformulas of f (including f), no particular order
/// guarantee beyond: children precede parents.
FormulaVec subformula_closure(const Formula& f);

}  // namespace wm

template <>
struct std::hash<wm::Formula> {
  std::size_t operator()(const wm::Formula& f) const noexcept { return f.hash(); }
};
