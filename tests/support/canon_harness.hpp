// Property-test harness for the canonical-form subsystem.
//
// The canonical tests are metamorphic: generate a structure, generate a
// random relabelling, and require the canonical certificate to be
// byte-identical (plus exact-witness checks on the labellings and
// discovered automorphisms). This header provides the seeded generators
// and the relabelling / verification helpers shared by test_canonical*,
// the quotient metamorphic tests and the slow n=7 sweeps.
//
// Seeds: cases iterate base seeds × per-seed case counts. Setting the
// WM_SEED environment variable narrows the run to that single base seed
// (same convention as tests/support/diff_harness.hpp); failure messages
// print the base seed and case index, so
// `WM_SEED=<n> ctest -R canonical` reproduces a reported failure.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <utility>
#include <vector>

#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/isomorphism.hpp"
#include "logic/kripke.hpp"
#include "port/port_numbering.hpp"
#include "util/rng.hpp"

namespace wm::canontest {

/// Base seeds for the metamorphic sweeps; WM_SEED=<n> narrows to one.
inline std::vector<std::uint64_t> seeds_under_test() {
  if (const char* env = std::getenv("WM_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 7, 13, 42, 2012};
}

/// Uniform random permutation of 0..n-1.
inline std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  return perm;
}

/// The Kripke model with states renamed v -> perm[v] (same signature).
inline KripkeModel relabelled_model(const KripkeModel& k,
                                    const std::vector<int>& perm) {
  KripkeModel m(k.num_states(), k.num_props());
  for (const Modality& alpha : k.modalities()) {
    m.ensure_relation(alpha);
    for (int v = 0; v < k.num_states(); ++v) {
      for (int w : k.successors(alpha, v)) m.add_edge(alpha, perm[v], perm[w]);
    }
  }
  for (int q = 1; q <= k.num_props(); ++q) {
    for (int v = 0; v < k.num_states(); ++v) {
      if (k.prop_holds(q, v)) m.set_prop(q, perm[v]);
    }
  }
  return m;
}

/// The port numbering carried along g.relabelled(perm): node perm[v]
/// keeps v's out/in port assignment towards each (renamed) neighbour.
inline PortNumbering relabelled_numbering(const PortNumbering& p,
                                          const std::vector<NodeId>& perm) {
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  const Graph h = g.relabelled(perm);
  std::vector<NodeId> inv(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) inv[perm[v]] = v;
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const NodeId nv = perm[v];
    const auto& nbs = h.neighbours(nv);
    out[nv].resize(nbs.size());
    in[nv].resize(nbs.size());
    for (std::size_t r = 0; r < nbs.size(); ++r) {
      const NodeId u = inv[nbs[r]];
      out[nv][r] = p.out_port(v, u);
      in[nv][r] = p.in_port(v, u);
    }
  }
  return PortNumbering::from_permutations(h, std::move(out), std::move(in));
}

/// Exact automorphism check at the RelationalStructure level — works for
/// all three reduction kinds via structure_of.
inline bool is_structure_automorphism(const RelationalStructure& s,
                                      const std::vector<int>& a) {
  const int n = s.n;
  if (static_cast<int>(a.size()) != n) return false;
  std::vector<bool> hit(static_cast<std::size_t>(n), false);
  for (int v = 0; v < n; ++v) {
    if (a[v] < 0 || a[v] >= n || hit[a[v]]) return false;
    hit[a[v]] = true;
    if (s.colour[a[v]] != s.colour[v]) return false;
  }
  for (std::size_t r = 0; r < s.out.size(); ++r) {
    std::vector<std::pair<int, int>> orig, image;
    for (int v = 0; v < n; ++v) {
      for (int w : s.out[r][v]) {
        orig.emplace_back(v, w);
        image.emplace_back(a[v], a[w]);
      }
    }
    std::sort(orig.begin(), orig.end());
    std::sort(image.begin(), image.end());
    if (orig != image) return false;
  }
  return true;
}

/// Brute-force |Aut(g)| by scanning all n! node maps. n <= 8 only.
inline std::uint64_t automorphism_count(const Graph& g) {
  const int n = g.num_nodes();
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::uint64_t count = 0;
  do {
    if (is_isomorphism(g, g, perm)) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

/// A seeded random Kripke model: the `variant` view of a random port
/// numbering (consistent or general, seed-dependent) of a small random
/// connected graph — the same population the quotient search scans.
inline KripkeModel random_kripke_model(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.below(4));  // 3..6 nodes
  const int extra = static_cast<int>(rng.below(3));
  const Graph g = random_connected_graph(n, /*max_deg=*/3, extra, rng);
  const PortNumbering p = rng.chance(1, 2)
                              ? PortNumbering::random(g, rng)
                              : PortNumbering::random_consistent(g, rng);
  static const Variant variants[] = {Variant::PlusPlus, Variant::MinusPlus,
                                     Variant::PlusMinus, Variant::MinusMinus};
  return kripke_from_graph(p, variants[rng.below(4)]);
}

}  // namespace wm::canontest
