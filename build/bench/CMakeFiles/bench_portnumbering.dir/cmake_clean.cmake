file(REMOVE_RECURSE
  "CMakeFiles/bench_portnumbering.dir/bench_portnumbering.cpp.o"
  "CMakeFiles/bench_portnumbering.dir/bench_portnumbering.cpp.o.d"
  "bench_portnumbering"
  "bench_portnumbering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portnumbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
