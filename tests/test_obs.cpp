// Observability layer: registry semantics, speculative suppression,
// trace JSON well-formedness, duration histograms, run manifests,
// progress heartbeats, and the determinism contract the CI regression
// gate relies on — work-counter totals identical at any thread count.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bisim/quotient.hpp"
#include "core/decision.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/kripke.hpp"
#include "obs/env.hpp"
#include "obs/histogram.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/json.hpp"
#include "port/port_numbering.hpp"
#include "problems/catalogue.hpp"
#include "util/parallel.hpp"

namespace wm {
namespace {

using obs::CounterKind;

// --- Registry -------------------------------------------------------------

TEST(ObsRegistry, CountersRegisterOnFirstUseAndSnapshotByKind) {
  obs::Counter& c = obs::registry().counter("obstest.alpha", CounterKind::kWork);
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.kind(), CounterKind::kWork);

  const auto work = obs::registry().snapshot(CounterKind::kWork);
  ASSERT_TRUE(work.count("obstest.alpha"));
  EXPECT_EQ(work.at("obstest.alpha"), 42u);
  // A work counter must not leak into the info snapshot (the regression
  // gate reads only "work"; pool telemetry only "info").
  EXPECT_FALSE(obs::registry().snapshot(CounterKind::kInfo)
                   .count("obstest.alpha"));
}

TEST(ObsRegistry, SameNameReturnsSameCounterAndFirstKindWins) {
  obs::Counter& a = obs::registry().counter("obstest.pin", CounterKind::kInfo);
  obs::Counter& b = obs::registry().counter("obstest.pin", CounterKind::kWork);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.kind(), CounterKind::kInfo);
}

TEST(ObsRegistry, RecordMaxIsAHighWaterMark) {
  obs::Counter& c = obs::registry().counter("obstest.hwm", CounterKind::kInfo);
  c.reset();
  c.record_max(7);
  c.record_max(3);  // lower: ignored
  EXPECT_EQ(c.value(), 7u);
  c.record_max(19);
  EXPECT_EQ(c.value(), 19u);
}

TEST(ObsRegistry, MacrosCacheTheSiteAndCount) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  obs::registry().counter("obstest.macro").reset();
  for (int i = 0; i < 100; ++i) WM_COUNT(obstest.macro);
  WM_COUNT_ADD(obstest.macro, 900);
  EXPECT_EQ(obs::registry().counter("obstest.macro").value(), 1000u);
#endif
}

// --- Speculative suppression ---------------------------------------------

TEST(ObsSpeculation, ScopesNestAndSuppressOnlyWorkCounters) {
  obs::Counter& work = obs::registry().counter("obstest.spec.work",
                                               CounterKind::kWork);
  obs::Counter& info = obs::registry().counter("obstest.spec.info",
                                               CounterKind::kInfo);
  work.reset();
  info.reset();
  EXPECT_FALSE(obs::speculation_suppressed());
  {
    obs::SpeculativeScope outer;
    EXPECT_TRUE(obs::speculation_suppressed());
    work.add();  // dropped
    info.add();  // info ignores suppression
    {
      obs::SpeculativeScope inner;
      EXPECT_TRUE(obs::speculation_suppressed());
      work.add();  // dropped
    }
    // Leaving the inner scope must NOT clear the outer suppression.
    EXPECT_TRUE(obs::speculation_suppressed());
    work.add();  // dropped
  }
  EXPECT_FALSE(obs::speculation_suppressed());
  work.add();  // counted
  EXPECT_EQ(work.value(), 1u);
  EXPECT_EQ(info.value(), 1u);
}

TEST(ObsSpeculation, SuppressionIsPerThread) {
  obs::Counter& c = obs::registry().counter("obstest.spec.thread",
                                            CounterKind::kWork);
  c.reset();
  obs::SpeculativeScope scope;  // suppresses THIS thread only
  ThreadPool pool(2);
  // With a 2-executor pool the calling thread participates in the scan
  // (suppressed) while the worker thread counts normally; every index is
  // executed exactly once, so the total is whatever the unsuppressed
  // thread picked up — at least zero, at most all. What must hold:
  // a fresh thread starts unsuppressed.
  bool worker_saw_suppressed = true;
  pool.submit([&] { worker_saw_suppressed = obs::speculation_suppressed(); });
  pool.parallel_for(0, 1, [](std::uint64_t) {});  // drains the submit
  EXPECT_FALSE(worker_saw_suppressed);
}

// --- Trace JSON -----------------------------------------------------------

/// Minimal JSON well-formedness scan: balanced {}/[] outside strings,
/// strings closed with legal escapes, no raw control characters.
/// (Unused when -DWM_OBS=OFF skips the trace round-trip test.)
[[maybe_unused]] bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char ch : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        return false;  // raw control character inside a string
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

[[maybe_unused]] std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObsTrace, DisabledByDefaultAndScopesAreInert) {
  EXPECT_FALSE(obs::trace_enabled());
  { WM_TRACE_SCOPE("obstest.inert"); }  // must not crash or emit
  EXPECT_FALSE(obs::trace_stop());      // nothing active to flush
}

TEST(ObsTrace, NestedScopesProduceWellFormedChromeTraceJson) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::string path = ::testing::TempDir() + "wm_obs_trace.json";
  obs::trace_start(path);
  ASSERT_TRUE(obs::trace_enabled());
  {
    WM_TRACE_SCOPE("outer");
    {
      WM_TRACE_SCOPE("inner");
      WM_TRACE_SCOPE("needs escaping \"quotes\" and \\slashes\\ and\nnewline");
    }
  }
  // A scope on a pool worker lands on its own tid track.
  {
    ThreadPool pool(2);
    pool.parallel_for(0, 4, [](std::uint64_t) { WM_TRACE_SCOPE("pooled"); });
  }
  ASSERT_TRUE(obs::trace_stop());
  EXPECT_FALSE(obs::trace_enabled());

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json_well_formed(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  for (const char* needle :
       {"\"outer\"", "\"inner\"", "\"pooled\"", "\"ph\":\"X\"",
        "needs escaping \\\"quotes\\\" and \\\\slashes\\\\ and\\nnewline"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
  std::remove(path.c_str());
#endif
}

// --- Parallel counter hammer (the TSan target) ----------------------------

TEST(ObsHammer, EightWorkersCountExactly) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  obs::Counter& work = obs::registry().counter("obstest.hammer",
                                               CounterKind::kWork);
  obs::Counter& info = obs::registry().counter("obstest.hammer.info",
                                               CounterKind::kInfo);
  work.reset();
  info.reset();
  ThreadPool pool(8);
  constexpr std::uint64_t kIters = 100000;
  pool.parallel_for(0, kIters, [](std::uint64_t) {
    WM_COUNT(obstest.hammer);
    WM_COUNT_INFO(obstest.hammer.info);
    WM_COUNT_MAX(obstest.hammer.hwm, 5);
  });
  EXPECT_EQ(work.value(), kIters);
  EXPECT_EQ(info.value(), kIters);
  EXPECT_EQ(obs::registry().counter("obstest.hammer.hwm").value(), 5u);
  // The pool's own telemetry is alive and self-consistent.
  const PoolTelemetry t = pool.telemetry();
  ASSERT_EQ(t.tasks_per_worker.size(), 8u);
  EXPECT_GE(t.steal_attempts, t.steal_successes);
#endif
}

// --- Duration histograms ---------------------------------------------------

TEST(ObsHistogram, BucketsAndPercentilesAreGolden) {
  // 100 samples of 1000 ns (bucket bit_width(1000) = 10, upper bound
  // 1023 ns = 1.023 us) plus 10 samples of 100000 ns (bucket 17, upper
  // bound 131071 ns = 131.071 us). Ranks: p50 -> 55, p90 -> 99 (both in
  // the first group), p99 -> 109 (second group). Max is exact.
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(100000);
  const obs::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 110u);
  EXPECT_DOUBLE_EQ(s.p50_us, 1.023);
  EXPECT_DOUBLE_EQ(s.p90_us, 1.023);
  EXPECT_DOUBLE_EQ(s.p99_us, 131.071);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);

  h.reset();
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_DOUBLE_EQ(h.summary().max_us, 0.0);
}

TEST(ObsHistogram, ZeroAndTinyDurationsLandInTheLowestBuckets) {
  obs::Histogram h;
  h.record(0);  // bucket 0: upper bound 0
  const obs::HistogramSummary zero = h.summary();
  EXPECT_EQ(zero.count, 1u);
  EXPECT_DOUBLE_EQ(zero.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(zero.max_us, 0.0);

  h.record(1);  // bucket 1: [1, 1], upper bound 1 ns = 0.001 us
  const obs::HistogramSummary one = h.summary();
  EXPECT_EQ(one.count, 2u);
  // Rank ceil(0.5 * 2) = 1 is the 0 ns sample; p99's rank 2 is the 1 ns.
  EXPECT_DOUBLE_EQ(one.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(one.p99_us, 0.001);
  EXPECT_DOUBLE_EQ(one.max_us, 0.001);
}

TEST(ObsHistogram, RegistryReturnsStableReferences) {
  obs::Histogram& a = obs::histograms().histogram("obstest.hist.pin");
  obs::Histogram& b = obs::histograms().histogram("obstest.hist.pin");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.record(500);
  const auto snap = obs::histograms().snapshot();
  ASSERT_TRUE(snap.count("obstest.hist.pin"));
  EXPECT_EQ(snap.at("obstest.hist.pin").count, 1u);
}

TEST(ObsHistogram, ShardMergeMatchesSequentialRecording) {
  // The same multiset recorded sequentially and by 8 pool workers must
  // merge to the identical summary: the thread -> shard mapping may
  // scatter samples differently, but the merged multiset — and hence
  // every percentile — is invariant.
  auto nanos_for = [](std::uint64_t i) { return i * 37 + (i % 7) * 1000; };
  constexpr std::uint64_t kSamples = 20000;
  obs::Histogram seq;
  for (std::uint64_t i = 0; i < kSamples; ++i) seq.record(nanos_for(i));
  obs::Histogram par;
  {
    ThreadPool pool(8);
    pool.parallel_for(0, kSamples,
                      [&](std::uint64_t i) { par.record(nanos_for(i)); });
  }
  const obs::HistogramSummary a = seq.summary();
  const obs::HistogramSummary b = par.summary();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p90_us, b.p90_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_DOUBLE_EQ(a.max_us, b.max_us);
  EXPECT_EQ(a.count, kSamples);
}

TEST(ObsHistogram, TimeScopeRecordsOneSampleAndTimingsJsonIsWellFormed) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  obs::Histogram& h = obs::histograms().histogram("obstest.hist.scope");
  h.reset();
  const std::uint64_t before = h.summary().count;
  { WM_TIME_SCOPE("obstest.hist.scope"); }
  EXPECT_EQ(h.summary().count, before + 1);

  const std::string json = obs::timings_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"obstest.hist.scope\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos) << json;
#endif
}

// --- Run manifest ----------------------------------------------------------

TEST(ObsManifest, JsonIsWellFormedAndCarriesProvenance) {
  const std::string json = obs::manifest_json(4);
  EXPECT_TRUE(json_well_formed(json)) << json;
  for (const char* key :
       {"\"git\"", "\"compiler\"", "\"build_type\"", "\"flags\"", "\"obs\"",
        "\"trace\"", "\"threads\"", "\"seed\"", "\"progress\"", "\"start\"",
        "\"end\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos) << json;
}

TEST(ObsManifest, TextFormNamesTheSameFacts) {
  const std::string text = obs::manifest_text(2);
  for (const char* needle : {"git: ", "compiler: ", "threads: 2", "start: "}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
}

// --- Progress heartbeats ---------------------------------------------------

TEST(ObsProgress, SilentByDefault) {
  // Without progress_start / WM_PROGRESS a task must emit nothing: the
  // benches' stderr stays heartbeat-free unless a human opts in.
  ASSERT_FALSE(obs::progress_enabled());
  ::testing::internal::CaptureStderr();
  {
    obs::ProgressTask task("obstest.silent", 100);
    for (int i = 0; i < 100; ++i) task.tick();
#ifdef WM_OBS_DISABLED
    EXPECT_EQ(task.done(), 0u);  // ticks compile out entirely
#else
    EXPECT_EQ(task.done(), 100u);
#endif
  }
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(ObsProgress, HeartbeatPrintsProgressAndDoneLines) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  ::testing::internal::CaptureStderr();
  obs::progress_start(0.01);
  EXPECT_TRUE(obs::progress_enabled());
  {
    obs::ProgressTask task("obstest.beat", 1000);
    task.tick(250);
    task.tick(750);
    // The destructor prints the final line while the heartbeat runs, so
    // no sleep is needed for deterministic output.
  }
  obs::progress_stop();
  EXPECT_FALSE(obs::progress_enabled());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[progress] obstest.beat done 1000/1000"),
            std::string::npos)
      << err;
#endif
}

TEST(ObsProgress, TicksFromPoolWorkersSumExactly) {
  obs::ProgressTask task("obstest.pool", 50000);
  ThreadPool pool(8);
  pool.parallel_for(0, 50000, [&](std::uint64_t) { task.tick(); });
#ifdef WM_OBS_DISABLED
  EXPECT_EQ(task.done(), 0u);  // stubbed out entirely
#else
  EXPECT_EQ(task.done(), 50000u);
#endif
}

// --- The determinism contract the regression gate relies on ---------------

/// Runs `body` against a fresh pool of `threads` executors and returns
/// how much every work counter grew — the exact quantity bench_diff.py
/// gates on.
std::map<std::string, std::uint64_t> work_delta(
    int threads, const std::function<void(ThreadPool&)>& body) {
  const auto before = obs::registry().snapshot(CounterKind::kWork);
  ThreadPool pool(threads);
  body(pool);
  const auto after = obs::registry().snapshot(CounterKind::kWork);
  std::map<std::string, std::uint64_t> delta;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    if (value != base) delta[name] = value - base;
  }
  return delta;
}

void expect_thread_invariant(const std::function<void(ThreadPool&)>& body) {
#ifdef WM_OBS_DISABLED
  work_delta(1, body);  // still exercises the workload; nothing to compare
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const auto seq = work_delta(1, body);
  EXPECT_FALSE(seq.empty());  // the workload must actually be instrumented
  const auto par = work_delta(8, body);
  EXPECT_EQ(seq, par);
#endif
}

TEST(ObsDeterminism, QuotientSearchWorkInvariantAcrossThreadCounts) {
  std::vector<PortNumbering> numberings;
  for_each_consistent_port_numbering(cycle_graph(4), [&](const PortNumbering& p) {
    numberings.push_back(p);
    return true;
  });
  ASSERT_FALSE(numberings.empty());
  expect_thread_invariant([&](ThreadPool& pool) {
    search_distinct_quotients(
        numberings.size(),
        [&](std::uint64_t i) {
          return kripke_from_graph(numberings[i], Variant::PlusPlus);
        },
        /*graded=*/false, &pool);
  });
}

TEST(ObsDeterminism, DecisionWorkInvariantAcrossThreadCounts) {
  const auto problem = leaf_in_star_problem();
  std::vector<PortNumbering> scope;
  for (int k = 2; k <= 3; ++k) {
    scope.push_back(PortNumbering::identity(star_graph(k)));
  }
  for (const ProblemClass c : {ProblemClass::SV, ProblemClass::VB}) {
    expect_thread_invariant([&](ThreadPool& pool) {
      DecisionOptions opts;
      opts.rounds = 1;
      opts.pool = &pool;
      decide_solvable(*problem, scope, c, opts);
    });
  }
}

TEST(ObsDeterminism, IsoFreeEnumerationWorkInvariantAcrossThreadCounts) {
  EnumerateOptions opts;
  expect_thread_invariant([&](ThreadPool& pool) {
    std::size_t reps = 0;
    enumerate_graphs_modulo_iso_parallel(5, opts, pool, [&](const Graph&) {
      ++reps;
      return true;
    });
    EXPECT_GT(reps, 0u);
  });
}

// --- Init idempotence ------------------------------------------------------
// The footgun: a binary calling obs::init_from_env() itself AND using
// benchutil::parse_threads (which also calls it) used to depend on every
// constituent guarding itself. These pin the contract directly: however
// many times init runs, at most one heartbeat thread is ever launched.

TEST(ObsInit, RepeatedInitArmsAtMostOneHeartbeat) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  // gtest runs this in its own process (gtest_discover_tests), so
  // setting the env var and calling init twice models the
  // double-initialising binary exactly.
  ::setenv("WM_PROGRESS", "30", /*overwrite=*/1);
  const std::uint64_t before = obs::progress_heartbeat_launches();
  obs::init_from_env();
  obs::init_from_env();  // e.g. main() + benchutil::parse_threads
  const std::uint64_t after = obs::progress_heartbeat_launches();
  EXPECT_LE(after - before, 1u)
      << "double init_from_env launched a second heartbeat thread";
  obs::progress_stop();
  ::unsetenv("WM_PROGRESS");
#endif
}

TEST(ObsInit, RepeatedProgressStartLaunchesExactlyOnce) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::uint64_t before = obs::progress_heartbeat_launches();
  obs::progress_start(30.0);
  obs::progress_start(30.0);  // second call must be a no-op
  obs::progress_start(30.0);
  const std::uint64_t after = obs::progress_heartbeat_launches();
  EXPECT_EQ(after - before, 1u);
  obs::progress_stop();
#endif
}

// --- Structured logging ----------------------------------------------------

#if !defined(WM_OBS_DISABLED)
namespace {
std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}
}  // namespace
#endif

TEST(ObsLog, LevelNamesAreStable) {
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kInfo), "info");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kWarn), "warn");
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kError), "error");
}

TEST(ObsLog, EventsAreParsableJsonLinesWithHeadFieldsFirst) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::string path = ::testing::TempDir() + "wm_obs_log_lines.jsonl";
  obs::log_open(path);
  obs::log_set_level(obs::LogLevel::kDebug);
  obs::log_set_rate(0);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kDebug));
  {
    obs::LogEvent(obs::LogLevel::kInfo, "unit \"quoted\"\n")
        .str("who", "tab\there")
        .num("neg", -3)
        .num_u("big", 1ull << 40)
        .dbl("ms", 1.5)
        .boolean("flag", true);
  }
  {
    obs::RequestIdScope rid(99);
    obs::LogEvent(obs::LogLevel::kWarn, "with_rid");
  }
  obs::log_close();
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kError));

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  const serve::Json first = serve::parse_json(lines[0]);
  ASSERT_TRUE(first.is_object());
  // Head fields lead in fixed order so the lines grep well.
  EXPECT_EQ(first.members()[0].first, "ts");
  EXPECT_EQ(first.members()[1].first, "level");
  EXPECT_EQ(first.members()[2].first, "event");
  EXPECT_EQ(first.find("level")->as_string(), "info");
  EXPECT_EQ(first.find("event")->as_string(), "unit \"quoted\"\n");
  EXPECT_EQ(first.find("who")->as_string(), "tab\there");
  EXPECT_EQ(first.find("neg")->as_int(), -3);
  EXPECT_EQ(first.find("big")->as_int(), 1ll << 40);
  EXPECT_DOUBLE_EQ(first.find("ms")->as_double(), 1.5);
  EXPECT_TRUE(first.find("flag")->as_bool());
  EXPECT_EQ(first.find("rid"), nullptr);  // no request context
  const serve::Json second = serve::parse_json(lines[1]);
  EXPECT_EQ(second.find("level")->as_string(), "warn");
  ASSERT_NE(second.find("rid"), nullptr);
  EXPECT_EQ(second.find("rid")->as_int(), 99);
#endif
}

TEST(ObsLog, LevelThresholdFiltersEvents) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::string path = ::testing::TempDir() + "wm_obs_log_level.jsonl";
  obs::log_open(path);
  obs::log_set_level(obs::LogLevel::kWarn);
  obs::log_set_rate(0);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  obs::LogEvent(obs::LogLevel::kDebug, "dropped_debug");
  obs::LogEvent(obs::LogLevel::kInfo, "dropped_info");
  obs::LogEvent(obs::LogLevel::kError, "kept_error");
  obs::log_set_level(obs::LogLevel::kInfo);  // restore the default
  obs::log_close();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept_error"), std::string::npos);
#endif
}

TEST(ObsLog, RateLimitDropsAndCounts) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::string path = ::testing::TempDir() + "wm_obs_log_rate.jsonl";
  obs::log_open(path);
  obs::log_set_rate(3);
  const std::uint64_t written0 = obs::log_lines_written();
  const std::uint64_t dropped0 = obs::log_lines_dropped();
  for (int i = 0; i < 50; ++i) {
    obs::LogEvent(obs::LogLevel::kInfo, "flood").num("i", i);
  }
  const std::uint64_t written = obs::log_lines_written() - written0;
  const std::uint64_t dropped = obs::log_lines_dropped() - dropped0;
  // 3 admissions per steady-clock second; the burst may straddle one
  // second boundary, so allow two windows' worth plus a notice line.
  EXPECT_LE(written, 8u);
  EXPECT_GE(dropped, 42u);
  // Every event either wrote or dropped; written may also include
  // rollover notice lines, so the sum is at least the event count.
  EXPECT_GE(written + dropped, 50u);
  obs::log_set_rate(2000);
  obs::log_close();
#endif
}

TEST(ObsLog, RequestIdScopesNestAndRestore) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  EXPECT_EQ(obs::current_request_id(), 0u);
  const std::uint64_t a = obs::next_request_id();
  const std::uint64_t b = obs::next_request_id();
  EXPECT_GT(b, a);  // monotone, process-wide
  {
    obs::RequestIdScope outer(a);
    EXPECT_EQ(obs::current_request_id(), a);
    {
      obs::RequestIdScope inner(b);
      EXPECT_EQ(obs::current_request_id(), b);
    }
    EXPECT_EQ(obs::current_request_id(), a);
  }
  EXPECT_EQ(obs::current_request_id(), 0u);
#endif
}

TEST(ObsTrace, SpansCarryTheRequestIdAsArgs) {
#ifdef WM_OBS_DISABLED
  GTEST_SKIP() << "observability compiled out (-DWM_OBS=OFF)";
#else
  const std::string path = ::testing::TempDir() + "wm_obs_trace_rid.json";
  obs::trace_start(path);
  {
    obs::RequestIdScope rid(4242);
    WM_TRACE_SCOPE("obstest.rid.inner");
  }
  { WM_TRACE_SCOPE("obstest.noctx.span"); }
  ASSERT_TRUE(obs::trace_stop());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  // The span inside the scope carries the id; the one outside must not.
  const std::size_t inner = trace.find("obstest.rid.inner");
  ASSERT_NE(inner, std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"rid\":4242}", inner), std::string::npos)
      << trace;
  const std::size_t outside = trace.find("obstest.noctx.span");
  ASSERT_NE(outside, std::string::npos);
  const std::size_t line_end = trace.find('\n', outside);
  EXPECT_EQ(trace.substr(outside, line_end - outside).find("rid"),
            std::string::npos);
#endif
}

// --- Windowed views --------------------------------------------------------

TEST(ObsWindow, DeltaNeedsTwoCaptures) {
  obs::WindowRing ring;
  EXPECT_FALSE(ring.delta(60).valid);
  ring.capture();
  EXPECT_FALSE(ring.delta(60).valid);
  ring.capture();
  EXPECT_TRUE(ring.delta(60).valid);
  EXPECT_EQ(ring.captures(), 2u);
}

TEST(ObsWindow, BracketedWorkDeltaIsExact) {
  obs::Counter& c =
      obs::registry().counter("obstest.window.alpha", CounterKind::kWork);
  obs::window().capture();
  for (int i = 0; i < 7; ++i) c.add();
  obs::window().capture();
  // The global ring is monotone and this counter is bumped only here, so
  // however old the base snapshot is, the delta is exactly our 7.
  const obs::WindowDelta wd = obs::window().delta(3600.0);
  ASSERT_TRUE(wd.valid);
  ASSERT_TRUE(wd.work.count("obstest.window.alpha"));
  EXPECT_EQ(wd.work.at("obstest.window.alpha"), 7u);
  EXPECT_GT(wd.rate("obstest.window.alpha"), 0.0);
  EXPECT_EQ(wd.rate("obstest.window.no_such_counter"), 0.0);
}

TEST(ObsWindow, TimingDeltasSummariseLikeAFreshHistogram) {
  obs::Histogram& h = obs::histograms().histogram("obstest.window.hist");
  obs::window().capture();
  h.record(1000);  // bucket 10 (513..1023 ns? no: bit_width(1000)=10)
  h.record(1000);
  h.record(4000);  // bucket 12
  obs::window().capture();
  const obs::WindowDelta wd = obs::window().delta(3600.0);
  ASSERT_TRUE(wd.valid);
  ASSERT_TRUE(wd.timings.count("obstest.window.hist"));
  const obs::HistogramBuckets& b = wd.timings.at("obstest.window.hist");
  EXPECT_EQ(b.total(), 3u);
  EXPECT_EQ(b.sum_ns, 6000u);
  const obs::HistogramSummary s = obs::summary_from_buckets(b);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.p50_us, obs::bucket_upper_us(10));
  EXPECT_DOUBLE_EQ(s.p99_us, obs::bucket_upper_us(12));
  // max_ns cannot be differenced; the summary falls back to the highest
  // non-empty bucket's upper bound.
  EXPECT_DOUBLE_EQ(s.max_us, obs::bucket_upper_us(12));
}

TEST(ObsWindow, SummaryFromBucketsMatchesHistogramSummary) {
  obs::Histogram& h = obs::histograms().histogram("obstest.window.match");
  h.record(0);
  h.record(100);
  h.record(100000);
  const obs::HistogramSummary direct = h.summary();
  const obs::HistogramSummary via = obs::summary_from_buckets(h.buckets());
  EXPECT_EQ(direct.count, via.count);
  EXPECT_DOUBLE_EQ(direct.p50_us, via.p50_us);
  EXPECT_DOUBLE_EQ(direct.p90_us, via.p90_us);
  EXPECT_DOUBLE_EQ(direct.p99_us, via.p99_us);
  EXPECT_DOUBLE_EQ(direct.max_us, via.max_us);  // buckets() keeps max_ns
}

TEST(ObsWindow, SamplerCapturesPeriodicallyAndStopsCleanly) {
  const std::uint64_t before = obs::window().captures();
  obs::WindowSampler sampler(std::chrono::milliseconds(10));
  sampler.start();
  sampler.start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  sampler.stop();
  sampler.stop();  // idempotent
  const std::uint64_t after = obs::window().captures();
  EXPECT_GE(after - before, 2u);
}

TEST(ObsLog, ObsOffHooksAreNoOps) {
#ifdef WM_OBS_DISABLED
  // The whole point of -DWM_OBS=OFF: hooks exist, cost nothing, do
  // nothing. This block only compiles (and must pass) in that build.
  obs::log_open("/nonexistent/should-not-open");
  obs::LogEvent(obs::LogLevel::kError, "never").num("x", 1).str("k", "v");
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_EQ(obs::next_request_id(), 0u);
  EXPECT_EQ(obs::current_request_id(), 0u);
  EXPECT_EQ(obs::log_lines_written(), 0u);
  EXPECT_EQ(obs::log_lines_dropped(), 0u);
  EXPECT_EQ(obs::slow_threshold_ms(), 0.0);
  obs::set_slow_threshold_ms(100.0);  // must not stick — it's a no-op
  EXPECT_EQ(obs::slow_threshold_ms(), 0.0);
  obs::log_close();
#else
  GTEST_SKIP() << "meaningful only under -DWM_OBS=OFF";
#endif
}

TEST(ObsInit, CountersJsonMatchesRegistrySnapshot) {
  obs::registry().counter("obstest.json.alpha", CounterKind::kWork).add(3);
  obs::registry().counter("obstest.json.beta", CounterKind::kWork).add(5);
  const std::string json = obs::counters_json(CounterKind::kWork);
  EXPECT_NE(json.find("\"obstest.json.alpha\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obstest.json.beta\": 5"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Info counters stay out of the work snapshot.
  obs::registry().counter("obstest.json.info", CounterKind::kInfo).add(1);
  EXPECT_EQ(obs::counters_json(CounterKind::kWork).find("obstest.json.info"),
            std::string::npos);
}

}  // namespace
}  // namespace wm
