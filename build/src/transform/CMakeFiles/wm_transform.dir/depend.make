# Empty dependencies file for wm_transform.
# This may be replaced when dependencies are built.
