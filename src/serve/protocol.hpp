// The wm_serve request protocol: newline-delimited JSON, one object per
// line each way.
//
// Request envelope (any endpoint):
//
//   {"op": "<endpoint>", "id": <int|string, optional, echoed>,
//    "timeout_ms": <int, optional>, ...endpoint fields...}
//
// Reply envelope, exactly one line, fields always in this order:
//
//   {"ok": true[, "id": ...], "op": "<endpoint>", "result": {...}}
//   {"ok": false[, "id": ...], "op": <endpoint|null>,
//    "error": {"code": "<code>", "message": "..."}}
//
// Error codes: parse_error, oversized, bad_request, unknown_op,
// unknown_problem, unknown_machine, bad_formula, unsupported, deadline,
// internal. Malformed input of any shape gets a structured error reply,
// never a crash or a dropped connection (the transport closes only when
// a line exceeds the size bound with no newline in sight — there is no
// way to resynchronise a stream without line boundaries).
//
// Endpoints (field details in README.md "Serving"):
//
//   classify    problem name + graph + port numbering -> per-class
//               solvability vector (min_rounds across SB..VVc)
//   modelcheck  formula + Kripke model (explicit or K_{a,b}(G,p)) ->
//               denotation bits per state
//   run         machine name + graph + port numbering -> outputs,
//               rounds, message stats
//   canon       graph / pn / kripke -> canonical certificate hash +
//               canonical labelling
//   stats       -> counters + latency histograms + cache stats + a
//               rolling window section + run manifest
//   metrics     -> Prometheus text exposition 0.0.4 as result.text
//               (serve/metrics.hpp lists the families)
//
// Observability: handle_line assigns every request a monotonically
// increasing request id and binds it to the handling thread
// (obs::RequestIdScope), so engine trace spans carry it; when WM_LOG is
// armed, one structured access-log line per request records endpoint,
// cache-key digest, cache hit/miss, deadline state, status and duration,
// plus a "slow_request" warning above WM_SLOW_MS.
//
// Results are answered through the canonical-certificate memo-cache;
// DESIGN.md "Serving and the memo-cache" gives the soundness argument
// for sharing blobs across clients (results are stored in canonical
// coordinates and transported back through each querying structure's
// own canonical labelling).
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "logic/formula.hpp"
#include "logic/kripke.hpp"
#include "port/port_numbering.hpp"
#include "serve/memo_cache.hpp"

namespace wm::serve {

// --- Typed requests (the wire layer parses into these) ----------------------

struct ClassifyRequest {
  std::string problem;      // catalogue name, e.g. "odd-odd-neighbours"
  PortNumbering numbering;  // carries its graph
  int max_rounds = 8;       // per-class refinement cap (1..64)
};

struct ModelcheckRequest {
  Formula formula;
  KripkeModel model;
};

struct RunRequest {
  std::string machine;  // algorithm-catalogue name, e.g. "odd-odd"
  PortNumbering numbering;
  int max_rounds = 1000;
};

struct CanonRequest {
  std::string kind;  // "graph" | "pn" | "kripke"
  // Exactly one of these is meaningful, per `kind`.
  Graph graph;
  PortNumbering numbering;
  KripkeModel kripke;
  /// Deterministic normalised encoding of the input — the cache key
  /// material (computing the certificate IS this endpoint's work, so
  /// its cache is exact-repeat rather than isomorphism-closed).
  std::string input_encoding;
};

struct StatsRequest {};

struct MetricsRequest {};

struct Request {
  std::string op;
  /// The "id" field re-serialised for echoing ("" = absent).
  std::string id_echo;
  int timeout_ms = 0;  // 0 = no deadline
  std::variant<std::monostate, ClassifyRequest, ModelcheckRequest, RunRequest,
               CanonRequest, StatsRequest, MetricsRequest>
      payload;
};

// --- The service ------------------------------------------------------------

struct ServiceConfig {
  /// Memo-cache bound on live entries (across all shards).
  std::size_t cache_capacity = 4096;
  /// 0 = MemoCache's default; tests pass 1 for deterministic eviction.
  int cache_shards = 0;
  /// Hard bound on one request line (bytes, newline excluded).
  std::size_t max_request_bytes = 1 << 20;
  /// Applied when a request carries no timeout_ms of its own; 0 = none.
  int default_timeout_ms = 0;
  /// Executor count reported by the stats endpoint's manifest.
  int threads = 1;
  /// Lookback of the stats "window" section and the wm_window_* metric
  /// families (actual span depends on available window captures).
  double window_secs = 60.0;
};

/// The transport-independent core of wm_serve: one request line in, one
/// reply line out (newline excluded both ways). Thread-safe — the
/// memo-cache synchronises internally and every library call underneath
/// is a pure observer, so connection handlers and pool workers may call
/// handle_line concurrently.
class Service {
 public:
  explicit Service(const ServiceConfig& cfg = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Never throws in response to request content: malformed input of
  /// any kind becomes an {"ok": false, ...} reply.
  std::string handle_line(std::string_view line);

  MemoCache& cache() { return cache_; }
  const ServiceConfig& config() const { return cfg_; }

 private:
  ServiceConfig cfg_;
  MemoCache cache_;
};

}  // namespace wm::serve
