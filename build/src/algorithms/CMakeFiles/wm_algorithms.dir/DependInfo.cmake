
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/machines.cpp" "src/algorithms/CMakeFiles/wm_algorithms.dir/machines.cpp.o" "gcc" "src/algorithms/CMakeFiles/wm_algorithms.dir/machines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/wm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/port/CMakeFiles/wm_port.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
