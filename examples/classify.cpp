// classify — analyse any graph through the lens of the paper.
//
// Reads an edge list ("u v" per line, 0-based node ids; node count =
// max id + 1, or from a leading "n <count>" line) from a file or stdin
// and reports everything the library can say about it:
//
//   - basic structure (degrees, connectivity, bipartiteness, Eulerian),
//   - class-G membership (Theorem 17's family),
//   - indistinguishability classes in all four Kripke views under a
//     chosen port numbering (identity / random / symmetric),
//   - Yamashita-Kameda view classes and leader-election outcome,
//   - solutions computed by the algorithm catalogue (odd-odd outputs,
//     vertex-cover 2-approximation vs exact optimum).
//
//   ./classify graph.txt [identity|random|symmetric] [--threads N]
//   echo "0 1
//   1 2" | ./classify -
//
// The per-view bisimulation analyses run concurrently on the
// task-parallel substrate; output is identical at any --threads value.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/machines.hpp"
#include "bisim/bisimulation.hpp"
#include "cover/views.hpp"
#include "graph/exact.hpp"
#include "graph/matching.hpp"
#include "graph/properties.hpp"
#include "labelled/leader_election.hpp"
#include "obs/env.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"
#include "util/parallel.hpp"

namespace {

wm::Graph read_graph(std::istream& in) {
  std::vector<wm::Edge> edges;
  int n = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;
    if (first == "n") {
      ls >> n;
      continue;
    }
    if (first[0] == '#') continue;
    int u = -1, v = -1;
    std::istringstream us(first);
    if (!(us >> u) || !(ls >> v) || u < 0 || v < 0) {
      std::fprintf(stderr, "bad line: %s\n", line.c_str());
      std::exit(1);
    }
    edges.push_back({std::min(u, v), std::max(u, v)});
    n = std::max(n, std::max(u, v) + 1);
  }
  return wm::Graph::from_edges(n, edges);
}

}  // namespace

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  using namespace wm;
  int threads = 0;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (a.rfind("--threads=", 0) == 0) {
      threads = std::atoi(a.c_str() + 10);
    } else {
      positional.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(positional.size()) + 1;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <edge-list-file|-> [identity|random|symmetric] "
                 "[--threads N]\n",
                 argv[0]);
    return 1;
  }
  argv[1] = positional[0];
  if (argc > 2) argv[2] = positional[1];
  ThreadPool pool(threads);
  Graph g;
  if (std::strcmp(argv[1], "-") == 0) {
    g = read_graph(std::cin);
  } else {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    g = read_graph(f);
  }
  const std::string mode = argc > 2 ? argv[2] : "identity";
  Rng rng(1);
  PortNumbering p;
  if (mode == "identity") {
    p = PortNumbering::identity(g);
  } else if (mode == "random") {
    p = PortNumbering::random(g, rng);
  } else if (mode == "symmetric") {
    if (!g.is_regular(g.max_degree())) {
      std::fprintf(stderr, "symmetric numbering requires a regular graph\n");
      return 1;
    }
    p = PortNumbering::symmetric_regular(g);
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 1;
  }

  std::printf("graph: n=%d m=%d Delta=%d\n", g.num_nodes(), g.num_edges(),
              g.max_degree());
  std::printf("connected: %s   bipartite: %s   eulerian: %s\n",
              is_connected(g) ? "yes" : "no",
              bipartition(g) ? "yes" : "no", is_eulerian(g) ? "yes" : "no");
  std::printf("regular: %s   1-factor: %s   class G (Thm 17): %s\n",
              g.is_regular(g.max_degree()) ? "yes" : "no",
              has_one_factor(g) ? "yes" : "no", in_class_g(g) ? "yes" : "no");
  std::printf("port numbering: %s (%s)\n\n", mode.c_str(),
              p.is_consistent() ? "consistent" : "inconsistent");

  std::printf("indistinguishability classes per Kripke view:\n");
  // All four views (x ungraded/graded) are independent: analyse them
  // concurrently, report in the fixed order.
  const std::vector<Variant> variants = {Variant::PlusPlus, Variant::MinusPlus,
                                         Variant::PlusMinus,
                                         Variant::MinusMinus};
  std::vector<int> ungraded(variants.size()), graded(variants.size());
  pool.parallel_for(0, variants.size() * 2, [&](std::uint64_t j) {
    const std::size_t i = static_cast<std::size_t>(j) / 2;
    const KripkeModel k = kripke_from_graph(p, variants[i]);
    if (j % 2 == 0) {
      ungraded[i] = coarsest_bisimulation(k).num_blocks;
    } else {
      graded[i] = coarsest_graded_bisimulation(k).num_blocks;
    }
  }, 1);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::printf("  %-4s ungraded %-4d graded %d\n",
                variant_name(variants[i]).c_str(), ungraded[i], graded[i]);
  }

  const auto classes = view_classes(p);
  const int distinct = g.num_nodes() == 0
                           ? 0
                           : *std::max_element(classes.begin(), classes.end()) + 1;
  std::printf("\nstable view classes: %d of %d nodes\n", distinct,
              g.num_nodes());
  if (is_connected(g) && g.num_nodes() >= 1) {
    const auto leaders = elect_leaders(p);
    const int count = std::accumulate(leaders.begin(), leaders.end(), 0);
    std::printf("leader election (with n as local input): %d leader(s)%s\n",
                count, count == 1 ? " — solvable here" : "");
  }

  std::printf("\nodd-odd-neighbours (MB algorithm): ");
  ExecutionContext ctx;  // reused scratch across the machine runs below
  const auto odd = execute(*odd_odd_machine(), p, ctx);
  for (int v : odd.outputs_as_ints()) std::printf("%d", v);
  std::printf("\n");

  if (g.num_nodes() <= 40 && g.num_edges() > 0) {
    const auto mb = to_multiset_machine(vertex_cover_packing_vb_machine());
    const auto r = execute(*mb, p, ctx);
    if (r.stopped) {
      int size = 0;
      for (int v : r.outputs_as_ints()) size += v;
      std::printf("vertex cover: distributed |C|=%d, exact OPT=%d\n", size,
                  minimum_vertex_cover_size(g));
    }
  }
  return 0;
}
