file(REMOVE_RECURSE
  "libwm_runtime.a"
)
