#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace wm::serve {

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json Json::null() { return Json(); }

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::integer(long long i) {
  Json j;
  j.kind_ = Kind::Int;
  j.int_ = i;
  return j;
}

Json Json::number(double d) {
  Json j;
  j.kind_ = Kind::Double;
  j.double_ = d;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.string_ = std::move(s);
  return j;
}

Json Json::array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::Array;
  j.items_ = std::move(items);
  return j;
}

Json Json::object(std::vector<std::pair<std::string, Json>> members) {
  Json j;
  j.kind_ = Kind::Object;
  j.members_ = std::move(members);
  return j;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse() {
    skip_ws();
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw JsonError("json: unexpected end of input at offset " +
                      std::to_string(pos_));
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return Json::string(string());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json::null();
        fail("invalid literal");
      default:
        return number();
    }
  }

  Json object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, Json>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json::object(std::move(members));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json array(int depth) {
    expect('[');
    std::vector<Json> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json::array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json::array(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  int hex4() {
    int code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= c - '0';
      } else if (c >= 'a' && c <= 'f') {
        code |= c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        code |= c - 'A' + 10;
      } else {
        fail("invalid \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_];
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = static_cast<unsigned>(hex4());
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require a low surrogate \uXXXX next.
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned lo = static_cast<unsigned>(hex4());
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    auto digits = [&] {
      std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (!digits()) fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("invalid number");
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (integral) {
      long long v = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return Json::integer(v);
      }
      // Out-of-range integer literal: fall through to double.
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size() || !std::isfinite(d)) {
      fail("invalid number");
    }
    return Json::number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const int max_depth_;
};

}  // namespace

Json parse_json(std::string_view text, int max_depth) {
  return Parser(text, max_depth).parse();
}

void append_json_quoted(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_quoted(std::string_view text) {
  std::string out;
  append_json_quoted(out, text);
  return out;
}

}  // namespace wm::serve
