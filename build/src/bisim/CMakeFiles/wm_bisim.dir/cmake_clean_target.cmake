file(REMOVE_RECURSE
  "libwm_bisim.a"
)
