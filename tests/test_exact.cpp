#include "graph/exact.hpp"

#include <gtest/gtest.h>

#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace wm {
namespace {

int brute_force_vc(const Graph& g) {
  const int n = g.num_nodes();
  int best = n;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<int> s(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) s[v] = (mask >> v) & 1;
    if (is_vertex_cover(g, s)) {
      best = std::min<int>(best, __builtin_popcountll(mask));
    }
  }
  return best;
}

TEST(ExactVC, KnownValues) {
  EXPECT_EQ(minimum_vertex_cover_size(cycle_graph(4)), 2);
  EXPECT_EQ(minimum_vertex_cover_size(cycle_graph(5)), 3);
  EXPECT_EQ(minimum_vertex_cover_size(star_graph(5)), 1);
  EXPECT_EQ(minimum_vertex_cover_size(complete_graph(5)), 4);
  EXPECT_EQ(minimum_vertex_cover_size(petersen_graph()), 6);
  EXPECT_EQ(minimum_vertex_cover_size(Graph(3)), 0);
}

TEST(ExactVC, ReturnedCoverIsValidAndMinimum) {
  for (const Graph& g : {cycle_graph(7), petersen_graph(), grid_graph(3, 3)}) {
    const auto cover = minimum_vertex_cover(g);
    EXPECT_TRUE(is_vertex_cover(g, cover));
    const int size = static_cast<int>(
        std::count(cover.begin(), cover.end(), 1));
    EXPECT_EQ(size, minimum_vertex_cover_size(g));
  }
}

TEST(ExactVC, AgreesWithBruteForceOnSmallGraphs) {
  EnumerateOptions opts;
  opts.connected_only = false;
  enumerate_graphs(5, opts, [&](const Graph& g) {
    EXPECT_EQ(minimum_vertex_cover_size(g), brute_force_vc(g)) << g.to_string();
    return true;
  });
}

TEST(ExactMis, ComplementOfVC) {
  EXPECT_EQ(maximum_independent_set_size(cycle_graph(5)), 2);
  EXPECT_EQ(maximum_independent_set_size(petersen_graph()), 4);
  EXPECT_EQ(maximum_independent_set_size(complete_graph(4)), 1);
}

TEST(Chromatic, KnownValues) {
  EXPECT_EQ(chromatic_number(Graph(4)), 1);
  EXPECT_EQ(chromatic_number(path_graph(4)), 2);
  EXPECT_EQ(chromatic_number(cycle_graph(6)), 2);
  EXPECT_EQ(chromatic_number(cycle_graph(7)), 3);
  EXPECT_EQ(chromatic_number(complete_graph(5)), 5);
  EXPECT_EQ(chromatic_number(petersen_graph()), 3);
}

TEST(Chromatic, KColourable) {
  EXPECT_TRUE(is_k_colourable(cycle_graph(5), 3));
  EXPECT_FALSE(is_k_colourable(cycle_graph(5), 2));
  EXPECT_TRUE(is_k_colourable(Graph(0), 0));
}

}  // namespace
}  // namespace wm
