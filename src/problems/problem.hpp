// Graph problems (Section 1.4): a problem Pi maps each graph G to a set
// Pi(G) of valid solutions S : V -> Y. We represent solutions as integer
// vectors (Y is a finite set of ints for every problem in the catalogue)
// and problems by their verifier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace wm {

class ThreadPool;

class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;

  /// Is `output` (one value per node) in Pi(g)?
  virtual bool valid(const Graph& g, const std::vector<int>& output) const = 0;

  /// The output alphabet Y (used by exhaustive solution enumeration).
  virtual std::vector<int> output_alphabet() const { return {0, 1}; }
};

using ProblemPtr = std::shared_ptr<const Problem>;

/// Enumerates all outputs in Y^V and calls fn; stops early on false.
/// Returns number visited. Only for graphs with |Y|^n manageable.
std::size_t for_each_output(const Problem& p, const Graph& g,
                            const std::function<bool(const std::vector<int>&)>& fn);

/// |Y|^n — the size of the output space for_each_output scans — or
/// nullopt if it does not fit in 64 bits (then no exhaustive scan is
/// feasible anyway). The scans index this space directly: output index i
/// is the i-th output for_each_output streams.
std::optional<std::uint64_t> output_space_size(const Problem& p,
                                               const Graph& g);

/// The idx-th output of the for_each_output odometer (node 0 is the
/// least significant digit). Precondition: idx < output_space_size.
std::vector<int> output_for_index(const Problem& p, const Graph& g,
                                  std::uint64_t idx);

/// Corollary 3's premise, checked by brute force: every valid solution S
/// splits X (some u in X has S(u) != S(v) for some v in X). Requires
/// |Y|^n to be small. With a pool, the scan is a parallel_find_first for
/// a valid-but-unsplit counterexample — the verdict is identical at any
/// thread count.
bool every_solution_splits(const Problem& p, const Graph& g,
                           const std::vector<NodeId>& x,
                           ThreadPool* pool = nullptr);

}  // namespace wm
