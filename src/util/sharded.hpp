// Sharded hash containers for concurrent dedup tables.
//
// Superseded as the search-dedup engine by the lock-free table in
// util/lockfree_set.hpp (driven through util/visitor.hpp); kept as the
// mutex-based comparison point for bench_dedup and the differential
// tests that pin the two tables' results byte-identical.
//
// A sharded map is one mutex + hash map per shard, shard chosen by key
// hash — contention stays modest at coarse chunk granularity but the
// shard locks serialise under real concurrency, which is exactly what
// bench_dedup measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "util/hash_mix.hpp"

namespace wm {

/// Concurrent map keeping the *minimum* value ever inserted per key.
/// insert_min is linearisable per key; the final contents are therefore a
/// pure function of the inserted multiset, independent of thread timing —
/// the property the deterministic parallel enumeration relies on.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedMinMap {
 public:
  explicit ShardedMinMap(std::size_t shards = 64)
      : shards_(shards > 0 ? shards : 1) {}

  /// Records `value` for `key` if it is the first or the smallest so far.
  /// Returns true if the key was new.
  bool insert_min(const Key& key, const Value& value) {
    Shard& s = shard_for(key);
    bool fresh;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      auto [it, inserted] = s.map.try_emplace(key, value);
      if (!inserted && value < it->second) it->second = value;
      fresh = inserted;
    }
    // Totals are deterministic for full-range scans: every index is
    // inserted exactly once, and fresh-vs-hit per *key multiset* does not
    // depend on which thread got there first.
    if (fresh) {
      WM_COUNT(sharded.fresh_keys);
    } else {
      WM_COUNT(sharded.dedup_hits);
    }
    return fresh;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      total += s.map.size();
    }
    return total;
  }

  /// Collects all values (the per-key minima), in unspecified order.
  /// Not safe to call concurrently with insert_min.
  std::vector<Value> values() const {
    std::vector<Value> out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const auto& [k, v] : s.map) out.push_back(v);
    }
    return out;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& shard_for(const Key& key) {
    // std::hash on integers is the identity, so a raw modulo sends
    // sequential keys to adjacent shards in lock-step — every thread
    // convoying over the same few mutexes. Mix first (hash_mix.hpp).
    const auto h = hash_mix(static_cast<std::uint64_t>(Hash{}(key)));
    return shards_[static_cast<std::size_t>(h) % shards_.size()];
  }

  std::vector<Shard> shards_;
};

}  // namespace wm
