#include "bisim/bisimulation.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "util/bitset.hpp"
#include "util/hash_mix.hpp"

namespace wm {

std::vector<std::vector<int>> Partition::blocks() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_blocks));
  for (int v = 0; v < static_cast<int>(block.size()); ++v) {
    out[block[v]].push_back(v);
  }
  return out;
}

Partition valuation_partition(const KripkeModel& k) {
  const int n = k.num_states();
  Partition p;
  p.block.assign(static_cast<std::size_t>(n), 0);
  if (n == 0) return p;
  if (k.num_props() <= 64) {
    // Pack each state's profile into one word, transposing the stored
    // per-prop rows with word-wise set-bit iteration.
    std::vector<std::uint64_t> profile(static_cast<std::size_t>(n), 0);
    for (int q = 1; q <= k.num_props(); ++q) {
      const std::uint64_t bit = std::uint64_t{1} << (q - 1);
      k.prop_bits(q).for_each_set(
          [&](std::size_t v) { profile[v] |= bit; });
    }
    std::unordered_map<std::uint64_t, int> dict;
    dict.reserve(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      auto [it, _] = dict.try_emplace(profile[v], static_cast<int>(dict.size()));
      p.block[v] = it->second;
    }
    p.num_blocks = static_cast<int>(dict.size());
  } else {
    std::map<std::vector<bool>, int> dict;
    for (int v = 0; v < n; ++v) {
      std::vector<bool> profile(static_cast<std::size_t>(k.num_props()));
      for (int q = 1; q <= k.num_props(); ++q) profile[q - 1] = k.prop_holds(q, v);
      auto [it, _] = dict.try_emplace(std::move(profile),
                                      static_cast<int>(dict.size()));
      p.block[v] = it->second;
    }
    p.num_blocks = static_cast<int>(dict.size());
  }
  return p;
}

namespace {

// --- Scalar reference -----------------------------------------------------
//
// Round-synchronous signature refinement, exactly the pre-Hopcroft
// implementation: every round recomputes every state's signature against
// the whole previous partition. The differential suites pin the worklist
// path below against this (same blocks, same rounds); do not optimise it,
// and keep it off the obs counters so reference runs never perturb
// gated totals.

Partition refine_reference_impl(const KripkeModel& k, bool graded,
                                int max_rounds) {
  const int n = k.num_states();
  const auto modalities = k.modalities();

  Partition p = valuation_partition(k);

  for (int round = 0; max_rounds < 0 || round < max_rounds; ++round) {
    // Signature of v: (current block, per-modality set/multiset of
    // successor blocks).
    using Sig = std::pair<int, std::vector<std::vector<int>>>;
    std::map<Sig, int> dict;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<std::vector<int>> succ_sig;
      succ_sig.reserve(modalities.size());
      for (const Modality& alpha : modalities) {
        std::vector<int> blocks;
        for (int w : k.successors(alpha, v)) blocks.push_back(p.block[w]);
        std::sort(blocks.begin(), blocks.end());
        if (!graded) {
          blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
        }
        succ_sig.push_back(std::move(blocks));
      }
      Sig sig{p.block[v], std::move(succ_sig)};
      auto [it, _] = dict.try_emplace(std::move(sig), static_cast<int>(dict.size()));
      next[v] = it->second;
    }
    const int new_blocks = static_cast<int>(dict.size());
    if (new_blocks == p.num_blocks) {
      // Fixpoint: signatures refine the partition but produced no split.
      p.rounds = round;
      return p;
    }
    p.block = std::move(next);
    p.num_blocks = new_blocks;
    p.rounds = round + 1;
  }
  return p;
}

// --- Hopcroft-style worklist path -----------------------------------------
//
// Same round-synchronous semantics, computed incrementally. Block ids
// are *stable*: when a block splits, the largest sub-block keeps the
// parent id and only the smaller halves get fresh ids. A state's
// signature (multiset of successor block ids) can therefore change
// between rounds only if some successor moved into a fresh block — so
// the next round needs to re-examine exactly the predecessors of the
// smaller halves (the dirty set, a Bitset), and states inside an
// untouched block provably cannot separate. Because every fresh block is
// at most half its parent, each state is a dirty-trigger O(log n) times:
// Hopcroft's bound for the propagation work. Rounds and the per-round
// partitions coincide with the reference exactly (the clean-state lemma
// in DESIGN.md §3), which is what keeps `bisim.refine_rounds` — and
// bounded-refinement semantics, i.e. modal depth — invariant.

/// Flattened per-state signature: per modality, the sorted (multi)set of
/// start-of-round successor block ids, separated by -1.
struct SigHash {
  std::size_t operator()(const std::vector<int>& sig) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(sig.size());
    for (const int x : sig) {
      h = hash_mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)));
    }
    return static_cast<std::size_t>(h);
  }
};

/// Compressed-sparse-row predecessor lists of one modality.
struct PredCsr {
  std::vector<int> offset;  // n + 1
  std::vector<int> data;

  static PredCsr build(const std::vector<std::vector<int>>& succ, int n) {
    PredCsr csr;
    csr.offset.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto& row : succ) {
      for (const int w : row) ++csr.offset[w + 1];
    }
    for (int v = 0; v < n; ++v) csr.offset[v + 1] += csr.offset[v];
    csr.data.resize(csr.offset[n]);
    std::vector<int> cursor(csr.offset.begin(), csr.offset.end() - 1);
    for (int v = 0; v < n; ++v) {
      for (const int w : succ[v]) csr.data[cursor[w]++] = v;
    }
    return csr;
  }
};

Partition refine_worklist(const KripkeModel& k, bool graded, int max_rounds) {
  const int n = k.num_states();
  const auto modalities = k.modalities();
  std::vector<const std::vector<std::vector<int>>*> succ;
  succ.reserve(modalities.size());
  for (const Modality& alpha : modalities) succ.push_back(k.relation(alpha));

  const Partition initial = valuation_partition(k);
  // Mutable partition state: stable ids, membership lists per block.
  std::vector<int> block = initial.block;       // id at the current round
  std::vector<int> block_old = block;           // ids at the round start
  std::vector<std::vector<int>> members(
      static_cast<std::size_t>(initial.num_blocks));
  for (int v = 0; v < n; ++v) members[block[v]].push_back(v);

  std::vector<PredCsr> pred;
  pred.reserve(succ.size());
  for (const auto* s : succ) pred.push_back(PredCsr::build(*s, n));

  Bitset dirty(static_cast<std::size_t>(n));
  std::vector<int> touched;
  std::vector<int> sig;  // scratch, reused across states
  std::unordered_map<std::vector<int>, int, SigHash> groups;
  int rounds = 0;
  bool first = true;

  while (max_rounds < 0 || rounds < max_rounds) {
    touched.clear();
    if (first) {
      touched.resize(members.size());
      for (std::size_t b = 0; b < members.size(); ++b) {
        touched[b] = static_cast<int>(b);
      }
    } else {
      // Blocks holding a dirty state, in block-id order.
      std::vector<char> seen(members.size(), 0);
      dirty.for_each_set([&](std::size_t v) {
        const int b = block[v];
        if (!seen[b]) {
          seen[b] = 1;
          touched.push_back(b);
        }
      });
      std::sort(touched.begin(), touched.end());
    }
    if (touched.empty()) break;

    std::vector<int> fresh;  // blocks created this round
    for (const int b : touched) {
      const std::vector<int>& mem = members[b];
      if (mem.size() <= 1) continue;
      // Group members by signature against the start-of-round partition.
      groups.clear();
      std::vector<std::vector<int>> parts;  // group index -> members
      for (const int v : mem) {
        sig.clear();
        for (std::size_t a = 0; a < succ.size(); ++a) {
          const std::size_t start = sig.size();
          for (const int w : (*succ[a])[v]) sig.push_back(block_old[w]);
          std::sort(sig.begin() + start, sig.end());
          if (!graded) {
            sig.erase(std::unique(sig.begin() + start, sig.end()), sig.end());
          }
          sig.push_back(-1);  // modality separator
        }
        auto [it, inserted] = groups.try_emplace(sig,
                                                 static_cast<int>(parts.size()));
        if (inserted) parts.emplace_back();
        parts[it->second].push_back(v);
      }
      if (parts.size() <= 1) continue;
      // The largest part keeps the parent id (first-seen wins ties); the
      // smaller halves get fresh ids and become next round's splitters.
      std::size_t keep = 0;
      for (std::size_t g = 1; g < parts.size(); ++g) {
        if (parts[g].size() > parts[keep].size()) keep = g;
      }
      for (std::size_t g = 0; g < parts.size(); ++g) {
        if (g == keep) continue;
        const int fresh_id = static_cast<int>(members.size());
        for (const int v : parts[g]) block[v] = fresh_id;
        members.push_back(std::move(parts[g]));
        fresh.push_back(fresh_id);
      }
      members[b] = std::move(parts[keep]);
    }
    if (fresh.empty()) break;
    ++rounds;
    WM_COUNT_ADD(bisim.split_smaller, fresh.size());

    // Next round re-examines exactly the predecessors of the smaller
    // halves; patch block_old for the relabelled states only.
    dirty.reset_all();
    for (const int nb : fresh) {
      for (const int w : members[nb]) {
        block_old[w] = block[w];
        for (const auto& csr : pred) {
          for (int i = csr.offset[w]; i < csr.offset[w + 1]; ++i) {
            dirty.set(static_cast<std::size_t>(csr.data[i]));
          }
        }
      }
    }
    first = false;
  }

  // Renumber blocks by first member so the returned ids match the
  // reference exactly (its last full pass assigns ids in state order).
  Partition p;
  p.block.assign(static_cast<std::size_t>(n), 0);
  p.rounds = rounds;
  std::vector<int> renumber(members.size(), -1);
  int next_id = 0;
  for (int v = 0; v < n; ++v) {
    int& id = renumber[block[v]];
    if (id < 0) id = next_id++;
    p.block[v] = id;
  }
  p.num_blocks = next_id;
  return p;
}

/// Counting wrapper: one `refinements` per refinement run, `rounds` from
/// the deterministic result. Both are work counters, so they vanish
/// inside speculative parallel_find_first predicates (see parallel.hpp).
Partition refine(const KripkeModel& k, bool graded, int max_rounds) {
  WM_TIME_SCOPE("bisim.refine");
  Partition p = refine_worklist(k, graded, max_rounds);
  WM_COUNT(bisim.refinements);
  WM_COUNT_ADD(bisim.refine_rounds, p.rounds);
  return p;
}

}  // namespace

Partition coarsest_bisimulation(const KripkeModel& k, int max_rounds) {
  return refine(k, /*graded=*/false, max_rounds);
}

Partition coarsest_graded_bisimulation(const KripkeModel& k, int max_rounds) {
  return refine(k, /*graded=*/true, max_rounds);
}

Partition coarsest_bisimulation_reference(const KripkeModel& k,
                                          int max_rounds) {
  return refine_reference_impl(k, /*graded=*/false, max_rounds);
}

Partition coarsest_graded_bisimulation_reference(const KripkeModel& k,
                                                 int max_rounds) {
  return refine_reference_impl(k, /*graded=*/true, max_rounds);
}

bool are_bisimilar(const KripkeModel& k, int u, int v, bool graded) {
  const Partition p = refine(k, graded, -1);
  return p.same_block(u, v);
}

bool bisimilar_across(const KripkeModel& a, int u, const KripkeModel& b, int v,
                      bool graded) {
  const KripkeModel un = KripkeModel::disjoint_union(a, b);
  return are_bisimilar(un, u, a.num_states() + v, graded);
}

namespace {

bool verify(const KripkeModel& k, const Partition& p, bool graded) {
  const int n = k.num_states();
  const auto modalities = k.modalities();
  const auto groups = p.blocks();
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const int rep = group[0];
    for (int v : group) {
      // B1: atomic agreement.
      for (int q = 1; q <= k.num_props(); ++q) {
        if (k.prop_holds(q, v) != k.prop_holds(q, rep)) return false;
      }
      // B2/B3 (as sets) or B2*/B3* (as counts) against the representative.
      for (const Modality& alpha : modalities) {
        auto sig = [&](int s) {
          std::vector<int> blocks;
          for (int w : k.successors(alpha, s)) blocks.push_back(p.block[w]);
          std::sort(blocks.begin(), blocks.end());
          if (!graded) {
            blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
          }
          return blocks;
        };
        if (sig(v) != sig(rep)) return false;
      }
    }
  }
  (void)n;
  return true;
}

}  // namespace

bool verify_bisimulation_partition(const KripkeModel& k, const Partition& p) {
  return verify(k, p, /*graded=*/false);
}

bool verify_graded_bisimulation_partition(const KripkeModel& k,
                                          const Partition& p) {
  return verify(k, p, /*graded=*/true);
}

bool is_bisimulation_relation(const KripkeModel& k,
                              const std::vector<std::pair<int, int>>& z) {
  if (z.empty()) return false;  // the paper requires Z nonempty
  const std::set<std::pair<int, int>> rel(z.begin(), z.end());
  for (const auto& [v, v2] : rel) {
    // B1
    for (int q = 1; q <= k.num_props(); ++q) {
      if (k.prop_holds(q, v) != k.prop_holds(q, v2)) return false;
    }
    for (const Modality& alpha : k.modalities()) {
      // B2: every alpha-successor of v has a Z-partner among v2's.
      for (int w : k.successors(alpha, v)) {
        bool matched = false;
        for (int w2 : k.successors(alpha, v2)) {
          if (rel.contains({w, w2})) {
            matched = true;
            break;
          }
        }
        if (!matched) return false;
      }
      // B3: symmetric condition.
      for (int w2 : k.successors(alpha, v2)) {
        bool matched = false;
        for (int w : k.successors(alpha, v)) {
          if (rel.contains({w, w2})) {
            matched = true;
            break;
          }
        }
        if (!matched) return false;
      }
    }
  }
  return true;
}

}  // namespace wm
