file(REMOVE_RECURSE
  "CMakeFiles/test_isomorphism.dir/test_isomorphism.cpp.o"
  "CMakeFiles/test_isomorphism.dir/test_isomorphism.cpp.o.d"
  "test_isomorphism"
  "test_isomorphism.pdb"
  "test_isomorphism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isomorphism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
