// Views, covers and leader election — the port-numbering model's classic
// toolbox (Section 3.2/3.3 related work: Angluin; Yamashita–Kameda),
// built on this library's primitives:
//
//  - Yamashita–Kameda views and their equivalence classes,
//  - permutation-voltage lifts and Angluin's lifting lemma in action,
//  - leader election with local input n: succeeds iff the maximum view
//    class is a singleton.
//
//   ./views_and_covers
#include <cstdio>
#include <numeric>

#include "algorithms/machines.hpp"
#include "cover/covering.hpp"
#include "cover/views.hpp"
#include "graph/generators.hpp"
#include "labelled/leader_election.hpp"
#include "obs/env.hpp"
#include "runtime/engine.hpp"

namespace {

void report_views(const char* name, const wm::PortNumbering& p) {
  using namespace wm;
  const auto classes = view_classes(p);
  const int distinct = *std::max_element(classes.begin(), classes.end()) + 1;
  const auto leaders = elect_leaders(p);
  const int count = std::accumulate(leaders.begin(), leaders.end(), 0);
  std::printf("%-26s n=%-3d view classes=%-3d leaders elected=%d%s\n", name,
              p.graph().num_nodes(), distinct, count,
              count == 1 ? "  <- unique leader" : "");
}

}  // namespace

int main() {
  wm::obs::init_from_env();
  using namespace wm;
  std::printf("=== Stable views and leader election ===\n");
  Rng rng(2026);
  report_views("path-6 (identity)", PortNumbering::identity(path_graph(6)));
  report_views("cycle-6 (symmetric)",
               PortNumbering::symmetric_regular(cycle_graph(6)));
  report_views("star-5 (identity)", PortNumbering::identity(star_graph(5)));
  report_views("petersen (symmetric)",
               PortNumbering::symmetric_regular(petersen_graph()));
  {
    const Graph g = random_connected_graph(9, 3, 4, rng);
    report_views("random-9 (random ports)", PortNumbering::random(g, rng));
  }

  std::printf("\n=== Angluin's lifting lemma on a voltage lift ===\n");
  const Graph g = cycle_graph(5);
  const PortNumbering p = PortNumbering::identity(g);
  const Lift lift = random_voltage_lift(p, 3, rng);
  std::printf("base: C5;  lift: %d nodes, covering map verified: %s\n",
              lift.numbering.graph().num_nodes(),
              is_covering_map(lift.numbering, p, lift.projection) ? "yes"
                                                                  : "NO");
  const auto base_run = execute(*odd_odd_machine(), p);
  const auto lift_run = execute(*odd_odd_machine(), lift.numbering);
  bool commutes = true;
  for (int h = 0; h < lift.numbering.graph().num_nodes(); ++h) {
    if (lift_run.final_states[h] != base_run.final_states[lift.projection[h]]) {
      commutes = false;
    }
  }
  std::printf("execution commutes with the covering map: %s\n",
              commutes ? "yes" : "NO");
  std::printf("=> a node cannot tell the base graph from its 3-fold cover;\n");
  std::printf("   this is the graph-theoretic face of bisimulation.\n");
  return 0;
}
