#include "compile/formula_compiler.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/random_formula.hpp"
#include "runtime/engine.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

TEST(Desugar, BoxesBecomeNegatedDiamonds) {
  const Formula f = Formula::box({1, 2}, Formula::prop(1));
  const Formula d = desugar_boxes(f);
  EXPECT_EQ(d, Formula::negate(Formula::diamond(
                   {1, 2}, Formula::negate(Formula::prop(1)), 1)));
  // Idempotent on box-free formulas.
  EXPECT_EQ(desugar_boxes(d), d);
}

TEST(Compiler, NaturalClasses) {
  EXPECT_EQ(natural_class_for(Variant::PlusPlus, false), AlgebraicClass::vector());
  EXPECT_EQ(natural_class_for(Variant::MinusPlus, true), AlgebraicClass::multiset());
  EXPECT_EQ(natural_class_for(Variant::MinusPlus, false), AlgebraicClass::set());
  EXPECT_EQ(natural_class_for(Variant::PlusMinus, false),
            AlgebraicClass::vector_broadcast());
  EXPECT_EQ(natural_class_for(Variant::MinusMinus, true),
            AlgebraicClass::multiset_broadcast());
  EXPECT_EQ(natural_class_for(Variant::MinusMinus, false),
            AlgebraicClass::set_broadcast());
}

TEST(Compiler, RejectsMismatches) {
  const Formula f = Formula::diamond({1, 1}, Formula::prop(1));
  // Formula in PlusPlus signature compiled for MinusMinus: bad signature.
  EXPECT_THROW(compile_formula(f, Variant::MinusMinus, 2), std::invalid_argument);
  // Wrong class for variant.
  EXPECT_THROW(
      compile_formula(f, Variant::PlusPlus, 2, AlgebraicClass::set_broadcast()),
      std::invalid_argument);
  // Graded formula with Set receive.
  const Formula graded = Formula::diamond({0, 0}, Formula::prop(1), 2);
  EXPECT_THROW(compile_formula(graded, Variant::MinusMinus, 2,
                               AlgebraicClass::set_broadcast()),
               std::invalid_argument);
}

TEST(Compiler, DegreeFormulaTimeZeroPlusOne) {
  // md(q2) = 0: algorithm stops in exactly 1 round.
  const Formula q2 = Formula::prop(2);
  const auto m = compile_formula(q2, Variant::MinusMinus, 2);
  const Graph g = path_graph(4);
  const auto r = execute(*m, PortNumbering::identity(g));
  EXPECT_TRUE(r.stopped);
  EXPECT_EQ(r.rounds, 1);  // md + 1
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 1, 0}));
}

TEST(Compiler, HandCheckedDiamond) {
  // <*,*> q1: "some neighbour is a leaf".
  const Formula f = Formula::diamond({0, 0}, Formula::prop(1));
  const auto m = compile_formula(f, Variant::MinusMinus, 2);
  const Graph g = path_graph(4);
  const auto r = execute(*m, PortNumbering::identity(g));
  EXPECT_EQ(r.rounds, 2);  // md + 1
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 1, 1, 0}));
}

TEST(Compiler, GradedDiamondCountsNeighbours) {
  // <*,*>_{>=3} q1 at the star centre.
  const Formula f = Formula::diamond({0, 0}, Formula::prop(1), 3);
  const auto m = compile_formula(f, Variant::MinusMinus, 4);
  {
    const auto r = execute(*m, PortNumbering::identity(star_graph(3)));
    EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{1, 0, 0, 0}));
  }
  {
    const auto r = execute(*m, PortNumbering::identity(star_graph(2)));
    EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{0, 0, 0}));
  }
}

TEST(Compiler, IsolatedNodesEvaluateDiamondsFalse) {
  const Formula f = Formula::diamond({0, 0}, Formula::tru());
  const auto m = compile_formula(f, Variant::MinusMinus, 2);
  Graph g(3);
  g.add_edge(0, 1);  // node 2 isolated
  const auto r = execute(*m, PortNumbering::identity(g));
  EXPECT_EQ(r.outputs_as_ints(), (std::vector<int>{1, 1, 0}));
}

struct CompilerCase {
  Variant variant;
  bool graded;
  ReceiveMode receive;
};

class CompilerAgreesWithModelChecker
    : public ::testing::TestWithParam<CompilerCase> {};

// The central Theorem 2 (Parts 1-2) property: the compiled machine's
// output equals the model checker's verdict on K_{a,b}(G, p), for random
// formulas, graphs and port numberings; and the running time is
// md(psi) + 1.
TEST_P(CompilerAgreesWithModelChecker, OnRandomInputs) {
  const CompilerCase c = GetParam();
  Rng frng(static_cast<std::uint64_t>(c.variant) * 10 + c.graded);
  Rng grng(55);
  int interesting = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_connected_graph(7, 3, 2, grng);
    const int delta = g.max_degree();
    const PortNumbering p = PortNumbering::random(g, grng);
    RandomFormulaOptions opts;
    opts.variant = c.variant;
    opts.delta = delta;
    opts.num_props = delta;
    opts.graded = c.graded;
    opts.max_depth = 3;
    const Formula f = random_formula(frng, opts);
    const AlgebraicClass cls{c.receive,
                             (c.variant == Variant::PlusMinus ||
                              c.variant == Variant::MinusMinus)
                                 ? SendMode::Broadcast
                                 : SendMode::Ported};
    const auto machine = compile_formula(f, c.variant, delta, cls);
    const auto r = execute(*machine, p);
    ASSERT_TRUE(r.stopped);
    EXPECT_EQ(r.rounds, desugar_boxes(f).modal_depth() + 1) << f.to_string();
    const KripkeModel k = kripke_from_graph(p, c.variant, delta);
    const auto truth = model_check(k, f);
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.final_states[v].as_int(), truth[v] ? 1 : 0)
          << "node " << v << " formula " << f.to_string();
    }
    if (f.modal_depth() > 0) ++interesting;
  }
  EXPECT_GT(interesting, 10);  // the sweep actually exercised modalities
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, CompilerAgreesWithModelChecker,
    ::testing::Values(
        CompilerCase{Variant::PlusPlus, false, ReceiveMode::Vector},
        CompilerCase{Variant::MinusPlus, true, ReceiveMode::Multiset},
        CompilerCase{Variant::MinusPlus, false, ReceiveMode::Set},
        CompilerCase{Variant::MinusPlus, false, ReceiveMode::Multiset},
        CompilerCase{Variant::PlusMinus, false, ReceiveMode::Vector},
        CompilerCase{Variant::MinusMinus, true, ReceiveMode::Multiset},
        CompilerCase{Variant::MinusMinus, false, ReceiveMode::Set}));

TEST(Compiler, ConsistentNumberingsForVVc) {
  // Theorem 2(a): same machinery restricted to consistent numberings.
  Rng frng(99);
  Rng grng(100);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(7, 3, 2, grng);
    const int delta = g.max_degree();
    const PortNumbering p = PortNumbering::random_consistent(g, grng);
    RandomFormulaOptions opts;
    opts.variant = Variant::PlusPlus;
    opts.delta = delta;
    opts.num_props = delta;
    opts.max_depth = 3;
    const Formula f = random_formula(frng, opts);
    const auto machine = compile_formula(f, Variant::PlusPlus, delta);
    const auto r = execute(*machine, p);
    const auto truth = model_check(kripke_from_graph(p, Variant::PlusPlus, delta), f);
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.final_states[v].as_int(), truth[v] ? 1 : 0);
    }
  }
}

}  // namespace
}  // namespace wm
