file(REMOVE_RECURSE
  "CMakeFiles/test_definability.dir/test_definability.cpp.o"
  "CMakeFiles/test_definability.dir/test_definability.cpp.o.d"
  "test_definability"
  "test_definability.pdb"
  "test_definability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_definability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
