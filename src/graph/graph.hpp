// Simple undirected graphs of bounded degree — the input objects of the
// paper (families F(Delta), Section 1.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wm {

using NodeId = int;

/// An undirected edge; canonically stored with u <= v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A simple undirected graph. Nodes are 0..n-1. Adjacency lists are kept
/// sorted; the position of a neighbour in the adjacency list is *not*
/// meaningful as a port number — port numberings are a separate object
/// (see port/port_numbering.hpp), exactly as in the paper.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int n) : adj_(static_cast<std::size_t>(n)) {}

  static Graph from_edges(int n, const std::vector<Edge>& edges);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds edge {u,v}. Precondition: u != v, 0 <= u,v < n, edge not present.
  void add_edge(NodeId u, NodeId v);
  bool has_edge(NodeId u, NodeId v) const;

  int degree(NodeId v) const { return static_cast<int>(adj_[v].size()); }
  int max_degree() const;
  int min_degree() const;

  const std::vector<NodeId>& neighbours(NodeId v) const { return adj_[v]; }

  /// All edges with u < v, sorted.
  std::vector<Edge> edges() const;

  /// True if every node has degree k.
  bool is_regular(int k) const;
  /// Degree sequence, sorted descending.
  std::vector<int> degree_sequence() const;

  /// Index of u in v's (sorted) adjacency list, or -1.
  int neighbour_index(NodeId v, NodeId u) const;

  /// The subgraph induced by `keep` (node ids are compacted in order).
  Graph induced_subgraph(const std::vector<NodeId>& keep) const;

  /// Relabels nodes: node v becomes perm[v]. perm must be a permutation.
  Graph relabelled(const std::vector<NodeId>& perm) const;

  /// Multi-line human-readable dump, for examples and debugging.
  std::string to_string() const;

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.adj_ == b.adj_;
  }

 private:
  std::vector<std::vector<NodeId>> adj_;
  int num_edges_ = 0;
};

}  // namespace wm
