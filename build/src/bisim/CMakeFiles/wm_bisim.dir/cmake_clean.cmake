file(REMOVE_RECURSE
  "CMakeFiles/wm_bisim.dir/bisimulation.cpp.o"
  "CMakeFiles/wm_bisim.dir/bisimulation.cpp.o.d"
  "CMakeFiles/wm_bisim.dir/definability.cpp.o"
  "CMakeFiles/wm_bisim.dir/definability.cpp.o.d"
  "CMakeFiles/wm_bisim.dir/distinguish.cpp.o"
  "CMakeFiles/wm_bisim.dir/distinguish.cpp.o.d"
  "CMakeFiles/wm_bisim.dir/quotient.cpp.o"
  "CMakeFiles/wm_bisim.dir/quotient.cpp.o.d"
  "libwm_bisim.a"
  "libwm_bisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_bisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
