#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace wm {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(Graph, AddEdgeUpdatesBothEndpoints) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 0);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, AdjacencySorted) {
  Graph g(4);
  g.add_edge(1, 3);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const std::vector<NodeId> expected{0, 2, 3};
  EXPECT_EQ(g.neighbours(1), expected);
}

TEST(Graph, NeighbourIndex) {
  Graph g(4);
  g.add_edge(1, 3);
  g.add_edge(1, 0);
  EXPECT_EQ(g.neighbour_index(1, 0), 0);
  EXPECT_EQ(g.neighbour_index(1, 3), 1);
  EXPECT_EQ(g.neighbour_index(1, 2), -1);
}

TEST(Graph, FromEdgesAndEdgesRoundtrip) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  // edges() returns edges sorted by (u, v).
  const std::vector<Edge> sorted{{0, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(g.edges(), sorted);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(Graph, DegreeSequenceSortedDescending) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const std::vector<int> expected{3, 1, 1, 1};
  EXPECT_EQ(g.degree_sequence(), expected);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_EQ(g.min_degree(), 1);
}

TEST(Graph, IsRegular) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_FALSE(g.is_regular(3));
}

TEST(Graph, InducedSubgraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const Graph h = g.induced_subgraph({1, 2, 3});
  EXPECT_EQ(h.num_nodes(), 3);
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_TRUE(h.has_edge(0, 1));  // 1-2
  EXPECT_TRUE(h.has_edge(1, 2));  // 2-3
}

TEST(Graph, Relabelled) {
  Graph g(3);
  g.add_edge(0, 1);
  const Graph h = g.relabelled({2, 0, 1});
  EXPECT_TRUE(h.has_edge(2, 0));
  EXPECT_EQ(h.num_edges(), 1);
}

TEST(Graph, EqualityIsStructural) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_FALSE(a == b);
}

TEST(GraphDeathTest, RejectsSelfLoopAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_DEATH(g.add_edge(1, 1), "self-loop");
  EXPECT_DEATH(g.add_edge(1, 0), "duplicate");
  EXPECT_DEATH(g.add_edge(0, 9), "out of range");
}

}  // namespace
}  // namespace wm
