// Concurrency battery for the serve layer (TSan tier):
//
//  - *Hammer*: N client threads fire an identical fixed request mix at
//    one Service. The single-flight cache makes hit/miss tallies a
//    function of the mix alone — total - distinct hits at ANY client
//    count — so the per-endpoint work counters must come out identical
//    for 8 and 16 clients. This is the determinism contract that lets
//    serve.cache_hits.* live alongside the library's work counters.
//  - *Eviction freshness*: a deliberately tiny cache under concurrent
//    overlapping keys must never cross-serve blobs between keys.
//  - *Drain*: a request whose bytes arrived before request_stop() gets
//    its reply before the connection closes; wait() then terminates.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace wm::serve {
namespace {

std::uint64_t work_counter(const char* name) {
  return obs::registry().counter(name, obs::CounterKind::kWork).value();
}

/// The fixed request mix: `distinct` structurally different requests
/// (path lengths), `total` requests round-robined over client threads.
std::vector<std::string> request_mix(int distinct, int total) {
  std::vector<std::string> mix;
  mix.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const int n = 2 + (i % distinct);
    std::string edges = "[";
    for (int v = 0; v + 1 < n; ++v) {
      if (v > 0) edges += ", ";
      edges += "[" + std::to_string(v) + ", " + std::to_string(v + 1) + "]";
    }
    edges += "]";
    mix.push_back(R"({"op": "run", "machine": "degree-parity", "graph": )"
                  R"({"n": )" +
                  std::to_string(n) + R"(, "edges": )" + edges + "}}");
  }
  return mix;
}

/// Runs the mix over `clients` threads (slice c takes indices ≡ c) and
/// returns the (hits, misses) counter deltas for the run endpoint.
std::pair<std::uint64_t, std::uint64_t> hammer(int clients, int distinct,
                                               int total) {
  Service service;  // fresh cache per run; counters measured as deltas
  const std::vector<std::string> mix = request_mix(distinct, total);
  const std::uint64_t hits_before = work_counter("serve.cache_hits.run");
  const std::uint64_t misses_before = work_counter("serve.cache_misses.run");
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < mix.size();
           i += static_cast<std::size_t>(clients)) {
        const std::string reply = service.handle_line(mix[i]);
        const Json j = parse_json(reply);
        if (j.find("ok") == nullptr || !j.find("ok")->as_bool()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  return {work_counter("serve.cache_hits.run") - hits_before,
          work_counter("serve.cache_misses.run") - misses_before};
}

TEST(ServeParallel, CacheHitCountersAreClientCountInvariant) {
  constexpr int kDistinct = 6;
  constexpr int kTotal = 240;
  const auto [hits8, misses8] = hammer(8, kDistinct, kTotal);
  const auto [hits16, misses16] = hammer(16, kDistinct, kTotal);
  // Single flight pins the split exactly: one miss per distinct key —
  // whether the other requesters found the entry kReady or waited on
  // the cv, both count as hits — so the tallies are not merely equal
  // across client counts but equal to the closed form.
  EXPECT_EQ(misses8, static_cast<std::uint64_t>(kDistinct));
  EXPECT_EQ(misses16, static_cast<std::uint64_t>(kDistinct));
  EXPECT_EQ(hits8, static_cast<std::uint64_t>(kTotal - kDistinct));
  EXPECT_EQ(hits16, static_cast<std::uint64_t>(kTotal - kDistinct));
}

TEST(ServeParallel, EvictionNeverServesStaleBytes) {
  // Cache smaller than the working set: constant churn. Every reply
  // must still carry the right output vector for ITS path length —
  // a cross-served blob would give the wrong vector size or parity
  // pattern immediately.
  ServiceConfig cfg;
  cfg.cache_capacity = 3;
  cfg.cache_shards = 1;
  Service service(cfg);
  constexpr int kClients = 8;
  constexpr int kDistinct = 9;  // 3x the capacity
  const std::vector<std::string> mix = request_mix(kDistinct, 360);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < mix.size();
           i += kClients) {
        const int n = 2 + (static_cast<int>(i) % kDistinct);
        const Json j = parse_json(service.handle_line(mix[i]));
        if (!j.find("ok")->as_bool()) {
          bad.fetch_add(1);
          continue;
        }
        const auto& outputs = j.find("result")->find("outputs")->items();
        if (static_cast<int>(outputs.size()) != n) {
          bad.fetch_add(1);
          continue;
        }
        // Path on n nodes: ends have degree 1 (odd), middles 2 (even).
        for (int v = 0; v < n; ++v) {
          const long long expected = (v == 0 || v == n - 1) ? 1 : 0;
          if (outputs[static_cast<std::size_t>(v)].as_int() != expected) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(service.cache().stats().evictions, 0u)
      << "test meant to run under eviction pressure but none happened";
}

TEST(ServeParallel, ConcurrentSingleFlightOnOneService) {
  // All clients ask the same heavy-ish question at once: compute must
  // run once, everyone must get identical bytes.
  Service service;
  const std::string req =
      R"({"op": "classify", "problem": "degree-parity", "graph": )"
      R"({"n": 4, "edges": [[0, 1], [1, 2], [2, 3]]}})";
  constexpr int kClients = 8;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back(
        [&, c] { replies[static_cast<std::size_t>(c)] = service.handle_line(req); });
  }
  for (auto& t : threads) t.join();
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(replies[static_cast<std::size_t>(c)], replies[0]);
  }
  const MemoCache::Stats st = service.cache().stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kClients - 1));
}

// --- Drain ------------------------------------------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_line(int fd) {
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return line;
    line += c;
  }
  return line;  // connection closed
}

TEST(ServeParallel, DrainAnswersInFlightRequests) {
  ServerConfig cfg;
  cfg.port = 0;
  Server server(cfg);
  server.start();

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string req =
      R"({"op": "run", "id": 99, "machine": "odd-odd", "graph": )"
      R"({"n": 3, "edges": [[0, 1], [1, 2]]}})"
      "\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  // Give the bytes time to land in the server's buffer, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_stop();
  // The in-flight request must still be answered through the drain.
  const std::string reply = read_line(fd);
  ::close(fd);
  ASSERT_FALSE(reply.empty()) << "drain dropped an in-flight request";
  const Json j = parse_json(reply);
  EXPECT_TRUE(j.find("ok")->as_bool());
  EXPECT_EQ(j.find("id")->as_int(), 99);
  server.wait();  // must terminate (test TIMEOUT guards the hang case)
}

TEST(ServeParallel, DrainStopsAcceptingNewConnections) {
  ServerConfig cfg;
  cfg.port = 0;
  Server server(cfg);
  server.start();
  server.request_stop();
  server.wait();
  // After the drain completes, connects must fail (listener closed).
  const int fd = connect_loopback(server.port());
  if (fd >= 0) {
    // A connect may land in the kernel backlog raceily; a read then
    // sees immediate EOF rather than service.
    const std::string reply = read_line(fd);
    EXPECT_TRUE(reply.empty());
    ::close(fd);
  }
}

TEST(ServeParallel, PooledServerAnswersManyConnections) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.service.threads = 4;
  Server server(cfg);
  server.start();
  constexpr int kClients = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      const int fd = connect_loopback(server.port());
      if (fd < 0) {
        bad.fetch_add(1);
        return;
      }
      for (int i = 0; i < 10; ++i) {
        const std::string req =
            R"({"op": "canon", "kind": "graph", "graph": )"
            R"({"n": 3, "edges": [[0, 1], [1, 2]]}})"
            "\n";
        if (::send(fd, req.data(), req.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(req.size())) {
          bad.fetch_add(1);
          break;
        }
        const std::string reply = read_line(fd);
        const Json j = parse_json(reply);
        if (j.find("ok") == nullptr || !j.find("ok")->as_bool()) {
          bad.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace wm::serve
