# Empty compiler generated dependencies file for bench_lemma15.
# This may be replaced when dependencies are built.
