file(REMOVE_RECURSE
  "CMakeFiles/test_simulations.dir/test_simulations.cpp.o"
  "CMakeFiles/test_simulations.dir/test_simulations.cpp.o.d"
  "test_simulations"
  "test_simulations.pdb"
  "test_simulations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
