// Streaming-census bench: the disk-backed store end to end.
//
// Runs the n=6 graph census (all + connected) through
// store::run_census with a deliberately small spill threshold, so one
// bench run exercises the whole machinery: batched dedup_stream scans,
// front seals, segment compaction, checkpoint commits, and a
// pause/resume sequence that must reproduce the uninterrupted totals
// exactly. Class counts are pinned to OEIS (A000088(6) = 156,
// A001349(6) = 112) — a store bug cannot hide behind a perf number.
//
// Determinism: batch size, checkpoint cadence and spill threshold are
// fixed, and the store's merge step is sequential, so every stdout
// line — classes, admissible, segments, generations — is byte-identical
// at any --threads setting; the CI smoke loop diffs exactly that.
// Throughput (masks/sec) goes to stderr and BENCH_census.json.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.hpp"
#include "graph/enumerate.hpp"
#include "store/census.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

constexpr std::uint64_t kExpected[2] = {156, 112};  // A000088(6), A001349(6)

store::CensusOptions base_options(const std::string& tag) {
  store::CensusOptions opts;
  opts.batch = 2048;
  opts.checkpoint_every = 4;
  opts.store.spill_threshold = 64;     // force seals mid-census
  opts.store.compact_min_segments = 4; // ...and compactions
  opts.checkpoint_path = "bench_census_state/" + tag + ".checkpoint";
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  const benchutil::Timer total;

  std::printf("=== Streaming census through the disk-backed store ===\n\n");
  std::printf("n=6, batch=2048, checkpoint every 4 batches, spill at 64\n\n");
  std::printf("%-16s %-8s %-12s %-9s %-10s %-8s\n", "family", "classes",
              "admissible", "segments", "generation", "resumed");

  std::filesystem::remove_all("bench_census_state");
  std::filesystem::create_directories("bench_census_state");

  std::uint64_t masks_scanned = 0;
  double scan_ms = 0;
  int family = 0;
  for (const bool connected : {false, true}) {
    EnumerateOptions eopts;
    eopts.connected_only = connected;
    const store::CensusSpace space = graph_census_space(6, eopts);
    const std::string tag = connected ? "conn" : "all";

    // Cold uninterrupted run.
    const benchutil::Timer timer;
    store::CensusOptions opts = base_options(tag);
    const store::CensusResult cold =
        store::run_census(space, "bench_census_state/store_" + tag, &pool,
                          opts);
    scan_ms += timer.ms();
    masks_scanned += cold.scanned;
    std::printf("%-16s %-8llu %-12llu %-9llu %-10llu %-8s\n",
                space.kind.c_str(),
                static_cast<unsigned long long>(cold.classes),
                static_cast<unsigned long long>(cold.admissible),
                static_cast<unsigned long long>(cold.store.segments),
                static_cast<unsigned long long>(cold.store.generation),
                cold.resumed ? "yes" : "no");
    if (!cold.complete || cold.classes != kExpected[family]) {
      std::printf("PIN MISMATCH: expected %llu classes\n",
                  static_cast<unsigned long long>(kExpected[family]));
      return 1;
    }

    // Warm resume of a complete census: no work, same totals.
    opts.resume = true;
    const store::CensusResult warm =
        store::run_census(space, "bench_census_state/store_" + tag, &pool,
                          opts);
    if (!warm.resumed || warm.classes != cold.classes ||
        warm.scanned != cold.scanned || warm.admissible != cold.admissible) {
      std::printf("WARM RESUME MISMATCH on %s\n", space.kind.c_str());
      return 1;
    }

    // Paused-and-resumed from scratch: totals must equal the cold run's.
    store::CensusOptions chunked = base_options(tag + "_chunk");
    chunked.max_batches = 3;
    store::CensusResult chunk;
    do {
      chunk = store::run_census(space, "bench_census_state/store_" + tag +
                                           "_chunk",
                                &pool, chunked);
      chunked.resume = true;
    } while (!chunk.complete);
    if (chunk.classes != cold.classes || chunk.scanned != cold.scanned ||
        chunk.admissible != cold.admissible ||
        chunk.batches != cold.batches) {
      std::printf("PAUSE/RESUME MISMATCH on %s\n", space.kind.c_str());
      return 1;
    }
    std::printf("%-16s pause/resume over %llu checkpoints: identical\n",
                space.kind.c_str(),
                static_cast<unsigned long long>(chunk.checkpoints));
    ++family;
  }

  std::printf("\nShape checks: class counts pinned to A000088/A001349;\n");
  std::printf("warm resume is a no-op; pause/resume totals match the\n");
  std::printf("uninterrupted run exactly.\n");

  benchutil::report_phase("census.scan", scan_ms,
                          static_cast<std::size_t>(masks_scanned));
  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "census", 6, threads, wall,
      scan_ms > 0 ? 1000.0 * static_cast<double>(masks_scanned) / scan_ms
                  : 0);
  std::filesystem::remove_all("bench_census_state");
  return 0;
}
