// Minimisation report: how far do the four Kripke views of classic
// graphs compress under bisimulation quotienting? The block counts ARE
// the per-class distinguishable-state counts — the quantity every
// separation and every locality bound in this library reduces to.
#include <cstdio>

#include "bisim/quotient.hpp"
#include "graph/generators.hpp"
#include "port/port_numbering.hpp"

namespace {

using namespace wm;

void row(const char* name, const PortNumbering& p) {
  const Graph& g = p.graph();
  std::printf("%-26s %-4d", name, g.num_nodes());
  for (const Variant variant : {Variant::PlusPlus, Variant::MinusPlus,
                                Variant::PlusMinus, Variant::MinusMinus}) {
    const KripkeModel k = kripke_from_graph(p, variant);
    const KripkeModel q = minimise(k);
    const KripkeModel qg = minimise_graded(k);
    std::printf("   %3d/%-3d", q.num_states(), qg.num_states());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Bisimulation quotients (minimal models) ===\n\n");
  std::printf("columns: states of K/~ (ungraded / graded) per view\n\n");
  std::printf("%-26s %-4s   %-7s   %-7s   %-7s   %-7s\n",
              "graph (numbering)", "n", "K++", "K-+", "K+-", "K--");
  Rng rng(3);
  row("path-8 (identity)", PortNumbering::identity(path_graph(8)));
  row("cycle-8 (identity)", PortNumbering::identity(cycle_graph(8)));
  row("cycle-8 (symmetric)",
      PortNumbering::symmetric_regular(cycle_graph(8)));
  row("star-6 (identity)", PortNumbering::identity(star_graph(6)));
  row("petersen (symmetric)",
      PortNumbering::symmetric_regular(petersen_graph()));
  row("fig9a (symmetric)", PortNumbering::symmetric_regular(fig9a_graph()));
  {
    Rng crng(9);
    const Graph g = fig9a_graph();
    row("fig9a (consistent)", PortNumbering::random_consistent(g, crng));
  }
  {
    const Graph g = random_connected_graph(14, 3, 6, rng);
    row("random-14 (random)", PortNumbering::random(g, rng));
  }
  row("grid-4x4 (identity)", PortNumbering::identity(grid_graph(4, 4)));

  std::printf("\nShape checks: symmetric numberings compress every view to\n");
  std::printf("a single state (no algorithm distinguishes anything — the\n");
  std::printf("Theorem 17 situation); broadcast views (right columns) are\n");
  std::printf("never finer than the ported ones; graded counts exceed\n");
  std::printf("ungraded exactly where multiplicities matter (MB vs SB).\n");
  return 0;
}
