#include "serve/memo_cache.hpp"

#include <bit>

#include "obs/counters.hpp"
#include "obs/log.hpp"

namespace wm::serve {

namespace {

std::size_t table_size_for(std::size_t cap) {
  // Keep the live load factor at <= 50% so triangular probe chains stay
  // short even with a tombstone population on top.
  return std::bit_ceil(std::max<std::size_t>(8, cap * 2));
}

}  // namespace

MemoCache::MemoCache(std::size_t capacity, int shards) {
  if (capacity == 0) capacity = 1;
  const std::size_t nshards =
      shards > 0 ? static_cast<std::size_t>(shards)
                 : std::min<std::size_t>(8, std::max<std::size_t>(1, capacity));
  shard_capacity_ = (capacity + nshards - 1) / nshards;
  shards_ = std::vector<Shard>(nshards);
  for (Shard& s : shards_) {
    s.slots.resize(table_size_for(shard_capacity_));
  }
}

std::uint64_t MemoCache::key_hash(const std::string& key) {
  // FNV-1a, same primitive as canonical.hpp's certificate_hash; mixed
  // before any placement use (hash_mix.hpp).
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

MemoCache::Shard& MemoCache::shard_for(std::uint64_t hash) {
  return shards_[hash_mix(hash) % shards_.size()];
}

const MemoCache::Shard& MemoCache::shard_for(std::uint64_t hash) const {
  return shards_[hash_mix(hash) % shards_.size()];
}

std::size_t MemoCache::probe(const Shard& s, std::uint64_t hash,
                             const std::string& key, bool& found) const {
  const std::size_t mask = s.slots.size() - 1;
  std::size_t idx = hash_mix(hash ^ 0x6d0f27bd) & mask;
  std::size_t candidate = s.slots.size();  // first tombstone on the chain
  for (std::size_t step = 1;; ++step) {
    const Slot& slot = s.slots[idx];
    switch (slot.state) {
      case State::kEmpty:
        found = false;
        return candidate < s.slots.size() ? candidate : idx;
      case State::kTombstone:
        if (candidate == s.slots.size()) candidate = idx;
        break;
      case State::kComputing:
      case State::kReady:
        if (slot.hash == hash && slot.key == key) {
          found = true;
          return idx;
        }
        break;
    }
    // Triangular probing visits every slot of a power-of-two table; the
    // occupied counter is kept below the table size, so an empty slot
    // always terminates the walk.
    idx = (idx + step) & mask;
  }
}

bool MemoCache::evict_one(Shard& s) {
  const std::size_t n = s.slots.size();
  // Two full passes: the first may only clear reference bits, the
  // second then finds a victim unless every live entry is kComputing.
  for (std::size_t scanned = 0; scanned < 2 * n; ++scanned) {
    Slot& slot = s.slots[s.clock];
    s.clock = (s.clock + 1) % n;
    if (slot.state != State::kReady) continue;
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    slot.state = State::kTombstone;
    slot.key.clear();
    slot.key.shrink_to_fit();
    slot.value.clear();
    slot.value.shrink_to_fit();
    --s.live;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    WM_COUNT_INFO(serve.cache.evictions);
    if (obs::log_enabled(obs::LogLevel::kDebug)) {
      obs::LogEvent(obs::LogLevel::kDebug, "cache_evict")
          .num_u("live", s.live);
    }
    return true;
  }
  return false;
}

void MemoCache::rehash(Shard& s) {
  std::vector<Slot> old;
  old.swap(s.slots);
  s.slots.resize(old.size());
  s.occupied = s.live;
  s.clock = 0;
  for (Slot& slot : old) {
    if (slot.state != State::kComputing && slot.state != State::kReady) {
      continue;
    }
    bool found = false;
    const std::size_t idx = probe(s, slot.hash, slot.key, found);
    s.slots[idx] = std::move(slot);
  }
  WM_COUNT_INFO(serve.cache.rehashes);
}

MemoCache::Result MemoCache::get_or_compute(
    const std::string& key, const std::function<std::string()>& compute) {
  const std::uint64_t hash = key_hash(key);
  Shard& s = shard_for(hash);
  bool claimed = false;
  bool bypass = false;
  {
    std::unique_lock<std::mutex> lock(s.mu);
    for (;;) {
      bool found = false;
      const std::size_t idx = probe(s, hash, key, found);
      if (found && s.slots[idx].state == State::kReady) {
        Slot& slot = s.slots[idx];
        slot.referenced = true;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return Result{slot.value, /*hit=*/true};
      }
      if (found) {  // kComputing: single-flight wait, then re-probe
        s.cv.wait(lock);
        continue;
      }
      // Absent: claim a slot, evicting past the live cap. The claimed
      // slot keeps probe chains sound (first tombstone else the empty).
      if (s.live >= shard_capacity_ && !evict_one(s)) {
        bypass = true;  // every live entry is kComputing
        break;
      }
      Slot& slot = s.slots[idx];
      const bool was_empty = slot.state == State::kEmpty;
      slot.state = State::kComputing;
      slot.referenced = false;
      slot.hash = hash;
      slot.key = key;
      slot.value.clear();
      ++s.live;
      if (was_empty) ++s.occupied;
      // Leave one empty slot per chain's worth of headroom: rehash when
      // tombstones + live fill 3/4 of the table.
      if (s.occupied * 4 > s.slots.size() * 3) rehash(s);
      claimed = true;
      break;
    }
  }

  if (bypass) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    WM_COUNT_INFO(serve.cache.bypasses);
    if (obs::log_enabled(obs::LogLevel::kDebug)) {
      obs::LogEvent(obs::LogLevel::kDebug, "cache_bypass");
    }
    return Result{compute(), /*hit=*/false};
  }

  std::string value;
  try {
    value = compute();
  } catch (...) {
    std::lock_guard<std::mutex> lock(s.mu);
    bool found = false;
    const std::size_t idx = probe(s, hash, key, found);
    if (found && s.slots[idx].state == State::kComputing) {
      Slot& slot = s.slots[idx];
      slot.state = State::kTombstone;
      slot.key.clear();
      --s.live;
    }
    s.cv.notify_all();
    throw;
  }
  (void)claimed;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    bool found = false;
    const std::size_t idx = probe(s, hash, key, found);
    // The slot cannot have vanished: kComputing entries are never
    // evicted and rehash preserves them.
    if (found && s.slots[idx].state == State::kComputing) {
      Slot& slot = s.slots[idx];
      slot.value = value;
      slot.state = State::kReady;
      slot.referenced = true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    s.cv.notify_all();
  }
  return Result{std::move(value), /*hit=*/false};
}

std::optional<std::string> MemoCache::peek(const std::string& key) const {
  const std::uint64_t hash = key_hash(key);
  const Shard& s = shard_for(hash);
  std::lock_guard<std::mutex> lock(s.mu);
  bool found = false;
  const std::size_t idx = probe(s, hash, key, found);
  if (found && s.slots[idx].state == State::kReady) {
    return s.slots[idx].value;
  }
  return std::nullopt;
}

MemoCache::Stats MemoCache::stats() const {
  Stats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.bypasses = bypasses_.load(std::memory_order_relaxed);
  st.capacity = shard_capacity_ * shards_.size();
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    st.entries += s.live;
  }
  return st;
}

}  // namespace wm::serve
