#include "cover/covering.hpp"

#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "graph/properties.hpp"
#include "obs/histogram.hpp"
#include "obs/progress.hpp"
#include "util/visitor.hpp"

namespace wm {

bool is_covering_map(const PortNumbering& h, const PortNumbering& g,
                     const std::vector<NodeId>& phi) {
  const Graph& gh = h.graph();
  const Graph& gg = g.graph();
  if (phi.size() != static_cast<std::size_t>(gh.num_nodes())) return false;
  std::vector<bool> hit(static_cast<std::size_t>(gg.num_nodes()), false);
  for (NodeId v = 0; v < gh.num_nodes(); ++v) {
    if (phi[v] < 0 || phi[v] >= gg.num_nodes()) return false;
    if (gh.degree(v) != gg.degree(phi[v])) return false;
    hit[phi[v]] = true;
    for (int i = 1; i <= gh.degree(v); ++i) {
      const PortRef up = h.forward({v, i});
      const PortRef down = g.forward({phi[v], i});
      if (down.node != phi[up.node] || down.index != up.index) return false;
    }
  }
  for (bool b : hit) {
    if (!b) return false;  // surjectivity
  }
  return true;
}

namespace {

/// Propagates a candidate anchor assignment (component anchor ->
/// G-node) across H via the ports; returns the full map if propagation
/// is consistent AND the result passes the literal is_covering_map
/// check, else nullopt.
std::optional<std::vector<NodeId>> propagate_cover(
    const PortNumbering& h, const PortNumbering& g,
    const std::vector<std::vector<NodeId>>& components,
    const std::vector<NodeId>& anchor_images) {
  const Graph& gh = h.graph();
  const Graph& gg = g.graph();
  std::vector<NodeId> phi(static_cast<std::size_t>(gh.num_nodes()), -1);
  for (std::size_t c = 0; c < components.size(); ++c) {
    const NodeId anchor = components[c][0];
    const NodeId image = anchor_images[c];
    if (gh.degree(anchor) != gg.degree(image)) return std::nullopt;
    phi[anchor] = image;
    std::deque<NodeId> queue{anchor};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (int i = 1; i <= gh.degree(v); ++i) {
        const PortRef up = h.forward({v, i});
        const PortRef down = g.forward({phi[v], i});
        if (phi[up.node] < 0) {
          if (gh.degree(up.node) != gg.degree(down.node)) return std::nullopt;
          phi[up.node] = down.node;
          queue.push_back(up.node);
        } else if (phi[up.node] != down.node) {
          return std::nullopt;
        }
      }
    }
  }
  if (!is_covering_map(h, g, phi)) return std::nullopt;
  return phi;
}

}  // namespace

std::optional<std::vector<NodeId>> find_covering_map(
    const PortNumbering& h, const PortNumbering& g, ThreadPool* pool) {
  WM_TIME_SCOPE("cover.find");
  const std::vector<std::vector<NodeId>> components =
      connected_components(h.graph());
  const std::uint64_t base = static_cast<std::uint64_t>(g.graph().num_nodes());

  // Candidate space: one G-node per component anchor, mixed radix with
  // component 0 as the least significant digit.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t space = 1;
  for (std::size_t c = 0; c < components.size(); ++c) {
    if (base != 0 && space > kMax / base) {
      throw std::invalid_argument(
          "find_covering_map: anchor space exceeds 64 bits");
    }
    space *= base;
  }

  auto images_for = [&](std::uint64_t a) {
    std::vector<NodeId> images(components.size());
    for (std::size_t c = 0; c < components.size(); ++c) {
      images[c] = static_cast<NodeId>(a % base);
      a /= base;
    }
    return images;
  };
  auto candidate_at = [&](std::uint64_t a) {
    return propagate_cover(h, g, components, images_for(a));
  };

  // Liveness over the anchor-assignment space; progress counts
  // candidates evaluated (timing-dependent under the speculative
  // parallel scan), not deterministic work.
  obs::ProgressTask progress("cover.anchors", space);
  const auto hit =
      ParallelVisitor(pool).find_first(0, space, [&](std::uint64_t a) {
        progress.tick();
        return candidate_at(a).has_value();
      });
  if (!hit) return std::nullopt;
  return candidate_at(*hit);
}

namespace {

std::vector<int> checked_permutation(const Voltage& sigma, NodeId u, NodeId v,
                                     int k) {
  std::vector<int> pi = sigma(u, v);
  if (static_cast<int>(pi.size()) != k) {
    throw std::invalid_argument("voltage_lift: voltage of wrong size");
  }
  std::vector<bool> seen(static_cast<std::size_t>(k), false);
  for (int x : pi) {
    if (x < 0 || x >= k || seen[x]) {
      throw std::invalid_argument("voltage_lift: voltage not a permutation");
    }
    seen[x] = true;
  }
  return pi;
}

}  // namespace

Lift voltage_lift(const PortNumbering& p, int k, const Voltage& sigma) {
  if (k < 1) throw std::invalid_argument("voltage_lift: k >= 1 required");
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  auto idx = [n](NodeId v, int layer) { return layer * n + v; };

  Graph lifted(n * k);
  for (const Edge& e : g.edges()) {
    const std::vector<int> pi = checked_permutation(sigma, e.u, e.v, k);
    for (int c = 0; c < k; ++c) {
      lifted.add_edge(idx(e.u, c), idx(e.v, pi[c]));
    }
  }

  // Port numbering of the lift: copy the base ports along the projection.
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n * k));
  std::vector<std::vector<int>> in(static_cast<std::size_t>(n * k));
  for (NodeId w = 0; w < lifted.num_nodes(); ++w) {
    const NodeId base = w % n;
    out[w].reserve(static_cast<std::size_t>(lifted.degree(w)));
    in[w].reserve(static_cast<std::size_t>(lifted.degree(w)));
    for (NodeId w2 : lifted.neighbours(w)) {
      const NodeId base2 = w2 % n;
      out[w].push_back(p.out_port(base, base2));
      in[w].push_back(p.in_port(base, base2));
    }
  }
  Lift lift;
  lift.numbering = PortNumbering::from_permutations(lifted, std::move(out),
                                                    std::move(in));
  lift.projection.resize(static_cast<std::size_t>(n * k));
  for (NodeId w = 0; w < n * k; ++w) lift.projection[w] = w % n;
  return lift;
}

Lift disjoint_copies(const PortNumbering& p, int k) {
  std::vector<int> identity(static_cast<std::size_t>(k));
  std::iota(identity.begin(), identity.end(), 0);
  return voltage_lift(p, k, [&identity](NodeId, NodeId) { return identity; });
}

Lift double_cover_lift(const PortNumbering& p) {
  return voltage_lift(p, 2, [](NodeId, NodeId) {
    return std::vector<int>{1, 0};
  });
}

Lift random_voltage_lift(const PortNumbering& p, int k, Rng& rng) {
  return voltage_lift(p, k, [k, &rng](NodeId, NodeId) {
    std::vector<int> pi(static_cast<std::size_t>(k));
    std::iota(pi.begin(), pi.end(), 0);
    rng.shuffle(pi);
    return pi;
  });
}

}  // namespace wm
