#include "port/port_numbering.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "graph/double_cover.hpp"
#include "obs/counters.hpp"

namespace wm {

namespace {

std::vector<int> identity_perm(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 1);
  return p;
}

bool is_permutation_1n(const std::vector<int>& p) {
  std::vector<bool> seen(p.size() + 1, false);
  for (int x : p) {
    if (x < 1 || x > static_cast<int>(p.size()) || seen[x]) return false;
    seen[x] = true;
  }
  return true;
}

}  // namespace

PortNumbering PortNumbering::from_permutations(const Graph& g,
                                               std::vector<std::vector<int>> out,
                                               std::vector<std::vector<int>> in) {
  const int n = g.num_nodes();
  if (static_cast<int>(out.size()) != n || static_cast<int>(in.size()) != n) {
    throw std::invalid_argument("from_permutations: size mismatch");
  }
  // Every factory (identity/random/symmetric/...) funnels through here,
  // so this is the one build counter for port numberings.
  WM_COUNT(port.numberings_built);
  PortNumbering p;
  p.g_ = std::make_shared<Graph>(g);
  p.out_of_.assign(static_cast<std::size_t>(n), {});
  p.in_from_.assign(static_cast<std::size_t>(n), {});
  for (NodeId v = 0; v < n; ++v) {
    const int d = g.degree(v);
    if (static_cast<int>(out[v].size()) != d || static_cast<int>(in[v].size()) != d ||
        !is_permutation_1n(out[v]) || !is_permutation_1n(in[v])) {
      throw std::invalid_argument("from_permutations: not a permutation of [deg]");
    }
    // Invert: out[v][rank] = port  ->  out_of_[v][port-1] = rank.
    p.out_of_[v].assign(static_cast<std::size_t>(d), -1);
    p.in_from_[v].assign(static_cast<std::size_t>(d), -1);
    for (int rank = 0; rank < d; ++rank) {
      p.out_of_[v][out[v][rank] - 1] = rank;
      p.in_from_[v][in[v][rank] - 1] = rank;
    }
  }
  return p;
}

PortNumbering PortNumbering::identity(const Graph& g) {
  std::vector<std::vector<int>> perms(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) perms[v] = identity_perm(g.degree(v));
  return from_permutations(g, perms, perms);
}

PortNumbering PortNumbering::random(const Graph& g, Rng& rng) {
  const int n = g.num_nodes();
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    out[v] = identity_perm(g.degree(v));
    in[v] = identity_perm(g.degree(v));
    rng.shuffle(out[v]);
    rng.shuffle(in[v]);
  }
  return from_permutations(g, std::move(out), std::move(in));
}

PortNumbering PortNumbering::random_consistent(const Graph& g, Rng& rng) {
  const int n = g.num_nodes();
  std::vector<std::vector<int>> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    perm[v] = identity_perm(g.degree(v));
    rng.shuffle(perm[v]);
  }
  auto copy = perm;
  return from_permutations(g, std::move(perm), std::move(copy));
}

PortNumbering PortNumbering::symmetric_regular(const Graph& g) {
  const auto factors = regular_graph_factors(g);  // throws if not regular
  const int n = g.num_nodes();
  const int k = static_cast<int>(factors.size());
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    out[v].assign(static_cast<std::size_t>(k), 0);
    in[v].assign(static_cast<std::size_t>(k), 0);
  }
  for (int i = 0; i < k; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId u = factors[i][v];  // out-port i+1 of v leads to u,
      const int rank_vu = g.neighbour_index(v, u);
      const int rank_uv = g.neighbour_index(u, v);
      out[v][rank_vu] = i + 1;         // and arrives on u's in-port i+1.
      in[u][rank_uv] = i + 1;
    }
  }
  return from_permutations(g, std::move(out), std::move(in));
}

PortRef PortNumbering::forward(PortRef port) const {
  const NodeId v = port.node;
  const int rank = out_of_[v][port.index - 1];
  const NodeId u = graph().neighbours(v)[rank];
  return {u, in_port(u, v)};
}

PortRef PortNumbering::backward(PortRef port) const {
  const NodeId u = port.node;
  const int rank = in_from_[u][port.index - 1];
  const NodeId v = graph().neighbours(u)[rank];
  return {v, out_port(v, u)};
}

int PortNumbering::out_port(NodeId v, NodeId u) const {
  const int rank = graph().neighbour_index(v, u);
  for (int i = 0; i < static_cast<int>(out_of_[v].size()); ++i) {
    if (out_of_[v][i] == rank) return i + 1;
  }
  throw std::invalid_argument("out_port: not a neighbour");
}

int PortNumbering::in_port(NodeId v, NodeId u) const {
  const int rank = graph().neighbour_index(v, u);
  for (int i = 0; i < static_cast<int>(in_from_[v].size()); ++i) {
    if (in_from_[v][i] == rank) return i + 1;
  }
  throw std::invalid_argument("in_port: not a neighbour");
}

NodeId PortNumbering::out_neighbour(NodeId v, int i) const {
  return graph().neighbours(v)[out_of_[v][i - 1]];
}

NodeId PortNumbering::in_neighbour(NodeId v, int i) const {
  return graph().neighbours(v)[in_from_[v][i - 1]];
}

bool PortNumbering::is_consistent() const {
  for (NodeId v = 0; v < graph().num_nodes(); ++v) {
    for (int i = 1; i <= degree(v); ++i) {
      if (forward(forward({v, i})) != PortRef{v, i}) return false;
    }
  }
  return true;
}

bool PortNumbering::is_valid() const {
  const Graph& g = graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int d = g.degree(v);
    if (static_cast<int>(out_of_[v].size()) != d ||
        static_cast<int>(in_from_[v].size()) != d) {
      return false;
    }
    std::vector<bool> seen_out(static_cast<std::size_t>(d), false);
    std::vector<bool> seen_in(static_cast<std::size_t>(d), false);
    for (int i = 0; i < d; ++i) {
      const int ro = out_of_[v][i], ri = in_from_[v][i];
      if (ro < 0 || ro >= d || seen_out[ro]) return false;
      if (ri < 0 || ri >= d || seen_in[ri]) return false;
      seen_out[ro] = seen_in[ri] = true;
    }
    // A(p) = A(G) and bijectivity follow from the permutation structure:
    // forward must be inverted exactly by backward.
    for (int i = 1; i <= d; ++i) {
      if (backward(forward({v, i})) != PortRef{v, i}) return false;
    }
  }
  return true;
}

std::vector<int> PortNumbering::local_type(NodeId v, int delta) const {
  std::vector<int> t(static_cast<std::size_t>(delta), 0);
  for (int i = 1; i <= degree(v); ++i) {
    t[i - 1] = forward({v, i}).index;
  }
  return t;
}

std::string PortNumbering::to_string() const {
  std::ostringstream os;
  os << "PortNumbering" << (is_consistent() ? " (consistent)" : "");
  for (NodeId v = 0; v < graph().num_nodes(); ++v) {
    os << "\n  node " << v << ":";
    for (int i = 1; i <= degree(v); ++i) {
      const PortRef t = forward({v, i});
      os << " (" << v << "," << i << ")->(" << t.node << "," << t.index << ")";
    }
  }
  return os.str();
}

bool operator==(const PortNumbering& a, const PortNumbering& b) {
  return *a.g_ == *b.g_ && a.out_of_ == b.out_of_ && a.in_from_ == b.in_from_;
}

namespace {

/// Iterates over all tuples of permutations (one per node); calls fn for
/// each complete assignment. Returns false if fn requested a stop.
bool perm_product(const Graph& g, std::size_t v,
                  std::vector<std::vector<int>>& current,
                  const std::function<bool(std::vector<std::vector<int>>&)>& fn) {
  if (v == static_cast<std::size_t>(g.num_nodes())) return fn(current);
  std::vector<int> perm(static_cast<std::size_t>(g.degree(static_cast<NodeId>(v))));
  std::iota(perm.begin(), perm.end(), 1);
  do {
    current[v] = perm;
    if (!perm_product(g, v + 1, current, fn)) return false;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return true;
}

}  // namespace

std::size_t for_each_consistent_port_numbering(
    const Graph& g, const std::function<bool(const PortNumbering&)>& fn) {
  std::size_t count = 0;
  std::vector<std::vector<int>> perms(static_cast<std::size_t>(g.num_nodes()));
  perm_product(g, 0, perms, [&](std::vector<std::vector<int>>& out) {
    ++count;
    WM_COUNT(port.numberings);
    auto copy = out;
    return fn(PortNumbering::from_permutations(g, out, copy));
  });
  return count;
}

std::size_t for_each_port_numbering(
    const Graph& g, const std::function<bool(const PortNumbering&)>& fn) {
  std::size_t count = 0;
  std::vector<std::vector<int>> outs(static_cast<std::size_t>(g.num_nodes()));
  perm_product(g, 0, outs, [&](std::vector<std::vector<int>>& out) {
    std::vector<std::vector<int>> ins(static_cast<std::size_t>(g.num_nodes()));
    return perm_product(g, 0, ins, [&](std::vector<std::vector<int>>& in) {
      ++count;
      WM_COUNT(port.numberings);
      return fn(PortNumbering::from_permutations(g, out, in));
    });
  });
  return count;
}

}  // namespace wm
