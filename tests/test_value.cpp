#include "util/value.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wm {
namespace {

TEST(Value, DefaultIsUnit) {
  Value v;
  EXPECT_TRUE(v.is_unit());
  EXPECT_EQ(v, Value::unit());
}

TEST(Value, IntRoundtrip) {
  EXPECT_EQ(Value::integer(42).as_int(), 42);
  EXPECT_EQ(Value::integer(-7).as_int(), -7);
  EXPECT_EQ(Value::boolean(true).as_int(), 1);
  EXPECT_EQ(Value::boolean(false).as_int(), 0);
}

TEST(Value, StrRoundtrip) {
  EXPECT_EQ(Value::str("hello").as_str(), "hello");
}

TEST(Value, TuplePreservesOrderAndDuplicates) {
  const Value t = Value::tuple({Value::integer(2), Value::integer(1),
                                Value::integer(2)});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.at(0).as_int(), 2);
  EXPECT_EQ(t.at(1).as_int(), 1);
  EXPECT_EQ(t.at(2).as_int(), 2);
}

TEST(Value, SetSortsAndDeduplicates) {
  const Value s = Value::set({Value::integer(3), Value::integer(1),
                              Value::integer(3), Value::integer(2)});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(0).as_int(), 1);
  EXPECT_EQ(s.at(1).as_int(), 2);
  EXPECT_EQ(s.at(2).as_int(), 3);
}

TEST(Value, MultisetSortsKeepsDuplicates) {
  const Value m = Value::mset({Value::integer(3), Value::integer(1),
                               Value::integer(3)});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(0).as_int(), 1);
  EXPECT_EQ(m.at(1).as_int(), 3);
  EXPECT_EQ(m.at(2).as_int(), 3);
  EXPECT_EQ(m.count(Value::integer(3)), 2u);
  EXPECT_EQ(m.count(Value::integer(1)), 1u);
  EXPECT_EQ(m.count(Value::integer(9)), 0u);
}

TEST(Value, SetOfMsetOfMatchPaperSemantics) {
  // Figure 3: vector (a, b, a) -> multiset {a, a, b} -> set {a, b}.
  const Value a = Value::str("a"), b = Value::str("b");
  const ValueVec inbox{a, b, a};
  EXPECT_EQ(multiset_of(inbox), Value::mset({a, a, b}));
  EXPECT_EQ(set_of(inbox), Value::set({a, b}));
  // Different vectors with the same multiset canonicalise identically.
  EXPECT_EQ(multiset_of({a, b, a}), multiset_of({a, a, b}));
  EXPECT_NE(Value::tuple({a, b, a}), Value::tuple({a, a, b}));
}

TEST(Value, OrderingIsTotalAndKindFirst) {
  const Value u = Value::unit();
  const Value i = Value::integer(0);
  const Value s = Value::str("");
  const Value t = Value::tuple({});
  EXPECT_LT(u, i);
  EXPECT_LT(i, s);
  EXPECT_LT(s, t);
  EXPECT_LT(Value::integer(1), Value::integer(2));
  EXPECT_LT(Value::str("a"), Value::str("b"));
}

TEST(Value, TupleOrderingIsLexicographic) {
  const Value short_tuple = Value::tuple({Value::integer(1)});
  const Value longer = Value::tuple({Value::integer(1), Value::integer(0)});
  EXPECT_LT(short_tuple, longer);  // prefix < extension
  EXPECT_LT(Value::tuple({Value::integer(1), Value::integer(2)}),
            Value::tuple({Value::integer(2), Value::integer(0)}));
}

TEST(Value, EqualityAndHashAgree) {
  const Value a = Value::tuple({Value::integer(1), Value::set({Value::str("x")})});
  const Value b = Value::tuple({Value::integer(1), Value::set({Value::str("x")})});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, ContainsOnCollections) {
  const Value s = Value::set({Value::integer(1), Value::integer(5)});
  EXPECT_TRUE(s.contains(Value::integer(5)));
  EXPECT_FALSE(s.contains(Value::integer(2)));
  const Value t = Value::tuple({Value::integer(7)});
  EXPECT_TRUE(t.contains(Value::integer(7)));
}

TEST(Value, Printing) {
  EXPECT_EQ(Value::unit().to_string(), "()");
  EXPECT_EQ(Value::integer(3).to_string(), "3");
  EXPECT_EQ(Value::str("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Value::tuple({Value::integer(1), Value::integer(2)}).to_string(),
            "(1, 2)");
  EXPECT_EQ(Value::set({Value::integer(2), Value::integer(1)}).to_string(),
            "{1, 2}");
  EXPECT_EQ(Value::mset({Value::integer(1), Value::integer(1)}).to_string(),
            "{|1, 1|}");
}

TEST(Value, NestedStructuresCompare) {
  const Value deep1 = Value::pair(Value::mset({Value::integer(1)}),
                                  Value::tuple({Value::unit()}));
  const Value deep2 = Value::pair(Value::mset({Value::integer(2)}),
                                  Value::tuple({Value::unit()}));
  EXPECT_LT(deep1, deep2);
}

TEST(Value, SharedStructureIsCheap) {
  // Build a deeply nested chain; copies must not blow up.
  Value v = Value::unit();
  for (int i = 0; i < 10000; ++i) v = Value::pair(Value::integer(i), v);
  const Value copy = v;  // O(1)
  EXPECT_EQ(copy, v);
}

}  // namespace
}  // namespace wm
