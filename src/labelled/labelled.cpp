#include "labelled/labelled.hpp"

#include <stdexcept>

namespace wm {

namespace {

/// Adapter presenting a LabelledStateMachine as a StateMachine once the
/// initial states have been fixed externally.
class FixedInitAdapter final : public StateMachine {
 public:
  explicit FixedInitAdapter(const LabelledStateMachine& m) : m_(m) {}

  AlgebraicClass algebraic_class() const override { return m_.algebraic_class(); }
  Value init(int) const override {
    throw std::logic_error("FixedInitAdapter: init must not be called");
  }
  bool is_stopping(const Value& state) const override {
    return m_.is_stopping(state);
  }
  Value message(const Value& state, int port) const override {
    return m_.message(state, port);
  }
  Value transition(const Value& state, const Value& inbox,
                   int degree) const override {
    return m_.transition(state, inbox, degree);
  }

 private:
  const LabelledStateMachine& m_;
};

class IgnoreLabels final : public LabelledStateMachine {
 public:
  explicit IgnoreLabels(std::shared_ptr<const StateMachine> m)
      : m_(std::move(m)) {}
  AlgebraicClass algebraic_class() const override { return m_->algebraic_class(); }
  Value init(int degree, const Value&) const override { return m_->init(degree); }
  bool is_stopping(const Value& state) const override {
    return m_->is_stopping(state);
  }
  Value message(const Value& state, int port) const override {
    return m_->message(state, port);
  }
  Value transition(const Value& state, const Value& inbox,
                   int degree) const override {
    return m_->transition(state, inbox, degree);
  }

 private:
  std::shared_ptr<const StateMachine> m_;
};

}  // namespace

ExecutionResult execute_labelled(const LabelledStateMachine& m,
                                 const PortNumbering& p,
                                 const std::vector<Value>& inputs,
                                 const ExecutionOptions& options) {
  const Graph& g = p.graph();
  if (inputs.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("execute_labelled: wrong input count");
  }
  std::vector<Value> initial(inputs.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    initial[v] = m.init(g.degree(v), inputs[v]);
  }
  const FixedInitAdapter adapter(m);
  return execute_with_states(adapter, p, std::move(initial), options);
}

std::shared_ptr<const LabelledStateMachine> ignore_labels(
    std::shared_ptr<const StateMachine> m) {
  return std::make_shared<IgnoreLabels>(std::move(m));
}

KripkeModel kripke_from_labelled_graph(const PortNumbering& p, Variant variant,
                                       const std::vector<int>& labels,
                                       int num_labels, int delta) {
  const Graph& g = p.graph();
  if (labels.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("kripke_from_labelled_graph: label count");
  }
  if (delta < 0) delta = g.max_degree();
  const KripkeModel base = kripke_from_graph(p, variant, delta);
  KripkeModel out(base.num_states(), delta + num_labels);
  for (const Modality& alpha : base.modalities()) {
    out.ensure_relation(alpha);
    for (int v = 0; v < base.num_states(); ++v) {
      for (int w : base.successors(alpha, v)) out.add_edge(alpha, v, w);
    }
  }
  for (int q = 1; q <= base.num_props(); ++q) {
    for (int v = 0; v < base.num_states(); ++v) {
      if (base.prop_holds(q, v)) out.set_prop(q, v);
    }
  }
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (labels[v] < 0 || labels[v] >= num_labels) {
      throw std::invalid_argument("kripke_from_labelled_graph: label range");
    }
    out.set_prop(delta + 1 + labels[v], v);
  }
  return out;
}

}  // namespace wm
