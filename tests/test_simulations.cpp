#include "transform/simulations.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "algorithms/machines.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

/// A Vector machine with genuinely port-dependent behaviour: after 2
/// rounds each node outputs the sum over in-ports i of i * (message at
/// port i), where round-1 messages are out-port numbers and round-2
/// messages are the previous round-1 inbox sums. Exercises both state
/// evolution and ordered delivery.
LambdaMachine port_weighted_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::vector();
  m.init_fn = [](int d) {
    return Value::triple(Value::str("p"), Value::integer(0), Value::integer(d));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int port) {
    return Value::integer(s.at(1).as_int() + port);
  };
  m.transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      const Value& msg = inbox.at(i);
      sum += static_cast<std::int64_t>(i + 1) * (msg.is_unit() ? 0 : msg.as_int());
    }
    if (s.at(1).as_int() != 0) return Value::integer(sum);  // second round
    return Value::triple(Value::str("p"), Value::integer(sum == 0 ? -1 : sum),
                         s.at(2));
  };
  return m;
}

/// A Broadcast (VB) machine: gossip the minimum of received values for T
/// rounds, seeded with the node degree; output the final minimum. Output
/// depends only on the graph, never on ports — ideal for Theorem 9.
LambdaMachine min_gossip_machine(int rounds) {
  LambdaMachine m;
  m.cls = AlgebraicClass::vector_broadcast();
  m.init_fn = [rounds](int d) {
    return Value::triple(Value::str("g"), Value::integer(rounds),
                         Value::integer(d));
  };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(2); };
  m.transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t best = s.at(2).as_int();
    for (const Value& msg : inbox.items()) {
      if (!msg.is_unit()) best = std::min(best, msg.as_int());
    }
    const auto left = s.at(1).as_int() - 1;
    if (left == 0) return Value::integer(best);
    return Value::triple(Value::str("g"), Value::integer(left),
                         Value::integer(best));
  };
  return m;
}

/// A Multiset machine: two rounds of "histogram of neighbour degrees",
/// output = (sum of degrees seen) * 10 + (own degree). Port-independent
/// by construction but uses multiplicities.
LambdaMachine degree_sum_machine() {
  LambdaMachine m;
  m.cls = AlgebraicClass::multiset();
  m.init_fn = [](int d) { return Value::pair(Value::str("s"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value& s, int) { return s.at(1); };
  m.transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t sum = 0;
    for (const Value& msg : inbox.items()) {
      if (!msg.is_unit()) sum += msg.as_int();
    }
    return Value::integer(sum * 10 + s.at(1).as_int());
  };
  return m;
}

TEST(Theorem8, MultisetSimulationOfVectorMachine) {
  // The wrapped machine must be Multiset class and produce an output that
  // the original machine produces under SOME port numbering — for
  // graph-determined outputs we simply require equality.
  auto a = std::make_shared<LambdaMachine>(port_weighted_machine());
  const auto b = to_multiset_machine(a);
  EXPECT_EQ(b->algebraic_class(), AlgebraicClass::multiset());

  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(8, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto ra = execute(*a, p);
    const auto rb = execute(*b, p);
    ASSERT_TRUE(ra.stopped);
    ASSERT_TRUE(rb.stopped);
    // Theorem 8: ZERO round overhead.
    EXPECT_EQ(ra.rounds, rb.rounds);
    // The simulated execution corresponds to a port numbering p' in P_T
    // that shares p's out-ports. The multiset of outputs must therefore
    // match the multiset over reassignments of in-ports; verify the
    // canonical invariant: outputs agree with running `a` under the
    // numbering reconstructed by sorting — here we check a necessary
    // condition: each node's output appears among the outputs `a`
    // produces over sampled in-port reassignments.
    // For this machine outputs depend on in-port order, so we check the
    // weaker-but-exact guarantee directly: rb is a valid output of the
    // canonical problem "outputs produced by a on (G, p') for some p'
    // compatible with p's out-ports". We verify it by exhaustively
    // enumerating in-port permutations on small graphs below.
    (void)ra;
  }
}

TEST(Theorem8, SimulatedOutputRealisedBySomeCompatibleNumbering) {
  // Exhaustive: on small graphs, the Multiset-simulated output equals the
  // Vector machine's output for at least one port numbering that agrees
  // with p on out-ports (the paper's family P_0 ⊇ P_1 ⊇ ... ⊇ P_T).
  auto a = std::make_shared<LambdaMachine>(port_weighted_machine());
  const auto b = to_multiset_machine(a);
  EnumerateOptions opts;
  opts.max_degree = 3;
  enumerate_graphs(4, opts, [&](const Graph& g) {
    Rng rng(7);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto rb = execute(*b, p);
    // Freeze p's out-ports; enumerate all in-port assignments.
    const int n = g.num_nodes();
    std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId u : g.neighbours(v)) out[v].push_back(p.out_port(v, u));
    }
    std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      in[v].resize(static_cast<std::size_t>(g.degree(v)));
      std::iota(in[v].begin(), in[v].end(), 1);
    }
    bool realised = false;
    std::function<void(int)> rec = [&](int v) {
      if (realised) return;
      if (v == n) {
        auto out_copy = out;
        auto in_copy = in;
        const PortNumbering q =
            PortNumbering::from_permutations(g, out_copy, in_copy);
        if (execute(*a, q).final_states == rb.final_states) realised = true;
        return;
      }
      std::sort(in[v].begin(), in[v].end());
      do {
        rec(v + 1);
      } while (!realised && std::next_permutation(in[v].begin(), in[v].end()));
    };
    rec(0);
    EXPECT_TRUE(realised) << g.to_string();
    return true;
  });
}

TEST(Theorem8, GraphDeterminedOutputsPreservedExactly) {
  // A Vector-mode machine whose output is oblivious to ports: the
  // simulation must reproduce its output exactly on every (G, p).
  LambdaMachine vec = degree_sum_machine();
  vec.cls = AlgebraicClass::vector();
  auto a = std::make_shared<LambdaMachine>(vec);
  const auto b = to_multiset_machine(a);
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = random_connected_graph(9, 4, 4, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    EXPECT_EQ(execute(*a, p).final_states, execute(*b, p).final_states);
  }
}

TEST(Theorem9, BroadcastMachineBecomesMultisetBroadcast) {
  auto a = std::make_shared<LambdaMachine>(min_gossip_machine(3));
  const auto b = to_multiset_machine(a);
  EXPECT_EQ(b->algebraic_class(), AlgebraicClass::multiset_broadcast());
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = random_connected_graph(8, 3, 5, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto ra = execute(*a, p);
    const auto rb = execute(*b, p);
    EXPECT_EQ(ra.final_states, rb.final_states);
    EXPECT_EQ(ra.rounds, rb.rounds);  // zero overhead
  }
}

TEST(Theorem8, RejectsNonVectorSource) {
  auto a = std::make_shared<LambdaMachine>(degree_sum_machine());
  EXPECT_THROW(to_multiset_machine(to_multiset_machine(
                   std::make_shared<LambdaMachine>(port_weighted_machine()))),
               std::invalid_argument);
  (void)a;
}

TEST(Theorem4, SetSimulationOfMultisetMachine) {
  auto a = std::make_shared<LambdaMachine>(degree_sum_machine());
  for (int delta : {3, 4}) {
    const auto b = to_set_machine(a, delta);
    EXPECT_EQ(b->algebraic_class(), AlgebraicClass::set());
    Rng rng(11);
    for (int trial = 0; trial < 15; ++trial) {
      const Graph g = random_connected_graph(8, delta, 4, rng);
      const PortNumbering p = PortNumbering::random(g, rng);
      const auto ra = execute(*a, p);
      const auto rb = execute(*b, p);
      ASSERT_TRUE(rb.stopped);
      // Theorem 4: identical output, exactly 2*Delta extra rounds.
      EXPECT_EQ(ra.final_states, rb.final_states);
      EXPECT_EQ(rb.rounds, ra.rounds + 2 * delta);
    }
  }
}

TEST(Theorem4, WorksWhenMessagesCollideHeavily) {
  // On a star, all leaves send identical payloads — the prologue keys
  // must disambiguate multiplicities for the centre.
  auto a = std::make_shared<LambdaMachine>(degree_sum_machine());
  for (int k : {2, 3, 5}) {
    const Graph g = star_graph(k);
    const auto b = to_set_machine(a, k);
    const PortNumbering p = PortNumbering::identity(g);
    EXPECT_EQ(execute(*a, p).final_states, execute(*b, p).final_states) << k;
  }
}

TEST(Theorem4, ExhaustiveOnSmallGraphsAndNumberings) {
  auto a = std::make_shared<LambdaMachine>(degree_sum_machine());
  const auto b = to_set_machine(a, 3);
  EnumerateOptions opts;
  opts.max_degree = 3;
  opts.connected_only = false;
  enumerate_graphs(4, opts, [&](const Graph& g) {
    // Skip graphs with too many port numberings to keep the test fast.
    long long combos = 1;
    for (int v = 0; v < g.num_nodes(); ++v) {
      long long fact = 1;
      for (int i = 2; i <= g.degree(v); ++i) fact *= i;
      combos *= fact * fact;
    }
    if (combos > 2000) return true;
    for_each_port_numbering(g, [&](const PortNumbering& p) {
      EXPECT_EQ(execute(*a, p).final_states, execute(*b, p).final_states);
      return true;
    });
    return true;
  });
}

TEST(Theorem4, RejectsWrongSourceClass) {
  auto vb = std::make_shared<LambdaMachine>(min_gossip_machine(2));
  EXPECT_THROW(to_set_machine(vb, 3), std::invalid_argument);
}

TEST(Remark3, VectorToSetComposition) {
  // VV = SV via the composition (for graph-determined outputs, exact).
  auto a = std::make_shared<LambdaMachine>(min_gossip_machine(2));
  // min_gossip is Broadcast — use degree_sum's Vector twin instead:
  LambdaMachine vec = degree_sum_machine();
  vec.cls = AlgebraicClass::vector();
  vec.transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t sum = 0;
    for (const Value& msg : inbox.items()) {
      if (!msg.is_unit()) sum += msg.as_int();
    }
    return Value::integer(sum * 10 + s.at(1).as_int());
  };
  auto v = std::make_shared<LambdaMachine>(vec);
  const auto s = vector_to_set_machine(v, 3);
  EXPECT_EQ(s->algebraic_class(), AlgebraicClass::set());
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(7, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    EXPECT_EQ(execute(*v, p).final_states, execute(*s, p).final_states);
  }
}

TEST(Theorem9, InPortSensitiveVbMachineRealisedByCompatibleNumbering) {
  // port_one_parity reads in-port 1, so the wrapped MB machine may
  // produce the output of a reassigned numbering — but it must be the
  // output of SOME numbering agreeing with p on out-ports (broadcast
  // machines have no out-port dependence, so: any in-port reassignment).
  auto a = port_one_parity_machine();
  const auto b = to_multiset_machine(a);
  EnumerateOptions opts;
  opts.max_degree = 3;
  enumerate_graphs(4, opts, [&](const Graph& g) {
    Rng rng(13);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto rb = execute(*b, p);
    const int n = g.num_nodes();
    std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      for (NodeId u : g.neighbours(v)) out[v].push_back(p.out_port(v, u));
    }
    std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      in[v].resize(static_cast<std::size_t>(g.degree(v)));
      std::iota(in[v].begin(), in[v].end(), 1);
    }
    bool realised = false;
    std::function<void(int)> rec = [&](int v) {
      if (realised) return;
      if (v == n) {
        auto out_copy = out;
        auto in_copy = in;
        const PortNumbering q =
            PortNumbering::from_permutations(g, out_copy, in_copy);
        if (execute(*a, q).final_states == rb.final_states) realised = true;
        return;
      }
      std::sort(in[v].begin(), in[v].end());
      do {
        rec(v + 1);
      } while (!realised && std::next_permutation(in[v].begin(), in[v].end()));
    };
    rec(0);
    EXPECT_TRUE(realised) << g.to_string();
    return true;
  });
}

TEST(Theorem9, VertexCoverStoryFromThePaper) {
  // Section 3.3: the VB vertex-cover algorithm + Theorem 9 = an MB
  // algorithm. Both must produce valid 2-approximations.
  auto vb = vertex_cover_packing_vb_machine();
  const auto mb = to_multiset_machine(vb);
  EXPECT_EQ(mb->algebraic_class(), AlgebraicClass::multiset_broadcast());
  const auto problem = approx_vertex_cover_problem();
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_graph(8, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    const auto r = execute(*mb, p);
    ASSERT_TRUE(r.stopped);
    EXPECT_TRUE(problem->valid(g, r.outputs_as_ints()));
  }
}

}  // namespace
}  // namespace wm
