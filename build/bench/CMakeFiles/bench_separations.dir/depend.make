# Empty dependencies file for bench_separations.
# This may be replaced when dependencies are built.
