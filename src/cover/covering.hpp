// Covering graphs (lifts) and factors — the classic graph-theoretic
// counterpart of bisimulation (Section 3.3 of the paper; Angluin 1980).
//
// A covering map phi : H -> G of port-numbered graphs sends nodes to
// nodes so that around every h in H, phi restricts to a degree- and
// port-preserving bijection of the neighbourhood: deg(h) = deg(phi(h)),
// and the port structure is preserved:
//   p_H((h, i)) = (h', j)  implies  p_G((phi(h), i)) = (phi(h'), j).
//
// Angluin's lifting lemma, executable here: every execution of every
// machine commutes with phi — x_t(h) = x_t(phi(h)) for all t — so h and
// phi(h) are indistinguishable to any anonymous algorithm. Tests verify
// this literally via the engine, and that covers induce K_{+,+}
// bisimulations.
//
// `voltage_lift` builds k-fold covers from permutation voltages: each
// oriented edge carries a permutation of [k]; the lift has nodes
// V x [k] and edge copies twisted by the permutation. The bipartite
// double cover is the special case k = 2 with the flip on every edge.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "port/port_numbering.hpp"

namespace wm {

class ThreadPool;

/// A lift: the covering graph with its port numbering, plus the covering
/// map down to the base graph.
struct Lift {
  PortNumbering numbering;                 // carries the cover graph H
  std::vector<NodeId> projection;          // phi : V(H) -> V(G)
};

/// Checks that phi (given as a node map) is a covering map of
/// port-numbered graphs from `h` down to `g` in the sense above.
bool is_covering_map(const PortNumbering& h, const PortNumbering& g,
                     const std::vector<NodeId>& phi);

/// Searches for a covering map phi : H -> G. Key fact: on a connected
/// component of H, phi is fully determined by the image of one anchor
/// node — ports propagate the map along edges (p_G(phi(v), i) names
/// phi's value at the other endpoint). The candidate space is therefore
/// V(G)^{#components of H}, indexed mixed-radix with the first
/// component's anchor as the least significant digit; each candidate is
/// propagated by BFS and verified.
///
/// Returns the covering map with the lowest candidate index, or nullopt
/// if H does not cover G. With a pool the scan uses parallel_find_first,
/// so the returned witness is identical at any thread count.
std::optional<std::vector<NodeId>> find_covering_map(
    const PortNumbering& h, const PortNumbering& g,
    ThreadPool* pool = nullptr);

/// Permutation voltage on the edges of the base graph: for the oriented
/// edge (u, v) with u < v, `sigma(u, v)` returns a permutation pi of
/// {0..k-1}; layer c of u connects to layer pi[c] of v.
using Voltage = std::function<std::vector<int>(NodeId u, NodeId v)>;

/// Builds the k-fold permutation-voltage lift of (G, p). Node (v, c) of
/// the lift is numbered v * k + c... layer-major: index = c * n + v.
/// The lifted numbering reuses p's port assignments layer-wise, so the
/// projection is a covering map by construction (verified in tests).
Lift voltage_lift(const PortNumbering& p, int k, const Voltage& sigma);

/// Identity voltage: k disjoint copies of (G, p).
Lift disjoint_copies(const PortNumbering& p, int k);

/// The bipartite double cover as a voltage lift (flip on every edge);
/// agrees with graph/double_cover.hpp up to node numbering.
Lift double_cover_lift(const PortNumbering& p);

/// Random voltages — connected covers of random twist.
Lift random_voltage_lift(const PortNumbering& p, int k, Rng& rng);

}  // namespace wm
