#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include "graph/double_cover.hpp"
#include "cover/covering.hpp"
#include "graph/generators.hpp"

namespace wm {
namespace {

TEST(Isomorphism, IdenticalGraphs) {
  const Graph g = petersen_graph();
  const auto iso = find_isomorphism(g, g);
  ASSERT_TRUE(iso.has_value());
  EXPECT_TRUE(is_isomorphism(g, g, *iso));
}

TEST(Isomorphism, RelabelledGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_connected_graph(9, 4, 5, rng);
    std::vector<NodeId> perm(9);
    for (int i = 0; i < 9; ++i) perm[i] = i;
    rng.shuffle(perm);
    const Graph h = g.relabelled(perm);
    const auto iso = find_isomorphism(g, h);
    ASSERT_TRUE(iso.has_value());
    EXPECT_TRUE(is_isomorphism(g, h, *iso));
  }
}

TEST(Isomorphism, DistinguishesNonIsomorphicSameDegreeSequence) {
  // K4 vs C3 + isolated? Different degree sequences. Use the classic
  // pair: C6 vs two triangles — both 2-regular on 6 nodes.
  Graph two_triangles(6);
  for (int i = 0; i < 3; ++i) {
    two_triangles.add_edge(i, (i + 1) % 3);
    two_triangles.add_edge(3 + i, 3 + (i + 1) % 3);
  }
  EXPECT_FALSE(are_isomorphic(cycle_graph(6), two_triangles));
  // K3,3 vs the triangular prism: both 3-regular on 6 nodes.
  Graph prism(6);
  for (int i = 0; i < 3; ++i) {
    prism.add_edge(i, (i + 1) % 3);
    prism.add_edge(3 + i, 3 + (i + 1) % 3);
    prism.add_edge(i, 3 + i);
  }
  EXPECT_FALSE(are_isomorphic(complete_bipartite(3, 3), prism));
}

TEST(Isomorphism, SizeMismatches) {
  EXPECT_FALSE(are_isomorphic(path_graph(3), path_graph(4)));
  EXPECT_FALSE(are_isomorphic(cycle_graph(4), path_graph(4)));
}

TEST(Isomorphism, DoubleCoverImplementationsAgree) {
  // The standalone bipartite double cover and the voltage-lift version
  // build isomorphic graphs.
  for (const Graph& g : {cycle_graph(5), petersen_graph(), star_graph(4),
                         grid_graph(2, 3)}) {
    const DoubleCover dc = bipartite_double_cover(g);
    const Lift lift = double_cover_lift(PortNumbering::identity(g));
    EXPECT_TRUE(are_isomorphic(dc.graph, lift.numbering.graph()));
  }
}

TEST(Isomorphism, IsIsomorphismRejectsBadMaps) {
  const Graph g = path_graph(3);
  EXPECT_TRUE(is_isomorphism(g, g, {0, 1, 2}));
  EXPECT_TRUE(is_isomorphism(g, g, {2, 1, 0}));
  EXPECT_FALSE(is_isomorphism(g, g, {1, 0, 2}));  // not edge-preserving
  EXPECT_FALSE(is_isomorphism(g, g, {0, 0, 2}));  // not a bijection
  EXPECT_FALSE(is_isomorphism(g, g, {0, 1}));     // wrong size
}

TEST(Isomorphism, PetersenVsRandomCubic) {
  // The Petersen graph has girth 5; a random cubic graph on 10 nodes is
  // almost surely not isomorphic to it — verify at least one such case.
  Rng rng(7);
  int non_isomorphic = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const Graph h = random_regular_graph(10, 3, rng);
    if (!are_isomorphic(petersen_graph(), h)) ++non_isomorphic;
  }
  EXPECT_GT(non_isomorphic, 0);
}

}  // namespace
}  // namespace wm
