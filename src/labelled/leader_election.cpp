#include "labelled/leader_election.hpp"

#include <algorithm>

namespace wm {

namespace {

// State encodings:
//   phase 1: ("E1", rounds_left, n, view)   — growing the view
//   phase 2: ("E2", rounds_left, stable_view, max_view) — flooding
// Output:   Int 1 / Int 0.
//
// Phase-1 messages are (out_port, current_view) — the sender tags its
// own out-port, which a Vector machine may do. Phase-2 messages are the
// current maximum view. All nodes share the same input n, so the phases
// stay globally synchronised and no stopped-sender handling is needed.
class ViewLeader final : public LabelledStateMachine {
 public:
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::vector();
  }

  Value init(int degree, const Value& input) const override {
    const std::int64_t n = input.as_int();
    if (n <= 1) return Value::integer(1);  // a lone node is the leader
    return Value::tuple({Value::str("E1"), Value::integer(n - 1),
                         Value::integer(n), Value::integer(degree)});
  }

  bool is_stopping(const Value& s) const override { return s.is_int(); }

  Value message(const Value& s, int port) const override {
    if (s.at(0).as_str() == "E1") {
      return Value::pair(Value::integer(port), s.at(3));
    }
    return s.at(3);  // current max view
  }

  Value transition(const Value& s, const Value& inbox, int degree) const override {
    if (s.at(0).as_str() == "E1") {
      // Extend the view by one level: (deg, ((j_i, view_i))_i).
      ValueVec kids;
      kids.reserve(inbox.size());
      for (const Value& msg : inbox.items()) kids.push_back(msg);
      const Value view =
          Value::pair(Value::integer(degree), Value::tuple(std::move(kids)));
      const std::int64_t left = s.at(1).as_int() - 1;
      if (left > 0) {
        return Value::tuple({Value::str("E1"), Value::integer(left), s.at(2),
                             view});
      }
      // Stable (depth n-1) view reached; flood the maximum for n rounds
      // (n >= diameter + 1 on a connected graph).
      return Value::tuple({Value::str("E2"), s.at(2), view, view});
    }
    // Phase 2: pointwise maximum of received views.
    Value best = s.at(3);
    for (const Value& msg : inbox.items()) {
      if (!msg.is_unit() && msg > best) best = msg;
    }
    const std::int64_t left = s.at(1).as_int() - 1;
    if (left > 0) {
      return Value::tuple({Value::str("E2"), Value::integer(left), s.at(2),
                           best});
    }
    return Value::integer(s.at(2) == best ? 1 : 0);
  }
};

// Greedy (Delta+1)-colouring with unique ids (Section 3.1 (a)).
// States: uncoloured ("C", id, taken); announcing ("A", colour);
// stopped: Int colour. Messages: ("u", id) while uncoloured, ("c",
// colour) in the announcement round, m0 afterwards. Adjacent nodes never
// pick in the same round (distinct ids), and a neighbour's "u" message
// disappears exactly when its "c" announcement arrives, so taken-colour
// knowledge is always current when a node picks.
class GreedyColouring final : public LabelledStateMachine {
 public:
  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::multiset_broadcast();
  }

  Value init(int, const Value& input) const override {
    return Value::triple(Value::str("C"), input, Value::set({}));
  }

  bool is_stopping(const Value& s) const override { return s.is_int(); }

  Value message(const Value& s, int) const override {
    if (s.at(0).as_str() == "C") return Value::pair(Value::str("u"), s.at(1));
    return Value::pair(Value::str("c"), s.at(1));
  }

  Value transition(const Value& s, const Value& inbox, int) const override {
    if (s.at(0).as_str() == "A") return s.at(1);  // announced: stop
    const Value& my_id = s.at(1);
    ValueVec taken = s.at(2).items();
    bool local_max = true;
    for (const Value& msg : inbox.items()) {
      if (msg.is_unit()) continue;
      if (msg.at(0).as_str() == "c") {
        taken.push_back(msg.at(1));
      } else if (msg.at(1) > my_id) {
        local_max = false;
      }
    }
    Value taken_set = Value::set(std::move(taken));
    if (!local_max) {
      return Value::triple(Value::str("C"), my_id, std::move(taken_set));
    }
    std::int64_t colour = 1;
    while (taken_set.contains(Value::integer(colour))) ++colour;
    return Value::pair(Value::str("A"), Value::integer(colour));
  }
};

}  // namespace

std::shared_ptr<const LabelledStateMachine> view_leader_machine() {
  return std::make_shared<ViewLeader>();
}

std::shared_ptr<const LabelledStateMachine> greedy_colouring_machine() {
  return std::make_shared<GreedyColouring>();
}

std::vector<int> greedy_colouring(const PortNumbering& p) {
  const auto machine = greedy_colouring_machine();
  const int n = p.graph().num_nodes();
  std::vector<Value> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) ids.push_back(Value::integer(v + 1));
  const ExecutionResult r = execute_labelled(*machine, p, ids);
  return r.outputs_as_ints();
}

std::vector<int> elect_leaders(const PortNumbering& p) {
  const auto machine = view_leader_machine();
  const int n = p.graph().num_nodes();
  const std::vector<Value> inputs(static_cast<std::size_t>(n),
                                  Value::integer(n));
  const ExecutionResult r = execute_labelled(*machine, p, inputs);
  return r.outputs_as_ints();
}

}  // namespace wm
