#include "bisim/bisimulation.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"

namespace wm {

std::vector<std::vector<int>> Partition::blocks() const {
  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_blocks));
  for (int v = 0; v < static_cast<int>(block.size()); ++v) {
    out[block[v]].push_back(v);
  }
  return out;
}

namespace {

Partition refine_impl(const KripkeModel& k, bool graded, int max_rounds) {
  const int n = k.num_states();
  const auto modalities = k.modalities();

  Partition p;
  p.block.assign(static_cast<std::size_t>(n), 0);

  // Initial partition: valuation profiles (B1).
  {
    std::map<std::vector<bool>, int> dict;
    for (int v = 0; v < n; ++v) {
      std::vector<bool> profile(static_cast<std::size_t>(k.num_props()));
      for (int q = 1; q <= k.num_props(); ++q) profile[q - 1] = k.prop_holds(q, v);
      auto [it, _] = dict.try_emplace(std::move(profile),
                                      static_cast<int>(dict.size()));
      p.block[v] = it->second;
    }
    p.num_blocks = static_cast<int>(dict.size());
  }

  for (int round = 0; max_rounds < 0 || round < max_rounds; ++round) {
    // Signature of v: (current block, per-modality set/multiset of
    // successor blocks).
    using Sig = std::pair<int, std::vector<std::vector<int>>>;
    std::map<Sig, int> dict;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<std::vector<int>> succ_sig;
      succ_sig.reserve(modalities.size());
      for (const Modality& alpha : modalities) {
        std::vector<int> blocks;
        for (int w : k.successors(alpha, v)) blocks.push_back(p.block[w]);
        std::sort(blocks.begin(), blocks.end());
        if (!graded) {
          blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
        }
        succ_sig.push_back(std::move(blocks));
      }
      Sig sig{p.block[v], std::move(succ_sig)};
      auto [it, _] = dict.try_emplace(std::move(sig), static_cast<int>(dict.size()));
      next[v] = it->second;
    }
    const int new_blocks = static_cast<int>(dict.size());
    if (new_blocks == p.num_blocks) {
      // Fixpoint: signatures refine the partition but produced no split.
      p.rounds = round;
      return p;
    }
    p.block = std::move(next);
    p.num_blocks = new_blocks;
    p.rounds = round + 1;
  }
  return p;
}

/// Counting wrapper: one `refinements` per refinement run, `rounds` from
/// the deterministic result. Both are work counters, so they vanish
/// inside speculative parallel_find_first predicates (see parallel.hpp).
Partition refine(const KripkeModel& k, bool graded, int max_rounds) {
  WM_TIME_SCOPE("bisim.refine");
  Partition p = refine_impl(k, graded, max_rounds);
  WM_COUNT(bisim.refinements);
  WM_COUNT_ADD(bisim.refine_rounds, p.rounds);
  return p;
}

}  // namespace

Partition coarsest_bisimulation(const KripkeModel& k, int max_rounds) {
  return refine(k, /*graded=*/false, max_rounds);
}

Partition coarsest_graded_bisimulation(const KripkeModel& k, int max_rounds) {
  return refine(k, /*graded=*/true, max_rounds);
}

bool are_bisimilar(const KripkeModel& k, int u, int v, bool graded) {
  const Partition p = refine(k, graded, -1);
  return p.same_block(u, v);
}

bool bisimilar_across(const KripkeModel& a, int u, const KripkeModel& b, int v,
                      bool graded) {
  const KripkeModel un = KripkeModel::disjoint_union(a, b);
  return are_bisimilar(un, u, a.num_states() + v, graded);
}

namespace {

bool verify(const KripkeModel& k, const Partition& p, bool graded) {
  const int n = k.num_states();
  const auto modalities = k.modalities();
  const auto groups = p.blocks();
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const int rep = group[0];
    for (int v : group) {
      // B1: atomic agreement.
      for (int q = 1; q <= k.num_props(); ++q) {
        if (k.prop_holds(q, v) != k.prop_holds(q, rep)) return false;
      }
      // B2/B3 (as sets) or B2*/B3* (as counts) against the representative.
      for (const Modality& alpha : modalities) {
        auto sig = [&](int s) {
          std::vector<int> blocks;
          for (int w : k.successors(alpha, s)) blocks.push_back(p.block[w]);
          std::sort(blocks.begin(), blocks.end());
          if (!graded) {
            blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
          }
          return blocks;
        };
        if (sig(v) != sig(rep)) return false;
      }
    }
  }
  (void)n;
  return true;
}

}  // namespace

bool verify_bisimulation_partition(const KripkeModel& k, const Partition& p) {
  return verify(k, p, /*graded=*/false);
}

bool verify_graded_bisimulation_partition(const KripkeModel& k,
                                          const Partition& p) {
  return verify(k, p, /*graded=*/true);
}

bool is_bisimulation_relation(const KripkeModel& k,
                              const std::vector<std::pair<int, int>>& z) {
  if (z.empty()) return false;  // the paper requires Z nonempty
  const std::set<std::pair<int, int>> rel(z.begin(), z.end());
  for (const auto& [v, v2] : rel) {
    // B1
    for (int q = 1; q <= k.num_props(); ++q) {
      if (k.prop_holds(q, v) != k.prop_holds(q, v2)) return false;
    }
    for (const Modality& alpha : k.modalities()) {
      // B2: every alpha-successor of v has a Z-partner among v2's.
      for (int w : k.successors(alpha, v)) {
        bool matched = false;
        for (int w2 : k.successors(alpha, v2)) {
          if (rel.contains({w, w2})) {
            matched = true;
            break;
          }
        }
        if (!matched) return false;
      }
      // B3: symmetric condition.
      for (int w2 : k.successors(alpha, v2)) {
        bool matched = false;
        for (int w : k.successors(alpha, v)) {
          if (rel.contains({w, w2})) {
            matched = true;
            break;
          }
        }
        if (!matched) return false;
      }
    }
  }
  return true;
}

}  // namespace wm
