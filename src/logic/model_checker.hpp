// Model checking: ||phi||_K = {v : K, v |= phi} (Section 4.1).
#pragma once

#include <vector>

#include "logic/formula.hpp"
#include "logic/kripke.hpp"

namespace wm {

/// Evaluates phi on every state of K; result[v] == true iff K, v |= phi.
/// Bottom-up over the subformula closure with memoisation — O(|phi| * |K|).
std::vector<bool> model_check(const KripkeModel& k, const Formula& phi);

/// Single-state convenience.
bool model_check_at(const KripkeModel& k, const Formula& phi, int state);

/// Reference implementation: direct recursion following the truth
/// definition, no memoisation. Exponential on DAG-shaped formulas; used
/// only to cross-validate `model_check` in tests.
std::vector<bool> model_check_naive(const KripkeModel& k, const Formula& phi);

}  // namespace wm
