#include "bisim/distinguish.hpp"

#include <gtest/gtest.h>

#include "compile/formula_compiler.hpp"
#include "core/classification.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

KripkeModel mm(const Graph& g) {
  return kripke_from_graph(PortNumbering::identity(g), Variant::MinusMinus);
}

TEST(Distinguish, SimpleDegreeSplit) {
  const KripkeModel k = mm(star_graph(3));
  const auto f = distinguishing_formula(k, 0, 1);  // centre vs leaf
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->modal_depth(), 0);  // atoms suffice
  const auto truth = model_check(k, *f);
  EXPECT_TRUE(truth[0]);
  EXPECT_FALSE(truth[1]);
}

TEST(Distinguish, BisimilarPairsHaveNoFormula) {
  const KripkeModel k = mm(cycle_graph(6));
  EXPECT_FALSE(distinguishing_formula(k, 0, 3).has_value());
  EXPECT_FALSE(distinguishing_formula(k, 0, 3, /*graded=*/true).has_value());
}

TEST(Distinguish, GradedSplitsWhatUngradedCannot) {
  // The Theorem 13 witness: nodes 0 and 6 are bisimilar (no ML formula
  // splits them) but not g-bisimilar (a GML formula does).
  const SeparationWitness w = thm13_witness();
  const KripkeModel k = kripke_from_graph(w.numbering, Variant::MinusMinus);
  EXPECT_FALSE(distinguishing_formula(k, 0, 6, /*graded=*/false).has_value());
  const auto f = distinguishing_formula(k, 0, 6, /*graded=*/true);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_graded());
  const auto truth = model_check(k, *f);
  EXPECT_TRUE(truth[0]);
  EXPECT_FALSE(truth[6]);
}

TEST(Distinguish, CharacteristicFormulaIsExact) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_graph(7, 3, 3, rng);
    const PortNumbering p = PortNumbering::random(g, rng);
    for (const Variant variant : {Variant::MinusMinus, Variant::PlusPlus}) {
      const KripkeModel k = kripke_from_graph(p, variant);
      for (const bool graded : {false, true}) {
        const Partition part = graded ? coarsest_graded_bisimulation(k)
                                      : coarsest_bisimulation(k);
        for (int s = 0; s < k.num_states(); ++s) {
          const Formula chi = characteristic_formula(k, s, graded);
          const auto truth = model_check(k, chi);
          for (int v = 0; v < k.num_states(); ++v) {
            EXPECT_EQ(truth[v], part.same_block(s, v))
                << "state " << s << " vs " << v << " graded=" << graded;
          }
        }
      }
    }
  }
}

class DistinguishProperty : public ::testing::TestWithParam<int> {};

TEST_P(DistinguishProperty, FormulaExistsIffNotBisimilar) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const Graph g = random_connected_graph(8, 3, 4, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  for (const Variant variant :
       {Variant::PlusPlus, Variant::MinusPlus, Variant::MinusMinus}) {
    const KripkeModel k = kripke_from_graph(p, variant);
    for (const bool graded : {false, true}) {
      const Partition part = graded ? coarsest_graded_bisimulation(k)
                                    : coarsest_bisimulation(k);
      for (int u = 0; u < k.num_states(); ++u) {
        for (int v = u + 1; v < k.num_states(); ++v) {
          const auto f = distinguishing_formula(k, u, v, graded);
          EXPECT_EQ(f.has_value(), !part.same_block(u, v));
          if (f) {
            const auto truth = model_check(k, *f);
            EXPECT_TRUE(truth[u]);
            EXPECT_FALSE(truth[v]);
            if (!graded) {
              EXPECT_FALSE(f->is_graded());
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistinguishProperty, ::testing::Values(1, 2, 3));

TEST(Distinguish, FormulaCompilesIntoSplittingAlgorithm) {
  // End-to-end: the distinguishing formula for the Theorem 13 pair,
  // compiled by Theorem 2 into an MB machine, outputs differently at the
  // two nodes — a distributed algorithm that witnesses the separation.
  const SeparationWitness w = thm13_witness();
  const KripkeModel k = kripke_from_graph(w.numbering, Variant::MinusMinus);
  const auto f = distinguishing_formula(k, 0, 6, /*graded=*/true);
  ASSERT_TRUE(f.has_value());
  const auto machine =
      compile_formula(*f, Variant::MinusMinus, w.graph.max_degree());
  const auto r = execute(*machine, w.numbering);
  ASSERT_TRUE(r.stopped);
  EXPECT_EQ(r.final_states[0].as_int(), 1);
  EXPECT_EQ(r.final_states[6].as_int(), 0);
}

TEST(Distinguish, DepthBoundedByRefinementRounds) {
  // On a path, endpoints split from the middle at round 0; second layer
  // at round 1, etc. The distinguishing formula depth tracks that.
  const KripkeModel k = mm(path_graph(7));
  const auto f01 = distinguishing_formula(k, 0, 1);
  ASSERT_TRUE(f01.has_value());
  EXPECT_EQ(f01->modal_depth(), 0);  // degrees differ
  const auto f12 = distinguishing_formula(k, 1, 2);
  ASSERT_TRUE(f12.has_value());
  EXPECT_EQ(f12->modal_depth(), 1);  // "has a degree-1 neighbour"
  const auto f23 = distinguishing_formula(k, 2, 3);
  ASSERT_TRUE(f23.has_value());
  EXPECT_EQ(f23->modal_depth(), 2);
}

}  // namespace
}  // namespace wm
