// Structured logging for the observability layer: leveled, rate-limited
// JSON-lines to stderr or a file, with a per-thread request-id context.
//
// One log event is one JSON object on one line:
//
//   {"ts": "2026-08-09T12:34:56.789Z", "level": "info",
//    "event": "request", "rid": 42, "op": "run", "cache": "miss",
//    "ms": 1.234}
//
// Fixed head fields (ts, level, event, rid-when-set) come first, caller
// fields follow in insertion order, so lines are greppable and any JSON
// parser can fold them. The sink is stderr or a file; arming is opt-in:
//
//   WM_LOG=<file|stderr>  arm the sink (unset = logging fully off)
//   WM_LOG_LEVEL=<debug|info|warn|error>  threshold (default info)
//   WM_LOG_RATE=<lines/sec>  admission rate, 0 = unlimited (default 2000)
//   WM_SLOW_MS=<ms>  slow-request threshold used by the serve layer
//
// Rate limiting is a per-second admission window: past the budget,
// lines are dropped and counted; the first admitted write of a later
// second emits one {"event": "log_rate_limited", "dropped": N} notice.
// A disabled level or an unarmed sink costs one relaxed atomic load per
// event — cheap enough for hot paths.
//
// The *request-id context* is a thread-local set by RequestIdScope for
// the duration of one served request. Log lines emitted on that thread
// pick it up as "rid", and WM_TRACE_SCOPE spans emitted inside the
// scope carry it as a trace arg — so an access-log line and the
// Chrome-trace spans of the same request join on one id.
//
// Configure with -DWM_OBS=OFF to compile every hook here to a no-op
// (events vanish, request ids read as 0, the sink never opens).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wm::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* log_level_name(LogLevel level) noexcept;

#if !defined(WM_OBS_DISABLED)

// --- Request-id context -----------------------------------------------------

/// Next id from the process-wide monotonic request counter (first call
/// returns 1; 0 always means "no request context").
std::uint64_t next_request_id() noexcept;

/// The calling thread's current request id (0 = none).
std::uint64_t current_request_id() noexcept;

/// Binds a request id to the calling thread for the scope's lifetime;
/// nestable (the previous id is restored on exit). Log lines and trace
/// spans emitted on this thread inside the scope carry the id.
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t rid) noexcept;
  ~RequestIdScope();
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

// --- Sink control -----------------------------------------------------------

/// Arms the sink: "" or "stderr" logs to stderr, anything else is a
/// file path (truncated on open; a failed open leaves logging off).
/// Thread-safe; replaces any previously armed sink.
void log_open(const std::string& path);

/// Flushes and disarms. Idempotent.
void log_close();

/// Arms from $WM_LOG / $WM_LOG_LEVEL / $WM_LOG_RATE / $WM_SLOW_MS.
/// Only the first call can arm (obs::init_from_env's once semantics).
void log_init_from_env();

void log_set_level(LogLevel level) noexcept;

/// Admission budget in lines per second; 0 = unlimited.
void log_set_rate(double lines_per_sec) noexcept;

/// True iff the sink is armed and `level` clears the threshold — the
/// cheap guard to skip building expensive fields.
bool log_enabled(LogLevel level) noexcept;

/// Totals since arming (test hooks; also exported by the serve layer).
std::uint64_t log_lines_written() noexcept;
std::uint64_t log_lines_dropped() noexcept;

/// Slow-request threshold in milliseconds (0 = disabled). Read by the
/// serve layer for its slow-request warning line.
double slow_threshold_ms() noexcept;
void set_slow_threshold_ms(double ms) noexcept;

// --- Events -----------------------------------------------------------------

/// Builder for one log line; emits on destruction when the level was
/// enabled at construction. Field keys must be plain identifiers (they
/// are emitted unescaped); values are escaped.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view event);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& str(std::string_view key, std::string_view value);
  LogEvent& num(std::string_view key, std::int64_t value);
  LogEvent& num_u(std::string_view key, std::uint64_t value);
  LogEvent& dbl(std::string_view key, double value);
  LogEvent& boolean(std::string_view key, bool value);

 private:
  bool active_ = false;
  LogLevel level_ = LogLevel::kInfo;
  std::string body_;
};

#else  // WM_OBS_DISABLED

inline std::uint64_t next_request_id() noexcept { return 0; }
inline std::uint64_t current_request_id() noexcept { return 0; }

class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t) noexcept {}
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;
};

inline void log_open(const std::string&) {}
inline void log_close() {}
inline void log_init_from_env() {}
inline void log_set_level(LogLevel) noexcept {}
inline void log_set_rate(double) noexcept {}
inline bool log_enabled(LogLevel) noexcept { return false; }
inline std::uint64_t log_lines_written() noexcept { return 0; }
inline std::uint64_t log_lines_dropped() noexcept { return 0; }
inline double slow_threshold_ms() noexcept { return 0; }
inline void set_slow_threshold_ms(double) noexcept {}

class LogEvent {
 public:
  LogEvent(LogLevel, std::string_view) {}
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;
  LogEvent& str(std::string_view, std::string_view) { return *this; }
  LogEvent& num(std::string_view, std::int64_t) { return *this; }
  LogEvent& num_u(std::string_view, std::uint64_t) { return *this; }
  LogEvent& dbl(std::string_view, double) { return *this; }
  LogEvent& boolean(std::string_view, bool) { return *this; }
};

#endif  // WM_OBS_DISABLED

}  // namespace wm::obs
