// Regenerates the quantitative claims of Theorems 8 and 9 (VV = MV and
// VB = MB with ZERO round overhead) and measures the message-size
// blowup of the full-history simulation — the other half of Section
// 5.4's open question.
//
// Series: source running time T = 1..6 on a fixed random graph; columns
// report simulated rounds (expected == T) and max/total message sizes
// of source vs simulation.
#include <cstdio>
#include <memory>

#include "graph/generators.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"
#include "bench_util.hpp"

namespace {

using namespace wm;

// NOTE: the probe sends port-dependent messages (a genuine Vector
// machine) but digests the inbox order-insensitively, so its output is
// determined by (G, p)'s out-ports alone and the simulation must
// reproduce it exactly. For machines whose output depends on the
// *in-port order*, Theorem 8 only guarantees the output of some
// compatible numbering in P_T — that property is verified exhaustively
// in tests/test_simulations.cpp.
std::shared_ptr<const StateMachine> vector_probe(int rounds) {
  auto m = std::make_shared<LambdaMachine>();
  m->cls = AlgebraicClass::vector();
  m->init_fn = [rounds](int d) {
    return Value::triple(Value::str("v"), Value::integer(rounds),
                         Value::integer(d));
  };
  m->stopping_fn = [](const Value& s) { return s.is_int(); };
  m->message_fn = [](const Value& s, int port) {
    return Value::integer(s.at(2).as_int() * 8 + port);
  };
  m->transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      const Value& v = inbox.at(i);
      const std::int64_t x = v.is_unit() ? 7 : v.as_int();
      acc = (acc + x * x + 131 * x) % 1000003;  // symmetric digest
    }
    const auto left = s.at(1).as_int() - 1;
    if (left == 0) return Value::integer(acc);
    return Value::triple(Value::str("v"), Value::integer(left),
                         Value::integer(acc));
  };
  return m;
}

std::shared_ptr<const StateMachine> broadcast_probe(int rounds) {
  auto m = std::make_shared<LambdaMachine>();
  m->cls = AlgebraicClass::vector_broadcast();
  m->init_fn = [rounds](int d) {
    return Value::triple(Value::str("b"), Value::integer(rounds),
                         Value::integer(d));
  };
  m->stopping_fn = [](const Value& s) { return s.is_int(); };
  m->message_fn = [](const Value& s, int) { return s.at(2); };
  m->transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t acc = s.at(2).as_int();
    for (const Value& v : inbox.items()) {
      if (!v.is_unit()) acc = (acc * 31 + v.as_int()) % 1000003;
    }
    const auto left = s.at(1).as_int() - 1;
    if (left == 0) return Value::integer(acc);
    return Value::triple(Value::str("b"), Value::integer(left),
                         Value::integer(acc));
  };
  return m;
}

void sweep(const char* label,
           std::shared_ptr<const StateMachine> (*probe)(int)) {
  std::printf("--- %s ---\n", label);
  std::printf("%-4s %-10s %-10s %-12s %-12s %-12s\n", "T", "rounds(src)",
              "rounds(sim)", "maxmsg(src)", "maxmsg(sim)", "ratio");
  Rng rng(4242);
  const Graph g = random_regular_graph(12, 3, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  for (int t = 1; t <= 6; ++t) {
    WM_TIME_SCOPE("bench.thm8.probe");
    auto a = probe(t);
    auto b = to_multiset_machine(a);
    const auto ra = execute(*a, p);
    const auto rb = execute(*b, p);
    const double ratio = ra.stats.max_size
                             ? static_cast<double>(rb.stats.max_size) /
                                   static_cast<double>(ra.stats.max_size)
                             : 0.0;
    std::printf("%-4d %-10d %-10d %-12zu %-12zu %-12.1f%s\n", t, ra.rounds,
                rb.rounds, ra.stats.max_size, rb.stats.max_size, ratio,
                ra.final_states == rb.final_states ? "" : "  MISMATCH!");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  std::printf("=== Theorems 8 and 9: zero-round simulations, message cost "
              "===\n\n");
  sweep("Theorem 8: Vector -> Multiset (VV = MV)", vector_probe);
  sweep("Theorem 9: Broadcast -> Multiset∩Broadcast (VB = MB)",
        broadcast_probe);
  std::printf("Shape check (paper): rounds(sim) == rounds(src) for all T;\n");
  std::printf("message size grows linearly in T for these probes (full\n");
  std::printf("histories) — the Section 5.4 open question is whether this\n");
  std::printf("overhead is necessary.\n");
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("thm8_overhead", 8, threads, wm_total.ms(), 0);
  return 0;
}
