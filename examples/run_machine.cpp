// run_machine — execute any catalogue algorithm on any graph.
//
//   ./run_machine <machine> <graph-spec> [numbering] [--trace] [--check]
//
// machines: odd-odd | leaf-picker | local-type | isolated | parity |
//           even-degree | port-one-parity | vertex-cover (MB via Thm 9) |
//           vertex-cover-vb | beep-wave
// graph-spec: path:N | cycle:N | star:K | complete:N | grid:AxB |
//             petersen | hypercube:D | fig9a | classg:K | file:PATH | -
// numbering: identity (default) | random[:seed] | symmetric
//
// Prints the class, the run summary (rounds, nodes, message traffic) and
// the output vector; --trace additionally dumps every intermediate
// state, and --check probes the machine's declared class invariances
// (Vector-mode machines only) and prints the checker's summary.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "algorithms/machines.hpp"
#include "graph/generators.hpp"
#include "obs/env.hpp"
#include "obs/manifest.hpp"
#include "port/port_numbering.hpp"
#include "runtime/class_checker.hpp"
#include "runtime/engine.hpp"
#include "transform/beeping.hpp"
#include "transform/simulations.hpp"

namespace {

using namespace wm;

Graph parse_graph(const std::string& spec) {
  auto num_after = [&](std::size_t pos) {
    return std::stoi(spec.substr(pos));
  };
  if (spec.rfind("path:", 0) == 0) return path_graph(num_after(5));
  if (spec.rfind("cycle:", 0) == 0) return cycle_graph(num_after(6));
  if (spec.rfind("star:", 0) == 0) return star_graph(num_after(5));
  if (spec.rfind("complete:", 0) == 0) return complete_graph(num_after(9));
  if (spec.rfind("hypercube:", 0) == 0) return hypercube(num_after(10));
  if (spec.rfind("classg:", 0) == 0) return class_g_graph(num_after(7));
  if (spec == "petersen") return petersen_graph();
  if (spec == "fig9a") return fig9a_graph();
  if (spec.rfind("grid:", 0) == 0) {
    const auto x = spec.find('x', 5);
    return grid_graph(std::stoi(spec.substr(5, x - 5)),
                      std::stoi(spec.substr(x + 1)));
  }
  if (spec.rfind("file:", 0) == 0 || spec == "-") {
    std::vector<Edge> edges;
    int n = 0;
    std::ifstream file;
    std::istream* in = &std::cin;
    if (spec != "-") {
      file.open(spec.substr(5));
      if (!file) throw std::runtime_error("cannot open " + spec.substr(5));
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      std::istringstream ls(line);
      int u, v;
      if (ls >> u >> v) {
        edges.push_back({std::min(u, v), std::max(u, v)});
        n = std::max(n, std::max(u, v) + 1);
      }
    }
    return Graph::from_edges(n, edges);
  }
  throw std::runtime_error("unknown graph spec '" + spec + "'");
}

std::shared_ptr<const StateMachine> pick_machine(const std::string& name,
                                                 const Graph& g) {
  if (name == "odd-odd") return odd_odd_machine();
  if (name == "leaf-picker") return leaf_picker_machine();
  if (name == "local-type") return local_type_maximum_machine(g.max_degree());
  if (name == "isolated") return isolated_detector_machine();
  if (name == "parity") return degree_parity_machine();
  if (name == "even-degree") return even_degree_machine();
  if (name == "port-one-parity") return port_one_parity_machine();
  if (name == "vertex-cover") {
    return to_multiset_machine(vertex_cover_packing_vb_machine());
  }
  if (name == "vertex-cover-vb") return vertex_cover_packing_vb_machine();
  if (name == "beep-wave") {
    return as_state_machine(beep_wave_machine(g.max_degree(), g.num_nodes()));
  }
  throw std::runtime_error("unknown machine '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  wm::obs::init_from_env();
  using namespace wm;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <machine> <graph-spec> [identity|random[:seed]|"
                 "symmetric] [--trace]\n",
                 argv[0]);
    return 1;
  }
  try {
    const Graph g = parse_graph(argv[2]);
    const std::string mode = argc > 3 && argv[3][0] != '-' ? argv[3] : "identity";
    bool trace = false;
    bool check = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) trace = true;
      if (std::strcmp(argv[i], "--check") == 0) check = true;
    }
    PortNumbering p;
    if (mode == "identity") {
      p = PortNumbering::identity(g);
    } else if (mode.rfind("random", 0) == 0) {
      const std::uint64_t seed =
          mode.size() > 7 ? std::stoull(mode.substr(7)) : 1;
      Rng rng(seed);
      p = PortNumbering::random(g, rng);
    } else if (mode == "symmetric") {
      p = PortNumbering::symmetric_regular(g);
    } else {
      throw std::runtime_error("unknown numbering '" + mode + "'");
    }

    const auto machine = pick_machine(argv[1], g);
    ExecutionOptions opts;
    opts.record_trace = trace;
    const ExecutionResult r = execute(*machine, p, opts);

    std::printf("machine : %s (class %s)\n", argv[1],
                machine->algebraic_class().name().c_str());
    std::printf("graph   : n=%d m=%d Delta=%d, %s numbering\n", g.num_nodes(),
                g.num_edges(), g.max_degree(), mode.c_str());
    std::printf("summary : %s\n", r.summary().to_string().c_str());
    if (check) {
      try {
        Rng check_rng(7);
        const ClassCheckReport report =
            check_class_invariance(*machine, p, check_rng);
        std::printf("check   : %s\n", report.to_string().c_str());
      } catch (const std::exception& e) {
        std::printf("check   : skipped (%s)\n", e.what());
      }
      std::printf("manifest:\n%s\n", obs::manifest_text(1).c_str());
    }
    std::printf("output  :");
    for (const Value& s : r.final_states) {
      std::cout << ' ' << s;
    }
    std::printf("\n");
    if (trace) {
      for (std::size_t t = 0; t < r.trace.size(); ++t) {
        std::printf("x_%zu:", t);
        for (const Value& s : r.trace[t]) std::cout << "  " << s;
        std::printf("\n");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
