#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace wm {
namespace {

TEST(Properties, Connectivity) {
  EXPECT_TRUE(is_connected(cycle_graph(5)));
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Properties, ConnectedComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(comps[2], (std::vector<NodeId>{4}));
}

TEST(Properties, BipartitionOnEvenCycle) {
  const auto col = bipartition(cycle_graph(6));
  ASSERT_TRUE(col.has_value());
  const Graph g = cycle_graph(6);
  for (const Edge& e : g.edges()) EXPECT_NE((*col)[e.u], (*col)[e.v]);
}

TEST(Properties, NoBipartitionOnOddCycle) {
  EXPECT_FALSE(bipartition(cycle_graph(5)).has_value());
  EXPECT_FALSE(bipartition(complete_graph(3)).has_value());
}

TEST(Properties, Eulerian) {
  EXPECT_TRUE(is_eulerian(cycle_graph(5)));
  EXPECT_TRUE(is_eulerian(complete_graph(5)));   // all degrees 4
  EXPECT_FALSE(is_eulerian(complete_graph(4)));  // degrees 3
  EXPECT_FALSE(is_eulerian(path_graph(3)));
  // Disconnected with two cycles is not Eulerian.
  Graph g(6);
  for (int i = 0; i < 3; ++i) g.add_edge(i, (i + 1) % 3);
  for (int i = 0; i < 3; ++i) g.add_edge(3 + i, 3 + (i + 1) % 3);
  EXPECT_FALSE(is_eulerian(g));
  // Isolated nodes do not spoil Eulerianness.
  Graph h(4);
  h.add_edge(0, 1);
  h.add_edge(1, 2);
  h.add_edge(2, 0);
  EXPECT_TRUE(is_eulerian(h));
}

TEST(Properties, IndependentSetPredicates) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(is_independent_set(g, {1, 0, 1, 0}));
  EXPECT_FALSE(is_independent_set(g, {1, 1, 0, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 1, 0}));
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 0, 0, 0}));  // extendable
  EXPECT_FALSE(is_maximal_independent_set(g, {0, 0, 0, 0}));
}

TEST(Properties, VertexCoverPredicate) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(is_vertex_cover(g, {1, 0, 1, 0}));
  EXPECT_FALSE(is_vertex_cover(g, {1, 0, 0, 0}));
  EXPECT_TRUE(is_vertex_cover(g, {1, 1, 1, 1}));
}

TEST(Properties, ProperColouring) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(is_proper_colouring(g, {1, 2, 1, 2}, 2));
  EXPECT_FALSE(is_proper_colouring(g, {1, 1, 2, 2}, 2));
  EXPECT_FALSE(is_proper_colouring(g, {1, 3, 1, 3}, 2));  // colour > k
}

TEST(Properties, BfsDistances) {
  const Graph g = path_graph(4);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3}));
  Graph h(3);
  h.add_edge(0, 1);
  const auto d2 = bfs_distances(h, 0);
  EXPECT_EQ(d2[2], -1);
}

}  // namespace
}  // namespace wm
