file(REMOVE_RECURSE
  "libwm_port.a"
)
