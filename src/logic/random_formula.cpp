#include "logic/random_formula.hpp"

namespace wm {

namespace {

Modality random_modality(Rng& rng, const RandomFormulaOptions& opts) {
  Modality a;
  const bool in_star = opts.variant == Variant::MinusPlus ||
                       opts.variant == Variant::MinusMinus;
  const bool out_star = opts.variant == Variant::PlusMinus ||
                        opts.variant == Variant::MinusMinus;
  a.in = in_star ? 0 : static_cast<int>(rng.range(1, opts.delta));
  a.out = out_star ? 0 : static_cast<int>(rng.range(1, opts.delta));
  return a;
}

Formula gen(Rng& rng, const RandomFormulaOptions& opts, int depth_budget) {
  // Weighted choice; modal operators only with remaining depth budget.
  const int r = static_cast<int>(rng.below(depth_budget > 0 ? 10 : 6));
  switch (r) {
    case 0:
      return Formula::tru();
    case 1:
      return Formula::fls();
    case 2:
    case 3:
      return Formula::prop(static_cast<int>(rng.range(1, opts.num_props)));
    case 4:
      return Formula::negate(gen(rng, opts, depth_budget));
    case 5:
      return rng.chance(1, 2)
                 ? Formula::conj(gen(rng, opts, depth_budget),
                                 gen(rng, opts, depth_budget))
                 : Formula::disj(gen(rng, opts, depth_budget),
                                 gen(rng, opts, depth_budget));
    default: {
      const Modality alpha = random_modality(rng, opts);
      if (opts.use_box && rng.chance(1, 3)) {
        return Formula::box(alpha, gen(rng, opts, depth_budget - 1));
      }
      const int grade =
          opts.graded ? static_cast<int>(rng.range(1, opts.max_grade)) : 1;
      return Formula::diamond(alpha, gen(rng, opts, depth_budget - 1), grade);
    }
  }
}

}  // namespace

Formula random_formula(Rng& rng, const RandomFormulaOptions& opts) {
  return gen(rng, opts, opts.max_depth);
}

}  // namespace wm
