// Synchronous execution of a distributed state machine on a
// port-numbered graph (Section 1.3).
//
// Concurrency contract: the engine keeps all per-run mutable scratch in
// an explicit ExecutionContext, and StateMachine implementations are
// required to be const-safe (see state_machine.hpp), so one machine can
// be executed on many graphs concurrently — one ExecutionContext per
// thread is the only requirement. The context-free overloads allocate a
// fresh context per call and stay safe too, at the cost of reallocating
// the scratch buffers on every run.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "port/port_numbering.hpp"
#include "runtime/state_machine.hpp"
#include "util/value.hpp"

namespace wm {

class CancelToken;

struct ExecutionOptions {
  /// Abort (stopped = false) if not all nodes reached Y by this round.
  int max_rounds = 100000;
  /// Record x_t for every t (trace[t][v]); costs memory.
  bool record_trace = false;
  /// Optional cooperative cancellation (util/cancel.hpp): polled once per
  /// round; an expired token makes execute throw CancelledError. The
  /// serving layer uses this to enforce per-request deadlines.
  const CancelToken* cancel = nullptr;
};

struct MessageStats {
  std::size_t messages_sent = 0;      // non-m0 message deliveries
  std::size_t total_size = 0;         // sum of structural Value sizes
  std::size_t max_size = 0;           // largest single message
};

/// One-line digest of a run — what a caller typically wants to print or
/// log without digging through ExecutionResult.
struct RunSummary {
  bool stopped = false;
  int rounds = 0;
  int nodes = 0;
  std::size_t messages_sent = 0;
  std::size_t total_message_size = 0;
  std::size_t max_message_size = 0;

  /// "stopped after 3 rounds on 4 nodes; 24 messages (size total 96, max 7)"
  std::string to_string() const;
};

struct ExecutionResult {
  bool stopped = false;
  /// Smallest T with x_T(v) in Y for all v (== rounds executed).
  int rounds = 0;
  /// x_T — or x_{max_rounds} if the machine failed to stop.
  std::vector<Value> final_states;
  /// Present iff options.record_trace.
  std::vector<std::vector<Value>> trace;
  MessageStats stats;

  /// Interprets final states as integer outputs (requires Int states).
  std::vector<int> outputs_as_ints() const;

  /// Digest of this run (rounds, nodes, message traffic).
  RunSummary summary() const;
};

/// Per-run mutable scratch of the execution engine: state vectors and
/// outgoing-message buffers. Reusing one context across many runs on the
/// same thread avoids reallocating the nested buffers in hot search
/// loops; contexts must not be shared between threads running
/// concurrently.
struct ExecutionContext {
  std::vector<Value> state;
  std::vector<Value> next;
  std::vector<std::vector<Value>> outgoing;
};

/// Runs machine `m` on (G, p) where p carries its graph. The machine must
/// accommodate max degree of the graph (A_Delta with Delta >= max deg).
ExecutionResult execute(const StateMachine& m, const PortNumbering& p,
                        const ExecutionOptions& options = {});

/// Re-entrant variant with caller-supplied scratch (one context per
/// thread when executing concurrently).
ExecutionResult execute(const StateMachine& m, const PortNumbering& p,
                        ExecutionContext& ctx,
                        const ExecutionOptions& options = {});

/// Variant with externally supplied initial states x_0 (one per node);
/// m.init is not consulted. This is the execution model for graphs with
/// local inputs (Section 3.4): x_0(v) may depend on f(v) as well as
/// deg(v). Precondition: initial.size() == number of nodes.
ExecutionResult execute_with_states(const StateMachine& m,
                                    const PortNumbering& p,
                                    std::vector<Value> initial,
                                    const ExecutionOptions& options = {});

/// Re-entrant variant of execute_with_states.
ExecutionResult execute_with_states(const StateMachine& m,
                                    const PortNumbering& p,
                                    std::vector<Value> initial,
                                    ExecutionContext& ctx,
                                    const ExecutionOptions& options = {});

/// Structural size of a value (number of nodes in its tree) — the
/// message-size measure used by the overhead benches (Section 5.4's open
/// question about simulation message blowup).
std::size_t value_size(const Value& v);

}  // namespace wm
