// Run manifests: provenance for every measurement artefact.
//
// A BENCH_*.json without provenance is a number without an experiment:
// which commit, which compiler and flags, which seed, was tracing or a
// sanitizer distorting the run? The manifest answers all of that in one
// JSON object embedded by bench_util.hpp into every bench json and
// printable from `run_machine --check`:
//
//   {"git": "<git describe, baked in at configure time>",
//    "compiler": "...", "build_type": "...", "flags": "...",
//    "obs": true, "trace": false, "threads": 4,
//    "seed": "...", "progress": null,
//    "start": "2026-08-07T12:34:56Z", "end": "..."}
//
// The manifest is pure provenance — a handful of getenv/strftime calls
// at reporting time — so it stays available under -DWM_OBS=OFF (a run
// without counters still deserves to say what it was).
#pragma once

#include <string>

namespace wm::obs {

/// Records the process start wallclock used for the manifest's "start"
/// field. Idempotent; obs::init_from_env() calls it, and manifest_json
/// falls back to its own first call if nothing did earlier.
void mark_process_start();

/// The `git describe` string baked in at configure time — the same value
/// the manifest's "git" field carries. Exposed so other provenance
/// carriers (the cert-store segment headers, census checkpoints) embed
/// the identical string instead of shelling out at runtime.
const char* build_git_describe();

/// The manifest as a complete JSON object. `threads` is the worker
/// count the run was configured with (the one knob the build cannot
/// know); pass 0 for "unspecified" to omit honest guessing.
std::string manifest_json(int threads);

/// Human-readable multi-line form of the same facts, for
/// `run_machine --check` and interactive use.
std::string manifest_text(int threads);

}  // namespace wm::obs
