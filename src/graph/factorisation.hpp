// Factors and factorisations of regular graphs (Petersen 1891 — the
// paper's Section 3.3 traces the graph-theoretic observations behind
// the weak models back to this work).
//
//  - Eulerian circuits (Hierholzer), the engine behind
//  - Petersen's 2-factorisation theorem: every 2k-regular graph is the
//    disjoint union of k spanning 2-regular subgraphs (2-factors),
//    computed by orienting an Eulerian circuit of each component and
//    1-factorising the resulting out/in bipartite graph.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace wm {

/// An Eulerian circuit of a connected component: the sequence of nodes
/// v_0, v_1, ..., v_m = v_0 traversing every edge exactly once. Returns
/// nullopt if some node in the component has odd degree. `start` selects
/// the component. Isolated start returns the trivial circuit {start}.
std::optional<std::vector<NodeId>> eulerian_circuit(const Graph& g,
                                                    NodeId start = 0);

/// Petersen's theorem: decomposes a 2k-regular graph into k edge-disjoint
/// 2-factors. Each factor is returned as an edge list; every node has
/// degree exactly 2 in every factor. Throws std::invalid_argument if the
/// graph is not 2k-regular.
std::vector<std::vector<Edge>> two_factorisation(const Graph& g);

/// True if `edges` forms a spanning 2-regular subgraph of g.
bool is_two_factor(const Graph& g, const std::vector<Edge>& edges);

}  // namespace wm
