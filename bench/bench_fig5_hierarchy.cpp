// Regenerates Figure 5b — the paper's headline result:
//
//     SB  ⊊  MB = VB  ⊊  SV = MV = VV  ⊊  VVc            (1)
//     SB(1) ⊊ MB(1) = VB(1) ⊊ SV(1) = MV(1) = VV(1) ⊊ VVc(1)   (2)
//
// Equalities are certified constructively by running the Theorem 4/8/9
// transformers against their source machines on randomly sampled
// (G, p) instances; separations are certified by the Corollary 3 recipe
// on the Theorem 11/13/17 witnesses. The output is the same containment
// diagram the paper draws, with a machine-checked status per link.
// Ported to the task-parallel substrate: every certification trial
// executes the source and transformed machines concurrently across
// --threads N workers (one ExecutionContext per worker; the machine
// objects themselves are shared — the re-entrancy the transformers
// guarantee). Instances are pre-generated sequentially from the seeded
// Rng and results reduced in trial order, so stdout is byte-identical at
// any thread count. Perf goes to stderr and BENCH_fig5_hierarchy.json.
#include <cstdio>
#include <memory>
#include <vector>

#include "algorithms/machines.hpp"
#include "bench_util.hpp"
#include "core/classification.hpp"
#include "graph/generators.hpp"
#include "runtime/engine.hpp"
#include "transform/simulations.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

/// Port-sensitive two-round Vector probe machine used as the "arbitrary
/// algorithm" for equality certification.
std::shared_ptr<const StateMachine> probe_vector_machine() {
  auto m = std::make_shared<LambdaMachine>();
  m->cls = AlgebraicClass::vector();
  m->init_fn = [](int d) {
    return Value::triple(Value::str("x"), Value::integer(2), Value::integer(d));
  };
  m->stopping_fn = [](const Value& s) { return s.is_int(); };
  m->message_fn = [](const Value& s, int) { return s.at(2); };
  m->transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t acc = 0;
    for (const Value& v : inbox.items()) {
      if (!v.is_unit()) acc += v.as_int();
    }
    if (s.at(1).as_int() == 1) return Value::integer(acc);
    return Value::triple(Value::str("x"), Value::integer(1),
                         Value::integer(acc));
  };
  return m;
}

std::shared_ptr<const StateMachine> probe_broadcast_machine(int rounds) {
  auto m = std::make_shared<LambdaMachine>();
  m->cls = AlgebraicClass::vector_broadcast();
  m->init_fn = [rounds](int d) {
    return Value::triple(Value::str("g"), Value::integer(rounds),
                         Value::integer(d));
  };
  m->stopping_fn = [](const Value& s) { return s.is_int(); };
  m->message_fn = [](const Value& s, int) { return s.at(2); };
  m->transition_fn = [](const Value& s, const Value& inbox, int) {
    std::int64_t best = s.at(2).as_int();
    for (const Value& v : inbox.items()) {
      if (!v.is_unit() && v.as_int() < best) best = v.as_int();
    }
    const auto left = s.at(1).as_int() - 1;
    if (left == 0) return Value::integer(best);
    return Value::triple(Value::str("g"), Value::integer(left),
                         Value::integer(best));
  };
  return m;
}

struct EqualityReport {
  int instances = 0;
  int matches = 0;
  int max_extra_rounds = 0;
};

std::size_t g_instances_run = 0;

EqualityReport certify(const StateMachine& src, const StateMachine& sim,
                       int trials, int delta, Rng& rng, ThreadPool& pool) {
  // Instances come from the seeded Rng in the same order regardless of
  // thread count; only the executions fan out.
  std::vector<PortNumbering> instances;
  instances.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const Graph g = random_connected_graph(10, delta, 5, rng);
    instances.push_back(PortNumbering::random(g, rng));
  }

  struct Trial {
    bool match = false;
    int extra_rounds = 0;
  };
  std::vector<Trial> results(instances.size());
  std::vector<ExecutionContext> ctxs(
      static_cast<std::size_t>(pool.num_threads()));
  pool.parallel_chunks(
      0, instances.size(),
      [&](std::uint64_t lo, std::uint64_t hi, int worker) {
        ExecutionContext& ctx = ctxs[static_cast<std::size_t>(worker)];
        for (std::uint64_t t = lo; t < hi; ++t) {
          WM_TIME_SCOPE("bench.fig5.instance");
          const auto ra = execute(src, instances[t], ctx);
          const auto rb = execute(sim, instances[t], ctx);
          results[t].match =
              ra.stopped && rb.stopped && ra.final_states == rb.final_states;
          results[t].extra_rounds = rb.rounds - ra.rounds;
        }
      },
      1);

  EqualityReport rep;
  for (const Trial& t : results) {
    ++rep.instances;
    if (t.match) ++rep.matches;
    rep.max_extra_rounds = std::max(rep.max_extra_rounds, t.extra_rounds);
  }
  g_instances_run += instances.size() * 2;
  return rep;
}

void print_equality(const char* label, const EqualityReport& r,
                    const char* overhead_claim) {
  std::printf("  %-10s %s  [%d/%d instances agree; max extra rounds %d, "
              "claim: %s]\n",
              label, r.matches == r.instances ? "VERIFIED" : "FAILED",
              r.matches, r.instances, r.max_extra_rounds, overhead_claim);
}

void print_separation(const char* label, const SeparationWitness& w) {
  const SeparationCheck c = check_separation(w);
  std::printf("  %-10s %s  [X bisimilar: %d; bisim axioms: %d; "
              "solutions split X: %d]\n",
              label, c.holds() ? "VERIFIED" : "FAILED", c.x_bisimilar,
              c.partition_is_bisim, c.solutions_split_x);
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("=== Figure 5b: the linear order on weak models ===\n\n");
  std::printf("Trivial containments (Figure 5a) hold by definition;\n");
  std::printf("the non-trivial links are certified below.\n\n");

  Rng rng(20260704);
  const int delta = 4;

  const benchutil::Timer t_eq;
  std::printf("Equalities (constructive simulations):\n");
  {
    auto v = probe_vector_machine();
    auto m = to_multiset_machine(v);  // Theorem 8
    print_equality("VV = MV", certify(*v, *m, 40, delta, rng, pool),
                   "0 rounds");
    auto s = to_set_machine(m, delta);  // Theorem 4
    print_equality("MV = SV", certify(*m, *s, 40, delta, rng, pool),
                   "+2*Delta");
  }
  {
    auto b = probe_broadcast_machine(3);
    auto mb = to_multiset_machine(b);  // Theorem 9
    print_equality("VB = MB", certify(*b, *mb, 40, delta, rng, pool),
                   "0 rounds");
  }
  const double eq_ms = t_eq.ms();
  benchutil::report_phase("equality certification", eq_ms, g_instances_run);

  const benchutil::Timer t_sep;
  std::printf("\nSeparations (Corollary 3 bisimulation certificates):\n");
  print_separation("SB != MB", thm13_witness());
  print_separation("VB != SV", thm11_witness(3));
  print_separation("VV != VVc", thm17_witness(3));
  benchutil::report_phase("separation certificates", t_sep.ms());

  std::printf("\nResulting hierarchy (both general and constant time):\n\n");
  std::printf("      SB  (  MB = VB  (  SV = MV = VV  (  VVc\n");
  std::printf("    SB(1) ( MB(1)=VB(1) ( SV(1)=MV(1)=VV(1) ( VVc(1)\n\n");
  std::printf("Four distinct levels:\n");
  for (const ProblemClass c : all_problem_classes()) {
    std::printf("  %-4s level %d  machine class %-20s logic %-5s on %s\n",
                problem_class_name(c).c_str(), linear_order_level(c),
                machine_class_for(c).name().c_str(),
                logic_name_for(c).c_str(),
                variant_name(kripke_variant_for(c)).c_str());
  }

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "fig5_hierarchy", static_cast<long long>(g_instances_run),
      pool.num_threads(), wall,
      eq_ms > 0 ? 1000.0 * static_cast<double>(g_instances_run) / eq_ms : 0);
  return 0;
}
