# Empty dependencies file for symmetry.
# This may be replaced when dependencies are built.
