
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labelled/labelled.cpp" "src/labelled/CMakeFiles/wm_labelled.dir/labelled.cpp.o" "gcc" "src/labelled/CMakeFiles/wm_labelled.dir/labelled.cpp.o.d"
  "/root/repo/src/labelled/leader_election.cpp" "src/labelled/CMakeFiles/wm_labelled.dir/leader_election.cpp.o" "gcc" "src/labelled/CMakeFiles/wm_labelled.dir/leader_election.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/wm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/wm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/port/CMakeFiles/wm_port.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
