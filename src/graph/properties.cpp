#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace wm {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId u : g.neighbours(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d < 0; });
}

std::vector<std::vector<NodeId>> connected_components(const Graph& g) {
  std::vector<std::vector<NodeId>> comps;
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (seen[s]) continue;
    std::vector<NodeId> comp;
    std::queue<NodeId> q;
    seen[s] = true;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      comp.push_back(v);
      for (NodeId u : g.neighbours(v)) {
        if (!seen[u]) {
          seen[u] = true;
          q.push(u);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

std::optional<std::vector<int>> bipartition(const Graph& g) {
  std::vector<int> colour(static_cast<std::size_t>(g.num_nodes()), -1);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (colour[s] >= 0) continue;
    colour[s] = 0;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (NodeId u : g.neighbours(v)) {
        if (colour[u] < 0) {
          colour[u] = 1 - colour[v];
          q.push(u);
        } else if (colour[u] == colour[v]) {
          return std::nullopt;
        }
      }
    }
  }
  return colour;
}

bool is_eulerian(const Graph& g) {
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) % 2 != 0) return false;
  }
  // Connectivity over non-isolated nodes.
  NodeId start = -1;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0) {
      start = v;
      break;
    }
  }
  if (start < 0) return true;  // no edges
  const auto dist = bfs_distances(g, start);
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > 0 && dist[v] < 0) return false;
  }
  return true;
}

bool is_independent_set(const Graph& g, const std::vector<int>& s) {
  for (const Edge& e : g.edges()) {
    if (s[e.u] && s[e.v]) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, const std::vector<int>& s) {
  if (!is_independent_set(g, s)) return false;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (s[v]) continue;
    bool blocked = false;
    for (NodeId u : g.neighbours(v)) {
      if (s[u]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;  // v could be added
  }
  return true;
}

bool is_vertex_cover(const Graph& g, const std::vector<int>& s) {
  for (const Edge& e : g.edges()) {
    if (!s[e.u] && !s[e.v]) return false;
  }
  return true;
}

bool is_proper_colouring(const Graph& g, const std::vector<int>& col, int k) {
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (col[v] < 1 || col[v] > k) return false;
  }
  for (const Edge& e : g.edges()) {
    if (col[e.u] == col[e.v]) return false;
  }
  return true;
}

}  // namespace wm
