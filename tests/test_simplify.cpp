#include "logic/simplify.hpp"

#include <gtest/gtest.h>

#include "compile/extract.hpp"
#include "algorithms/machines.hpp"
#include "bisim/distinguish.hpp"
#include "core/classification.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/parser.hpp"
#include "logic/random_formula.hpp"
#include "port/port_numbering.hpp"

namespace wm {
namespace {

TEST(Simplify, ConstantFolding) {
  EXPECT_EQ(simplify(parse_formula("~T")), Formula::fls());
  EXPECT_EQ(simplify(parse_formula("~F")), Formula::tru());
  EXPECT_EQ(simplify(parse_formula("~~q1")), Formula::prop(1));
  EXPECT_EQ(simplify(parse_formula("T & q1")), Formula::prop(1));
  EXPECT_EQ(simplify(parse_formula("q1 & F")), Formula::fls());
  EXPECT_EQ(simplify(parse_formula("q1 | T")), Formula::tru());
  EXPECT_EQ(simplify(parse_formula("F | q1")), Formula::prop(1));
  EXPECT_EQ(simplify(parse_formula("q1 & q1")), Formula::prop(1));
  EXPECT_EQ(simplify(parse_formula("q1 | q1")), Formula::prop(1));
  EXPECT_EQ(simplify(parse_formula("<*,*> F")), Formula::fls());
  EXPECT_EQ(simplify(parse_formula("[*,*] T")), Formula::tru());
}

TEST(Simplify, CascadesThroughLayers) {
  // ~( (T & q1) & ~~q1 ) -> ~q1 ... (q1 & q1 -> q1, then ~q1).
  const Formula f = parse_formula("~((T & q1) & ~~q1)");
  EXPECT_EQ(simplify(f), Formula::negate(Formula::prop(1)));
  // <*,*>>=2 (F | F) -> F.
  EXPECT_EQ(simplify(parse_formula("<*,*>>=2 (F | F)")), Formula::fls());
}

TEST(Simplify, Idempotent) {
  Rng rng(1);
  RandomFormulaOptions opts;
  opts.graded = true;
  for (int i = 0; i < 100; ++i) {
    const Formula f = random_formula(rng, opts);
    const Formula s = simplify(f);
    EXPECT_EQ(simplify(s), s);
    EXPECT_LE(s.size(), f.size());
    EXPECT_LE(s.modal_depth(), f.modal_depth());
  }
}

class SimplifyPreservesSemantics : public ::testing::TestWithParam<Variant> {};

TEST_P(SimplifyPreservesSemantics, OnRandomModels) {
  Rng frng(static_cast<std::uint64_t>(GetParam()) + 5);
  Rng grng(6);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = random_connected_graph(7, 3, 3, grng);
    const PortNumbering p = PortNumbering::random(g, grng);
    const KripkeModel k = kripke_from_graph(p, GetParam());
    RandomFormulaOptions opts;
    opts.variant = GetParam();
    opts.delta = g.max_degree();
    opts.num_props = g.max_degree();
    opts.graded = true;
    opts.max_depth = 4;
    const Formula f = random_formula(frng, opts);
    EXPECT_EQ(model_check(k, f), model_check(k, simplify(f))) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SimplifyPreservesSemantics,
                         ::testing::Values(Variant::PlusPlus, Variant::MinusPlus,
                                           Variant::PlusMinus,
                                           Variant::MinusMinus));

TEST(Simplify, ShrinksExtractedFormulas) {
  ExtractionOptions opts;
  opts.delta = 3;
  opts.rounds = 1;
  const Formula psi = extract_formula(*odd_odd_machine(), opts);
  const Formula s = simplify(psi);
  EXPECT_LE(s.size(), psi.size());
  // Semantics preserved on the theorem 13 witness model.
  const SeparationWitness w = thm13_witness();
  const KripkeModel k = kripke_from_graph(w.numbering, Variant::MinusMinus, 3);
  EXPECT_EQ(model_check(k, psi), model_check(k, s));
}

TEST(Simplify, ShrinksDistinguishingFormulas) {
  const SeparationWitness w = thm13_witness();
  const KripkeModel k = kripke_from_graph(w.numbering, Variant::MinusMinus);
  const auto f = distinguishing_formula(k, 0, 6, /*graded=*/true);
  ASSERT_TRUE(f.has_value());
  const Formula s = simplify(*f);
  EXPECT_LE(s.size(), f->size());
  const auto truth = model_check(k, s);
  EXPECT_TRUE(truth[0]);
  EXPECT_FALSE(truth[6]);
}

}  // namespace
}  // namespace wm
