// The beeping model (Table 1's wireless end of the spectrum): single-bit
// anonymous communication.
//
//  - a native beeping algorithm (BFS wave from the high-degree sources),
//  - the SB -> beeping simulation: any Set∩Broadcast machine with a
//    finite message alphabet runs over a one-bit channel with an
//    |alphabet|-fold slowdown.
//
//   ./beeping_demo
#include <cstdio>

#include "algorithms/machines.hpp"
#include "graph/generators.hpp"
#include "obs/env.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"
#include "transform/beeping.hpp"

int main() {
  wm::obs::init_from_env();
  using namespace wm;

  std::printf("=== Beep-wave BFS on a 4x5 grid ===\n");
  const Graph g = grid_graph(4, 5);
  // Interior nodes have degree 4: they are the wave sources.
  const auto wave = as_state_machine(beep_wave_machine(4, 8));
  const auto r = execute(*wave, PortNumbering::identity(g));
  std::printf("distance-to-nearest-interior map (row-major):\n");
  const auto out = r.outputs_as_ints();
  for (int row = 0; row < 4; ++row) {
    std::printf("  ");
    for (int col = 0; col < 5; ++col) std::printf("%d ", out[row * 5 + col]);
    std::printf("\n");
  }
  std::printf("(0 = source, k = heard the wave in round k)\n\n");

  std::printf("=== SB over a one-bit channel ===\n");
  const auto detector = isolated_detector_machine();
  const auto beeping = to_beeping_machine(detector, {Value::integer(0)});
  Graph h(5);
  h.add_edge(0, 1);
  h.add_edge(1, 2);
  h.add_edge(2, 3);  // node 4 is isolated
  const PortNumbering p = PortNumbering::identity(h);
  const auto ra = execute(*detector, p);
  const auto rb = execute(*beeping, p);
  std::printf("isolated-node detector, native SB: ");
  for (int v : ra.outputs_as_ints()) std::printf("%d", v);
  std::printf("  (%d round)\n", ra.rounds);
  std::printf("same machine over beeps:           ");
  for (int v : rb.outputs_as_ints()) std::printf("%d", v);
  std::printf("  (%d round, max message %zu node)\n", rb.rounds,
              rb.stats.max_size);
  std::printf("\nThe wireless motivation of Section 3.3: broadcast/set\n");
  std::printf("models arise naturally where receivers cannot tell\n");
  std::printf("transmitters apart — beeping is the extreme point, and it\n");
  std::printf("still implements every finite-alphabet SB algorithm.\n");
  return 0;
}
