file(REMOVE_RECURSE
  "libwm_problems.a"
)
