#include "util/rng.hpp"

namespace wm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (xoshiro's only bad state).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  return below(den) < num;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace wm
