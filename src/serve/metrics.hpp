// Prometheus-style text exposition for the serve layer.
//
// metrics_exposition() renders the observability registries plus the
// memo-cache stats as Prometheus text format 0.0.4: every line is
// `# HELP name help`, `# TYPE name type`, or `name{labels} value`. The
// serve `metrics` endpoint carries the text as a JSON string field
// (`result.text`) over the ndjson protocol — an HTTP front-end can dump
// it verbatim, and tools/wm_top.cpp renders it as a dashboard.
//
// Families:
//   serve_requests_total{endpoint=}        work counter serve.requests.*
//   serve_cache_hits_total{endpoint=}      work counter serve.cache_hits.*
//   serve_cache_misses_total{endpoint=}    work counter serve.cache_misses.*
//   serve_cache_entries / _capacity        memo-cache gauges
//   serve_cache_evictions_total / _bypasses_total
//   serve_request_duration_seconds         histogram serve.* (cumulative
//     _bucket{endpoint=,le=} / _sum / _count, log2-ns bucket bounds)
//   wm_work_total{counter=}                every work counter
//   wm_info_total{counter=}                every info counter (pool etc.)
//   wm_window_seconds                      actual span of the window
//   wm_window_requests_per_second{endpoint=}
//   wm_window_request_duration_seconds{endpoint=,quantile=}
//
// Cumulative families reconcile exactly with the JSON `stats` reply
// taken in the same quiesced state (same registries, same snapshot
// functions). Window families are info-kind telemetry — they depend on
// capture cadence and wall clock, and must never enter a CI gate.
#pragma once

#include <string>

#include "serve/memo_cache.hpp"

namespace wm::serve {

/// Renders the exposition text (trailing newline included). Reads the
/// counter/histogram registries and the process window ring directly;
/// `window_secs` is the requested lookback for the wm_window_* families.
std::string metrics_exposition(const MemoCache::Stats& cache_stats,
                               double window_secs);

}  // namespace wm::serve
