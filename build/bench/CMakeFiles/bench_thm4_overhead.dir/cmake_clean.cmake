file(REMOVE_RECURSE
  "CMakeFiles/bench_thm4_overhead.dir/bench_thm4_overhead.cpp.o"
  "CMakeFiles/bench_thm4_overhead.dir/bench_thm4_overhead.cpp.o.d"
  "bench_thm4_overhead"
  "bench_thm4_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm4_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
