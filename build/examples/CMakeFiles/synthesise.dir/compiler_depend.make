# Empty compiler generated dependencies file for synthesise.
# This may be replaced when dependencies are built.
