file(REMOVE_RECURSE
  "CMakeFiles/bench_kripke.dir/bench_kripke.cpp.o"
  "CMakeFiles/bench_kripke.dir/bench_kripke.cpp.o.d"
  "bench_kripke"
  "bench_kripke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
