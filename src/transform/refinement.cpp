#include "transform/refinement.hpp"

#include <set>
#include <unordered_map>

namespace wm {

namespace {

Value key_of(const PortNumbering& p, const std::vector<Value>& beta_t,
             NodeId u, NodeId v) {
  // The message u sends towards v: (beta_t(u), deg(u), pi(u, v)).
  return Value::triple(beta_t[u], Value::integer(p.graph().degree(u)),
                       Value::integer(p.out_port(u, v)));
}

}  // namespace

RefinementTrace run_refinement(const PortNumbering& p, int rounds) {
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  RefinementTrace trace;
  trace.beta.assign(1, std::vector<Value>(static_cast<std::size_t>(n),
                                          Value::unit()));
  trace.bset.assign(1, std::vector<Value>(static_cast<std::size_t>(n),
                                          Value::set({})));
  for (int t = 1; t <= rounds; ++t) {
    std::vector<Value> beta(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      beta[v] = Value::pair(trace.beta[t - 1][v], trace.bset[t - 1][v]);
    }
    std::vector<Value> bset(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      ValueVec received;
      received.reserve(g.neighbours(v).size());
      for (NodeId u : g.neighbours(v)) {
        received.push_back(key_of(p, beta, u, v));
      }
      bset[v] = Value::set(std::move(received));
    }
    // Intern per round: equal betas / B-sets share one node so deeper
    // comparisons short-circuit on pointer identity (cf. cover/views).
    std::unordered_map<Value, Value> canon;
    for (auto* layer : {&beta, &bset}) {
      for (Value& x : *layer) {
        auto [it, _] = canon.try_emplace(x, x);
        x = it->second;
      }
    }
    trace.beta.push_back(std::move(beta));
    trace.bset.push_back(std::move(bset));
  }
  return trace;
}

bool neighbour_keys_distinct(const PortNumbering& p,
                             const std::vector<Value>& beta_t) {
  const Graph& g = p.graph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::set<Value> keys;
    for (NodeId u : g.neighbours(v)) {
      if (!keys.insert(key_of(p, beta_t, u, v)).second) return false;
    }
  }
  return true;
}

int rounds_until_keys_distinct(const PortNumbering& p, int limit) {
  const RefinementTrace trace = run_refinement(p, limit);
  for (int t = 0; t <= limit; ++t) {
    if (neighbour_keys_distinct(p, trace.beta[t])) return t;
  }
  return -1;
}

}  // namespace wm
