file(REMOVE_RECURSE
  "libwm_labelled.a"
)
