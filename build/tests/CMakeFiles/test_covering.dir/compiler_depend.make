# Empty compiler generated dependencies file for test_covering.
# This may be replaced when dependencies are built.
