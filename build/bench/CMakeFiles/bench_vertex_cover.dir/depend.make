# Empty dependencies file for bench_vertex_cover.
# This may be replaced when dependencies are built.
