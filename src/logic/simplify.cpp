#include "logic/simplify.hpp"

#include <unordered_map>

namespace wm {

namespace {

Formula simp(const Formula& f, std::unordered_map<Formula, Formula>& memo) {
  auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  Formula out;
  switch (f.kind()) {
    case Formula::Kind::True:
    case Formula::Kind::False:
    case Formula::Kind::Prop:
      out = f;
      break;
    case Formula::Kind::Not: {
      const Formula c = simp(f.child(), memo);
      if (c.kind() == Formula::Kind::True) {
        out = Formula::fls();
      } else if (c.kind() == Formula::Kind::False) {
        out = Formula::tru();
      } else if (c.kind() == Formula::Kind::Not) {
        out = c.child();
      } else {
        out = Formula::negate(c);
      }
      break;
    }
    case Formula::Kind::And: {
      const Formula a = simp(f.child(0), memo);
      const Formula b = simp(f.child(1), memo);
      if (a.kind() == Formula::Kind::False || b.kind() == Formula::Kind::False) {
        out = Formula::fls();
      } else if (a.kind() == Formula::Kind::True) {
        out = b;
      } else if (b.kind() == Formula::Kind::True) {
        out = a;
      } else if (a == b) {
        out = a;
      } else {
        out = Formula::conj(a, b);
      }
      break;
    }
    case Formula::Kind::Or: {
      const Formula a = simp(f.child(0), memo);
      const Formula b = simp(f.child(1), memo);
      if (a.kind() == Formula::Kind::True || b.kind() == Formula::Kind::True) {
        out = Formula::tru();
      } else if (a.kind() == Formula::Kind::False) {
        out = b;
      } else if (b.kind() == Formula::Kind::False) {
        out = a;
      } else if (a == b) {
        out = a;
      } else {
        out = Formula::disj(a, b);
      }
      break;
    }
    case Formula::Kind::Diamond: {
      const Formula c = simp(f.child(), memo);
      if (c.kind() == Formula::Kind::False) {
        out = Formula::fls();  // no successor can satisfy F
      } else {
        out = Formula::diamond(f.modality(), c, f.grade());
      }
      break;
    }
    case Formula::Kind::Box: {
      const Formula c = simp(f.child(), memo);
      if (c.kind() == Formula::Kind::True) {
        out = Formula::tru();  // vacuously over all successors
      } else {
        out = Formula::box(f.modality(), c);
      }
      break;
    }
  }
  memo.emplace(f, out);
  return out;
}

}  // namespace

Formula simplify(const Formula& f) {
  std::unordered_map<Formula, Formula> memo;
  return simp(f, memo);
}

}  // namespace wm
