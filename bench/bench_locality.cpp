// Regenerates the paper's locality perspective (Section 2, contribution
// (b)): for uniquely-solvable problems, the *exact* number of rounds
// each class needs, measured by bounded-refinement analysis over an
// exhaustive scope of small port-numbered graphs (plus the Theorem 13
// witness, so the SB column reflects the true separation).
#include <cstdio>
#include <vector>

#include "core/solvability.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"
#include "bench_util.hpp"

namespace {

using namespace wm;

std::vector<ScopedInstance> build_scope(const Problem& problem, int max_n,
                                        int max_degree, bool add_witness) {
  WM_TIME_SCOPE("bench.locality.scope");
  std::vector<ScopedInstance> scope;
  EnumerateOptions opts;
  opts.connected_only = false;
  opts.max_degree = max_degree;
  Rng rng(3);
  for (int n = 1; n <= max_n; ++n) {
    enumerate_graphs(n, opts, [&](const Graph& g) {
      scope.push_back(instance_for(problem, PortNumbering::identity(g)));
      scope.push_back(instance_for(problem, PortNumbering::random(g, rng)));
      return true;
    });
  }
  if (add_witness) {
    scope.push_back(instance_for(problem, thm13_witness().numbering));
  }
  return scope;
}

void report(const char* name, const std::vector<ScopedInstance>& scope,
            int delta) {
  WM_TIME_SCOPE("bench.locality.report");
  std::printf("%-26s", name);
  for (const ProblemClass c : all_problem_classes()) {
    const SolvabilityReport r = analyse_solvability(scope, c, delta);
    if (r.min_rounds) {
      std::printf(" %6d", *r.min_rounds);
    } else {
      std::printf(" %6s", "--");
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = wm::benchutil::parse_threads(argc, argv);
  const wm::benchutil::Timer wm_total;

  std::printf("=== Exact locality per class (scope: all graphs n<=5, "
              "Delta<=3, two numberings each; '--' = unsolvable) ===\n\n");
  std::printf("%-26s", "problem \\ class");
  for (const ProblemClass c : all_problem_classes()) {
    std::printf(" %6s", problem_class_name(c).c_str());
  }
  std::printf("\n");

  report("degree-parity",
         build_scope(*degree_parity_problem(), 5, 3, false), 3);
  report("isolated-node",
         build_scope(*isolated_node_problem(), 5, 3, false), 3);
  report("odd-odd (+thm13 witness)",
         build_scope(*odd_odd_problem(), 5, 3, true), 3);

  std::printf("\nShape checks (paper):\n");
  std::printf(" - degree-parity and isolated-node are 0 rounds everywhere\n");
  std::printf("   (the initial state already knows the degree);\n");
  std::printf(" - odd-odd takes exactly 1 round in MB and above, and is\n");
  std::printf("   unsolvable in SB once the Theorem 13 witness is in scope\n");
  std::printf("   (SB ( MB with constant locality — contribution (b)).\n");
  wm::benchutil::report_phase("total", wm_total.ms());
  wm::benchutil::write_bench_json("locality", 5, threads, wm_total.ms(), 0);
  return 0;
}
