#include "bisim/definability.hpp"

#include <algorithm>

#include "util/bitset.hpp"

namespace wm {

namespace {

// Internal representation: packed bitsets, ordered lexicographically by
// (size, words) so std::set dedups them. Complement and intersection are
// word loops; only the API boundary unpacks. Note Bitset's ordering is
// NOT the std::vector<bool> lexicographic order — irrelevant here, since
// the public result is re-keyed into set<vector<bool>> below and set
// equality is order-independent.
using Family = std::set<Bitset>;

void guard(const Family& family, std::size_t max_sets) {
  if (family.size() > max_sets) {
    throw DefinabilityBudgetError("definable_sets: family exceeds the budget");
  }
}

/// Closes the family under complement and pairwise intersection (hence,
/// with De Morgan, under all Boolean combinations).
void boolean_closure(Family& family, std::size_t max_sets) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Bitset> snapshot(family.begin(), family.end());
    for (const auto& s : snapshot) {
      changed |= family.insert(~s).second;
    }
    guard(family, max_sets);
    snapshot.assign(family.begin(), family.end());
    for (std::size_t a = 0; a < snapshot.size(); ++a) {
      for (std::size_t b = a + 1; b < snapshot.size(); ++b) {
        changed |= family.insert(snapshot[a] & snapshot[b]).second;
      }
      guard(family, max_sets);
    }
  }
}

/// ||<alpha>_{>=g} S||: states with at least g alpha-successors in S.
Bitset diamond_preimage(const KripkeModel& k, const Modality& alpha,
                        const Bitset& s, int grade) {
  Bitset out(s.size());
  const auto* succ = k.relation(alpha);
  if (succ == nullptr) return out;
  for (int v = 0; v < k.num_states(); ++v) {
    int count = 0;
    for (int w : (*succ)[v]) {
      if (s.test(static_cast<std::size_t>(w)) && ++count >= grade) break;
    }
    if (count >= grade) out.set(static_cast<std::size_t>(v));
  }
  return out;
}

std::set<std::vector<bool>> unpack(const Family& family) {
  std::set<std::vector<bool>> out;
  for (const auto& s : family) out.insert(s.to_bools());
  return out;
}

}  // namespace

std::set<std::vector<bool>> definable_sets(const KripkeModel& k, int depth,
                                           bool graded, std::size_t max_sets) {
  const auto n = static_cast<std::size_t>(k.num_states());
  Family family;
  family.insert(Bitset(n, true));   // T
  family.insert(Bitset(n, false));  // F
  for (int q = 1; q <= k.num_props(); ++q) {
    family.insert(k.prop_bits(q));
  }
  boolean_closure(family, max_sets);

  // Max useful grade per modality: the largest out-degree.
  const auto modalities = k.modalities();
  std::vector<int> max_grade(modalities.size(), 1);
  for (std::size_t a = 0; a < modalities.size(); ++a) {
    for (int v = 0; v < k.num_states(); ++v) {
      max_grade[a] = std::max(
          max_grade[a],
          static_cast<int>(k.successors(modalities[a], v).size()));
    }
  }

  for (int t = 0; depth < 0 || t < depth; ++t) {
    Family next = family;
    for (const auto& s : family) {
      for (std::size_t a = 0; a < modalities.size(); ++a) {
        const int top = graded ? max_grade[a] : 1;
        for (int g = 1; g <= top; ++g) {
          next.insert(diamond_preimage(k, modalities[a], s, g));
        }
      }
      guard(next, max_sets);
    }
    boolean_closure(next, max_sets);
    if (next == family) break;  // fixpoint
    family = std::move(next);
  }
  return unpack(family);
}

std::set<std::vector<bool>> unions_of_blocks(const Partition& p, int num_states,
                                             std::size_t max_sets) {
  if (p.num_blocks > 30 ||
      (1ull << p.num_blocks) > max_sets) {
    throw DefinabilityBudgetError("unions_of_blocks: too many blocks");
  }
  Family family;
  for (std::uint64_t mask = 0; mask < (1ull << p.num_blocks); ++mask) {
    Bitset s(static_cast<std::size_t>(num_states));
    for (int v = 0; v < num_states; ++v) {
      if ((mask >> p.block[v]) & 1) s.set(static_cast<std::size_t>(v));
    }
    family.insert(std::move(s));
  }
  return unpack(family);
}

}  // namespace wm
