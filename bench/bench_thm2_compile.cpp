// Regenerates the quantitative content of Theorem 2 and Tables 4-5:
//  - compile: for random formulas of modal depth d, the compiled
//    machine's running time is exactly d + 1 rounds, in every variant;
//  - extract: for catalogue machines with running time T, the extracted
//    formula has modal depth <= T and identical extension;
//  - the per-variant machine classes match Table 3.
//
// Ported to the task-parallel substrate: the six (variant, graded)
// sweeps are independent (each seeds its own Rngs) and run across
// --threads N workers, buffered into slots in configuration order —
// stdout is byte-identical at any thread count. Perf lines go to
// stderr; the summary to BENCH_thm2_compile.json.
#include <cstdio>
#include <string>
#include <vector>

#include "algorithms/machines.hpp"
#include "bench_util.hpp"
#include "compile/extract.hpp"
#include "compile/formula_compiler.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/random_formula.hpp"
#include "runtime/engine.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

struct SweepResult {
  std::string text;
  std::size_t compiled = 0;  // machines compiled (for the throughput rate)
};

SweepResult depth_sweep(Variant variant, bool graded) {
  WM_TIME_SCOPE("bench.thm2.depth_sweep");
  Rng frng(7 + static_cast<std::uint64_t>(variant));
  Rng grng(11);
  SweepResult result;
  char buf[256];
  std::snprintf(buf, sizeof buf, "variant %-4s graded=%d: ",
                variant_name(variant).c_str(), graded);
  result.text += buf;
  std::snprintf(buf, sizeof buf, "%-8s %-10s %-10s %-10s\n", "depth",
                "runtime", "agree", "machine");
  result.text += buf;
  for (int depth = 0; depth <= 5; ++depth) {
    int runs = 0, agree = 0, runtime = -1;
    std::string cls_name;
    for (int trial = 0; trial < 200 && runs < 10; ++trial) {
      RandomFormulaOptions opts;
      opts.variant = variant;
      opts.graded = graded;
      opts.max_depth = depth;
      opts.delta = 3;
      opts.num_props = 3;
      opts.use_box = true;
      const Formula f = random_formula(frng, opts);
      if (desugar_boxes(f).modal_depth() != depth) continue;
      ++runs;
      const auto machine = compile_formula(f, variant, 3);
      ++result.compiled;
      cls_name = machine->algebraic_class().name();
      const Graph g = random_connected_graph(8, 3, 3, grng);
      const PortNumbering p = PortNumbering::random(g, grng);
      const auto r = execute(*machine, p);
      runtime = r.rounds;
      const auto truth = model_check(kripke_from_graph(p, variant, 3), f);
      bool ok = r.rounds == depth + 1;
      for (int v = 0; v < g.num_nodes(); ++v) {
        if ((r.final_states[v].as_int() == 1) != truth[v]) ok = false;
      }
      if (ok) ++agree;
    }
    std::snprintf(buf, sizeof buf, "%26d %-10d %d/%-8d %s\n", depth, runtime,
                  agree, runs, cls_name.c_str());
    result.text += buf;
  }
  return result;
}

void extraction_table() {
  WM_TIME_SCOPE("bench.thm2.extract");
  std::printf("\n=== Tables 4-5: machine -> formula extraction ===\n");
  std::printf("%-28s %-18s %-8s %-8s %-10s %-10s\n", "machine", "class",
              "rounds", "md", "size", "graded");
  struct Row {
    const char* name;
    std::shared_ptr<const StateMachine> m;
    int delta;
    int rounds;
  };
  const Row rows[] = {
      {"degree-parity (time 0)", degree_parity_machine(), 3, 0},
      {"isolated detector (SBo)", isolated_detector_machine(), 3, 1},
      {"odd-odd neighbours (MB)", odd_odd_machine(), 3, 1},
      {"leaf picker (SV)", leaf_picker_machine(), 3, 1},
      {"local-type maximum (VV)", local_type_maximum_machine(2), 2, 2},
  };
  for (const Row& row : rows) {
    ExtractionOptions opts;
    opts.delta = row.delta;
    opts.rounds = row.rounds;
    const Formula psi = extract_formula(*row.m, opts);
    std::printf("%-28s %-18s %-8d %-8d %-10zu %-10s\n", row.name,
                row.m->algebraic_class().name().c_str(), row.rounds,
                psi.modal_depth(), psi.size(), psi.is_graded() ? "yes" : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("=== Theorem 2: formula -> machine (runtime = md + 1) ===\n");
  const std::vector<std::pair<Variant, bool>> configs = {
      {Variant::PlusPlus, false}, {Variant::MinusPlus, true},
      {Variant::MinusPlus, false}, {Variant::PlusMinus, false},
      {Variant::MinusMinus, true}, {Variant::MinusMinus, false},
  };
  const benchutil::Timer t_sweep;
  std::vector<SweepResult> slots(configs.size());
  pool.parallel_for(0, configs.size(), [&](std::uint64_t i) {
    slots[i] = depth_sweep(configs[i].first, configs[i].second);
  }, 1);
  std::size_t compiled = 0;
  for (const SweepResult& s : slots) {
    std::fputs(s.text.c_str(), stdout);
    compiled += s.compiled;
  }
  const double sweep_ms = t_sweep.ms();
  benchutil::report_phase("depth sweeps", sweep_ms, compiled);

  {
    const benchutil::Timer t_extract;
    extraction_table();
    benchutil::report_phase("extraction table", t_extract.ms());
  }

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "thm2_compile", static_cast<long long>(configs.size()),
      pool.num_threads(), wall,
      sweep_ms > 0 ? 1000.0 * static_cast<double>(compiled) / sweep_ms : 0);
  return 0;
}
