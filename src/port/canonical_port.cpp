// Canonical forms of port-numbered graphs — the PortNumbering reduction
// of graph/canonical.hpp, kept in wm_port so wm_graph stays dependency-free.
//
// A port numbering on G reduces to the Delta^2 relations
// R_(i,j) = {(u,v) : p((u,i)) = (v,j)} over the nodes of G — exactly the
// accessibility relations of the K_{+,+} Kripke view (Section 4.3), minus
// the valuation. A node bijection preserving every R_(i,j) preserves
// adjacency and both per-node port families, so certificate equality is
// exactly port-numbered-graph isomorphism.
#include <string>

#include "graph/canonical.hpp"
#include "port/port_numbering.hpp"

namespace wm {

RelationalStructure structure_of(const PortNumbering& p) {
  const Graph& g = p.graph();
  const int n = g.num_nodes();
  const int delta = n == 0 ? 0 : g.max_degree();
  RelationalStructure s;
  s.n = n;
  s.header = "P;D" + std::to_string(delta) + ";";
  s.colour.assign(static_cast<std::size_t>(n), 0);
  // Relation (i, j) at index (i-1)*delta + (j-1).
  for (int r = 0; r < delta * delta; ++r) s.add_relation();
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 1; i <= g.degree(v); ++i) {
      const PortRef target = p.forward({v, i});
      const std::size_t r = static_cast<std::size_t>(i - 1) *
                                static_cast<std::size_t>(delta) +
                            static_cast<std::size_t>(target.index - 1);
      s.add_edge(r, v, target.node);
    }
  }
  return s;
}

CanonicalForm canonical_form(const PortNumbering& p) {
  return canonical_form(structure_of(p));
}

std::string canonical_certificate(const PortNumbering& p) {
  return canonical_form(p).certificate;
}

std::uint64_t canonical_hash(const PortNumbering& p) {
  return certificate_hash(canonical_certificate(p));
}

bool is_isomorphic(const PortNumbering& p, const PortNumbering& q) {
  if (p.graph().num_nodes() != q.graph().num_nodes() ||
      p.graph().num_edges() != q.graph().num_edges()) {
    return false;
  }
  return canonical_certificate(p) == canonical_certificate(q);
}

}  // namespace wm
