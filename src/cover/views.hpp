// Yamashita–Kameda views and truncated universal covers.
//
// The paper's related-work toolbox (Section 3.3): "the use of symmetry
// and isomorphisms, local views, covering graphs (lifts) and universal
// covering graphs" — this module makes views executable and ties them to
// the bisimulation machinery.
//
// The depth-t view of node v in (G, p) is the rooted tree a VV algorithm
// can learn in t rounds: the root carries deg(v); for each in-port
// i = 1..deg(v) there is a subtree (j_i, view_{t-1}(u_i)) where u_i is
// the neighbour feeding in-port i and j_i its out-port towards v.
//
// Views are encoded canonically as `Value`s:
//   view_0(v)     = Int deg(v)
//   view_{t+1}(v) = (deg(v), ((j_1, V_1), ..., (j_d, V_d)))
// with positions indexed by in-port number — so equal Values are equal
// views.
//
// Facts made executable here (and checked in tests):
//  - view_t(u) = view_t(v)  iff  u, v are t-step bisimilar in K_{+,+}
//    (bounded refinement with max_rounds = t);
//  - views stabilise by depth n - 1 (Norris): equality of (n-1)-views
//    implies equality at all depths, so `stable_views` computes the
//    VV-indistinguishability classes.
#pragma once

#include <vector>

#include "port/port_numbering.hpp"
#include "util/value.hpp"

namespace wm {

/// The depth-t view of node v.
Value view_of(const PortNumbering& p, NodeId v, int depth);

/// Views of all nodes at the given depth (computed bottom-up, O(t * m)
/// Value constructions with full structural sharing).
std::vector<Value> views(const PortNumbering& p, int depth);

/// Views at the stabilisation depth n - 1; two nodes have equal stable
/// views iff no VV algorithm whatsoever can distinguish them on (G, p).
std::vector<Value> stable_views(const PortNumbering& p);

/// Groups nodes by stable view: block id per node (ids are dense,
/// ordered by first occurrence).
std::vector<int> view_classes(const PortNumbering& p);

/// The *broadcast* view (what a VB/MB-style algorithm could at most
/// learn): like view_of but without the out-port labels j_i and with the
/// children collected as a multiset rather than an in-port-indexed
/// tuple. Matches K_{-,-} graded bounded bisimulation.
Value broadcast_view_of(const PortNumbering& p, NodeId v, int depth);
std::vector<Value> broadcast_views(const PortNumbering& p, int depth);

}  // namespace wm
