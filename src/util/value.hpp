// Universal value datatype used for distributed-algorithm states and messages.
//
// The paper allows possibly-infinite state sets Z and message sets M
// (Section 1.1). Every construction it performs — message histories
// (Theorem 8), colour-refinement sequences beta_t/B_t (Theorem 4),
// subformula truth tables (Theorem 2) — is a finite nesting of integers,
// tuples, sets and multisets. `Value` is a single immutable, totally
// ordered, hashable carrier for all of them, which lets the execution
// engine and every machine transformer be written once, monomorphically.
//
// Values are immutable and cheaply copyable (shared structure), so the
// exponentially nested histories built by the Theorem 8 simulation stay
// affordable in memory.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wm {

class Value;
using ValueVec = std::vector<Value>;

class Value {
 public:
  enum class Kind : std::uint8_t { Unit, Int, Str, Tuple, Set, MSet };

  /// Default-constructed value is Unit (also used as the "no message" m0).
  Value();

  // -- Factories ------------------------------------------------------------
  static Value unit();
  static Value integer(std::int64_t v);
  static Value boolean(bool v);  // encoded as Int 0/1
  static Value str(std::string s);
  static Value tuple(ValueVec items);
  /// Builds a set: items are sorted and de-duplicated.
  static Value set(ValueVec items);
  /// Builds a multiset: items are sorted, duplicates kept.
  static Value mset(ValueVec items);
  /// Convenience: tuple of two / three values.
  static Value pair(Value a, Value b);
  static Value triple(Value a, Value b, Value c);

  // -- Observers ------------------------------------------------------------
  Kind kind() const { return node_->kind; }
  bool is_unit() const { return kind() == Kind::Unit; }
  bool is_int() const { return kind() == Kind::Int; }
  bool is_str() const { return kind() == Kind::Str; }
  bool is_tuple() const { return kind() == Kind::Tuple; }
  bool is_set() const { return kind() == Kind::Set; }
  bool is_mset() const { return kind() == Kind::MSet; }

  /// Precondition: is_int(). Aborts otherwise.
  std::int64_t as_int() const;
  /// Precondition: is_str().
  const std::string& as_str() const;
  /// Precondition: tuple/set/mset. Items of sets/multisets are sorted.
  const ValueVec& items() const;
  /// Number of items (tuple/set/mset) — 0 for scalars.
  std::size_t size() const;
  /// items()[i]; precondition: i < size().
  const Value& at(std::size_t i) const;

  /// Membership test for sets and multisets (binary search).
  bool contains(const Value& v) const;
  /// Multiplicity of v in a multiset/set (0 or more).
  std::size_t count(const Value& v) const;

  std::size_t hash() const { return node_->hash; }

  /// Stable identity of the underlying shared node — two Values with the
  /// same identity are equal in O(1); used to memoise over the value DAG.
  const void* identity() const { return node_.get(); }

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b);
  friend std::strong_ordering operator<=>(const Value& a, const Value& b);

 private:
  struct Node {
    Kind kind = Kind::Unit;
    std::int64_t i = 0;
    std::string s;
    ValueVec kids;
    std::size_t hash = 0;
  };

  explicit Value(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  static Value make(Node&& n);

  std::shared_ptr<const Node> node_;
};

/// Canonicalises a vector of messages into the inbox representation a
/// Multiset machine sees: multiset(a) in the paper's notation (Section 1.5).
Value multiset_of(const ValueVec& msgs);
/// set(a) in the paper's notation: drop ordering and multiplicities.
Value set_of(const ValueVec& msgs);

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace wm

template <>
struct std::hash<wm::Value> {
  std::size_t operator()(const wm::Value& v) const noexcept { return v.hash(); }
};
