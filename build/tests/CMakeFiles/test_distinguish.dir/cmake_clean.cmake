file(REMOVE_RECURSE
  "CMakeFiles/test_distinguish.dir/test_distinguish.cpp.o"
  "CMakeFiles/test_distinguish.dir/test_distinguish.cpp.o.d"
  "test_distinguish"
  "test_distinguish.pdb"
  "test_distinguish[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distinguish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
