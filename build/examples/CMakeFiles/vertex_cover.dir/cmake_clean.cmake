file(REMOVE_RECURSE
  "CMakeFiles/vertex_cover.dir/vertex_cover.cpp.o"
  "CMakeFiles/vertex_cover.dir/vertex_cover.cpp.o.d"
  "vertex_cover"
  "vertex_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
