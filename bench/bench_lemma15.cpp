// Timing bench for the Figure 8 / Lemma 15 machinery: bipartite double
// cover, 1-factorisation (repeated Hopcroft-Karp), blossom matching (the
// class-G membership test of Lemma 16 / Theorem 17), and exact minimum
// vertex cover (ground truth for the Section 3.3 bench).
#include <benchmark/benchmark.h>

#include "graph/double_cover.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "graph/matching.hpp"

namespace {

using namespace wm;

void BM_DoubleCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Graph g = random_regular_graph(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bipartite_double_cover(g));
  }
}

void BM_OneFactorise(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(2);
  const Graph g = random_regular_graph(n, k, rng);
  const DoubleCover dc = bipartite_double_cover(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_factorise_bipartite(dc.graph, dc.side));
  }
}

void BM_BlossomMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = random_regular_graph(n, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_maximum_matching(g));
  }
  state.SetComplexityN(n);
}

void BM_ClassGTest(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Graph g = class_g_graph(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(has_one_factor(g));
  }
}

void BM_ExactVertexCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = random_connected_graph(n, 4, n / 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimum_vertex_cover_size(g));
  }
}

}  // namespace

BENCHMARK(BM_DoubleCover)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_OneFactorise)->ArgsProduct({{16, 64, 256}, {3, 5}});
BENCHMARK(BM_BlossomMatching)->Arg(16)->Arg(64)->Arg(256)->Complexity();
BENCHMARK(BM_ClassGTest)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_ExactVertexCover)->Arg(12)->Arg(18)->Arg(24);
