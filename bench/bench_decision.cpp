// Regenerates the separation theorems as *decision-procedure* outputs:
// for each (problem, class, round bound), whether a distributed
// algorithm exists on a concrete scope — mechanising the paper's
// case-by-case impossibility arguments (and the Section 5.4 open
// question's "is this candidate problem a separator?" workflow).
//
// Ported to the task-parallel substrate: the colouring scan inside
// decide_solvable runs on the pool (DecisionOptions::pool) with the
// lowest-witness contract, so every verdict — and therefore stdout — is
// byte-identical at any --threads setting. The table loops stay serial
// (never nest pool scans inside pool tasks). Perf lines go to stderr;
// the summary to BENCH_decision.json.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/decision.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"
#include "util/parallel.hpp"

namespace {

using namespace wm;

std::size_t g_assignments = 0;

const char* verdict(const Problem& p, const std::vector<PortNumbering>& scope,
                    ProblemClass c, int rounds, ThreadPool* pool) {
  DecisionOptions opts;
  opts.rounds = rounds;
  opts.pool = pool;
  try {
    const Decision d = decide_solvable(p, scope, c, opts);
    g_assignments += d.assignments_tried;
    return d.solvable ? "solvable" : "--";
  } catch (const DecisionBudgetError&) {
    return "budget";
  }
}

void table(const char* title, const Problem& p,
           const std::vector<PortNumbering>& scope,
           const std::vector<int>& round_bounds, ThreadPool* pool) {
  WM_TIME_SCOPE("bench.decision.table");
  const benchutil::Timer timer;
  std::printf("%s\n", title);
  std::printf("  %-8s", "rounds");
  for (const ProblemClass c : all_problem_classes()) {
    std::printf(" %9s", problem_class_name(c).c_str());
  }
  std::printf("\n");
  for (int t : round_bounds) {
    if (t < 0) {
      std::printf("  %-8s", "any");
    } else {
      std::printf("  %-8d", t);
    }
    for (const ProblemClass c : all_problem_classes()) {
      std::printf(" %9s", verdict(p, scope, c, t, pool));
    }
    std::printf("\n");
  }
  std::printf("\n");
  benchutil::report_phase(title, timer.ms());
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = benchutil::parse_threads(argc, argv);
  ThreadPool pool(threads);
  std::fprintf(stderr, "[conf]  threads: %d\n", pool.num_threads());
  const benchutil::Timer total;

  std::printf("=== Scoped class-membership decisions ===\n");
  std::printf("('--' = no algorithm of that class exists on the scope, at\n");
  std::printf("any t for the 'any' row; solvability checked by exhausting\n");
  std::printf("block colourings of the joint refinement.)\n\n");

  {
    std::vector<PortNumbering> scope;
    for (int k = 2; k <= 4; ++k) {
      scope.push_back(PortNumbering::identity(star_graph(k)));
    }
    table("Theorem 11 scope: stars k = 2..4, leaf-in-star",
          *leaf_in_star_problem(), scope, {0, 1, -1}, &pool);
  }
  {
    const std::vector<PortNumbering> scope{mis_cycle_witness(6).numbering};
    table("Section 3.1 scope: symmetric consistent C6, maximal independent "
          "set",
          *maximal_independent_set_problem(), scope, {0, 1, -1}, &pool);
  }
  {
    std::vector<PortNumbering> scope{
        PortNumbering::symmetric_regular(cycle_graph(5))};
    table("Symmetric C5, vertex 3-colouring", *three_colouring_problem(),
          scope, {-1}, &pool);
  }
  {
    std::vector<PortNumbering> scope;
    for (const Graph& g : {cycle_graph(4), cycle_graph(5), path_graph(4),
                           star_graph(3), complete_graph(4)}) {
      scope.push_back(PortNumbering::identity(g));
    }
    table("Connected mixed scope, Eulerian decision",
          *eulerian_decision_problem(), scope, {0, -1}, &pool);
  }

  std::printf("Shape checks (paper):\n");
  std::printf(" - leaf-in-star: solvable in the ported classes from t=1,\n");
  std::printf("   never in the broadcast classes (Theorem 11);\n");
  std::printf(" - MIS on a symmetric consistent cycle: unsolvable even in\n");
  std::printf("   VVc (Section 3.1);\n");
  std::printf(" - 3-colouring a symmetric odd cycle: unsolvable (needs\n");
  std::printf("   symmetry breaking);\n");
  std::printf(" - Eulerian decision on connected scopes: solvable at t=0\n");
  std::printf("   from degree parities alone, in every class.\n");

  const double wall = total.ms();
  benchutil::report_phase("total", wall);
  benchutil::write_bench_json(
      "decision", static_cast<long long>(g_assignments), pool.num_threads(),
      wall,
      wall > 0 ? 1000.0 * static_cast<double>(g_assignments) / wall : 0);
  return 0;
}
