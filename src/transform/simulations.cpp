#include "transform/simulations.hpp"

#include <stdexcept>
#include <string>

namespace wm {

namespace {

bool tagged_with(const Value& s, const char* tag) {
  return s.is_tuple() && s.size() >= 1 && s.at(0).is_str() &&
         s.at(0).as_str() == tag;
}

/// Multiset difference a - b over the items of two MSet values.
/// Precondition: b is a sub-multiset of a.
ValueVec mset_difference(const Value& a, const Value& b) {
  ValueVec out;
  const ValueVec& xs = a.items();
  const ValueVec& ys = b.items();
  std::size_t j = 0;
  for (const Value& x : xs) {
    if (j < ys.size() && ys[j] == x) {
      ++j;  // matched, removed
    } else {
      out.push_back(x);
    }
  }
  if (j != ys.size()) {
    throw std::logic_error("mset_difference: b not a sub-multiset of a");
  }
  return out;
}

Value append(const Value& history, Value msg) {
  ValueVec items = history.items();
  items.push_back(std::move(msg));
  return Value::tuple(std::move(items));
}

Value drop_last(const Value& history) {
  ValueVec items = history.items();
  items.pop_back();
  return Value::tuple(std::move(items));
}

// ---------------------------------------------------------------------------
// Theorems 8 / 9: history-augmentation simulation.
//
// Wrapper state: ("H", x, out_hist, F)
//   x        — the simulated machine's current state (never stopping)
//   out_hist — Ported: Tuple of deg Tuples (history per out-port);
//              Broadcast: one Tuple (broadcast history)
//   F        — MSet of deg histories: the full reconstructed multiset of
//              neighbour histories, with stopped neighbours' histories
//              extended by m0 locally.
// ---------------------------------------------------------------------------
class HistoryMachine final : public StateMachine {
 public:
  explicit HistoryMachine(std::shared_ptr<const StateMachine> a)
      : a_(std::move(a)) {
    if (a_->algebraic_class().receive != ReceiveMode::Vector) {
      throw std::invalid_argument(
          "to_multiset_machine: source must be Vector-receive");
    }
    cls_ = {ReceiveMode::Multiset, a_->algebraic_class().send};
  }

  AlgebraicClass algebraic_class() const override { return cls_; }

  Value init(int degree) const override {
    Value x = a_->init(degree);
    if (a_->is_stopping(x)) return x;
    const Value empty_hist = Value::tuple({});
    Value out_hist;
    if (cls_.send == SendMode::Broadcast) {
      out_hist = empty_hist;
    } else {
      out_hist = Value::tuple(ValueVec(static_cast<std::size_t>(degree),
                                       empty_hist));
    }
    Value f = Value::mset(ValueVec(static_cast<std::size_t>(degree), empty_hist));
    return Value::tuple({Value::str("H"), std::move(x), std::move(out_hist),
                         std::move(f)});
  }

  bool is_stopping(const Value& state) const override {
    return !tagged_with(state, "H") && a_->is_stopping(state);
  }

  Value message(const Value& state, int port) const override {
    const Value& x = state.at(1);
    const Value& out_hist = state.at(2);
    if (cls_.send == SendMode::Broadcast) {
      return append(out_hist, a_->message(x, 1));
    }
    return append(out_hist.at(static_cast<std::size_t>(port - 1)),
                  a_->message(x, port));
  }

  Value transition(const Value& state, const Value& inbox,
                   int degree) const override {
    const Value& x = state.at(1);
    const Value& out_hist = state.at(2);
    const Value& f = state.at(3);

    // R: fresh histories from still-active neighbours (length t+1).
    ValueVec r;
    for (const Value& msg : inbox.items()) {
      if (!msg.is_unit()) r.push_back(msg);
    }
    // Neighbours that stopped: their history in F has no extension in R.
    ValueVec prefixes;
    prefixes.reserve(r.size());
    for (const Value& h : r) prefixes.push_back(drop_last(h));
    ValueVec stopped = mset_difference(f, Value::mset(std::move(prefixes)));
    ValueVec all = std::move(r);
    for (const Value& h : stopped) {
      all.push_back(append(h, Value::unit()));  // mu(y, i) = m0 forever
    }
    Value f_next = Value::mset(std::move(all));

    // The lexicographically sorted histories define the virtual in-port
    // order (Theorem 8's compatible port numbering); the simulated inbox
    // vector is the last entry of each history in that order.
    ValueVec sim_inbox;
    sim_inbox.reserve(f_next.size());
    for (const Value& h : f_next.items()) {
      sim_inbox.push_back(h.at(h.size() - 1));
    }
    Value x_next = a_->transition(x, Value::tuple(std::move(sim_inbox)), degree);
    if (a_->is_stopping(x_next)) return x_next;

    // Extend our own outgoing histories with what we sent this round.
    Value out_next;
    if (cls_.send == SendMode::Broadcast) {
      out_next = append(out_hist, a_->message(x, 1));
    } else {
      ValueVec hs;
      hs.reserve(static_cast<std::size_t>(degree));
      for (int j = 1; j <= degree; ++j) {
        hs.push_back(append(out_hist.at(static_cast<std::size_t>(j - 1)),
                            a_->message(x, j)));
      }
      out_next = Value::tuple(std::move(hs));
    }
    return Value::tuple({Value::str("H"), std::move(x_next),
                         std::move(out_next), std::move(f_next)});
  }

 private:
  std::shared_ptr<const StateMachine> a_;
  AlgebraicClass cls_;
};

// ---------------------------------------------------------------------------
// Theorem 4: colour-refinement prologue + key-tagged simulation.
//
// Phase C state ("C", t, deg, beta, B): rounds 1..2*Delta of algorithm
// C_Delta — beta_t = (beta_{t-1}, B_{t-1}), send (beta_t, deg, i) to
// port i, B_t = set received.
// Phase S state ("S", deg, beta, x): simulate A; send
// (beta, deg, i, mu_A(x, i)); the received set's keyed entries are
// pairwise distinct across neighbours (Lemma 6), and units from stopped
// neighbours are counted via deg - #keyed.
// ---------------------------------------------------------------------------
class RefineToSetMachine final : public StateMachine {
 public:
  RefineToSetMachine(std::shared_ptr<const StateMachine> a, int delta)
      : a_(std::move(a)), delta_(delta) {
    if (a_->algebraic_class() != AlgebraicClass::multiset()) {
      throw std::invalid_argument(
          "to_set_machine: source must be Multiset-receive, Ported-send");
    }
    if (delta_ < 0) throw std::invalid_argument("to_set_machine: delta < 0");
  }

  AlgebraicClass algebraic_class() const override {
    return AlgebraicClass::set();
  }

  Value init(int degree) const override {
    // Even if A stops at time 0, run the full prologue: Lemma 6 needs
    // every node to execute C_Delta, and the frozen A-state is simulated
    // faithfully in phase S (a stopped node sends m0).
    if (2 * delta_ == 0) {
      return phase_s(degree, Value::unit(), a_->init(degree));
    }
    return Value::tuple({Value::str("C"), Value::integer(0),
                         Value::integer(degree), Value::unit(),
                         Value::set({})});
  }

  bool is_stopping(const Value& state) const override {
    return !tagged_with(state, "C") && !tagged_with(state, "S") &&
           a_->is_stopping(state);
  }

  Value message(const Value& state, int port) const override {
    if (tagged_with(state, "C")) {
      // Send (beta_{t+1}, deg, i) with beta_{t+1} = (beta_t, B_t).
      const Value beta_next = Value::pair(state.at(3), state.at(4));
      return Value::triple(beta_next, state.at(2), Value::integer(port));
    }
    // Phase S: key-tagged simulated message (m0 if A already stopped).
    const Value& deg = state.at(1);
    const Value& beta = state.at(2);
    const Value& x = state.at(3);
    const Value payload =
        a_->is_stopping(x) ? Value::unit() : a_->message(x, port);
    return Value::tuple({beta, deg, Value::integer(port), payload});
  }

  Value transition(const Value& state, const Value& inbox,
                   int degree) const override {
    if (tagged_with(state, "C")) {
      const int t = static_cast<int>(state.at(1).as_int());
      const Value beta_next = Value::pair(state.at(3), state.at(4));
      if (t + 1 == 2 * delta_) {
        return phase_s(degree, beta_next, a_->init(degree));
      }
      return Value::tuple({Value::str("C"), Value::integer(t + 1),
                           state.at(2), beta_next, inbox});
    }
    // Phase S: reconstruct the multiset from the keyed set.
    const Value& x = state.at(3);
    if (a_->is_stopping(x)) return x;  // A stopped at time 0: finish now
    ValueVec sim_msgs;
    int keyed = 0;
    for (const Value& msg : inbox.items()) {
      if (msg.is_unit()) continue;  // collapsed units from stopped senders
      sim_msgs.push_back(msg.at(3));
      ++keyed;
    }
    // Stopped neighbours each contributed m0 to the simulated multiset.
    for (int i = keyed; i < degree; ++i) sim_msgs.push_back(Value::unit());
    Value x_next =
        a_->transition(x, Value::mset(std::move(sim_msgs)), degree);
    if (a_->is_stopping(x_next)) return x_next;
    return Value::tuple({Value::str("S"), state.at(1), state.at(2),
                         std::move(x_next)});
  }

 private:
  static Value phase_s(int degree, Value beta, Value x) {
    return Value::tuple({Value::str("S"), Value::integer(degree),
                         std::move(beta), std::move(x)});
  }

  std::shared_ptr<const StateMachine> a_;
  int delta_;
};

}  // namespace

std::shared_ptr<const StateMachine> to_multiset_machine(
    std::shared_ptr<const StateMachine> a) {
  return std::make_shared<HistoryMachine>(std::move(a));
}

std::shared_ptr<const StateMachine> to_set_machine(
    std::shared_ptr<const StateMachine> a, int delta) {
  return std::make_shared<RefineToSetMachine>(std::move(a), delta);
}

std::shared_ptr<const StateMachine> vector_to_set_machine(
    std::shared_ptr<const StateMachine> a, int delta) {
  return to_set_machine(to_multiset_machine(std::move(a)), delta);
}

}  // namespace wm
