# Empty compiler generated dependencies file for test_beeping.
# This may be replaced when dependencies are built.
