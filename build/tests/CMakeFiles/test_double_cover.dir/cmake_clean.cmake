file(REMOVE_RECURSE
  "CMakeFiles/test_double_cover.dir/test_double_cover.cpp.o"
  "CMakeFiles/test_double_cover.dir/test_double_cover.cpp.o.d"
  "test_double_cover"
  "test_double_cover.pdb"
  "test_double_cover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_double_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
