# Empty dependencies file for test_kripke.
# This may be replaced when dependencies are built.
