file(REMOVE_RECURSE
  "CMakeFiles/wm_port.dir/port_numbering.cpp.o"
  "CMakeFiles/wm_port.dir/port_numbering.cpp.o.d"
  "libwm_port.a"
  "libwm_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
