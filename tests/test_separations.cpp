#include "core/classification.hpp"

#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "problems/catalogue.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

TEST(Classification, NamesAndLevels) {
  EXPECT_EQ(problem_class_name(ProblemClass::VVc), "VVc");
  EXPECT_EQ(problem_class_name(ProblemClass::SB), "SB");
  EXPECT_EQ(all_problem_classes().size(), 7u);
  // The linear order of Figure 5b.
  EXPECT_EQ(linear_order_level(ProblemClass::SB), 0);
  EXPECT_EQ(linear_order_level(ProblemClass::MB),
            linear_order_level(ProblemClass::VB));
  EXPECT_EQ(linear_order_level(ProblemClass::SV),
            linear_order_level(ProblemClass::MV));
  EXPECT_EQ(linear_order_level(ProblemClass::MV),
            linear_order_level(ProblemClass::VV));
  EXPECT_LT(linear_order_level(ProblemClass::VV),
            linear_order_level(ProblemClass::VVc));
}

TEST(Classification, Table3Correspondence) {
  EXPECT_EQ(logic_name_for(ProblemClass::SB), "ML");
  EXPECT_EQ(logic_name_for(ProblemClass::MB), "GML");
  EXPECT_EQ(logic_name_for(ProblemClass::MV), "GMML");
  EXPECT_EQ(logic_name_for(ProblemClass::SV), "MML");
  EXPECT_EQ(kripke_variant_for(ProblemClass::VB), Variant::PlusMinus);
  EXPECT_EQ(kripke_variant_for(ProblemClass::SV), Variant::MinusPlus);
  EXPECT_EQ(machine_class_for(ProblemClass::MB),
            AlgebraicClass::multiset_broadcast());
}

TEST(Separation, Theorem11Holds) {
  for (int k : {2, 3, 4}) {
    const SeparationWitness w = thm11_witness(k);
    const SeparationCheck c = check_separation(w);
    EXPECT_TRUE(c.x_bisimilar) << w.name;
    EXPECT_TRUE(c.partition_is_bisim) << w.name;
    EXPECT_TRUE(c.solutions_split_x) << w.name;
    EXPECT_TRUE(c.holds());
  }
}

TEST(Separation, Theorem11HoldsForEveryPortNumbering) {
  // The paper's claim is "for any p": exhaust all numberings of the
  // 3-star and re-run the bisimilarity half of the check.
  SeparationWitness w = thm11_witness(3);
  for_each_port_numbering(w.graph, [&](const PortNumbering& p) {
    w.numbering = p;
    EXPECT_TRUE(check_separation(w).x_bisimilar);
    return true;
  });
}

TEST(Separation, Theorem11PositiveSide) {
  // The problem IS solvable in SV(1) — the leaf picker machine.
  const auto m = leaf_picker_machine();
  EXPECT_EQ(m->algebraic_class(), machine_class_for(ProblemClass::SV));
}

TEST(Separation, Theorem13Holds) {
  const SeparationWitness w = thm13_witness();
  const SeparationCheck c = check_separation(w);
  EXPECT_TRUE(c.x_bisimilar);
  EXPECT_TRUE(c.partition_is_bisim);
  EXPECT_TRUE(c.solutions_split_x);
  EXPECT_TRUE(c.holds());
  // Positive side: the MB machine solves it on the witness graph itself.
  const auto r = execute(*odd_odd_machine(), w.numbering);
  EXPECT_TRUE(w.problem->valid(w.graph, r.outputs_as_ints()));
}

TEST(Separation, Theorem13WitnessIndependentOfNumbering) {
  // K_{-,-} forgets the numbering entirely: any p gives the same model.
  SeparationWitness w = thm13_witness();
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    w.numbering = PortNumbering::random(w.graph, rng);
    EXPECT_TRUE(check_separation(w).holds());
  }
}

TEST(Separation, Theorem17Holds) {
  const SeparationWitness w = thm17_witness(3);
  const SeparationCheck c = check_separation(w);
  EXPECT_TRUE(c.x_bisimilar);       // Lemma 15
  EXPECT_TRUE(c.partition_is_bisim);
  EXPECT_TRUE(c.solutions_split_x); // non-constancy demanded on class G
  EXPECT_EQ(c.num_blocks, 1);       // ALL nodes mutually bisimilar
}

TEST(Separation, Theorem17PositiveSide) {
  // VVc(1): the local-type algorithm solves the problem under every
  // sampled consistent numbering of several class-G graphs.
  Rng rng(23);
  for (int k : {3, 5}) {
    const Graph g = class_g_graph(k);
    const auto m = local_type_maximum_machine(k);
    const auto problem = symmetry_break_problem();
    for (int trial = 0; trial < 3; ++trial) {
      const PortNumbering p = PortNumbering::random_consistent(g, rng);
      const auto r = execute(*m, p);
      ASSERT_TRUE(r.stopped);
      EXPECT_TRUE(problem->valid(g, r.outputs_as_ints())) << "k=" << k;
    }
  }
}

TEST(Separation, SearchFindsThm13StyleWitnessesAutomatically) {
  // Beyond the hand-crafted witness: exhaustively search small connected
  // graphs for pairs (g1, g2) whose refinement-equivalent nodes disagree
  // on odd-odd output. The hand-crafted witness components (6 and 4
  // nodes) must be rediscoverable in the union of enumerated graphs.
  // Here we verify a cheaper consequence: within the thm13 witness graph,
  // the K_{-,-} partition computed from scratch has the two components'
  // degree-3 nodes in one block.
  const SeparationWitness w = thm13_witness();
  const KripkeModel k = kripke_from_graph(w.numbering, Variant::MinusMinus);
  const Partition part = coarsest_bisimulation(k);
  for (NodeId v : {0, 1, 2, 3, 6, 7}) {
    EXPECT_TRUE(part.same_block(0, v)) << v;
  }
  for (NodeId v : {4, 5, 8, 9}) {
    EXPECT_FALSE(part.same_block(0, v)) << v;
  }
}

TEST(Separation, ConnectivityNotDecidableAnonymously) {
  // Supporting claim for the Eulerian example (Section 1.4): one cycle
  // C6 and two disjoint triangles are indistinguishable in every view —
  // all nodes bisimilar in K_{+,+} under suitable numberings — so no
  // anonymous algorithm can decide connectivity. Witness: C6 vs C3+C3,
  // both 2-regular; with symmetric numberings all 12 ∪ 6 nodes are
  // bisimilar across models.
  const Graph c6 = cycle_graph(6);
  Graph two_triangles(6);
  for (int i = 0; i < 3; ++i) {
    two_triangles.add_edge(i, (i + 1) % 3);
    two_triangles.add_edge(3 + i, 3 + (i + 1) % 3);
  }
  const KripkeModel a = kripke_from_graph(
      PortNumbering::symmetric_regular(c6), Variant::PlusPlus);
  const KripkeModel b = kripke_from_graph(
      PortNumbering::symmetric_regular(two_triangles), Variant::PlusPlus);
  EXPECT_TRUE(bisimilar_across(a, 0, b, 0));
}

TEST(Separation, Figure5bLinearOrderSummary) {
  // The three separations together with the transformer-backed
  // equalities pin down the four levels; sanity-check the witness
  // endpoints line up with the levels.
  const auto w11 = thm11_witness(3);
  const auto w13 = thm13_witness();
  const auto w17 = thm17_witness();
  EXPECT_EQ(linear_order_level(w13.solvable_in), 1);   // MB
  EXPECT_EQ(linear_order_level(w13.excluded_from), 0); // SB
  EXPECT_EQ(linear_order_level(w11.solvable_in), 2);   // SV
  EXPECT_EQ(linear_order_level(w11.excluded_from), 1); // VB
  EXPECT_EQ(linear_order_level(w17.solvable_in), 3);   // VVc
  EXPECT_EQ(linear_order_level(w17.excluded_from), 2); // VV
}

}  // namespace
}  // namespace wm
