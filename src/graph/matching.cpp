#include "graph/matching.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>

namespace wm {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}

Matching hopcroft_karp(const Graph& g, const std::vector<int>& side) {
  const int n = g.num_nodes();
  for (const Edge& e : g.edges()) {
    if (side[e.u] == side[e.v]) {
      throw std::invalid_argument("hopcroft_karp: edge within one side");
    }
  }
  Matching match(static_cast<std::size_t>(n), -1);
  std::vector<int> dist(static_cast<std::size_t>(n), 0);

  auto bfs = [&]() {
    std::queue<NodeId> q;
    bool found_free = false;
    for (NodeId v = 0; v < n; ++v) {
      if (side[v] == 0 && match[v] < 0) {
        dist[v] = 0;
        q.push(v);
      } else {
        dist[v] = kInf;
      }
    }
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (NodeId u : g.neighbours(v)) {
        const NodeId w = match[u];  // u is on side 1
        if (w < 0) {
          found_free = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
      }
    }
    return found_free;
  };

  std::function<bool(NodeId)> dfs = [&](NodeId v) -> bool {
    for (NodeId u : g.neighbours(v)) {
      const NodeId w = match[u];
      if (w < 0 || (dist[w] == dist[v] + 1 && dfs(w))) {
        match[v] = u;
        match[u] = v;
        return true;
      }
    }
    dist[v] = kInf;
    return false;
  };

  while (bfs()) {
    for (NodeId v = 0; v < n; ++v) {
      if (side[v] == 0 && match[v] < 0) dfs(v);
    }
  }
  return match;
}

// Edmonds' blossom algorithm (standard contraction-free implementation
// with base[] markers, O(V^3)).
Matching blossom_maximum_matching(const Graph& g) {
  const int n = g.num_nodes();
  Matching match(static_cast<std::size_t>(n), -1);
  std::vector<int> parent(static_cast<std::size_t>(n)), base(static_cast<std::size_t>(n));
  std::vector<bool> used(static_cast<std::size_t>(n)), blossom(static_cast<std::size_t>(n));

  auto lca = [&](int a, int b) {
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (;;) {
      a = base[a];
      seen[a] = true;
      if (match[a] < 0) break;
      a = parent[match[a]];
    }
    for (;;) {
      b = base[b];
      if (seen[b]) return b;
      b = parent[match[b]];
    }
  };

  auto mark_path = [&](int v, int b, int child) {
    while (base[v] != b) {
      blossom[base[v]] = true;
      blossom[base[match[v]]] = true;
      parent[v] = child;
      child = match[v];
      v = parent[match[v]];
    }
  };

  auto find_path = [&](int root) -> int {
    std::fill(used.begin(), used.end(), false);
    std::fill(parent.begin(), parent.end(), -1);
    for (int i = 0; i < n; ++i) base[i] = i;
    used[root] = true;
    std::queue<int> q;
    q.push(root);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int to : g.neighbours(v)) {
        if (base[v] == base[to] || match[v] == to) continue;
        if (to == root || (match[to] >= 0 && parent[match[to]] >= 0)) {
          // Found a blossom; contract it.
          const int curbase = lca(v, to);
          std::fill(blossom.begin(), blossom.end(), false);
          mark_path(v, curbase, to);
          mark_path(to, curbase, v);
          for (int i = 0; i < n; ++i) {
            if (blossom[base[i]]) {
              base[i] = curbase;
              if (!used[i]) {
                used[i] = true;
                q.push(i);
              }
            }
          }
        } else if (parent[to] < 0) {
          parent[to] = v;
          if (match[to] < 0) {
            return to;  // augmenting path found
          }
          used[match[to]] = true;
          q.push(match[to]);
        }
      }
    }
    return -1;
  };

  for (int v = 0; v < n; ++v) {
    if (match[v] >= 0) continue;
    const int u = find_path(v);
    if (u < 0) continue;
    // Augment along the alternating path ending at u.
    int cur = u;
    while (cur >= 0) {
      const int pv = parent[cur];
      const int ppv = match[pv];
      match[cur] = pv;
      match[pv] = cur;
      cur = ppv;
    }
  }
  return match;
}

int matching_size(const Matching& m) {
  int cnt = 0;
  for (NodeId v = 0; v < static_cast<int>(m.size()); ++v) {
    if (m[v] > v) ++cnt;
  }
  return cnt;
}

bool is_valid_matching(const Graph& g, const Matching& m) {
  if (m.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId u = m[v];
    if (u < 0) continue;
    if (u >= g.num_nodes() || m[u] != v || !g.has_edge(u, v)) return false;
  }
  return true;
}

bool has_one_factor(const Graph& g) {
  if (g.num_nodes() % 2 != 0) return false;
  const Matching m = blossom_maximum_matching(g);
  return matching_size(m) * 2 == g.num_nodes();
}

std::vector<Edge> matching_edges(const Matching& m) {
  std::vector<Edge> out;
  for (NodeId v = 0; v < static_cast<int>(m.size()); ++v) {
    if (m[v] > v) out.push_back({v, m[v]});
  }
  return out;
}

}  // namespace wm
