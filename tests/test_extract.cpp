#include "compile/extract.hpp"

#include <gtest/gtest.h>

#include "algorithms/machines.hpp"
#include "compile/formula_compiler.hpp"
#include "graph/enumerate.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "runtime/engine.hpp"

namespace wm {
namespace {

TEST(Extract, VariantForClass) {
  EXPECT_EQ(variant_for_class(AlgebraicClass::vector()), Variant::PlusPlus);
  EXPECT_EQ(variant_for_class(AlgebraicClass::multiset()), Variant::MinusPlus);
  EXPECT_EQ(variant_for_class(AlgebraicClass::set()), Variant::MinusPlus);
  EXPECT_EQ(variant_for_class(AlgebraicClass::vector_broadcast()),
            Variant::PlusMinus);
  EXPECT_EQ(variant_for_class(AlgebraicClass::multiset_broadcast()),
            Variant::MinusMinus);
  EXPECT_EQ(variant_for_class(AlgebraicClass::set_broadcast()),
            Variant::MinusMinus);
}

/// Checks the Theorem 2 Parts 3-4 property for a machine: the extracted
/// formula's extension equals the machine's output-1 set, on every graph
/// of max degree <= delta with `numberings_per_graph` sampled numberings
/// (and the identity), for all graphs on up to `max_n` nodes.
void check_extraction(const StateMachine& m, int delta, int rounds, int max_n,
                      bool enumerate_all_ports = false) {
  ExtractionOptions opts;
  opts.delta = delta;
  opts.rounds = rounds;
  const Formula psi = extract_formula(m, opts);
  const Variant variant = variant_for_class(m.algebraic_class());
  EXPECT_LE(psi.modal_depth(), rounds);
  EXPECT_TRUE(psi.in_signature(variant, delta)) << psi.to_string();

  EnumerateOptions eopts;
  eopts.connected_only = false;
  eopts.max_degree = delta;
  Rng rng(2024);
  for (int n = 1; n <= max_n; ++n) {
    enumerate_graphs(n, eopts, [&](const Graph& g) {
      auto check_one = [&](const PortNumbering& p) {
        const auto r = execute(m, p);
        EXPECT_TRUE(r.stopped);
        EXPECT_LE(r.rounds, rounds);
        const KripkeModel k = kripke_from_graph(p, variant, delta);
        const auto truth = model_check(k, psi);
        for (int v = 0; v < g.num_nodes(); ++v) {
          EXPECT_EQ(truth[v], r.final_states[v].as_int() == 1)
              << "n=" << n << " node " << v << "\n" << g.to_string();
        }
        return true;
      };
      if (enumerate_all_ports && g.num_edges() <= 3) {
        for_each_port_numbering(g, check_one);
      } else {
        check_one(PortNumbering::identity(g));
        PortNumbering q = PortNumbering::random(g, rng);
        check_one(q);
      }
      return true;
    });
  }
}

TEST(Extract, DegreeParityMachineTimeZero) {
  // Stopping at time 0, SB class: formula is a pure degree predicate.
  check_extraction(*degree_parity_machine(), 3, 0, 4);
}

TEST(Extract, IsolatedDetectorSbClass) {
  check_extraction(*isolated_detector_machine(), 2, 1, 4, true);
}

TEST(Extract, OddOddMachineMbClass) {
  // Multiset∩Broadcast -> GML on K_{-,-}; the extracted formula must
  // count parities, i.e. genuinely use grades.
  ExtractionOptions opts;
  opts.delta = 3;
  opts.rounds = 1;
  const Formula psi = extract_formula(*odd_odd_machine(), opts);
  EXPECT_TRUE(psi.is_graded());
  check_extraction(*odd_odd_machine(), 3, 1, 4);
}

TEST(Extract, LeafPickerSvClass) {
  // Set receive, Ported send -> MML on K_{-,+}.
  check_extraction(*leaf_picker_machine(), 2, 1, 4, true);
}

TEST(Extract, MultisetPortedMvClass) {
  // A genuinely-MV machine (Multiset receive, Ported send): send the
  // out-port number to each port; output 1 iff the multiset of received
  // port-tags contains Int 1 at least twice — i.e. at least two
  // neighbours reached me through their port 1. Exercises Part 4 (c)'s
  // per-(j, m) count-matrix enumeration (GMML on K_{-,+}).
  LambdaMachine m;
  m.cls = AlgebraicClass::multiset();
  m.init_fn = [](int d) { return Value::pair(Value::str("c"), Value::integer(d)); };
  m.stopping_fn = [](const Value& s) { return s.is_int(); };
  m.message_fn = [](const Value&, int port) { return Value::integer(port); };
  m.transition_fn = [](const Value&, const Value& inbox, int) {
    return Value::integer(inbox.count(Value::integer(1)) >= 2 ? 1 : 0);
  };
  ASSERT_EQ(variant_for_class(m.algebraic_class()), Variant::MinusPlus);
  ExtractionOptions opts;
  opts.delta = 2;
  opts.rounds = 1;
  const Formula psi = extract_formula(m, opts);
  EXPECT_TRUE(psi.is_graded());  // counting needs GMML
  check_extraction(m, 2, 1, 4, true);
}

TEST(Extract, PortOneParityVbClass) {
  // Vector receive + Broadcast send -> MML on K_{+,-} (Part 4 (e)).
  const auto m = port_one_parity_machine();
  ASSERT_EQ(variant_for_class(m->algebraic_class()), Variant::PlusMinus);
  check_extraction(*m, 2, 1, 4, true);
  check_extraction(*m, 3, 1, 3);
}

TEST(Extract, LocalTypeMachineVvClass) {
  // Vector machine, 2 rounds -> MML on K_{+,+}. Small delta keeps the
  // abstract inbox enumeration tractable.
  check_extraction(*local_type_maximum_machine(2), 2, 2, 3);
}

TEST(Extract, RoundtripCompileThenExtract) {
  // compile(psi) then extract gives a formula equivalent to psi on all
  // small pointed models from graphs (not syntactically equal).
  const Formula psi = Formula::diamond(
      {0, 0}, Formula::conj(Formula::prop(1), Formula::tru()));
  const auto machine = compile_formula(psi, Variant::MinusMinus, 2);
  ExtractionOptions opts;
  opts.delta = 2;
  opts.rounds = psi.modal_depth() + 1;
  const Formula back = extract_formula(*machine, opts);
  EnumerateOptions eopts;
  eopts.connected_only = false;
  eopts.max_degree = 2;
  enumerate_graphs(4, eopts, [&](const Graph& g) {
    const PortNumbering p = PortNumbering::identity(g);
    const KripkeModel k = kripke_from_graph(p, Variant::MinusMinus, 2);
    EXPECT_EQ(model_check(k, psi), model_check(k, back)) << g.to_string();
    return true;
  });
}

TEST(Extract, BudgetCapThrows) {
  ExtractionOptions opts;
  opts.delta = 3;
  opts.rounds = 2;
  opts.max_inbox_combos = 3;  // absurdly small
  EXPECT_THROW(extract_formula(*odd_odd_machine(), opts), ExtractionLimitError);
}

}  // namespace
}  // namespace wm
