# Empty dependencies file for wm_algorithms.
# This may be replaced when dependencies are built.
