#include "core/decision.hpp"

#include <cmath>

namespace wm {

Decision decide_solvable(const Problem& problem,
                         const std::vector<PortNumbering>& scope,
                         ProblemClass c, const DecisionOptions& opts) {
  const Variant variant = kripke_variant_for(c);
  const bool graded = graded_logic_for(c);

  int delta = opts.delta;
  if (delta < 0) {
    delta = 0;
    for (const PortNumbering& p : scope) {
      delta = std::max(delta, p.graph().max_degree());
    }
  }

  // Joint model and per-instance state offsets.
  KripkeModel joint(0, 0);
  std::vector<int> offset;
  for (const PortNumbering& p : scope) {
    offset.push_back(joint.num_states());
    joint = KripkeModel::disjoint_union(
        joint, kripke_from_graph(p, variant, delta));
  }

  const Partition part = graded
                             ? coarsest_graded_bisimulation(joint, opts.rounds)
                             : coarsest_bisimulation(joint, opts.rounds);
  Decision decision;
  decision.blocks = part.num_blocks;

  const std::vector<int> alphabet = problem.output_alphabet();
  const double combos =
      std::pow(static_cast<double>(alphabet.size()), part.num_blocks);
  if (combos > static_cast<double>(opts.max_assignments)) {
    throw DecisionBudgetError(
        "decide_solvable: |Y|^blocks exceeds the assignment budget (" +
        std::to_string(part.num_blocks) + " blocks)");
  }

  // Odometer over block colourings.
  std::vector<std::size_t> idx(static_cast<std::size_t>(part.num_blocks), 0);
  std::vector<int> colour(static_cast<std::size_t>(part.num_blocks),
                          alphabet[0]);
  for (;;) {
    ++decision.assignments_tried;
    bool all_valid = true;
    for (std::size_t i = 0; i < scope.size() && all_valid; ++i) {
      const Graph& g = scope[i].graph();
      std::vector<int> out(static_cast<std::size_t>(g.num_nodes()));
      for (int v = 0; v < g.num_nodes(); ++v) {
        out[v] = colour[part.block[offset[i] + v]];
      }
      all_valid = problem.valid(g, out);
    }
    if (all_valid) {
      decision.solvable = true;
      decision.block_output = colour;
      return decision;
    }
    // Increment the odometer.
    std::size_t pos = 0;
    while (pos < idx.size()) {
      if (++idx[pos] < alphabet.size()) {
        colour[pos] = alphabet[idx[pos]];
        break;
      }
      idx[pos] = 0;
      colour[pos] = alphabet[0];
      ++pos;
    }
    if (pos == idx.size()) return decision;  // exhausted: unsolvable
  }
}

}  // namespace wm
