// Timing bench: model checking (||phi||_K) and formula compilation as
// functions of graph size and modal depth, plus compiled-machine
// execution (whose round count is md + 1 by Theorem 2).
#include <benchmark/benchmark.h>

#include "compile/formula_compiler.hpp"
#include "graph/generators.hpp"
#include "logic/model_checker.hpp"
#include "logic/random_formula.hpp"
#include "port/port_numbering.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace wm;

Formula deep_formula(int depth) {
  // (<*,*>)^depth (q1 | <*,*>_{>=2} q2) — a fixed graded pattern.
  Formula f = Formula::disj(Formula::prop(1),
                            Formula::diamond({0, 0}, Formula::prop(2), 2));
  for (int i = 0; i < depth; ++i) f = Formula::diamond({0, 0}, f);
  return f;
}

void BM_ModelCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  Rng rng(1);
  const Graph g = random_connected_graph(n, 4, n, rng);
  const KripkeModel k =
      kripke_from_graph(PortNumbering::random(g, rng), Variant::MinusMinus);
  const Formula f = deep_formula(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model_check(k, f));
  }
}

void BM_CompileFormula(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Formula f = deep_formula(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_formula(f, Variant::MinusMinus, 4));
  }
}

void BM_ExecuteCompiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  Rng rng(2);
  const Graph g = random_connected_graph(n, 4, n, rng);
  const PortNumbering p = PortNumbering::random(g, rng);
  const auto m = compile_formula(deep_formula(depth), Variant::MinusMinus, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(execute(*m, p));
  }
}

}  // namespace

BENCHMARK(BM_ModelCheck)->ArgsProduct({{32, 128, 512}, {1, 4, 8}});
BENCHMARK(BM_CompileFormula)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_ExecuteCompiled)->ArgsProduct({{32, 128}, {1, 4, 8}});
