// Census checkpoints: the enumeration frontier + the exact store state
// it depends on, committed atomically so a killed census resumes.
//
// A checkpoint is a CRC-sealed text file (same grammar helpers as the
// store manifest) recording:
//
//  - which census this is (kind tag, total candidate space, batch size),
//  - how far the scan got (`next` — first candidate index NOT yet
//    covered by a committed batch) and the cumulative totals
//    (representatives, admissible, scanned, batches, checkpoints) that
//    make resumed counts equal uninterrupted ones,
//  - the exact committed segment set of the CertStore (file, count,
//    CRC per segment) — the store state this frontier was computed
//    against,
//  - the obs run manifest JSON of the writing process, embedded as one
//    opaque provenance line.
//
// Commit order in the census loop is: seal store → (maybe) compact →
// write checkpoint → purge unreferenced store files. Because the
// checkpoint names segments by content (CRC), resume can verify it is
// rewinding to exactly the state the checkpoint saw — a checkpoint
// naming segments the store no longer has (or has with different bytes)
// is a structured kCheckpointSkew, not a silently wrong census.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/cert_store.hpp"

namespace wm::store {

struct Checkpoint {
  static constexpr std::uint32_t kVersion = 1;

  std::string kind;          // must match the store and the resuming run
  std::uint64_t space = 0;   // total candidate count of the census
  std::uint64_t batch = 0;   // batch size the frontier advanced by
  std::uint64_t next = 0;    // first index not yet covered
  // Cumulative results across all committed batches (this run and every
  // run before it): these seed the resuming process so its final JSON
  // equals an uninterrupted run's.
  std::uint64_t classes = 0;     // representatives filed fresh
  std::uint64_t admissible = 0;  // keys emitted (pre-dedup)
  std::uint64_t scanned = 0;     // candidates visited
  std::uint64_t batches = 0;     // batches committed
  std::uint64_t checkpoints = 0; // checkpoint commits (this one included)
  std::vector<SegmentRef> store_segments;
  std::string manifest_json;  // writer's obs manifest, opaque provenance

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// Atomically writes `cp` to `path` (temp + fsync + rename, CRC-sealed).
/// Throws StoreError(kIo) on filesystem failure.
void write_checkpoint(const std::string& path, const Checkpoint& cp);

/// Loads and validates a checkpoint. Throws StoreError with kBadMagic /
/// kVersionSkew / kTruncated / kCrcMismatch / kBadManifest on a corrupt
/// or incompatible file. Semantic fit against a store (segments present,
/// kind match) is checked by CertStore::open_at / the census driver.
Checkpoint load_checkpoint(const std::string& path);

}  // namespace wm::store
